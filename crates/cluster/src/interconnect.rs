//! GPU-to-GPU interconnect model.

/// An intra-node GPU interconnect, described by the α–β parameters used by
/// the collective cost models.
///
/// # Examples
///
/// ```
/// use sp_cluster::InterconnectSpec;
///
/// let nv = InterconnectSpec::nvswitch();
/// assert_eq!(nv.link_bw, 900e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// Per-GPU injection bandwidth in bytes/second (unidirectional).
    pub link_bw: f64,
    /// Fraction of rated bandwidth achieved by large transfers (0..=1).
    pub bw_efficiency: f64,
    /// Base latency per collective step (kernel launch + switch traversal),
    /// in seconds. This is the α of the α–β model.
    pub step_latency: f64,
    /// True if the topology is a full crossbar (NVSwitch): all-to-all
    /// traffic does not contend beyond each GPU's injection port.
    pub full_crossbar: bool,
}

impl InterconnectSpec {
    /// Fourth-generation NVSwitch as in the paper's p5en.48xlarge node:
    /// 900 GB/s per GPU, full crossbar.
    pub fn nvswitch() -> InterconnectSpec {
        InterconnectSpec {
            link_bw: 900e9,
            bw_efficiency: 0.75,
            step_latency: 2e-6,
            full_crossbar: true,
        }
    }

    /// Inter-node EFA/InfiniBand fabric (for cross-node parallelism
    /// sensitivity studies): ~50 GB/s per GPU, ~15 µs per step, no
    /// crossbar. Running TP or SP *across* nodes over this fabric is what
    /// the single-node deployment avoids.
    pub fn efa_internode() -> InterconnectSpec {
        InterconnectSpec {
            link_bw: 50e9,
            bw_efficiency: 0.8,
            step_latency: 15e-6,
            full_crossbar: false,
        }
    }

    /// PCIe Gen5 x16 fallback topology (ring-only, much slower) for
    /// sensitivity studies: 64 GB/s per direction.
    pub fn pcie_gen5() -> InterconnectSpec {
        InterconnectSpec {
            link_bw: 64e9,
            bw_efficiency: 0.8,
            step_latency: 10e-6,
            full_crossbar: false,
        }
    }

    /// Sustainable per-GPU bandwidth: `link_bw * bw_efficiency`.
    pub fn effective_bw(&self) -> f64 {
        self.link_bw * self.bw_efficiency
    }

    /// Validates the spec's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.link_bw <= 0.0 || self.link_bw.is_nan() {
            return Err("link bandwidth must be positive".into());
        }
        if !(self.bw_efficiency > 0.0 && self.bw_efficiency <= 1.0) {
            return Err(format!(
                "bandwidth efficiency must be in (0, 1], got {}",
                self.bw_efficiency
            ));
        }
        if !(self.step_latency >= 0.0 && self.step_latency.is_finite()) {
            return Err("step latency must be finite and non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        InterconnectSpec::nvswitch().validate().unwrap();
        InterconnectSpec::pcie_gen5().validate().unwrap();
        InterconnectSpec::efa_internode().validate().unwrap();
    }

    #[test]
    fn internode_fabric_is_much_slower() {
        let intra = InterconnectSpec::nvswitch();
        let inter = InterconnectSpec::efa_internode();
        assert!(intra.effective_bw() > 10.0 * inter.effective_bw());
        assert!(inter.step_latency > 5.0 * intra.step_latency);
    }

    #[test]
    fn nvswitch_matches_paper_rating() {
        let nv = InterconnectSpec::nvswitch();
        assert_eq!(nv.link_bw, 900e9);
        assert!(nv.full_crossbar);
    }

    #[test]
    fn effective_bw_scales_by_efficiency() {
        let nv = InterconnectSpec::nvswitch();
        assert!((nv.effective_bw() - 675e9).abs() < 1.0);
    }

    #[test]
    fn validate_rejects_bad_efficiency() {
        let mut nv = InterconnectSpec::nvswitch();
        nv.bw_efficiency = 0.0;
        assert!(nv.validate().is_err());
    }
}
