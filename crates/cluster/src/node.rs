//! A multi-GPU node: GPUs plus interconnect.

use crate::gpu::GpuSpec;
use crate::interconnect::InterconnectSpec;

/// A node of `gpu_count` identical GPUs joined by one interconnect.
///
/// # Examples
///
/// ```
/// use sp_cluster::NodeSpec;
///
/// let node = NodeSpec::p5en_48xlarge();
/// assert_eq!(node.gpu_count, 8);
/// assert!(node.total_mem_bytes() > 1_000_000_000_000); // > 1 TB HBM
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Per-GPU capabilities.
    pub gpu: GpuSpec,
    /// Number of GPUs on the node.
    pub gpu_count: usize,
    /// The intra-node interconnect.
    pub interconnect: InterconnectSpec,
}

impl NodeSpec {
    /// The paper's evaluation node: AWS p5en.48xlarge = 8×H200 + NVSwitch.
    pub fn p5en_48xlarge() -> NodeSpec {
        NodeSpec { gpu: GpuSpec::h200(), gpu_count: 8, interconnect: InterconnectSpec::nvswitch() }
    }

    /// A custom node.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or either spec fails validation.
    pub fn new(gpu: GpuSpec, gpu_count: usize, interconnect: InterconnectSpec) -> NodeSpec {
        assert!(gpu_count > 0, "node must have at least one GPU");
        gpu.validate().expect("invalid GPU spec");
        interconnect.validate().expect("invalid interconnect spec");
        NodeSpec { gpu, gpu_count, interconnect }
    }

    /// Total HBM across all GPUs.
    pub fn total_mem_bytes(&self) -> u64 {
        self.gpu.mem_bytes * self.gpu_count as u64
    }

    /// Aggregate sustainable compute across all GPUs, FLOP/s.
    pub fn total_effective_flops(&self) -> f64 {
        self.gpu.effective_flops() * self.gpu_count as f64
    }

    /// Aggregate sustainable HBM bandwidth across all GPUs, bytes/s.
    pub fn total_effective_mem_bw(&self) -> f64 {
        self.gpu.effective_mem_bw() * self.gpu_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_has_eight_h200s() {
        let n = NodeSpec::p5en_48xlarge();
        assert_eq!(n.gpu_count, 8);
        assert_eq!(n.total_mem_bytes(), 8 * 141 * (1u64 << 30));
    }

    #[test]
    fn aggregates_scale_linearly() {
        let n = NodeSpec::p5en_48xlarge();
        assert!((n.total_effective_flops() - 8.0 * n.gpu.effective_flops()).abs() < 1.0);
        assert!((n.total_effective_mem_bw() - 8.0 * n.gpu.effective_mem_bw()).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = NodeSpec::new(GpuSpec::h200(), 0, InterconnectSpec::nvswitch());
    }
}
