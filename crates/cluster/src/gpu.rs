//! Per-GPU compute and memory capabilities.

/// Static capabilities of one GPU.
///
/// All calibration constants for the reproduction live here and in
/// [`crate::interconnect::InterconnectSpec`]; everything else in the
/// simulator derives from model architecture specs.
///
/// # Examples
///
/// ```
/// use sp_cluster::GpuSpec;
///
/// let h200 = GpuSpec::h200();
/// assert_eq!(h200.mem_bytes, 141 * (1u64 << 30));
/// assert!(h200.effective_flops() < h200.dense_flops);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// HBM capacity in bytes.
    pub mem_bytes: u64,
    /// HBM bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Peak dense matmul throughput in FLOP/s at the serving precision
    /// (FP8 with tensor cores for the paper's setup).
    pub dense_flops: f64,
    /// Model FLOPs utilization actually achieved by large GEMMs (0..=1).
    pub mfu: f64,
    /// Fraction of peak HBM bandwidth achieved by memory-bound kernels
    /// (weight streaming, KV-cache reads) (0..=1).
    pub mem_efficiency: f64,
}

impl GpuSpec {
    /// NVIDIA H200 (SXM, FP8): the paper's evaluation GPU.
    ///
    /// 141 GB HBM3e, 4.8 TB/s, 1979 dense FP8 TFLOPS. MFU and bandwidth
    /// efficiency are calibrated so that single-GPU prefill/decode times of
    /// Llama-70B-FP8 land in the ranges Figure 12 reports.
    pub fn h200() -> GpuSpec {
        GpuSpec {
            mem_bytes: 141 * (1u64 << 30),
            mem_bw: 4.8e12,
            dense_flops: 1979e12,
            mfu: 0.55,
            mem_efficiency: 0.75,
        }
    }

    /// NVIDIA H100 (SXM, FP8), for sensitivity studies: 80 GB, 3.35 TB/s,
    /// 1979 FP8 TFLOPS.
    pub fn h100() -> GpuSpec {
        GpuSpec { mem_bytes: 80 * (1u64 << 30), mem_bw: 3.35e12, ..GpuSpec::h200() }
    }

    /// NVIDIA A100 (SXM, FP16 — no FP8 support): 80 GB, 2.0 TB/s,
    /// 312 dense FP16 TFLOPS.
    pub fn a100() -> GpuSpec {
        GpuSpec {
            mem_bytes: 80 * (1u64 << 30),
            mem_bw: 2.0e12,
            dense_flops: 312e12,
            mfu: 0.5,
            mem_efficiency: 0.75,
        }
    }

    /// Sustainable dense-GEMM throughput: `dense_flops * mfu`.
    pub fn effective_flops(&self) -> f64 {
        self.dense_flops * self.mfu
    }

    /// Sustainable HBM bandwidth: `mem_bw * mem_efficiency`.
    pub fn effective_mem_bw(&self) -> f64 {
        self.mem_bw * self.mem_efficiency
    }

    /// Validates the spec's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (non-positive
    /// capability or efficiency outside `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.mem_bytes == 0 {
            return Err("GPU memory capacity must be positive".into());
        }
        if self.mem_bw <= 0.0 || self.mem_bw.is_nan() {
            return Err("GPU memory bandwidth must be positive".into());
        }
        if self.dense_flops <= 0.0 || self.dense_flops.is_nan() {
            return Err("GPU compute throughput must be positive".into());
        }
        if !(self.mfu > 0.0 && self.mfu <= 1.0) {
            return Err(format!("MFU must be in (0, 1], got {}", self.mfu));
        }
        if !(self.mem_efficiency > 0.0 && self.mem_efficiency <= 1.0) {
            return Err(format!(
                "memory efficiency must be in (0, 1], got {}",
                self.mem_efficiency
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for spec in [GpuSpec::h200(), GpuSpec::h100(), GpuSpec::a100()] {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn h200_matches_paper_numbers() {
        let g = GpuSpec::h200();
        assert_eq!(g.mem_bytes, 151_397_597_184); // 141 GiB
        assert_eq!(g.mem_bw, 4.8e12);
        assert_eq!(g.dense_flops, 1979e12);
    }

    #[test]
    fn effective_rates_apply_efficiency() {
        let g = GpuSpec::h200();
        assert!((g.effective_flops() - 1979e12 * 0.55).abs() < 1.0);
        assert!((g.effective_mem_bw() - 4.8e12 * 0.75).abs() < 1.0);
    }

    #[test]
    fn validate_rejects_bad_mfu() {
        let mut g = GpuSpec::h200();
        g.mfu = 1.5;
        assert!(g.validate().is_err());
        g.mfu = 0.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_memory() {
        let mut g = GpuSpec::h200();
        g.mem_bytes = 0;
        assert!(g.validate().unwrap_err().contains("capacity"));
    }
}
