//! Roofline kernel timing: `max(compute time, memory time)`.

use crate::gpu::GpuSpec;
use sp_metrics::Dur;

/// Times a kernel on one GPU with the roofline model.
///
/// A transformer forward pass is a mix of compute-bound GEMMs (prefill) and
/// memory-bound weight/KV streaming (decode). The roofline captures both
/// regimes and, crucially, the *transition* between them as batch size grows
/// — which is exactly what makes TP good at small batches (weight reads are
/// split P ways) and SP good at large batches (no all-reduce).
///
/// # Examples
///
/// ```
/// use sp_cluster::{GpuSpec, Roofline};
///
/// let r = Roofline::new(GpuSpec::h200());
/// // 1 GFLOP touching 1 KB is compute bound:
/// let t = r.kernel(1e9, 1024);
/// assert_eq!(t, r.compute(1e9).max(r.memory(1024)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    gpu: GpuSpec,
}

impl Roofline {
    /// Creates a roofline over `gpu`.
    pub fn new(gpu: GpuSpec) -> Roofline {
        Roofline { gpu }
    }

    /// The underlying GPU spec.
    pub fn gpu(&self) -> GpuSpec {
        self.gpu
    }

    /// Pure compute time for `flops` floating-point operations.
    pub fn compute(&self, flops: f64) -> Dur {
        debug_assert!(flops >= 0.0);
        Dur::from_secs(flops / self.gpu.effective_flops())
    }

    /// Pure memory time for streaming `bytes` through HBM.
    pub fn memory(&self, bytes: u64) -> Dur {
        Dur::from_secs(bytes as f64 / self.gpu.effective_mem_bw())
    }

    /// Roofline time for a kernel doing `flops` work over `bytes` of unique
    /// HBM traffic: whichever resource binds.
    pub fn kernel(&self, flops: f64, bytes: u64) -> Dur {
        self.compute(flops).max(self.memory(bytes))
    }

    /// The arithmetic intensity (FLOP/byte) at which this GPU transitions
    /// from memory- to compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.gpu.effective_flops() / self.gpu.effective_mem_bw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roofline() -> Roofline {
        Roofline::new(GpuSpec::h200())
    }

    #[test]
    fn compute_bound_kernel_ignores_memory() {
        let r = roofline();
        let t = r.kernel(1e15, 1);
        assert_eq!(t, r.compute(1e15));
    }

    #[test]
    fn memory_bound_kernel_ignores_compute() {
        let r = roofline();
        let t = r.kernel(1.0, 100 << 30);
        assert_eq!(t, r.memory(100 << 30));
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let r = roofline();
        let ridge = r.ridge_intensity();
        let bytes = 1u64 << 20;
        // Just below ridge intensity: memory bound.
        let low = r.kernel(0.5 * ridge * bytes as f64, bytes);
        assert_eq!(low, r.memory(bytes));
        // Just above: compute bound.
        let high_flops = 2.0 * ridge * bytes as f64;
        let high = r.kernel(high_flops, bytes);
        assert_eq!(high, r.compute(high_flops));
    }

    #[test]
    fn h200_ridge_is_hundreds_of_flops_per_byte() {
        // 1088 TFLOPS effective / 3.6 TB/s effective ≈ 302 FLOP/byte.
        let ridge = roofline().ridge_intensity();
        assert!((250.0..400.0).contains(&ridge), "ridge {ridge}");
    }

    proptest! {
        #[test]
        fn kernel_at_least_each_component(
            flops in 0.0f64..1e18,
            bytes in 0u64..1u64 << 40,
        ) {
            let r = roofline();
            let t = r.kernel(flops, bytes);
            prop_assert!(t >= r.compute(flops));
            prop_assert!(t >= r.memory(bytes));
        }

        #[test]
        fn kernel_monotone(
            f1 in 0.0f64..1e18, f2 in 0.0f64..1e18,
            b1 in 0u64..1u64 << 40, b2 in 0u64..1u64 << 40,
        ) {
            let r = roofline();
            let (flo, fhi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let (blo, bhi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            prop_assert!(r.kernel(flo, blo) <= r.kernel(fhi, bhi));
        }
    }
}
