//! Analytical hardware model of a multi-GPU inference node.
//!
//! The paper evaluates on AWS `p5en.48xlarge` nodes: 8×H200 GPUs (141 GB
//! HBM3e at 4.8 TB/s, 1979 dense FP8 TFLOPS) connected by NVSwitch at
//! 900 GB/s per GPU. This crate substitutes that hardware with first-order
//! analytical models:
//!
//! * [`gpu::GpuSpec`] — per-GPU compute and memory capabilities.
//! * [`interconnect::InterconnectSpec`] — link bandwidth and base latency.
//! * [`node::NodeSpec`] — a set of identical GPUs plus an interconnect.
//! * [`collective::CollectiveModel`] — α–β cost models for the NCCL
//!   collectives used by the parallelisms (all-reduce, all-to-all,
//!   all-gather, reduce-scatter).
//! * [`roofline`] — kernel timing as `max(compute, memory)` roofline.
//!
//! The substitution is behaviour-preserving for the paper's claims because
//! Table 2 reduces every parallelism's cost to FLOPs, HBM bytes, and
//! collective volumes — exactly the quantities these models time.
//!
//! # Examples
//!
//! ```
//! use sp_cluster::{CollectiveModel, NodeSpec};
//!
//! let node = NodeSpec::p5en_48xlarge();
//! let coll = CollectiveModel::new(node.interconnect);
//! // All-reduce of 1 MiB across all 8 GPUs:
//! let t = coll.all_reduce(1 << 20, node.gpu_count);
//! assert!(t.as_micros() > 0.0);
//! ```

pub mod collective;
pub mod gpu;
pub mod interconnect;
pub mod node;
pub mod roofline;

pub use collective::CollectiveModel;
pub use gpu::GpuSpec;
pub use interconnect::InterconnectSpec;
pub use node::NodeSpec;
pub use roofline::Roofline;
