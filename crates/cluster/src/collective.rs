//! α–β cost models for the collectives used by inference parallelisms.
//!
//! Tensor parallelism pays two **all-reduces** per transformer layer;
//! Ulysses sequence parallelism pays two **all-to-alls** plus a final
//! **all-gather** (Algorithm 1 of the paper). The relative cost of these
//! collectives is the mechanism behind every throughput result in the
//! evaluation, so they are modelled explicitly with the standard
//! bandwidth-optimal algorithms:
//!
//! * ring all-reduce: `2(P-1)/P · V` bytes through each GPU's port,
//!   `2(P-1)` latency steps;
//! * ring all-gather / reduce-scatter: `(P-1)/P · V` bytes, `P-1` steps;
//! * all-to-all: each rank injects `(P-1)/P · V` bytes; on a full crossbar
//!   (NVSwitch) this is a single step, otherwise `P-1` steps.
//!
//! `V` is the *global* payload for all-reduce/all-gather (every rank ends
//! with `V` bytes) and the *per-rank send buffer* for all-to-all.

use crate::interconnect::InterconnectSpec;
use sp_metrics::Dur;

/// The collective operations the parallelisms issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Reduce + broadcast: every rank ends with the reduced payload.
    AllReduce,
    /// Every rank exchanges a distinct shard with every other rank.
    AllToAll,
    /// Every rank ends with the concatenation of all shards.
    AllGather,
    /// Inverse of all-gather: payload is reduced and scattered.
    ReduceScatter,
}

/// Times collectives over a given interconnect.
///
/// # Examples
///
/// ```
/// use sp_cluster::{CollectiveModel, InterconnectSpec};
///
/// let m = CollectiveModel::new(InterconnectSpec::nvswitch());
/// // Communication among 1 rank is free:
/// assert!(m.all_reduce(1 << 30, 1).is_zero());
/// // More ranks move more data for the same payload:
/// assert!(m.all_reduce(1 << 20, 8) > m.all_reduce(1 << 20, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveModel {
    interconnect: InterconnectSpec,
}

impl CollectiveModel {
    /// Creates a model over `interconnect`.
    pub fn new(interconnect: InterconnectSpec) -> CollectiveModel {
        CollectiveModel { interconnect }
    }

    /// The underlying interconnect.
    pub fn interconnect(&self) -> InterconnectSpec {
        self.interconnect
    }

    /// Time for a ring all-reduce of a `bytes`-byte payload across `ranks`.
    pub fn all_reduce(&self, bytes: u64, ranks: usize) -> Dur {
        if ranks <= 1 || bytes == 0 {
            return Dur::ZERO;
        }
        let p = ranks as f64;
        let vol = 2.0 * (p - 1.0) / p * bytes as f64;
        let steps = 2.0 * (p - 1.0);
        self.alpha_beta(vol, steps)
    }

    /// Time for a latency-optimized tree all-reduce (reduce + broadcast
    /// over a binary tree): `2·log2(P)` latency steps but `2·V` bytes
    /// through the bottleneck link. NCCL picks tree for small payloads;
    /// compare with the bandwidth-optimal ring of
    /// [`CollectiveModel::all_reduce`].
    pub fn all_reduce_tree(&self, bytes: u64, ranks: usize) -> Dur {
        if ranks <= 1 || bytes == 0 {
            return Dur::ZERO;
        }
        let steps = 2.0 * (ranks as f64).log2().ceil();
        self.alpha_beta(2.0 * bytes as f64, steps)
    }

    /// The better of ring and tree all-reduce for this payload — what an
    /// algorithm-selecting runtime (NCCL) would achieve.
    pub fn all_reduce_best(&self, bytes: u64, ranks: usize) -> Dur {
        self.all_reduce(bytes, ranks).min(self.all_reduce_tree(bytes, ranks))
    }

    /// Time for an all-to-all where each rank sends a `send_bytes`-byte
    /// buffer, evenly sharded to the other ranks.
    pub fn all_to_all(&self, send_bytes: u64, ranks: usize) -> Dur {
        if ranks <= 1 || send_bytes == 0 {
            return Dur::ZERO;
        }
        let p = ranks as f64;
        let vol = (p - 1.0) / p * send_bytes as f64;
        let steps = if self.interconnect.full_crossbar { 1.0 } else { p - 1.0 };
        self.alpha_beta(vol, steps)
    }

    /// Time for a ring all-gather producing a `bytes`-byte result on every
    /// rank.
    pub fn all_gather(&self, bytes: u64, ranks: usize) -> Dur {
        if ranks <= 1 || bytes == 0 {
            return Dur::ZERO;
        }
        let p = ranks as f64;
        let vol = (p - 1.0) / p * bytes as f64;
        self.alpha_beta(vol, p - 1.0)
    }

    /// Time for a ring reduce-scatter of a `bytes`-byte payload.
    pub fn reduce_scatter(&self, bytes: u64, ranks: usize) -> Dur {
        // Same volume and steps as all-gather on a ring.
        self.all_gather(bytes, ranks)
    }

    /// Dispatches on [`CollectiveKind`].
    pub fn time(&self, kind: CollectiveKind, bytes: u64, ranks: usize) -> Dur {
        match kind {
            CollectiveKind::AllReduce => self.all_reduce(bytes, ranks),
            CollectiveKind::AllToAll => self.all_to_all(bytes, ranks),
            CollectiveKind::AllGather => self.all_gather(bytes, ranks),
            CollectiveKind::ReduceScatter => self.reduce_scatter(bytes, ranks),
        }
    }

    fn alpha_beta(&self, volume_bytes: f64, steps: f64) -> Dur {
        let bw = self.interconnect.effective_bw();
        Dur::from_secs(steps * self.interconnect.step_latency + volume_bytes / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CollectiveModel {
        CollectiveModel::new(InterconnectSpec::nvswitch())
    }

    #[test]
    fn single_rank_is_free() {
        let m = model();
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllToAll,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
        ] {
            assert!(m.time(kind, 1 << 30, 1).is_zero(), "{kind:?} not free at 1 rank");
        }
    }

    #[test]
    fn zero_bytes_is_free() {
        let m = model();
        assert!(m.all_reduce(0, 8).is_zero());
        assert!(m.all_to_all(0, 8).is_zero());
    }

    #[test]
    fn all_reduce_costs_twice_all_gather_volume() {
        // For the same payload and rank count, ring all-reduce moves 2x the
        // bytes of all-gather; with latency subtracted the ratio is exactly 2.
        let m = model();
        let ranks = 8;
        let bytes = 1u64 << 30;
        let alpha = InterconnectSpec::nvswitch().step_latency;
        let ar = m.all_reduce(bytes, ranks).as_secs() - 2.0 * 7.0 * alpha;
        let ag = m.all_gather(bytes, ranks).as_secs() - 7.0 * alpha;
        assert!((ar / ag - 2.0).abs() < 1e-9);
    }

    #[test]
    fn crossbar_all_to_all_has_one_latency_step() {
        let nv = model();
        let mut pcie_spec = InterconnectSpec::pcie_gen5();
        // Same β so only the step count differs.
        pcie_spec.link_bw = InterconnectSpec::nvswitch().link_bw;
        pcie_spec.bw_efficiency = InterconnectSpec::nvswitch().bw_efficiency;
        pcie_spec.step_latency = InterconnectSpec::nvswitch().step_latency;
        let ring = CollectiveModel::new(pcie_spec);
        let diff = ring.all_to_all(1024, 8).as_secs() - nv.all_to_all(1024, 8).as_secs();
        let expected = 6.0 * pcie_spec.step_latency; // (P-1) - 1 extra steps
        assert!((diff - expected).abs() < 1e-12);
    }

    #[test]
    fn tree_wins_small_payloads_ring_wins_large() {
        let m = model();
        // 16 KB across 8 ranks: tree's 6 latency steps beat ring's 14.
        assert!(m.all_reduce_tree(16 << 10, 8) < m.all_reduce(16 << 10, 8));
        // 256 MB: ring's 2(P-1)/P volume factor beats tree's 2x.
        assert!(m.all_reduce(256 << 20, 8) < m.all_reduce_tree(256 << 20, 8));
        // best() equals the winner on both ends.
        assert_eq!(m.all_reduce_best(16 << 10, 8), m.all_reduce_tree(16 << 10, 8));
        assert_eq!(m.all_reduce_best(256 << 20, 8), m.all_reduce(256 << 20, 8));
    }

    #[test]
    fn table2_tp_vs_sp_asymmetry() {
        // Table 2: TP communicates c(n,w) while SP communicates c(n,w)/SP.
        // Model this with a fixed global activation payload: TP all-reduces
        // the whole payload, SP all-to-alls a 1/SP slice per rank. The SP
        // collective must be substantially cheaper.
        let m = model();
        let payload = 64u64 << 20; // 64 MiB of activations
        let p = 8;
        let tp_cost = m.all_reduce(payload, p);
        let sp_cost = m.all_to_all(payload / p as u64, p);
        assert!(
            tp_cost.as_secs() > 8.0 * sp_cost.as_secs(),
            "TP all-reduce ({tp_cost}) should dwarf SP all-to-all ({sp_cost})"
        );
    }

    proptest! {
        #[test]
        fn costs_monotone_in_bytes(
            a in 1u64..1_000_000_000u64,
            b in 1u64..1_000_000_000u64,
            ranks in 2usize..16,
        ) {
            let m = model();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::AllToAll,
                CollectiveKind::AllGather,
                CollectiveKind::ReduceScatter,
            ] {
                prop_assert!(m.time(kind, lo, ranks) <= m.time(kind, hi, ranks));
            }
        }

        #[test]
        fn all_reduce_monotone_in_ranks(
            bytes in 1u64..1_000_000_000u64,
            r1 in 2usize..16,
            r2 in 2usize..16,
        ) {
            let m = model();
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(m.all_reduce(bytes, lo) <= m.all_reduce(bytes, hi));
        }

        #[test]
        fn costs_are_finite_and_nonnegative(
            bytes in 0u64..u64::MAX / 4,
            ranks in 1usize..64,
        ) {
            let m = model();
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::AllToAll,
                CollectiveKind::AllGather,
                CollectiveKind::ReduceScatter,
            ] {
                let t = m.time(kind, bytes, ranks).as_secs();
                prop_assert!(t.is_finite() && t >= 0.0);
            }
        }
    }
}
