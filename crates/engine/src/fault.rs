//! Deterministic fault injection for the cluster simulations.
//!
//! A [`FaultPlan`] is a seeded, time-ordered schedule of failures —
//! replica crashes, transient slowdown windows, and routing timeouts —
//! injected into [`crate::routing::ClusterSim`] and
//! [`crate::routing::ReferenceClusterSim`] through their shared fleet
//! core. Faults fire as ordinary timers in the global event order, so the
//! heap-calendar and reference loops stay byte-identical under the same
//! plan.
//!
//! The recovery model follows production inference fleets: a crash
//! destroys the replica's KV cache, so every salvaged request re-enters
//! the router with `cached_prefix` cleared and pays full re-prefill.
//! Re-dispatch is governed by a [`RetryPolicy`] — per-request attempt
//! counting, exponential backoff, and a terminal `Failed` outcome in the
//! report once the budget is exhausted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_metrics::{Dur, SimTime};
use sp_workload::Request;

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The replica in `replica`'s slot dies instantly: its KV cache and
    /// in-flight work are lost, the slot retires without draining, and
    /// salvaged requests re-enter the router under the retry policy.
    /// Crashing an empty slot is a no-op.
    Crash {
        /// Slot index to kill.
        replica: usize,
    },
    /// The replica runs `factor`× slower for `duration` (e.g. thermal
    /// throttling or a noisy neighbor), then recovers. Applies to
    /// whichever tenant occupies the slot during the window.
    Slowdown {
        /// Slot index to slow.
        replica: usize,
        /// Duration multiplier on every iteration (> 1.0 slows down).
        factor: f64,
        /// Window length.
        duration: Dur,
    },
    /// The next dispatch attempt times out: the request is not routed and
    /// re-enters under the retry policy (consuming one attempt).
    RouteTimeout,
}

/// A scheduled fault: `fault` fires at instant `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: SimTime,
    /// What fails.
    pub fault: Fault,
}

/// A deterministic, time-ordered fault schedule.
///
/// # Examples
///
/// ```
/// use sp_engine::{Fault, FaultEvent, FaultPlan};
/// use sp_metrics::SimTime;
///
/// let plan = FaultPlan::new(vec![FaultEvent {
///     at: SimTime::from_secs(30.0),
///     fault: Fault::Crash { replica: 1 },
/// }]);
/// assert_eq!(plan.events().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates a plan from `events`, stably sorted by injection time (so
    /// same-instant faults keep their authored order).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by(|a, b| a.at.as_secs().total_cmp(&b.at.as_secs()));
        FaultPlan { events }
    }

    /// The empty plan — injecting it is byte-identical to no injection.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Seeded Poisson crash schedule: exponential inter-crash gaps with
    /// mean `mttf`, each killing a uniformly chosen slot in
    /// `0..replicas`, until `horizon`. The workhorse of the MTTF-sweep
    /// chaos bench.
    ///
    /// # Panics
    ///
    /// Panics if `mttf` is zero or `replicas` is zero.
    pub fn crashes_poisson(seed: u64, mttf: Dur, horizon: Dur, replicas: usize) -> FaultPlan {
        assert!(mttf.as_secs() > 0.0, "MTTF must be positive");
        assert!(replicas > 0, "need at least one replica to crash");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -mttf.as_secs() * (1.0 - u).ln();
            if t >= horizon.as_secs() {
                break;
            }
            let replica = rng.gen_range(0..replicas);
            events.push(FaultEvent { at: SimTime::from_secs(t), fault: Fault::Crash { replica } });
        }
        FaultPlan::new(events)
    }
}

/// Retry/backoff semantics for fault-displaced requests.
///
/// A request that loses its replica (crash) or its dispatch (route
/// timeout) consumes one attempt and waits `backoff_for(attempt)` before
/// re-admission. When attempts exceed `max_retries` the request is
/// abandoned: a terminal `Failed` outcome with `attempts == max_retries`
/// lands in the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-dispatch attempts granted per request (0 = fail immediately on
    /// first fault).
    pub max_retries: u32,
    /// Backoff before the first re-dispatch; doubles per attempt.
    pub base_backoff: Dur,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 3, base_backoff: Dur::from_secs(1.0) }
    }
}

impl RetryPolicy {
    /// Exponential backoff before re-admitting attempt `attempt`
    /// (1-based): `base × 2^(attempt-1)`.
    pub fn backoff_for(&self, attempt: u32) -> Dur {
        self.base_backoff * f64::powi(2.0, attempt.saturating_sub(1).min(30) as i32)
    }
}

/// What a crash rips out of an engine: every unfinished request (queued
/// or running) plus the prompt tokens whose prefill work died with the
/// replica's KV cache.
#[derive(Debug, Clone, Default)]
pub struct SalvagedWork {
    /// Unfinished requests, to re-enter the router under retry.
    pub requests: Vec<Request>,
    /// Prompt tokens already prefilled and now lost.
    pub wasted_prefill_tokens: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_time_stably() {
        let plan = FaultPlan::new(vec![
            FaultEvent { at: SimTime::from_secs(5.0), fault: Fault::Crash { replica: 1 } },
            FaultEvent { at: SimTime::from_secs(1.0), fault: Fault::RouteTimeout },
            FaultEvent { at: SimTime::from_secs(5.0), fault: Fault::Crash { replica: 0 } },
        ]);
        let at: Vec<f64> = plan.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(at, vec![1.0, 5.0, 5.0]);
        // Same-instant events keep authored order.
        assert_eq!(plan.events()[1].fault, Fault::Crash { replica: 1 });
        assert_eq!(plan.events()[2].fault, Fault::Crash { replica: 0 });
    }

    #[test]
    fn poisson_plan_is_seed_deterministic_and_bounded() {
        let a = FaultPlan::crashes_poisson(42, Dur::from_secs(30.0), Dur::from_secs(300.0), 4);
        let b = FaultPlan::crashes_poisson(42, Dur::from_secs(30.0), Dur::from_secs(300.0), 4);
        assert_eq!(a, b);
        let c = FaultPlan::crashes_poisson(43, Dur::from_secs(30.0), Dur::from_secs(300.0), 4);
        assert_ne!(a, c);
        for e in a.events() {
            assert!(e.at.as_secs() < 300.0);
            match e.fault {
                Fault::Crash { replica } => assert!(replica < 4),
                other => panic!("poisson plan emits only crashes, got {other:?}"),
            }
        }
        // MTTF 30 s over 300 s: ~10 expected crashes; the seeded draw
        // must land in a sane band (this is deterministic, not flaky).
        assert!(!a.is_empty());
        assert!(a.events().len() < 40);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy { max_retries: 5, base_backoff: Dur::from_secs(0.5) };
        assert_eq!(p.backoff_for(1).as_secs(), 0.5);
        assert_eq!(p.backoff_for(2).as_secs(), 1.0);
        assert_eq!(p.backoff_for(3).as_secs(), 2.0);
        // Attempt 0 (degenerate) clamps to the base.
        assert_eq!(p.backoff_for(0).as_secs(), 0.5);
    }
}
