//! Data-parallel clusters: independent replicas behind a router.
//!
//! The paper's throughput-optimized baseline deploys vLLM with DP: each
//! GPU runs its own engine and a router spreads requests across them. The
//! replicas share nothing (that independence is DP's advantage — zero
//! communication — and its weakness — no intra-request speedup).

use crate::engine::Engine;
use crate::report::EngineReport;
use crate::routing::{ClusterSim, RoutingPolicy, RunAdvance, SimNode};
use sp_metrics::{Dur, NodeLoad, SimTime};
use sp_workload::{Request, Trace};

/// N independent engines behind a balance-by-expected-work router.
///
/// Routing is greedy: each request (in arrival order) goes to the replica
/// with the least total tokens assigned so far — a deterministic
/// approximation of join-shortest-queue that equalizes replica work for
/// both steady and bursty traffic.
///
/// # Examples
///
/// ```
/// use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
/// use sp_engine::{DataParallelCluster, Engine, EngineConfig};
/// use sp_model::presets;
/// use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
/// use sp_workload::synthetic;
///
/// let gpu_node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
/// let mut dp = DataParallelCluster::new(8, |_| {
///     let exec = ExecutionModel::new(gpu_node, presets::qwen_32b());
///     Engine::new(
///         exec,
///         Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
///         EngineConfig::default(),
///     )
/// });
/// let report = dp.run(&synthetic::uniform_batch(16, 512, 4));
/// assert_eq!(report.records().len(), 16);
/// ```
#[derive(Debug)]
pub struct DataParallelCluster {
    replicas: Vec<Engine>,
}

impl DataParallelCluster {
    /// Creates `replica_count` engines via `make_engine(replica_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `replica_count` is zero.
    pub fn new(
        replica_count: usize,
        make_engine: impl FnMut(usize) -> Engine,
    ) -> DataParallelCluster {
        assert!(replica_count > 0, "cluster needs at least one replica");
        DataParallelCluster { replicas: (0..replica_count).map(make_engine).collect() }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Splits `trace` across replicas with the greedy router.
    pub fn route(&self, trace: &Trace) -> Vec<Trace> {
        let n = self.replicas.len();
        let mut assigned: Vec<Vec<Request>> = vec![Vec::new(); n];
        let mut load = vec![0u64; n];
        for r in trace.requests() {
            let target = (0..n).min_by_key(|&i| load[i]).expect("non-empty cluster");
            load[target] += r.total_tokens();
            assigned[target].push(*r);
        }
        assigned.into_iter().map(Trace::with_ids).collect()
    }

    /// Runs `trace` across the cluster and merges per-replica reports.
    ///
    /// This is the offline path: the trace is split up front by
    /// [`DataParallelCluster::route`] and each replica runs its shard in
    /// isolation. Use [`DataParallelCluster::run_online`] for arrival-time
    /// dispatch against live load.
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        let shards = self.route(trace);
        let bin = self.throughput_bin();
        let mut merged = EngineReport::new(bin);
        for (engine, shard) in self.replicas.iter_mut().zip(shards) {
            merged.merge(engine.run(&shard));
        }
        merged
    }

    /// Runs `trace` with online routing: replicas advance together in
    /// simulated time and each request is dispatched at its arrival
    /// instant to the replica `policy` picks from live outstanding load.
    /// The merged report carries the decision trail
    /// ([`EngineReport::routing_decisions`]) and per-replica load series.
    pub fn run_online(&mut self, trace: &Trace, policy: Box<dyn RoutingPolicy>) -> EngineReport {
        let bin = self.throughput_bin();
        let replicas = std::mem::take(&mut self.replicas);
        let mut sim = ClusterSim::new(replicas, policy).throughput_bin(bin);
        let report = sim.run(trace);
        self.replicas = sim.into_nodes();
        report
    }

    fn throughput_bin(&self) -> Dur {
        self.replicas.first().map_or(Dur::from_secs(1.0), |e| e.config().throughput_bin)
    }
}

/// A whole DP cluster can itself be a node in a larger co-simulation
/// (e.g. one fleet deployment = one cluster): requests entering the
/// cluster are join-shortest-outstanding routed across its replicas, and
/// the cluster's next event is its earliest replica event.
impl SimNode for DataParallelCluster {
    fn push_request(&mut self, req: Request) {
        let target = (0..self.replicas.len())
            .min_by_key(|&i| self.replicas[i].outstanding_tokens())
            .expect("non-empty cluster");
        self.replicas[target].push_request(req);
    }

    fn step_once(&mut self) {
        let earliest = self
            .replicas
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.next_event_time().map(|t| (i, t)))
            .min_by(|a, b| a.1.as_secs().total_cmp(&b.1.as_secs()))
            .map(|(i, _)| i);
        if let Some(i) = earliest {
            self.replicas[i].step_once();
        }
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.replicas
            .iter()
            .filter_map(Engine::next_event_time)
            .min_by(|a, b| a.as_secs().total_cmp(&b.as_secs()))
    }

    fn outstanding_tokens(&self) -> u64 {
        self.replicas.iter().map(Engine::outstanding_tokens).sum()
    }

    fn load(&self) -> NodeLoad {
        // Capacity-style signals add across replicas; the prefill rate
        // adds because replicas prefill concurrently. `min_kv_free_tokens`
        // is the bottleneck replica's headroom (see `NodeLoad`'s
        // aggregate-semantics docs).
        let seed = NodeLoad { min_kv_free_tokens: u64::MAX, ..NodeLoad::default() };
        self.replicas.iter().map(Engine::load).fold(seed, |acc, l| NodeLoad {
            outstanding_tokens: acc.outstanding_tokens + l.outstanding_tokens,
            queued_prefill_tokens: acc.queued_prefill_tokens + l.queued_prefill_tokens,
            kv_free_tokens: acc.kv_free_tokens + l.kv_free_tokens,
            min_kv_free_tokens: acc.min_kv_free_tokens.min(l.min_kv_free_tokens),
            prefill_tokens_per_sec: acc.prefill_tokens_per_sec + l.prefill_tokens_per_sec,
        })
    }

    fn take_report(&mut self) -> EngineReport {
        let bin = self.throughput_bin();
        let mut merged = EngineReport::new(bin);
        for engine in &mut self.replicas {
            merged.merge(engine.take_report());
        }
        merged
    }

    fn take_unfinished(&mut self) -> crate::fault::SalvagedWork {
        let mut salvaged = crate::fault::SalvagedWork::default();
        for engine in &mut self.replicas {
            let part = engine.take_unfinished();
            salvaged.wasted_prefill_tokens += part.wasted_prefill_tokens;
            salvaged.requests.extend(part.requests);
        }
        salvaged
    }

    fn set_slowdown(&mut self, factor: f64) {
        for engine in &mut self.replicas {
            engine.set_slowdown(factor);
        }
    }

    fn step_run(&mut self, cap: Option<f64>) -> Option<RunAdvance> {
        let earliest = self
            .replicas
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.next_event_time().map(|t| (i, t)))
            .min_by(|a, b| a.1.as_secs().total_cmp(&b.1.as_secs()))
            .map(|(i, _)| i);
        let i = earliest?;
        // Tighten the cap to the earliest event of any *other* replica:
        // replica `i` stays the cluster's chosen node only strictly
        // below that instant. Equality (a tie) stops the run at zero
        // events, and the per-event chooser above then resolves it with
        // its own exact semantics. NaN keys sort last in the per-event
        // `total_cmp` order, so they never tighten the cap.
        let mut bound = cap.unwrap_or(f64::INFINITY);
        for (j, e) in self.replicas.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(t) = e.next_event_time() {
                let ts = t.as_secs();
                if !ts.is_nan() {
                    bound = bound.min(ts);
                }
            }
        }
        self.replicas[i].step_run(Some(bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
    use sp_model::presets;
    use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
    use sp_workload::synthetic;

    fn make_cluster(replicas: usize) -> DataParallelCluster {
        let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
        DataParallelCluster::new(replicas, |_| {
            Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                EngineConfig::default(),
            )
        })
    }

    #[test]
    fn router_balances_uniform_load() {
        let cluster = make_cluster(4);
        let shards = cluster.route(&synthetic::uniform_batch(100, 1000, 100));
        for shard in &shards {
            assert_eq!(shard.len(), 25);
        }
    }

    #[test]
    fn router_balances_skewed_sizes() {
        let cluster = make_cluster(2);
        // Alternating huge and tiny requests.
        let mut reqs = Vec::new();
        for i in 0..40u64 {
            let big = i % 2 == 0;
            reqs.push(sp_workload::Request {
                id: i,
                arrival: sp_metrics::SimTime::from_secs(i as f64 * 0.01),
                input_tokens: if big { 8000 } else { 100 },
                output_tokens: 10,
                class: sp_workload::RequestClass::Batch,
                cached_prefix: 0,
                prefix_group: None,
            });
        }
        let shards = cluster.route(&Trace::new(reqs));
        let work: Vec<u64> = shards.iter().map(Trace::total_tokens).collect();
        let imbalance = *work.iter().max().unwrap() as f64 / *work.iter().min().unwrap() as f64;
        assert!(imbalance < 1.2, "router imbalance {imbalance}");
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let mut cluster = make_cluster(8);
        let trace = synthetic::poisson(64, 50.0, 512, 8, 5);
        let report = cluster.run(&trace);
        assert_eq!(report.records().len(), 64);
        let mut ids: Vec<u64> = report.records().iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn dp_throughput_scales_with_replicas() {
        let trace = synthetic::uniform_batch(64, 2048, 16);
        let one = make_cluster(1).run(&trace);
        let eight = make_cluster(8).run(&trace);
        let speedup = one.makespan().as_secs() / eight.makespan().as_secs();
        assert!(speedup > 4.0, "8-replica speedup only {speedup:.2}x");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = make_cluster(0);
    }

    fn make_tight_cluster(replicas: usize, kv: u64) -> DataParallelCluster {
        let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
        DataParallelCluster::new(replicas, |_| {
            Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                EngineConfig { kv_capacity_tokens: kv, ..EngineConfig::default() },
            )
        })
    }

    /// A bursty Poisson trace with a handful of long-decode "agentic"
    /// requests up front. The long decodes pin KV blocks on whichever
    /// replica admits them for minutes of simulated time — an asymmetry
    /// the offline token-count split cannot see, so it keeps sending half
    /// of every burst into the congested replica's admission queue.
    fn bursty_trace_with_long_decodes(seed: u64) -> Trace {
        let mut reqs: Vec<Request> = sp_workload::bursty::BurstyConfig {
            duration: sp_metrics::Dur::from_secs(300.0),
            base_rate: 1.0,
            bursts: 4,
            burst_size: 12,
            burst_window: sp_metrics::Dur::from_secs(10.0),
            seed,
            ..sp_workload::bursty::BurstyConfig::default()
        }
        .generate()
        .requests()
        .to_vec();
        // The lognormal sampler occasionally emits a request larger than
        // the tight KV cap used in these tests; such a request could never
        // admit, so drop it to keep every request completable.
        reqs.retain(|r| r.total_tokens() <= 15_000);
        for (k, at) in [5.0, 9.0, 13.0, 17.0, 21.0].iter().enumerate() {
            reqs.push(Request {
                id: 10_000 + k as u64,
                arrival: sp_metrics::SimTime::from_secs(*at),
                input_tokens: 500,
                output_tokens: 6_000,
                class: sp_workload::RequestClass::Batch,
                cached_prefix: 0,
                prefix_group: None,
            });
        }
        Trace::new(reqs)
    }

    fn p99_ttft(report: &mut EngineReport) -> f64 {
        report.metrics_mut().ttft().quantile(0.99).expect("non-empty")
    }

    #[test]
    fn online_jsq_beats_offline_static_split_on_bursty_p99_ttft() {
        // The tentpole claim: with KV-constrained replicas, requests that
        // cannot admit wait in queue — exactly the load signal
        // join-shortest-outstanding reacts to. The offline split keeps
        // feeding the replica whose cache the long decodes pinned, so its
        // admission queue (and the TTFT tail) grows; online routing
        // diverts bursts to the replica that is actually draining.
        let trace = bursty_trace_with_long_decodes(0xB5_257);
        let mut offline_report = make_tight_cluster(2, 20_000).run(&trace);
        let mut online_report = make_tight_cluster(2, 20_000)
            .run_online(&trace, crate::routing::RoutingKind::JoinShortestOutstanding.policy());

        assert_eq!(online_report.records().len(), trace.len());
        assert_eq!(offline_report.records().len(), trace.len());
        let offline = p99_ttft(&mut offline_report);
        let online = p99_ttft(&mut online_report);
        assert!(
            online < offline,
            "online JSQ p99 TTFT {online:.3}s must beat offline split {offline:.3}s"
        );
        // The decision trail shows the diversion: not a 50/50 split.
        let to_first = online_report.routing_decisions().iter().filter(|d| d.replica == 0).count();
        let total = online_report.routing_decisions().len();
        assert!(to_first != total / 2 || total % 2 == 1, "expected a load-skewed split");
    }

    #[test]
    fn online_run_merges_exactly_the_per_replica_work() {
        // Merge correctness: run the same decisions through ClusterSim and
        // compare the merged report against independently-run replicas fed
        // the per-decision shards.
        let trace = synthetic::poisson(48, 30.0, 640, 12, 21);
        let mut cluster = make_cluster(3);
        let report = cluster
            .run_online(&trace, crate::routing::RoutingKind::JoinShortestOutstanding.policy());

        // Every request completed exactly once, with its original id.
        let mut ids: Vec<u64> = report.records().iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        let mut expected: Vec<u64> = trace.requests().iter().map(|r| r.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected, "merged ids must match the trace without collisions");

        // Rebuild the per-replica shards from the decision trail and run
        // them on fresh engines: merged totals must equal the sums.
        let decisions = report.routing_decisions().to_vec();
        assert_eq!(decisions.len(), trace.len());
        let mut shards: Vec<Vec<Request>> = vec![Vec::new(); 3];
        for d in &decisions {
            let req = trace.requests().iter().find(|r| r.id == d.request_id).unwrap();
            shards[d.replica].push(*req);
        }
        let mut replica_token_sum = 0u64;
        let mut replica_iter_sum = 0u64;
        for shard in shards {
            let fresh = make_cluster(1).replicas.pop().unwrap().run(&Trace::with_ids(shard));
            replica_token_sum += fresh.metrics().total_tokens();
            replica_iter_sum += fresh.iterations();
        }
        assert_eq!(report.metrics().total_tokens(), replica_token_sum);
        assert_eq!(report.iterations(), replica_iter_sum);
        assert_eq!(report.metrics().total_tokens(), trace.total_tokens());
    }

    #[test]
    fn online_static_split_matches_offline_run() {
        // StaticSplit replayed online must produce the same assignment as
        // the offline router — and, since replicas are independent, the
        // same per-request timings.
        let trace = synthetic::poisson(32, 15.0, 1024, 16, 4);
        let mut offline = make_cluster(2).run(&trace);
        let mut online =
            make_cluster(2).run_online(&trace, crate::routing::RoutingKind::StaticSplit.policy());
        assert_eq!(online.records().len(), offline.records().len());
        let key = |r: &mut EngineReport| {
            let mut v: Vec<(u64, u64)> = r
                .records()
                .iter()
                .map(|rec| (rec.request_id, (rec.finish.as_secs() * 1e9) as u64))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&mut online), key(&mut offline));
    }
}
