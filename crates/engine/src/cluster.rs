//! Data-parallel clusters: independent replicas behind a router.
//!
//! The paper's throughput-optimized baseline deploys vLLM with DP: each
//! GPU runs its own engine and a router spreads requests across them. The
//! replicas share nothing (that independence is DP's advantage — zero
//! communication — and its weakness — no intra-request speedup).

use crate::engine::Engine;
use crate::report::EngineReport;
use sp_metrics::Dur;
use sp_workload::{Request, Trace};

/// N independent engines behind a balance-by-expected-work router.
///
/// Routing is greedy: each request (in arrival order) goes to the replica
/// with the least total tokens assigned so far — a deterministic
/// approximation of join-shortest-queue that equalizes replica work for
/// both steady and bursty traffic.
///
/// # Examples
///
/// ```
/// use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
/// use sp_engine::{DataParallelCluster, Engine, EngineConfig};
/// use sp_model::presets;
/// use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
/// use sp_workload::synthetic;
///
/// let gpu_node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
/// let mut dp = DataParallelCluster::new(8, |_| {
///     let exec = ExecutionModel::new(gpu_node, presets::qwen_32b());
///     Engine::new(
///         exec,
///         Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
///         EngineConfig::default(),
///     )
/// });
/// let report = dp.run(&synthetic::uniform_batch(16, 512, 4));
/// assert_eq!(report.records().len(), 16);
/// ```
#[derive(Debug)]
pub struct DataParallelCluster {
    replicas: Vec<Engine>,
}

impl DataParallelCluster {
    /// Creates `replica_count` engines via `make_engine(replica_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `replica_count` is zero.
    pub fn new(replica_count: usize, make_engine: impl FnMut(usize) -> Engine) -> DataParallelCluster {
        assert!(replica_count > 0, "cluster needs at least one replica");
        DataParallelCluster { replicas: (0..replica_count).map(make_engine).collect() }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Splits `trace` across replicas with the greedy router.
    pub fn route(&self, trace: &Trace) -> Vec<Trace> {
        let n = self.replicas.len();
        let mut assigned: Vec<Vec<Request>> = vec![Vec::new(); n];
        let mut load = vec![0u64; n];
        for r in trace.requests() {
            let target = (0..n).min_by_key(|&i| load[i]).expect("non-empty cluster");
            load[target] += r.total_tokens();
            assigned[target].push(*r);
        }
        assigned.into_iter().map(Trace::with_ids).collect()
    }

    /// Runs `trace` across the cluster and merges per-replica reports.
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        let shards = self.route(trace);
        let bin = self
            .replicas
            .first()
            .map_or(Dur::from_secs(1.0), |e| e.config().throughput_bin);
        let mut merged = EngineReport::new(bin);
        for (engine, shard) in self.replicas.iter_mut().zip(shards) {
            merged.merge(engine.run(&shard));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
    use sp_model::presets;
    use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
    use sp_workload::synthetic;

    fn make_cluster(replicas: usize) -> DataParallelCluster {
        let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
        DataParallelCluster::new(replicas, |_| {
            Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                EngineConfig::default(),
            )
        })
    }

    #[test]
    fn router_balances_uniform_load() {
        let cluster = make_cluster(4);
        let shards = cluster.route(&synthetic::uniform_batch(100, 1000, 100));
        for shard in &shards {
            assert_eq!(shard.len(), 25);
        }
    }

    #[test]
    fn router_balances_skewed_sizes() {
        let cluster = make_cluster(2);
        // Alternating huge and tiny requests.
        let mut reqs = Vec::new();
        for i in 0..40u64 {
            let big = i % 2 == 0;
            reqs.push(sp_workload::Request {
                id: i,
                arrival: sp_metrics::SimTime::from_secs(i as f64 * 0.01),
                input_tokens: if big { 8000 } else { 100 },
                output_tokens: 10,
                class: sp_workload::RequestClass::Batch,
                cached_prefix: 0,
                prefix_group: None
            });
        }
        let shards = cluster.route(&Trace::new(reqs));
        let work: Vec<u64> = shards.iter().map(Trace::total_tokens).collect();
        let imbalance = *work.iter().max().unwrap() as f64 / *work.iter().min().unwrap() as f64;
        assert!(imbalance < 1.2, "router imbalance {imbalance}");
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let mut cluster = make_cluster(8);
        let trace = synthetic::poisson(64, 50.0, 512, 8, 5);
        let report = cluster.run(&trace);
        assert_eq!(report.records().len(), 64);
        let mut ids: Vec<u64> = report.records().iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn dp_throughput_scales_with_replicas() {
        let trace = synthetic::uniform_batch(64, 2048, 16);
        let one = make_cluster(1).run(&trace);
        let eight = make_cluster(8).run(&trace);
        let speedup = one.makespan().as_secs() / eight.makespan().as_secs();
        assert!(speedup > 4.0, "8-replica speedup only {speedup:.2}x");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = make_cluster(0);
    }
}
