//! Internal per-sequence state.

use sp_metrics::SimTime;
use sp_workload::Request;

/// A request admitted into the running batch.
#[derive(Debug, Clone)]
pub(crate) struct RunningSeq {
    pub request: Request,
    /// Prompt tokens already prefetched into the KV cache.
    pub prefill_done: u64,
    /// Output tokens generated so far.
    pub generated: u32,
    /// When the first output token was emitted (end of final prefill
    /// chunk's iteration), if reached.
    pub first_token: Option<SimTime>,
    /// Fractional speculative-decoding acceptance carried between steps.
    pub spec_carry: f64,
}

impl RunningSeq {
    pub fn new(request: Request) -> RunningSeq {
        RunningSeq { request, prefill_done: 0, generated: 0, first_token: None, spec_carry: 0.0 }
    }

    /// Prompt tokens still to prefill.
    pub fn prefill_remaining(&self) -> u64 {
        u64::from(self.request.input_tokens) - self.prefill_done
    }

    /// True once the whole prompt is in the KV cache.
    pub fn in_decode(&self) -> bool {
        self.prefill_remaining() == 0
    }

    /// Current context length (prompt prefix + generated tokens).
    pub fn context_len(&self) -> u64 {
        self.prefill_done + u64::from(self.generated)
    }

    /// True once all output tokens have been generated.
    ///
    /// The first output token is produced by the final prefill chunk, so
    /// decode iterations only need to generate `output_tokens - 1` more.
    pub fn finished(&self) -> bool {
        self.first_token.is_some() && self.generated >= self.request.output_tokens
    }

    /// Output tokens still to generate (0 once all are emitted). The
    /// decode fast-forward uses the minimum of this over the running
    /// batch as its run length: no sequence can complete earlier.
    pub fn decode_remaining(&self) -> u32 {
        self.request.output_tokens.saturating_sub(self.generated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_workload::RequestClass;

    fn seq(input: u32, output: u32) -> RunningSeq {
        RunningSeq::new(Request {
            id: 1,
            arrival: SimTime::ZERO,
            input_tokens: input,
            output_tokens: output,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        })
    }

    #[test]
    fn fresh_sequence_is_in_prefill() {
        let s = seq(100, 10);
        assert_eq!(s.prefill_remaining(), 100);
        assert!(!s.in_decode());
        assert!(!s.finished());
    }

    #[test]
    fn prefill_progress_transitions_to_decode() {
        let mut s = seq(100, 10);
        s.prefill_done = 100;
        assert!(s.in_decode());
        assert_eq!(s.context_len(), 100);
    }

    #[test]
    fn finishes_after_all_outputs() {
        let mut s = seq(10, 3);
        s.prefill_done = 10;
        s.first_token = Some(SimTime::from_secs(1.0));
        s.generated = 2;
        assert!(!s.finished());
        s.generated = 3;
        assert!(s.finished());
    }
}
