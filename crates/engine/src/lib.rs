//! Discrete-event LLM serving engine.
//!
//! Substitutes vLLM: a continuous-batching, chunked-prefill scheduler over
//! the analytical execution model of [`sp_parallel`]. Simulated time
//! advances iteration by iteration; each iteration's duration comes from
//! the Algorithm 1 cost walk under the configuration chosen by the
//! deployment's [`sp_parallel::ParallelismPolicy`].
//!
//! * [`engine::Engine`] — one serving engine (one attention-parallel group
//!   of GPUs) processing a request stream.
//! * [`engine::EngineConfig`] — scheduler knobs: token budget per
//!   iteration (chunked prefill), max batched sequences, KV capacity.
//! * [`report::EngineReport`] — per-request records plus aggregate
//!   latency/throughput metrics.
//! * [`cluster::DataParallelCluster`] — N independent replicas behind a
//!   least-loaded router: the paper's throughput-optimized DP baseline.
//! * [`routing::ClusterSim`] — event-driven multi-replica co-simulation:
//!   replicas advance in global time order and each request is dispatched
//!   at its arrival instant via a pluggable [`routing::RoutingPolicy`]
//!   acting on live load.
//! * [`autoscale::Autoscaler`] — load-signal autoscaling for the
//!   co-simulation: a pluggable [`autoscale::ScalePolicy`] provisions
//!   replicas (with a cold-start delay) and drains-then-retires them
//!   mid-trace, with replica-seconds cost accounting in the report.
//!
//! # Examples
//!
//! ```
//! use sp_cluster::NodeSpec;
//! use sp_engine::{Engine, EngineConfig};
//! use sp_model::presets;
//! use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
//! use sp_workload::synthetic;
//!
//! let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b());
//! let policy = StaticPolicy::new("TP", ParallelConfig::tensor(8));
//! let mut engine = Engine::new(exec, Box::new(policy), EngineConfig::default());
//! let report = engine.run(&synthetic::single(4096, 16));
//! assert_eq!(report.records().len(), 1);
//! ```

pub mod autoscale;
pub mod cluster;
pub mod disagg;
pub mod engine;
pub mod fault;
mod queue;
pub mod report;
pub mod routing;
mod seq;

pub use autoscale::{
    AutoscaleConfig, Autoscaler, FleetSignal, LoadBandPolicy, NeverScale, ScaleAction, ScalePolicy,
};
pub use cluster::DataParallelCluster;
pub use engine::{AdmissionMode, Engine, EngineConfig, QueuePolicy, SpecDecode};
pub use fault::{Fault, FaultEvent, FaultPlan, RetryPolicy, SalvagedWork};
pub use report::{EngineReport, IterationEvent};
pub use routing::{
    ClusterSim, EarliestDeadlineFeasible, JoinShortestOutstanding, ReferenceClusterSim, RoundRobin,
    RoutingKind, RoutingPolicy, RunAdvance, SimNode, StaticSplit,
};
