//! Load-signal autoscaling for the cluster co-simulation.
//!
//! The paper's premise is that real traffic is *dynamic* — bursty agentic
//! phases alternating with idle (Fig. 8) — and a fleet provisioned for
//! the burst peak wastes most of its replica-seconds in the valleys. This
//! module closes the ROADMAP's last open loop: a pluggable
//! [`ScalePolicy`] watches the same smoothed per-replica load signal the
//! router samples at every dispatch ([`sp_metrics::NodeLoad`] snapshots,
//! the outstanding-token series) and emits two decisions mid-trace:
//!
//! * **Scale-out** — provision a replica. It spends a configurable
//!   cold-start delay warming up (model load, compiling its `ExecPlan`
//!   set — spawned engines price their plans at construction, they are
//!   not cloned) before joining the routable set.
//! * **Drain-then-retire** — stop routing to a victim replica, let its
//!   in-flight sequences finish, then remove it. Nothing is killed or
//!   re-queued, so no request is ever dropped or served twice by a scale
//!   decision.
//!
//! Cost is accounted in *replica-seconds* ([`sp_metrics::FleetTimeline`]):
//! every replica pays from spawn (including warmup) to retirement. The
//! `autoscale` bench bin reports that cost against Interactive p99 TTFT
//! on the bursty trace.

use sp_metrics::{Dur, NodeLoad, SimTime};
use std::fmt;

/// Fleet-level autoscaling bounds, enforced by the simulation regardless
/// of what the [`ScalePolicy`] asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Delay between a scale-out decision and the new replica becoming
    /// routable (model load, plan compilation, warmup). The replica
    /// *pays* replica-seconds from the decision instant.
    pub cold_start: Dur,
    /// The routable fleet never shrinks below this many replicas
    /// (drain requests beyond it are ignored). Must be at least 1.
    pub min_replicas: usize,
    /// Total provisioned replicas (routable + warming + draining) never
    /// exceed this (spawn requests beyond it are ignored).
    pub max_replicas: usize,
}

impl Default for AutoscaleConfig {
    /// One always-on replica, headroom for eight, 10 s cold start.
    fn default() -> AutoscaleConfig {
        AutoscaleConfig { cold_start: Dur::from_secs(10.0), min_replicas: 1, max_replicas: 8 }
    }
}

impl AutoscaleConfig {
    /// Panics if the bounds are vacuous.
    pub(crate) fn validate(&self) {
        assert!(self.min_replicas >= 1, "autoscaling needs at least one routable replica");
        assert!(
            self.max_replicas >= self.min_replicas,
            "max_replicas {} below min_replicas {}",
            self.max_replicas,
            self.min_replicas
        );
    }
}

/// What the scale policy sees at a decision instant: the load snapshot
/// of every *routable* replica plus the fleet's in-flight lifecycle
/// state. Decisions are evaluated at dispatch instants — the same
/// cadence at which the router samples loads and the load series
/// records, so the policy watches exactly the signal the reports show.
#[derive(Debug)]
pub struct FleetSignal<'a> {
    /// The decision instant (the arriving request's timestamp).
    pub now: SimTime,
    /// Live loads of the routable replicas, in ascending slot order.
    /// Positions index into this snapshot (see
    /// [`ScaleAction::Drain`]), not global slot ids.
    pub loads: &'a [NodeLoad],
    /// Replicas provisioned but still inside their cold-start delay.
    pub warming: usize,
    /// Replicas draining toward retirement (no longer routable).
    pub draining: usize,
    /// Replicas lost to crashes and not yet replaced by a spawn. Crash
    /// loss is capacity the load signal has not felt yet (the EWMA lags),
    /// so policies should treat a nonzero deficit as an immediate
    /// scale-out signal.
    pub crash_deficit: usize,
}

/// One scale decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Provision one replica; it becomes routable after the configured
    /// cold-start delay. Ignored when the fleet is at `max_replicas`.
    Spawn,
    /// Drain-then-retire the routable replica at position `replica` of
    /// [`FleetSignal::loads`]: it stops receiving new work immediately,
    /// finishes its in-flight sequences, and is then removed. Ignored
    /// when the routable fleet is at `min_replicas`.
    Drain {
        /// Position in the [`FleetSignal::loads`] snapshot.
        replica: usize,
    },
}

/// Watches the fleet's load signal and decides when to grow or shrink.
///
/// Policies may keep state (smoothers, cooldown clocks), hence
/// `&mut self`. They must be deterministic: the same signal sequence
/// must yield the same actions, or runs stop being reproducible (and
/// the calendar/reference equivalence property stops holding). Policies
/// are `Send` so autoscaled [`crate::ClusterSim`]s can be stepped from
/// pool worker threads during horizon-parallel windows.
pub trait ScalePolicy: fmt::Debug + Send {
    /// The policy's display name.
    fn name(&self) -> &str;

    /// Appends scale actions for this instant (usually zero or one).
    fn decide(&mut self, signal: &FleetSignal<'_>, actions: &mut Vec<ScaleAction>);
}

/// A policy that never scales — the autoscaled simulation collapses to
/// the fixed fleet exactly (a byte-identity pinned by the property
/// suite), making it the safe default and the equivalence baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverScale;

impl ScalePolicy for NeverScale {
    fn name(&self) -> &str {
        "never-scale"
    }

    fn decide(&mut self, _signal: &FleetSignal<'_>, _actions: &mut Vec<ScaleAction>) {}
}

/// Hysteresis band over the smoothed mean outstanding-token load: scale
/// out when the smoothed per-replica load rises above the high
/// watermark, drain the least-loaded replica when it falls below the
/// low one, with an action cooldown so one burst doesn't trigger a
/// spawn storm.
///
/// The load signal is an exponentially weighted moving average of the
/// mean outstanding tokens per routable replica, updated at every
/// dispatch (the router's sampling cadence). Shrinking waits until no
/// replica is warming or draining, so the fleet never chases its own
/// transients.
#[derive(Debug, Clone)]
pub struct LoadBandPolicy {
    scale_out_above: f64,
    drain_below: f64,
    alpha: f64,
    cooldown: Dur,
    smoothed: Option<f64>,
    last_action: Option<SimTime>,
}

impl LoadBandPolicy {
    /// Creates the band policy with the given watermarks, in outstanding
    /// tokens per routable replica (smoothing 0.3, cooldown 10 s).
    ///
    /// # Panics
    ///
    /// Panics unless `scale_out_above > drain_below >= 0`.
    pub fn new(scale_out_above: f64, drain_below: f64) -> LoadBandPolicy {
        assert!(
            scale_out_above > drain_below && drain_below >= 0.0,
            "watermarks must satisfy scale_out_above > drain_below >= 0"
        );
        LoadBandPolicy {
            scale_out_above,
            drain_below,
            alpha: 0.3,
            cooldown: Dur::from_secs(10.0),
            smoothed: None,
            last_action: None,
        }
    }

    /// Sets the EWMA smoothing factor in `(0, 1]` (1 = no smoothing).
    pub fn smoothing(mut self, alpha: f64) -> LoadBandPolicy {
        assert!(alpha > 0.0 && alpha <= 1.0, "smoothing factor must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Sets the minimum time between scale actions.
    pub fn cooldown(mut self, cooldown: Dur) -> LoadBandPolicy {
        self.cooldown = cooldown;
        self
    }

    /// The current smoothed per-replica load, if any signal has been
    /// observed.
    pub fn smoothed_load(&self) -> Option<f64> {
        self.smoothed
    }
}

impl ScalePolicy for LoadBandPolicy {
    fn name(&self) -> &str {
        "load-band"
    }

    fn decide(&mut self, signal: &FleetSignal<'_>, actions: &mut Vec<ScaleAction>) {
        if signal.crash_deficit > 0 {
            // Crash-induced capacity loss: replace the dead replicas
            // immediately instead of waiting for the smoothed load to
            // climb — the EWMA lags, and the salvaged requests are
            // already queued behind their backoff.
            actions.extend(std::iter::repeat_n(ScaleAction::Spawn, signal.crash_deficit));
            self.last_action = Some(signal.now);
            return;
        }
        if signal.loads.is_empty() {
            return;
        }
        let mean = signal.loads.iter().map(|l| l.outstanding_tokens).sum::<u64>() as f64
            / signal.loads.len() as f64;
        let smoothed = match self.smoothed {
            None => mean,
            Some(prev) => prev + self.alpha * (mean - prev),
        };
        self.smoothed = Some(smoothed);
        let cooled = self
            .last_action
            .is_none_or(|t| signal.now.since(t).as_secs() >= self.cooldown.as_secs());
        if !cooled {
            return;
        }
        if smoothed > self.scale_out_above {
            actions.push(ScaleAction::Spawn);
            self.last_action = Some(signal.now);
        } else if smoothed < self.drain_below && signal.warming == 0 && signal.draining == 0 {
            let victim = signal
                .loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| l.outstanding_tokens)
                .map(|(i, _)| i)
                .expect("loads is nonempty");
            actions.push(ScaleAction::Drain { replica: victim });
            self.last_action = Some(signal.now);
        }
    }
}

/// The autoscaler a cluster simulation carries: bounds, the decision
/// policy, and the spawner that builds replacement replicas.
///
/// The spawner is called with the spawn ordinal (0 for the first
/// scale-out) and must construct a *fresh* node — for engines that
/// means `Engine::new`, which compiles the replica's `ExecPlan` set and
/// prices its prefill rate on spin-up (the ROADMAP's "recompile plan
/// sets on replica spin-up instead of cloning engines"). A freshly
/// spawned engine therefore reports a real `prefill_tokens_per_sec`
/// from its first load snapshot, so deadline-aware routers see its true
/// capacity instead of a cold zero.
pub struct Autoscaler<N> {
    pub(crate) config: AutoscaleConfig,
    pub(crate) policy: Box<dyn ScalePolicy>,
    pub(crate) spawner: Box<dyn FnMut(usize) -> N + Send>,
    pub(crate) spawned: usize,
    /// Scratch for per-dispatch decisions, reused to keep the dispatch
    /// hot path allocation-free.
    pub(crate) actions: Vec<ScaleAction>,
}

impl<N> Autoscaler<N> {
    /// Creates an autoscaler.
    ///
    /// # Panics
    ///
    /// Panics if `config` is vacuous (`min_replicas == 0` or
    /// `max_replicas < min_replicas`).
    pub fn new(
        config: AutoscaleConfig,
        policy: Box<dyn ScalePolicy>,
        spawner: impl FnMut(usize) -> N + Send + 'static,
    ) -> Autoscaler<N> {
        config.validate();
        Autoscaler { config, policy, spawner: Box::new(spawner), spawned: 0, actions: Vec::new() }
    }

    /// The configured bounds.
    pub fn config(&self) -> AutoscaleConfig {
        self.config
    }

    /// The decision policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// How many replicas have been spawned so far.
    pub fn spawned(&self) -> usize {
        self.spawned
    }
}

impl<N> fmt::Debug for Autoscaler<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Autoscaler")
            .field("config", &self.config)
            .field("policy", &self.policy)
            .field("spawned", &self.spawned)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(outstanding: u64) -> NodeLoad {
        NodeLoad { outstanding_tokens: outstanding, ..NodeLoad::default() }
    }

    fn signal(now: f64, loads: &[NodeLoad]) -> FleetSignal<'_> {
        FleetSignal {
            now: SimTime::from_secs(now),
            loads,
            warming: 0,
            draining: 0,
            crash_deficit: 0,
        }
    }

    #[test]
    fn band_policy_spawns_above_high_watermark() {
        let mut p = LoadBandPolicy::new(1_000.0, 100.0).smoothing(1.0);
        let mut actions = Vec::new();
        p.decide(&signal(0.0, &[load(5_000)]), &mut actions);
        assert_eq!(actions, vec![ScaleAction::Spawn]);
    }

    #[test]
    fn band_policy_drains_least_loaded_below_low_watermark() {
        let mut p = LoadBandPolicy::new(10_000.0, 1_000.0).smoothing(1.0);
        let mut actions = Vec::new();
        p.decide(&signal(0.0, &[load(900), load(20), load(600)]), &mut actions);
        assert_eq!(actions, vec![ScaleAction::Drain { replica: 1 }]);
    }

    #[test]
    fn band_policy_holds_inside_the_band() {
        let mut p = LoadBandPolicy::new(10_000.0, 1_000.0).smoothing(1.0);
        let mut actions = Vec::new();
        p.decide(&signal(0.0, &[load(5_000)]), &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn cooldown_paces_consecutive_actions() {
        let mut p =
            LoadBandPolicy::new(1_000.0, 100.0).smoothing(1.0).cooldown(Dur::from_secs(10.0));
        let mut actions = Vec::new();
        p.decide(&signal(0.0, &[load(5_000)]), &mut actions);
        p.decide(&signal(5.0, &[load(5_000)]), &mut actions);
        assert_eq!(actions.len(), 1, "second decision inside the cooldown must hold");
        p.decide(&signal(10.0, &[load(5_000)]), &mut actions);
        assert_eq!(actions.len(), 2, "cooldown expired");
    }

    #[test]
    fn smoothing_filters_a_single_spike() {
        let mut p =
            LoadBandPolicy::new(1_000.0, 0.1).smoothing(0.2).cooldown(Dur::from_secs(100.0));
        let mut actions = Vec::new();
        // Long quiet phase, then one spike: the EWMA must not clear the
        // high watermark off a single sample.
        for i in 0..20 {
            p.decide(&signal(i as f64, &[load(10)]), &mut actions);
        }
        p.decide(&signal(20.0, &[load(4_000)]), &mut actions);
        assert!(actions.is_empty(), "one spike must not trigger scale-out");
        // A sustained surge does.
        for i in 21..40 {
            p.decide(&signal(i as f64, &[load(4_000)]), &mut actions);
        }
        assert_eq!(actions, vec![ScaleAction::Spawn]);
    }

    #[test]
    fn drain_waits_for_inflight_lifecycle_to_settle() {
        let mut p = LoadBandPolicy::new(10_000.0, 1_000.0).smoothing(1.0);
        let mut actions = Vec::new();
        let loads = [load(10), load(10)];
        let sig = FleetSignal {
            now: SimTime::ZERO,
            loads: &loads,
            warming: 1,
            draining: 0,
            crash_deficit: 0,
        };
        p.decide(&sig, &mut actions);
        assert!(actions.is_empty(), "no shrink while a replica is warming");
    }

    #[test]
    fn crash_deficit_spawns_immediately_ignoring_band_and_cooldown() {
        let mut p =
            LoadBandPolicy::new(10_000.0, 1_000.0).smoothing(1.0).cooldown(Dur::from_secs(100.0));
        let mut actions = Vec::new();
        // Load is deep inside the drain band, yet two crashed replicas
        // must be replaced right away.
        let loads = [load(10)];
        let sig = FleetSignal {
            now: SimTime::from_secs(3.0),
            loads: &loads,
            warming: 0,
            draining: 0,
            crash_deficit: 2,
        };
        p.decide(&sig, &mut actions);
        assert_eq!(actions, vec![ScaleAction::Spawn, ScaleAction::Spawn]);
        // The replacement counts as an action: the cooldown now paces
        // ordinary band decisions.
        actions.clear();
        p.decide(&signal(4.0, &[load(50_000)]), &mut actions);
        assert!(actions.is_empty(), "inside cooldown after the deficit spawn");
    }

    #[test]
    #[should_panic(expected = "at least one routable replica")]
    fn zero_min_replicas_rejected() {
        let _ = Autoscaler::<u32>::new(
            AutoscaleConfig { min_replicas: 0, ..AutoscaleConfig::default() },
            Box::new(NeverScale),
            |_| 0,
        );
    }
}
