//! Online load-aware routing: the event-driven multi-replica co-simulation.
//!
//! The paper's production fleet (Fig. 16, Table 5) sits behind a router
//! that reacts to live load. Splitting a trace offline and running the
//! replicas one after another cannot reproduce that: routing decisions
//! must be made *at each request's arrival instant*, against the load the
//! replicas actually have at that moment. [`ClusterSim`] provides the
//! event loop — it advances replicas in global simulated-time order and
//! dispatches each request on arrival via a pluggable [`RoutingPolicy`] —
//! and [`SimNode`] is the stepping interface replicas expose
//! (implemented by [`Engine`] and by
//! [`crate::cluster::DataParallelCluster`] so whole clusters nest as
//! fleet nodes).

use crate::engine::Engine;
use crate::report::EngineReport;
use sp_metrics::{
    ClassSlo, Dur, NodeLoad, ReplicaLoadSeries, RequestClass, RoutingDecision, SimTime,
};
use sp_workload::{Request, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A totally ordered next-event instant — the event calendar's sort key.
///
/// Wraps the raw seconds with [`f64::total_cmp`] so a pathological node
/// reporting a NaN next-event time sorts *after* every finite instant
/// (and after infinity) instead of panicking the comparison, and so the
/// ordering is a genuine `Ord` the binary heap can rely on.
#[derive(Debug, Clone, Copy)]
struct EventKey(f64);

impl EventKey {
    fn of(t: SimTime) -> EventKey {
        EventKey(t.as_secs())
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &EventKey) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &EventKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &EventKey) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Picks a replica for each request as it arrives.
///
/// `loads` holds each replica's live [`NodeLoad`] snapshot at the
/// dispatch instant — outstanding tokens (the classic JSQ signal) plus
/// the ingredients of a TTFT estimate for deadline-aware policies.
/// Policies may keep state (round-robin cursors, cumulative assignment
/// ledgers), hence `&mut self`.
pub trait RoutingPolicy: std::fmt::Debug {
    /// The policy's display name.
    fn name(&self) -> &str;

    /// Chooses a replica index in `0..loads.len()` for `req`.
    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize;
}

/// Index of the replica with the least outstanding work (ties to the
/// lowest index — `min_by_key` keeps the first minimum).
fn least_outstanding(loads: &[NodeLoad]) -> usize {
    loads
        .iter()
        .enumerate()
        .min_by_key(|&(_, l)| l.outstanding_tokens)
        .map(|(i, _)| i)
        .expect("at least one replica")
}

/// Join-shortest-outstanding-tokens: send each request to the replica
/// with the least live outstanding work (ties to the lowest index). The
/// online analogue of join-shortest-queue, using the same load signal the
/// engines already expose.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestOutstanding;

impl RoutingPolicy for JoinShortestOutstanding {
    fn name(&self) -> &str {
        "join-shortest-outstanding"
    }

    fn pick(&mut self, _req: &Request, loads: &[NodeLoad]) -> usize {
        least_outstanding(loads)
    }
}

/// Join-shortest-queue ranked by estimated TTFT: send each request to
/// the replica whose [`NodeLoad::estimated_ttft`] for *this* request is
/// lowest, instead of the replica with the least raw outstanding tokens.
///
/// Outstanding tokens overweight decode backlogs: a replica carrying
/// long generations looks busy, yet prefills a new prompt nearly as fast
/// as an idle one (decode iterations are short and the prompt chunks in
/// alongside them), while a replica with a deep prefill queue delays the
/// new prompt directly. Ranking by the TTFT estimate routes around
/// prefill queues and KV pressure and ignores harmless decode work.
/// Ties — including the cold start where no replica reports a prefill
/// rate and every estimate is zero — break by outstanding tokens and
/// then lowest index, so the policy degrades to plain JSQ exactly when
/// the TTFT signal carries no information.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsqByTtft;

impl RoutingPolicy for JsqByTtft {
    fn name(&self) -> &str {
        "jsq-by-ttft"
    }

    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize {
        let input = u64::from(req.input_tokens);
        let footprint = req.total_tokens();
        loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.estimated_ttft(input, footprint)
                    .as_secs()
                    .total_cmp(&b.estimated_ttft(input, footprint).as_secs())
                    .then(a.outstanding_tokens.cmp(&b.outstanding_tokens))
            })
            .map(|(i, _)| i)
            .expect("at least one replica")
    }
}

/// Round-robin: replica `k mod n` for the `k`-th request, load-blind.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn pick(&mut self, _req: &Request, loads: &[NodeLoad]) -> usize {
        let i = self.next % loads.len();
        self.next = self.next.wrapping_add(1);
        i
    }
}

/// The offline static split, replayed online: each request goes to the
/// replica with the least *cumulative assigned* tokens so far, ignoring
/// live load. Produces exactly the same assignment as
/// [`crate::cluster::DataParallelCluster::route`], so it serves as the
/// pre-event-driven baseline in comparisons.
#[derive(Debug, Clone, Default)]
pub struct StaticSplit {
    assigned: Vec<u64>,
}

impl RoutingPolicy for StaticSplit {
    fn name(&self) -> &str {
        "static-split"
    }

    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize {
        self.assigned.resize(loads.len().max(self.assigned.len()), 0);
        let i = (0..loads.len()).min_by_key(|&i| self.assigned[i]).expect("at least one replica");
        self.assigned[i] += req.total_tokens();
        i
    }
}

/// Deadline-aware routing (ROADMAP "SLO-aware admission and routing"):
/// each replica's [`NodeLoad`] yields a time-to-first-token estimate, and
/// interactive requests go to a replica that can still meet their TTFT
/// SLO.
///
/// * Interactive: among replicas whose estimated TTFT fits the
///   interactive budget (*feasible* replicas), pick the least-outstanding
///   one — load-balance inside the feasible set rather than herding onto
///   the single fastest replica. When no replica is feasible, pick the
///   minimum-ETA replica (least-bad). Ties to the lowest index.
/// * Batch: join-shortest-outstanding. Batch deadlines are ~30x looser,
///   so raw load balance maximizes their throughput without displacing
///   interactive traffic (the per-replica engines handle intra-node
///   priority).
#[derive(Debug, Clone, Copy)]
pub struct EarliestDeadlineFeasible {
    slo: ClassSlo,
}

impl EarliestDeadlineFeasible {
    /// Creates the policy with the given per-class targets.
    pub fn new(slo: ClassSlo) -> EarliestDeadlineFeasible {
        EarliestDeadlineFeasible { slo }
    }
}

impl Default for EarliestDeadlineFeasible {
    fn default() -> EarliestDeadlineFeasible {
        EarliestDeadlineFeasible::new(ClassSlo::default())
    }
}

impl RoutingPolicy for EarliestDeadlineFeasible {
    fn name(&self) -> &str {
        "earliest-deadline-feasible"
    }

    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize {
        if req.class == RequestClass::Batch {
            return least_outstanding(loads);
        }
        let input = u64::from(req.input_tokens);
        let footprint = req.total_tokens();
        let budget = self.slo.target_for(req.class).ttft;
        let etas: Vec<Dur> = loads.iter().map(|l| l.estimated_ttft(input, footprint)).collect();
        let feasible = loads
            .iter()
            .enumerate()
            .filter(|&(i, _)| etas[i] <= budget)
            .min_by_key(|&(_, l)| l.outstanding_tokens)
            .map(|(i, _)| i);
        feasible.unwrap_or_else(|| {
            etas.iter()
                .enumerate()
                .min_by(|a, b| a.1.as_secs().total_cmp(&b.1.as_secs()))
                .map(|(i, _)| i)
                .expect("at least one replica")
        })
    }
}

/// Routing policy selector — the builder-friendly, copyable handle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RoutingKind {
    /// [`JoinShortestOutstanding`] (the online default).
    #[default]
    JoinShortestOutstanding,
    /// [`JsqByTtft`] — JSQ ranked by per-request TTFT estimates.
    JsqByTtft,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`StaticSplit`] — the offline greedy baseline.
    StaticSplit,
    /// [`EarliestDeadlineFeasible`] with the given per-class targets.
    EarliestDeadlineFeasible(ClassSlo),
}

impl RoutingKind {
    /// Instantiates the policy.
    pub fn policy(self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingKind::JoinShortestOutstanding => Box::new(JoinShortestOutstanding),
            RoutingKind::JsqByTtft => Box::new(JsqByTtft),
            RoutingKind::RoundRobin => Box::new(RoundRobin::default()),
            RoutingKind::StaticSplit => Box::new(StaticSplit::default()),
            RoutingKind::EarliestDeadlineFeasible(slo) => {
                Box::new(EarliestDeadlineFeasible::new(slo))
            }
        }
    }
}

/// The incremental stepping interface a cluster node exposes so
/// [`ClusterSim`] can co-simulate many of them in global time order.
pub trait SimNode {
    /// Enqueues a request (dispatch) — requests arrive in nondecreasing
    /// arrival order.
    fn push_request(&mut self, req: Request);

    /// Advances this node by one scheduling event. No-op when idle.
    fn step_once(&mut self);

    /// Instant of this node's next event, or `None` when idle.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Live outstanding work in tokens — the routing load signal.
    fn outstanding_tokens(&self) -> u64;

    /// Full load snapshot for deadline-aware routing. The default carries
    /// only `outstanding_tokens` (TTFT-estimate fields zeroed), under
    /// which [`NodeLoad::estimated_ttft`] degrades to zero and
    /// deadline-aware policies fall back to join-shortest-outstanding.
    fn load(&self) -> NodeLoad {
        NodeLoad { outstanding_tokens: self.outstanding_tokens(), ..NodeLoad::default() }
    }

    /// Finalizes and returns the node's accumulated report.
    fn take_report(&mut self) -> EngineReport;
}

impl SimNode for Engine {
    fn push_request(&mut self, req: Request) {
        Engine::push_request(self, req);
    }

    fn step_once(&mut self) {
        Engine::step_once(self);
    }

    fn next_event_time(&self) -> Option<SimTime> {
        Engine::next_event_time(self)
    }

    fn outstanding_tokens(&self) -> u64 {
        Engine::outstanding_tokens(self)
    }

    fn load(&self) -> NodeLoad {
        Engine::load(self)
    }

    fn take_report(&mut self) -> EngineReport {
        Engine::take_report(self)
    }
}

/// Event-driven multi-replica co-simulation.
///
/// Replicas advance in global simulated-time order; each request is
/// dispatched *at its arrival instant* to the replica the
/// [`RoutingPolicy`] picks from live `outstanding_tokens`. The merged
/// report carries the routing decision trail and a per-replica load time
/// series sampled at every dispatch.
///
/// # Examples
///
/// ```
/// use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
/// use sp_engine::routing::{ClusterSim, RoutingKind};
/// use sp_engine::{Engine, EngineConfig};
/// use sp_model::presets;
/// use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
/// use sp_workload::synthetic;
///
/// let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
/// let replicas = (0..2)
///     .map(|_| {
///         Engine::new(
///             ExecutionModel::new(node, presets::qwen_32b()),
///             Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
///             EngineConfig::default(),
///         )
///     })
///     .collect();
/// let mut sim = ClusterSim::new(replicas, RoutingKind::default().policy());
/// let report = sim.run(&synthetic::poisson(8, 4.0, 512, 8, 1));
/// assert_eq!(report.records().len(), 8);
/// assert_eq!(report.routing_decisions().len(), 8);
/// ```
#[derive(Debug)]
pub struct ClusterSim<N: SimNode> {
    nodes: Vec<N>,
    policy: Box<dyn RoutingPolicy>,
    throughput_bin: Dur,
    /// Decision trail accumulated across incremental
    /// [`ClusterSim::push_request`] calls; taken by
    /// [`ClusterSim::take_report`].
    decisions: Vec<RoutingDecision>,
    /// Per-replica loads sampled at each dispatch; taken with the report.
    load_series: ReplicaLoadSeries,
    /// The event calendar: a min-heap of `(next_event_time, node index)`
    /// entries with *lazy invalidation*. Stepping or feeding a node
    /// pushes its fresh key instead of rewriting the old entry; stale
    /// entries (whose key no longer matches the node's live
    /// `next_event_time`) are discarded when they surface at the top.
    /// The key includes the node index, so simultaneous events pop in
    /// index order — the same lowest-index tie-break the original
    /// linear rescanning loop got from `min_by`, keeping every
    /// downstream report byte-identical while next-event dispatch drops
    /// from O(R) to O(log R).
    ///
    /// Invariant (holds between public calls): every active node's
    /// current key is present, and the heap top is not stale — so
    /// read-only peeks need no cleanup.
    calendar: BinaryHeap<Reverse<(EventKey, usize)>>,
    /// Scratch for the per-dispatch load snapshot, reused across
    /// [`ClusterSim::push_request`] calls to keep the dispatch hot path
    /// allocation-free.
    scratch_loads: Vec<NodeLoad>,
}

impl<N: SimNode> ClusterSim<N> {
    /// Creates a co-simulation over `nodes` with the given router.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, policy: Box<dyn RoutingPolicy>) -> ClusterSim<N> {
        assert!(!nodes.is_empty(), "cluster simulation needs at least one node");
        let mut sim = ClusterSim {
            nodes,
            policy,
            throughput_bin: Dur::from_secs(1.0),
            decisions: Vec::new(),
            load_series: ReplicaLoadSeries::new(),
            calendar: BinaryHeap::new(),
            scratch_loads: Vec::new(),
        };
        for i in 0..sim.nodes.len() {
            sim.reschedule(i);
        }
        sim
    }

    /// Sets the merged report's throughput bin width (default 1 s).
    pub fn throughput_bin(mut self, bin: Dur) -> ClusterSim<N> {
        self.throughput_bin = bin;
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The routing policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Consumes the simulation, returning its nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// The node's current calendar key, if it has a pending event.
    fn node_key(&self, i: usize) -> Option<EventKey> {
        self.nodes[i].next_event_time().map(EventKey::of)
    }

    /// Publishes node `i`'s current next-event key on the calendar. Must
    /// be called after every operation that may change the node's next
    /// event (stepping it, feeding it a request); the key it superseded
    /// becomes stale and is lazily discarded by [`ClusterSim::settle`].
    fn reschedule(&mut self, i: usize) {
        if let Some(key) = self.node_key(i) {
            self.calendar.push(Reverse((key, i)));
        }
    }

    /// Discards stale calendar entries until the top is live (its key
    /// matches the node's current `next_event_time`) or the calendar is
    /// empty. Every mutating public method ends with a settled calendar,
    /// so read-only peeks ([`ClusterSim::next_event_time`]) stay `&self`.
    fn settle(&mut self) {
        while let Some(&Reverse((key, i))) = self.calendar.peek() {
            if self.node_key(i) == Some(key) {
                break;
            }
            self.calendar.pop();
        }
    }

    /// Index of the node with the earliest pending event, if any,
    /// settling the calendar first. Simultaneous events resolve to the
    /// lowest node index (the index is part of the heap key), so
    /// stepping order — and therefore every downstream report — is
    /// deterministic and identical to the original linear rescanning
    /// loop's `min_by` tie-break.
    fn earliest(&mut self) -> Option<usize> {
        self.settle();
        self.calendar.peek().map(|&Reverse((_, i))| i)
    }

    /// Steps node `i` by one event and republishes its calendar key.
    fn step_node(&mut self, i: usize) {
        self.nodes[i].step_once();
        self.reschedule(i);
    }

    /// Steps nodes in global time order until every pending event is at
    /// or after `horizon`.
    fn advance_to(&mut self, horizon: SimTime) {
        while let Some(i) = self.earliest() {
            let t = self.nodes[i].next_event_time().expect("earliest implies event");
            if t.as_secs() >= horizon.as_secs() {
                break;
            }
            self.step_node(i);
        }
        self.settle();
    }

    /// Dispatches one request at its arrival instant: advances every node
    /// up to the arrival, samples live loads, routes, and enqueues.
    /// Requests must be pushed in nondecreasing arrival order (as
    /// [`ClusterSim::run`] does for a trace). The routing decision and
    /// load samples accumulate until [`ClusterSim::take_report`].
    pub fn push_request(&mut self, req: Request) {
        // Bring every node's local clock up to this arrival so the load
        // signal reflects work actually still outstanding now.
        self.advance_to(req.arrival);
        let mut loads = std::mem::take(&mut self.scratch_loads);
        loads.clear();
        loads.extend(self.nodes.iter().map(SimNode::load));
        for (i, l) in loads.iter().enumerate() {
            self.load_series.record(i, req.arrival, l.outstanding_tokens);
        }
        let pick = self.policy.pick(&req, &loads).min(self.nodes.len() - 1);
        self.decisions.push(RoutingDecision {
            request_id: req.id,
            replica: pick,
            at: req.arrival,
            load_tokens: loads[pick].outstanding_tokens,
        });
        self.scratch_loads = loads;
        self.nodes[pick].push_request(req);
        self.reschedule(pick);
        self.settle();
    }

    /// Advances the globally earliest node by one scheduling event. No-op
    /// when every node is idle.
    pub fn step_once(&mut self) {
        if let Some(i) = self.earliest() {
            self.step_node(i);
        }
        self.settle();
    }

    /// Instant of the cluster's next event (the earliest across nodes),
    /// or `None` when all idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        // The calendar is settled at rest, so its top (when present) is a
        // live `(key, node)` pair.
        self.calendar.peek().and_then(|&Reverse((_, i))| self.nodes[i].next_event_time())
    }

    /// Total outstanding work across nodes, in tokens.
    pub fn outstanding_tokens(&self) -> u64 {
        self.nodes.iter().map(SimNode::outstanding_tokens).sum()
    }

    /// Aggregate load: sums across nodes (capacity-style signals add;
    /// the prefill rate adds because replicas prefill concurrently),
    /// except `min_kv_free_tokens`, which is the most-congested node's
    /// headroom — the guaranteed admission room for a nested consumer
    /// that sees this whole cluster as one node (the summed
    /// `kv_free_tokens` overstates what a single request can use; see
    /// [`NodeLoad`]'s aggregate-semantics docs).
    pub fn load(&self) -> NodeLoad {
        let seed = NodeLoad { min_kv_free_tokens: u64::MAX, ..NodeLoad::default() };
        self.nodes.iter().map(SimNode::load).fold(seed, |acc, l| NodeLoad {
            outstanding_tokens: acc.outstanding_tokens + l.outstanding_tokens,
            queued_prefill_tokens: acc.queued_prefill_tokens + l.queued_prefill_tokens,
            kv_free_tokens: acc.kv_free_tokens + l.kv_free_tokens,
            min_kv_free_tokens: acc.min_kv_free_tokens.min(l.min_kv_free_tokens),
            prefill_tokens_per_sec: acc.prefill_tokens_per_sec + l.prefill_tokens_per_sec,
        })
    }

    /// Finalizes an incremental run: merges per-node reports and attaches
    /// the accumulated decision trail and load samples (both reset).
    pub fn take_report(&mut self) -> EngineReport {
        let mut merged = EngineReport::new(self.throughput_bin);
        for node in &mut self.nodes {
            merged.merge(node.take_report());
        }
        merged.set_routing(
            std::mem::take(&mut self.decisions),
            std::mem::take(&mut self.load_series),
        );
        merged
    }

    /// Runs `trace` to completion: dispatch at arrival instants, then
    /// drain, then merge per-node reports (plus the decision trail).
    ///
    /// # Panics
    ///
    /// Panics if the co-simulation fails to make progress (internal bug
    /// guard).
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        self.decisions.reserve(trace.len());
        for &req in trace.requests() {
            self.push_request(req);
        }

        // Drain: keep stepping the globally earliest event until all idle.
        let mut guard: u64 = 0;
        while let Some(i) = self.earliest() {
            guard += 1;
            assert!(guard < 400_000_000, "cluster simulation failed to terminate");
            self.step_node(i);
        }

        self.take_report()
    }
}

/// The pre-calendar cluster loop, kept as an executable specification:
/// every `earliest` query rescans all `R` nodes linearly, exactly as
/// [`ClusterSim`] did before it grew the event calendar.
///
/// It exists for two consumers only — the equivalence property in
/// `tests/cluster_properties.rs` (heap-driven runs must stay
/// byte-identical to this loop) and the `simperf` bench bin (which
/// measures the calendar's speedup against it). It is not part of the
/// supported API.
#[doc(hidden)]
#[derive(Debug)]
pub struct ReferenceClusterSim<N: SimNode> {
    nodes: Vec<N>,
    policy: Box<dyn RoutingPolicy>,
    throughput_bin: Dur,
    decisions: Vec<RoutingDecision>,
    load_series: ReplicaLoadSeries,
}

impl<N: SimNode> ReferenceClusterSim<N> {
    /// Creates the reference co-simulation over `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, policy: Box<dyn RoutingPolicy>) -> ReferenceClusterSim<N> {
        assert!(!nodes.is_empty(), "cluster simulation needs at least one node");
        ReferenceClusterSim {
            nodes,
            policy,
            throughput_bin: Dur::from_secs(1.0),
            decisions: Vec::new(),
            load_series: ReplicaLoadSeries::new(),
        }
    }

    /// Sets the merged report's throughput bin width (default 1 s).
    pub fn throughput_bin(mut self, bin: Dur) -> ReferenceClusterSim<N> {
        self.throughput_bin = bin;
        self
    }

    /// Linear rescanning next-event query: O(R) per event. Ties break to
    /// the lowest index (`min_by` keeps the first minimum) and times
    /// compare with `total_cmp`, matching the calendar's key order.
    fn earliest(&self) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.next_event_time().map(|t| (i, t)))
            .min_by(|a, b| a.1.as_secs().total_cmp(&b.1.as_secs()))
            .map(|(i, _)| i)
    }

    fn advance_to(&mut self, horizon: SimTime) {
        while let Some(i) = self.earliest() {
            let t = self.nodes[i].next_event_time().expect("earliest implies event");
            if t.as_secs() >= horizon.as_secs() {
                break;
            }
            self.nodes[i].step_once();
        }
    }

    /// Dispatches one request at its arrival instant (see
    /// [`ClusterSim::push_request`]).
    pub fn push_request(&mut self, req: Request) {
        self.advance_to(req.arrival);
        let loads: Vec<NodeLoad> = self.nodes.iter().map(SimNode::load).collect();
        for (i, l) in loads.iter().enumerate() {
            self.load_series.record(i, req.arrival, l.outstanding_tokens);
        }
        let pick = self.policy.pick(&req, &loads).min(self.nodes.len() - 1);
        self.decisions.push(RoutingDecision {
            request_id: req.id,
            replica: pick,
            at: req.arrival,
            load_tokens: loads[pick].outstanding_tokens,
        });
        self.nodes[pick].push_request(req);
    }

    /// Advances the globally earliest node by one scheduling event.
    pub fn step_once(&mut self) {
        if let Some(i) = self.earliest() {
            self.nodes[i].step_once();
        }
    }

    /// Instant of the cluster's next event, or `None` when all idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.earliest().and_then(|i| self.nodes[i].next_event_time())
    }

    /// Finalizes an incremental run (see [`ClusterSim::take_report`]).
    pub fn take_report(&mut self) -> EngineReport {
        let mut merged = EngineReport::new(self.throughput_bin);
        for node in &mut self.nodes {
            merged.merge(node.take_report());
        }
        merged.set_routing(
            std::mem::take(&mut self.decisions),
            std::mem::take(&mut self.load_series),
        );
        merged
    }

    /// Runs `trace` to completion (see [`ClusterSim::run`]).
    ///
    /// # Panics
    ///
    /// Panics if the co-simulation fails to make progress (internal bug
    /// guard).
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        self.decisions.reserve(trace.len());
        for &req in trace.requests() {
            self.push_request(req);
        }
        let mut guard: u64 = 0;
        while let Some(i) = self.earliest() {
            guard += 1;
            assert!(guard < 400_000_000, "cluster simulation failed to terminate");
            self.nodes[i].step_once();
        }
        self.take_report()
    }
}

impl<N: SimNode> SimNode for ClusterSim<N> {
    fn push_request(&mut self, req: Request) {
        ClusterSim::push_request(self, req);
    }

    fn step_once(&mut self) {
        ClusterSim::step_once(self);
    }

    fn next_event_time(&self) -> Option<SimTime> {
        ClusterSim::next_event_time(self)
    }

    fn outstanding_tokens(&self) -> u64 {
        ClusterSim::outstanding_tokens(self)
    }

    fn load(&self) -> NodeLoad {
        ClusterSim::load(self)
    }

    fn take_report(&mut self) -> EngineReport {
        ClusterSim::take_report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
    use sp_model::presets;
    use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
    use sp_workload::RequestClass;

    fn req(id: u64, at: f64, input: u32, output: u32) -> Request {
        Request {
            id,
            arrival: SimTime::from_secs(at),
            input_tokens: input,
            output_tokens: output,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        }
    }

    fn loads(outstanding: &[u64]) -> Vec<NodeLoad> {
        outstanding
            .iter()
            .map(|&l| NodeLoad { outstanding_tokens: l, ..NodeLoad::default() })
            .collect()
    }

    fn engines(n: usize) -> Vec<Engine> {
        let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
        (0..n)
            .map(|_| {
                Engine::new(
                    ExecutionModel::new(node, presets::qwen_32b()),
                    Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                    EngineConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn jsq_picks_least_loaded_with_ties_to_lowest_index() {
        let mut p = JoinShortestOutstanding;
        let r = req(0, 0.0, 100, 10);
        assert_eq!(p.pick(&r, &loads(&[500, 200, 900])), 1);
        assert_eq!(p.pick(&r, &loads(&[300, 300, 300])), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::default();
        let r = req(0, 0.0, 100, 10);
        let picks: Vec<usize> = (0..5).map(|_| p.pick(&r, &loads(&[0, 0, 0]))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn static_split_reproduces_offline_route() {
        // The online StaticSplit policy must assign each request to the
        // same replica the offline greedy router would.
        let cluster = crate::cluster::DataParallelCluster::new(3, |_| engines(1).pop().unwrap());
        let trace: Trace =
            (0..30).map(|i| req(i, i as f64 * 0.1, 200 + (i as u32 % 7) * 800, 20)).collect();
        let shards = cluster.route(&trace);

        let mut policy = StaticSplit::default();
        for r in trace.requests() {
            let online = policy.pick(r, &loads(&[0, 0, 0]));
            let offline = shards
                .iter()
                .position(|s| s.requests().iter().any(|q| q.id == r.id))
                .expect("every request lands in a shard");
            assert_eq!(online, offline, "request {}", r.id);
        }
    }

    #[test]
    fn edf_routes_interactive_to_feasible_replica() {
        // Replica 0: lighter raw load, but a prefill queue too deep to
        // make the 1 s interactive TTFT. Replica 1: heavier outstanding
        // but feasible. JSQ prefers 0; EDF must send interactive traffic
        // to 1 and keep batch traffic on JSQ.
        let snapshot = vec![
            NodeLoad {
                outstanding_tokens: 10_000,
                queued_prefill_tokens: 40_000,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
            NodeLoad {
                outstanding_tokens: 15_000,
                queued_prefill_tokens: 2_000,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
        ];
        let mut edf = EarliestDeadlineFeasible::default();
        let mut jsq = JoinShortestOutstanding;
        let interactive = req(0, 0.0, 500, 10);
        assert_eq!(jsq.pick(&interactive, &snapshot), 0);
        assert_eq!(edf.pick(&interactive, &snapshot), 1);
        let batch = Request { class: RequestClass::Batch, ..interactive };
        assert_eq!(edf.pick(&batch, &snapshot), 0, "batch follows JSQ");

        // No feasible replica: least-bad ETA wins.
        let swamped: Vec<NodeLoad> = snapshot
            .iter()
            .map(|l| NodeLoad { queued_prefill_tokens: l.queued_prefill_tokens + 100_000, ..*l })
            .collect();
        assert_eq!(edf.pick(&interactive, &swamped), 1);
    }

    #[test]
    fn jsq_by_ttft_ignores_decode_backlog_and_degrades_to_jsq() {
        // Replica 0 carries a huge decode backlog (large outstanding, no
        // prefill queue); replica 1 has little outstanding but a deep
        // prefill queue. JSQ picks 1; TTFT ranking picks 0.
        let snapshot = vec![
            NodeLoad {
                outstanding_tokens: 50_000,
                queued_prefill_tokens: 0,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
            NodeLoad {
                outstanding_tokens: 8_000,
                queued_prefill_tokens: 30_000,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
        ];
        let r = req(0, 0.0, 500, 10);
        assert_eq!(JoinShortestOutstanding.pick(&r, &snapshot), 1);
        assert_eq!(JsqByTtft.pick(&r, &snapshot), 0);
        // Without a prefill-rate estimate every ETA is zero and the
        // tie-break reproduces plain JSQ.
        assert_eq!(JsqByTtft.pick(&r, &loads(&[500, 200, 900])), 1);
        assert_eq!(JsqByTtft.pick(&r, &loads(&[300, 300, 300])), 0);
    }

    #[test]
    fn jsq_by_ttft_spreads_prompt_bursts_better_than_jsq() {
        // Three long generations at t=0 land 2-vs-1 across two replicas
        // (JSQ ties to the lowest index), so replica 0 carries twice the
        // outstanding decode work. A prompt-heavy burst then arrives.
        // Plain JSQ piles the burst onto replica 1 until its outstanding
        // tokens catch up with replica 0's decode backlog — but decode
        // backlog barely delays a new prefill, so those prompts queue
        // behind each other for nothing. TTFT ranking spreads the burst
        // by actual prefill wait and must win on tail TTFT.
        let bursty = || {
            let mut t: Vec<Request> = (0..3).map(|i| req(i, 0.0, 200, 12_000)).collect();
            t.extend((0..12u64).map(|i| req(3 + i, 0.5 + 0.02 * i as f64, 6_000, 8)));
            Trace::with_ids(t)
        };
        let burst_ttft_tail = |kind: RoutingKind| {
            let mut sim = ClusterSim::new(engines(2), kind.policy());
            let report = sim.run(&bursty());
            let mut ttfts: Vec<f64> = report
                .records()
                .iter()
                .filter(|r| r.input_tokens == 6_000)
                .map(|r| r.ttft().as_secs())
                .collect();
            assert_eq!(ttfts.len(), 12, "every burst prompt completes");
            ttfts.sort_by(f64::total_cmp);
            ttfts[ttfts.len() - 2]
        };
        let jsq = burst_ttft_tail(RoutingKind::JoinShortestOutstanding);
        let by_ttft = burst_ttft_tail(RoutingKind::JsqByTtft);
        assert!(
            by_ttft < jsq,
            "TTFT-ranked JSQ tail TTFT {by_ttft:.3}s must beat plain JSQ {jsq:.3}s"
        );
    }

    #[test]
    fn busy_replica_receives_no_new_work() {
        // Acceptance: a replica buried under a long prefill must receive
        // nothing while an idle replica takes every arrival.
        let mut sim = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy());
        let mut trace: Vec<Request> = vec![req(0, 0.0, 120_000, 512)];
        trace.extend((1..9).map(|i| req(i, 0.05 * i as f64, 256, 16)));
        let report = sim.run(&Trace::with_ids(trace));

        let d = report.routing_decisions();
        assert_eq!(d.len(), 9);
        assert_eq!(d[0].replica, 0, "first request ties to replica 0");
        for dec in &d[1..] {
            assert_eq!(
                dec.replica, 1,
                "request {} routed to the busy replica at load {}",
                dec.request_id, dec.load_tokens
            );
        }
        assert_eq!(report.records().len(), 9);
        assert_eq!(report.replica_loads().replica_count(), 2);
        assert!(report.replica_loads().peak(0) > 100_000);
    }

    #[test]
    fn routing_is_deterministic() {
        let trace = sp_workload::bursty::BurstyConfig {
            duration: sp_metrics::Dur::from_secs(60.0),
            base_rate: 1.0,
            bursts: 2,
            burst_size: 30,
            ..sp_workload::bursty::BurstyConfig::default()
        }
        .generate();
        let decide = || {
            let mut sim =
                ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy());
            sim.run(&trace).routing_decisions().to_vec()
        };
        let a = decide();
        let b = decide();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same trace must yield the same routing decisions");
    }

    #[test]
    fn every_arrival_is_dispatched_and_sampled() {
        let trace = sp_workload::synthetic::poisson(40, 20.0, 512, 8, 3);
        let mut sim = ClusterSim::new(engines(4), RoutingKind::RoundRobin.policy());
        let report = sim.run(&trace);
        assert_eq!(report.routing_decisions().len(), 40);
        // One load sample per replica per dispatch.
        assert_eq!(report.replica_loads().samples().len(), 40 * 4);
        assert_eq!(report.records().len(), 40);
    }
}
