//! Online load-aware routing: the event-driven multi-replica co-simulation.
//!
//! The paper's production fleet (Fig. 16, Table 5) sits behind a router
//! that reacts to live load. Splitting a trace offline and running the
//! replicas one after another cannot reproduce that: routing decisions
//! must be made *at each request's arrival instant*, against the load the
//! replicas actually have at that moment. [`ClusterSim`] provides the
//! event loop — it advances replicas in global simulated-time order and
//! dispatches each request on arrival via a pluggable [`RoutingPolicy`] —
//! and [`SimNode`] is the stepping interface replicas expose
//! (implemented by [`Engine`] and by
//! [`crate::cluster::DataParallelCluster`] so whole clusters nest as
//! fleet nodes).

use crate::autoscale::{Autoscaler, FleetSignal, ScaleAction};
use crate::engine::Engine;
use crate::fault::{Fault, FaultEvent, FaultPlan, RetryPolicy, SalvagedWork};
use crate::report::EngineReport;
use sp_metrics::{
    ClassSlo, Dur, FailedRequest, FleetTimeline, NodeLoad, ReplicaEventKind, ReplicaLoadSeries,
    RequestClass, RequestFaultKind, RoutingDecision, SimTime,
};
use sp_workload::{Request, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A totally ordered next-event instant — the event calendar's sort key.
///
/// Wraps the raw seconds with [`f64::total_cmp`] so a pathological node
/// reporting a NaN next-event time sorts *after* every finite instant
/// (and after infinity) instead of panicking the comparison, and so the
/// ordering is a genuine `Ord` the binary heap can rely on.
#[derive(Debug, Clone, Copy)]
struct EventKey(f64);

impl EventKey {
    fn of(t: SimTime) -> EventKey {
        EventKey(t.as_secs())
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &EventKey) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &EventKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &EventKey) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Picks a replica for each request as it arrives.
///
/// `loads` holds each replica's live [`NodeLoad`] snapshot at the
/// dispatch instant — outstanding tokens (the classic JSQ signal) plus
/// the ingredients of a TTFT estimate for deadline-aware policies.
/// Policies may keep state (round-robin cursors, cumulative assignment
/// ledgers), hence `&mut self`. Policies are `Send` so a whole
/// [`ClusterSim`] can be stepped from a pool worker during
/// horizon-parallel windows (see [`ClusterSim::set_threads`]).
pub trait RoutingPolicy: std::fmt::Debug + Send {
    /// The policy's display name.
    fn name(&self) -> &str;

    /// Chooses a replica index in `0..loads.len()` for `req`.
    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize;
}

/// Index of the replica with the least outstanding work (ties to the
/// lowest index — `min_by_key` keeps the first minimum).
fn least_outstanding(loads: &[NodeLoad]) -> usize {
    loads
        .iter()
        .enumerate()
        .min_by_key(|&(_, l)| l.outstanding_tokens)
        .map(|(i, _)| i)
        .expect("at least one replica")
}

/// Join-shortest-outstanding-tokens: send each request to the replica
/// with the least live outstanding work (ties to the lowest index). The
/// online analogue of join-shortest-queue, using the same load signal the
/// engines already expose.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestOutstanding;

impl RoutingPolicy for JoinShortestOutstanding {
    fn name(&self) -> &str {
        "join-shortest-outstanding"
    }

    fn pick(&mut self, _req: &Request, loads: &[NodeLoad]) -> usize {
        least_outstanding(loads)
    }
}

/// Join-shortest-queue ranked by estimated TTFT: send each request to
/// the replica whose [`NodeLoad::estimated_ttft`] for *this* request is
/// lowest, instead of the replica with the least raw outstanding tokens.
///
/// Outstanding tokens overweight decode backlogs: a replica carrying
/// long generations looks busy, yet prefills a new prompt nearly as fast
/// as an idle one (decode iterations are short and the prompt chunks in
/// alongside them), while a replica with a deep prefill queue delays the
/// new prompt directly. Ranking by the TTFT estimate routes around
/// prefill queues and KV pressure and ignores harmless decode work.
/// Ties — including the cold start where no replica reports a prefill
/// rate and every estimate saturates at [`Dur::MAX`] — break by
/// outstanding tokens and then lowest index, so the policy degrades to
/// plain JSQ exactly when the TTFT signal carries no information. A
/// *single* rate-less replica among warm ones is never preferred: its
/// unbounded estimate loses to any priced one (the cold-replica dogpile
/// fix in [`NodeLoad::estimated_ttft`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsqByTtft;

impl RoutingPolicy for JsqByTtft {
    fn name(&self) -> &str {
        "jsq-by-ttft"
    }

    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize {
        let input = u64::from(req.input_tokens);
        let footprint = req.total_tokens();
        loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.estimated_ttft(input, footprint)
                    .as_secs()
                    .total_cmp(&b.estimated_ttft(input, footprint).as_secs())
                    .then(a.outstanding_tokens.cmp(&b.outstanding_tokens))
            })
            .map(|(i, _)| i)
            .expect("at least one replica")
    }
}

/// Round-robin: replica `k mod n` for the `k`-th request, load-blind.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn pick(&mut self, _req: &Request, loads: &[NodeLoad]) -> usize {
        let i = self.next % loads.len();
        self.next = self.next.wrapping_add(1);
        i
    }
}

/// The offline static split, replayed online: each request goes to the
/// replica with the least *cumulative assigned* tokens so far, ignoring
/// live load. Produces exactly the same assignment as
/// [`crate::cluster::DataParallelCluster::route`], so it serves as the
/// pre-event-driven baseline in comparisons.
#[derive(Debug, Clone, Default)]
pub struct StaticSplit {
    assigned: Vec<u64>,
}

impl RoutingPolicy for StaticSplit {
    fn name(&self) -> &str {
        "static-split"
    }

    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize {
        self.assigned.resize(loads.len().max(self.assigned.len()), 0);
        let i = (0..loads.len()).min_by_key(|&i| self.assigned[i]).expect("at least one replica");
        self.assigned[i] += req.total_tokens();
        i
    }
}

/// Deadline-aware routing (ROADMAP "SLO-aware admission and routing"):
/// each replica's [`NodeLoad`] yields a time-to-first-token estimate, and
/// interactive requests go to a replica that can still meet their TTFT
/// SLO.
///
/// * Interactive: among replicas whose estimated TTFT fits the
///   interactive budget (*feasible* replicas), pick the least-outstanding
///   one — load-balance inside the feasible set rather than herding onto
///   the single fastest replica. When no replica is feasible, pick the
///   minimum-ETA replica (least-bad). Ties to the lowest index.
/// * Batch: join-shortest-outstanding. Batch deadlines are ~30x looser,
///   so raw load balance maximizes their throughput without displacing
///   interactive traffic (the per-replica engines handle intra-node
///   priority).
#[derive(Debug, Clone, Copy)]
pub struct EarliestDeadlineFeasible {
    slo: ClassSlo,
}

impl EarliestDeadlineFeasible {
    /// Creates the policy with the given per-class targets.
    pub fn new(slo: ClassSlo) -> EarliestDeadlineFeasible {
        EarliestDeadlineFeasible { slo }
    }
}

impl Default for EarliestDeadlineFeasible {
    fn default() -> EarliestDeadlineFeasible {
        EarliestDeadlineFeasible::new(ClassSlo::default())
    }
}

impl RoutingPolicy for EarliestDeadlineFeasible {
    fn name(&self) -> &str {
        "earliest-deadline-feasible"
    }

    fn pick(&mut self, req: &Request, loads: &[NodeLoad]) -> usize {
        if req.class == RequestClass::Batch {
            return least_outstanding(loads);
        }
        let input = u64::from(req.input_tokens);
        let footprint = req.total_tokens();
        let budget = self.slo.target_for(req.class).ttft;
        let etas: Vec<Dur> = loads.iter().map(|l| l.estimated_ttft(input, footprint)).collect();
        let feasible = loads
            .iter()
            .enumerate()
            .filter(|&(i, _)| etas[i] <= budget)
            .min_by_key(|&(_, l)| l.outstanding_tokens)
            .map(|(i, _)| i);
        feasible.unwrap_or_else(|| {
            // Least-bad fallback. ETA ties (e.g. several cold replicas
            // saturating at `Dur::MAX`) break by outstanding tokens so
            // the policy degrades to JSQ instead of herding onto the
            // lowest index.
            etas.iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.as_secs()
                        .total_cmp(&b.1.as_secs())
                        .then(loads[a.0].outstanding_tokens.cmp(&loads[b.0].outstanding_tokens))
                })
                .map(|(i, _)| i)
                .expect("at least one replica")
        })
    }
}

/// Routing policy selector — the builder-friendly, copyable handle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RoutingKind {
    /// [`JoinShortestOutstanding`] (the online default).
    #[default]
    JoinShortestOutstanding,
    /// [`JsqByTtft`] — JSQ ranked by per-request TTFT estimates.
    JsqByTtft,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`StaticSplit`] — the offline greedy baseline.
    StaticSplit,
    /// [`EarliestDeadlineFeasible`] with the given per-class targets.
    EarliestDeadlineFeasible(ClassSlo),
}

impl RoutingKind {
    /// Instantiates the policy.
    pub fn policy(self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingKind::JoinShortestOutstanding => Box::new(JoinShortestOutstanding),
            RoutingKind::JsqByTtft => Box::new(JsqByTtft),
            RoutingKind::RoundRobin => Box::new(RoundRobin::default()),
            RoutingKind::StaticSplit => Box::new(StaticSplit::default()),
            RoutingKind::EarliestDeadlineFeasible(slo) => {
                Box::new(EarliestDeadlineFeasible::new(slo))
            }
        }
    }
}

/// The incremental stepping interface a cluster node exposes so
/// [`ClusterSim`] can co-simulate many of them in global time order.
///
/// Nodes are `Send`: between coordination events their states are
/// disjoint, so [`ClusterSim`] steps them from pool worker threads
/// during horizon-parallel windows (nothing is shared — each worker owns
/// one slot's node exclusively for the window).
pub trait SimNode: Send {
    /// Enqueues a request (dispatch) — requests arrive in nondecreasing
    /// arrival order.
    fn push_request(&mut self, req: Request);

    /// Advances this node by one scheduling event. No-op when idle.
    fn step_once(&mut self);

    /// Instant of this node's next event, or `None` when idle.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Live outstanding work in tokens — the routing load signal.
    fn outstanding_tokens(&self) -> u64;

    /// Full load snapshot for deadline-aware routing. The default carries
    /// only `outstanding_tokens` (TTFT-estimate fields zeroed), under
    /// which [`NodeLoad::estimated_ttft`] saturates at [`Dur::MAX`] for
    /// every node alike and deadline-aware policies degrade to
    /// join-shortest-outstanding through their tie-breaks.
    fn load(&self) -> NodeLoad {
        NodeLoad { outstanding_tokens: self.outstanding_tokens(), ..NodeLoad::default() }
    }

    /// Finalizes and returns the node's accumulated report.
    fn take_report(&mut self) -> EngineReport;

    /// Rips out every unfinished request for crash salvage (the node's
    /// KV state is considered lost). The default salvages nothing —
    /// nodes that don't queue work internally have nothing to lose.
    fn take_unfinished(&mut self) -> SalvagedWork {
        SalvagedWork::default()
    }

    /// Applies a duration multiplier to the node's subsequent work
    /// (`1.0` restores full speed). The default ignores it.
    fn set_slowdown(&mut self, _factor: f64) {}

    /// Advances this node through a *run* of steady-state events in one
    /// call — the decode fast-forward. `cap` bounds the run: no event
    /// at an instant not strictly below it may be stepped (`None` is
    /// unbounded, for drain loops). Implementations must either advance
    /// at least one event and return its summary, or return `None`
    /// having changed nothing, so callers can fall back to
    /// [`SimNode::step_once`]. The default never fast-forwards.
    fn step_run(&mut self, _cap: Option<f64>) -> Option<RunAdvance> {
        None
    }
}

/// Summary of a fast-forwarded run of events (see
/// [`SimNode::step_run`]).
#[derive(Debug, Clone, Copy)]
pub struct RunAdvance {
    /// Number of events advanced (≥ 1).
    pub events: u64,
    /// Instant of the final event stepped — what the per-event loop's
    /// `last` would hold. Run instants are nondecreasing, so this is
    /// also their max.
    pub last: SimTime,
}

impl SimNode for Engine {
    fn push_request(&mut self, req: Request) {
        Engine::push_request(self, req);
    }

    fn step_once(&mut self) {
        Engine::step_once(self);
    }

    fn next_event_time(&self) -> Option<SimTime> {
        Engine::next_event_time(self)
    }

    fn outstanding_tokens(&self) -> u64 {
        Engine::outstanding_tokens(self)
    }

    fn load(&self) -> NodeLoad {
        Engine::load(self)
    }

    fn take_report(&mut self) -> EngineReport {
        Engine::take_report(self)
    }

    fn take_unfinished(&mut self) -> SalvagedWork {
        Engine::take_unfinished(self)
    }

    fn set_slowdown(&mut self, factor: f64) {
        Engine::set_slowdown(self, factor);
    }

    fn step_run(&mut self, cap: Option<f64>) -> Option<RunAdvance> {
        Engine::step_run(self, cap)
    }
}

/// A replica slot's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotState {
    /// Routable: the router may pick it.
    Active,
    /// Provisioned but inside its cold-start delay; becomes routable at
    /// the first dispatch at or after `ready_at`.
    Warming {
        /// Instant the warmup completes.
        ready_at: SimTime,
    },
    /// Excluded from routing; retires once its in-flight work drains.
    Draining,
}

/// One replica slot. Slots are *stable*: a retired replica's slot is
/// never shifted out from under live calendar entries — the node is
/// taken out, the generation bumps, and a later scale-out may install a
/// new tenant in the same slot. Routing decisions and load samples
/// record slot indices, so replica identities in reports stay stable
/// across the whole run.
#[derive(Debug)]
struct Slot<N> {
    node: Option<N>,
    /// Tenancy generation: bumped when a tenant retires, so calendar
    /// entries published by a dead tenant can never alias a new tenant
    /// in the same slot (see [`ClusterSim`]'s calendar docs).
    gen: u64,
    state: SlotState,
}

/// A fault-displaced request waiting out its retry backoff.
#[derive(Debug)]
struct PendingRetry {
    /// Redelivery instant (`lost_at` + backoff).
    at: SimTime,
    /// Insertion sequence — the total-order tie-break for simultaneous
    /// redeliveries.
    seq: u64,
    /// Which attempt this redelivery is (1-based).
    attempt: u32,
    /// When the request lost its previous dispatch.
    lost_at: SimTime,
    req: Request,
}

/// Which fault timer fires next. Same-instant timers resolve in this
/// declaration order (plan faults, then slowdown-window ends, then retry
/// redeliveries), so the global event order is total.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TimerChoice {
    /// The next [`FaultPlan`] event.
    Fault,
    /// The end of the slowdown window at this index of `slow_until`.
    SlowEnd(usize),
    /// The head of the pending-retry queue.
    Retry,
}

/// Fault-injection state carried by the shared fleet core. Fault timers
/// interleave with node events through the simulations' event loops —
/// never behind the calendar's back — so the heap and reference loops
/// stay byte-identical under the same plan.
#[derive(Debug)]
struct FaultState {
    /// The schedule, in firing order; `cursor` is the next unfired event.
    plan: Vec<FaultEvent>,
    cursor: usize,
    retry: RetryPolicy,
    /// Fault-displaced requests awaiting redelivery, sorted by
    /// `(at, seq)`.
    pending: Vec<PendingRetry>,
    /// Total tokens parked in `pending` (counted as outstanding work so
    /// drivers waiting on `outstanding_tokens == 0` don't stop early).
    pending_tokens: u64,
    next_seq: u64,
    /// True arrival instant of every request whose `arrival` field was
    /// rewritten (dispatch-time clamp or retry redelivery), keyed by
    /// request id. Patched back into the records at report time so TTFT
    /// counts the backoff the user actually waited.
    origin_arrival: HashMap<u64, SimTime>,
    /// Retry attempts consumed per request id. Lookup-only bookkeeping —
    /// iteration order never matters.
    attempts: HashMap<u64, u32>,
    /// Requests whose retry budget ran out.
    failed: Vec<FailedRequest>,
    /// Open slowdown windows: `(end instant, slot)`.
    slow_until: Vec<(SimTime, usize)>,
    /// Crashed replicas not yet replaced by a spawn — the autoscaler's
    /// scale-out signal.
    crash_deficit: usize,
    /// A `RouteTimeout` fault has fired and will consume the next
    /// dispatch.
    route_timeout_armed: bool,
    /// The fault clock: the latest instant the fleet has witnessed
    /// (dispatches, node events, fired timers). Timers scheduled in the
    /// past fire "now" — never before it — so event time stays monotone.
    now: SimTime,
}

impl FaultState {
    fn new(plan: FaultPlan, retry: RetryPolicy) -> FaultState {
        FaultState {
            plan: plan.events().to_vec(),
            cursor: 0,
            retry,
            pending: Vec::new(),
            pending_tokens: 0,
            next_seq: 0,
            origin_arrival: HashMap::new(),
            attempts: HashMap::new(),
            failed: Vec::new(),
            slow_until: Vec::new(),
            crash_deficit: 0,
            route_timeout_armed: false,
            now: SimTime::ZERO,
        }
    }

    /// The earliest unfired timer, clamped to the fault clock. Ties
    /// break by [`TimerChoice`] declaration order, then by window index.
    fn peek_timer(&self) -> Option<(SimTime, TimerChoice)> {
        let mut best: Option<(SimTime, u8, usize, TimerChoice)> = None;
        let offer = |cand: (SimTime, u8, usize, TimerChoice),
                     best: &mut Option<(SimTime, u8, usize, TimerChoice)>| {
            let better = match best {
                None => true,
                Some(b) => cand
                    .0
                    .as_secs()
                    .total_cmp(&b.0.as_secs())
                    .then(cand.1.cmp(&b.1))
                    .then(cand.2.cmp(&b.2))
                    .is_lt(),
            };
            if better {
                *best = Some(cand);
            }
        };
        if let Some(e) = self.plan.get(self.cursor) {
            offer((e.at.max(self.now), 0, 0, TimerChoice::Fault), &mut best);
        }
        for (j, &(end, _)) in self.slow_until.iter().enumerate() {
            offer((end.max(self.now), 1, j, TimerChoice::SlowEnd(j)), &mut best);
        }
        if let Some(p) = self.pending.first() {
            offer((p.at.max(self.now), 2, 0, TimerChoice::Retry), &mut best);
        }
        best.map(|(t, _, _, c)| (t, c))
    }
}

/// The lifecycle-aware fleet core shared by [`ClusterSim`] and
/// [`ReferenceClusterSim`]: slots, routing, autoscaling decisions,
/// lifecycle bookkeeping and report assembly. The two simulations differ
/// *only* in how they find the earliest pending event (binary-heap
/// calendar vs. linear rescan), so the byte-identity property between
/// them keeps pinning exactly the calendar — scale events included.
#[derive(Debug)]
struct Fleet<N> {
    slots: Vec<Slot<N>>,
    policy: Box<dyn RoutingPolicy>,
    throughput_bin: Dur,
    /// Decision trail accumulated across dispatches; taken with the
    /// report. `RoutingDecision::replica` holds the stable slot index.
    decisions: Vec<RoutingDecision>,
    /// Per-slot loads sampled at each dispatch; taken with the report.
    load_series: ReplicaLoadSeries,
    /// Replica lifecycle events + replica-seconds accounting.
    timeline: FleetTimeline,
    /// Reports of retired replicas, merged into the final report.
    retired: Vec<EngineReport>,
    /// Scale-out / drain-then-retire decision machinery, if attached.
    autoscaler: Option<Autoscaler<N>>,
    /// Fault-injection machinery, if attached. `None` leaves every
    /// dispatch and event-loop path exactly as the fault-free build.
    faults: Option<FaultState>,
    /// Scratch for the per-dispatch load snapshot and its position→slot
    /// map, reused to keep the dispatch hot path allocation-free.
    scratch_loads: Vec<NodeLoad>,
    scratch_slots: Vec<usize>,
}

impl<N: SimNode> Fleet<N> {
    fn new(nodes: Vec<N>, policy: Box<dyn RoutingPolicy>) -> Fleet<N> {
        assert!(!nodes.is_empty(), "cluster simulation needs at least one node");
        let mut timeline = FleetTimeline::new();
        let slots: Vec<Slot<N>> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, n)| {
                timeline.record(i, SimTime::ZERO, ReplicaEventKind::Spawned);
                timeline.record(i, SimTime::ZERO, ReplicaEventKind::Ready);
                Slot { node: Some(n), gen: 0, state: SlotState::Active }
            })
            .collect();
        Fleet {
            slots,
            policy,
            throughput_bin: Dur::from_secs(1.0),
            decisions: Vec::new(),
            load_series: ReplicaLoadSeries::new(),
            timeline,
            retired: Vec::new(),
            autoscaler: None,
            faults: None,
            scratch_loads: Vec::new(),
            scratch_slots: Vec::new(),
        }
    }

    fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Provisioned replicas: slots currently holding a node (routable,
    /// warming or draining).
    fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.node.is_some()).count()
    }

    /// Routable replicas: provisioned and in the `Active` state.
    fn routable_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.node.is_some() && matches!(s.state, SlotState::Active))
            .count()
    }

    fn gen(&self, i: usize) -> u64 {
        self.slots[i].gen
    }

    fn next_event_of(&self, i: usize) -> Option<SimTime> {
        self.slots[i].node.as_ref().and_then(SimNode::next_event_time)
    }

    /// Linear rescanning next-event query over live slots: O(R) per
    /// event. Ties break to the lowest slot index (`min_by` keeps the
    /// first minimum) and times compare with `total_cmp`, matching the
    /// calendar's key order.
    fn earliest_linear(&self) -> Option<usize> {
        (0..self.slots.len())
            .filter_map(|i| self.next_event_of(i).map(|t| (i, t)))
            .min_by(|a, b| a.1.as_secs().total_cmp(&b.1.as_secs()))
            .map(|(i, _)| i)
    }

    fn step(&mut self, i: usize) {
        if let Some(n) = self.slots[i].node.as_mut() {
            n.step_once();
        }
    }

    /// Post-step lifecycle hook: a draining slot whose final event just
    /// fired (at instant `t`) retires on the spot, and the fault clock
    /// advances to the event's instant.
    fn after_step(&mut self, i: usize, t: SimTime) {
        if let Some(f) = self.faults.as_mut() {
            f.now = f.now.max(t);
        }
        self.maybe_retire(i, t);
    }

    /// Retires slot `i` if it is draining and idle: takes its report,
    /// removes the node, bumps the tenancy generation. Returns whether
    /// it retired.
    fn maybe_retire(&mut self, i: usize, at: SimTime) -> bool {
        if self.slots[i].state != SlotState::Draining {
            return false;
        }
        let idle = self.slots[i]
            .node
            .as_ref()
            .is_some_and(|n| n.next_event_time().is_none() && n.outstanding_tokens() == 0);
        if !idle {
            return false;
        }
        let mut node = self.slots[i].node.take().expect("draining slot holds a node");
        self.retired.push(node.take_report());
        self.slots[i].gen += 1;
        self.slots[i].state = SlotState::Active;
        self.timeline.record(i, at, ReplicaEventKind::Retired);
        true
    }

    /// Provisions one replica (a scale-out decision at instant `now`),
    /// reusing the lowest free slot if any. No-op at `max_replicas`.
    fn spawn(&mut self, now: SimTime) {
        // Every spawn attempt repays one unit of crash deficit — even
        // one clamped away at `max_replicas`, or the deficit signal
        // would re-fire forever against a full fleet.
        if let Some(f) = self.faults.as_mut() {
            f.crash_deficit = f.crash_deficit.saturating_sub(1);
        }
        let config = self.autoscaler.as_ref().expect("spawn requires an autoscaler").config;
        if self.live_count() >= config.max_replicas {
            return;
        }
        let node = {
            let scaler = self.autoscaler.as_mut().expect("spawn requires an autoscaler");
            let node = (scaler.spawner)(scaler.spawned);
            scaler.spawned += 1;
            node
        };
        let i = match self.slots.iter().position(|s| s.node.is_none()) {
            Some(i) => i,
            None => {
                self.slots.push(Slot { node: None, gen: 0, state: SlotState::Active });
                self.slots.len() - 1
            }
        };
        self.slots[i].node = Some(node);
        self.timeline.record(i, now, ReplicaEventKind::Spawned);
        let ready_at = now + config.cold_start;
        if ready_at <= now {
            self.slots[i].state = SlotState::Active;
            self.timeline.record(i, now, ReplicaEventKind::Ready);
        } else {
            self.slots[i].state = SlotState::Warming { ready_at };
        }
    }

    /// Starts drain-then-retire on slot `i` (a scale-in decision at
    /// instant `now`). No-op unless the slot is routable, and ignored
    /// when the routable fleet is at `min_replicas`. An already-idle
    /// victim retires immediately.
    fn drain(&mut self, i: usize, now: SimTime) {
        let config = self.autoscaler.as_ref().expect("drain requires an autoscaler").config;
        if self.slots[i].node.is_none() || self.slots[i].state != SlotState::Active {
            return;
        }
        if self.routable_count() <= config.min_replicas {
            return;
        }
        self.slots[i].state = SlotState::Draining;
        self.timeline.record(i, now, ReplicaEventKind::DrainStarted);
        self.maybe_retire(i, now);
    }

    /// Lifecycle work at a dispatch instant, before routing: warmed-up
    /// replicas join the routable set, idle draining slots retire, and
    /// the scale policy observes the routable loads and acts. A fleet
    /// without an autoscaler skips all of it — no slot ever leaves
    /// `Active`, so the fixed-fleet dispatch path is unchanged.
    fn pre_dispatch(&mut self, now: SimTime) {
        if self.autoscaler.is_none() {
            return;
        }
        for i in 0..self.slots.len() {
            if let SlotState::Warming { ready_at } = self.slots[i].state {
                if ready_at <= now && self.slots[i].node.is_some() {
                    self.slots[i].state = SlotState::Active;
                    self.timeline.record(i, ready_at, ReplicaEventKind::Ready);
                }
            }
        }
        for i in 0..self.slots.len() {
            self.maybe_retire(i, now);
        }

        // Snapshot the routable loads for the scale policy — the same
        // signal (and sampling cadence) the router acts on.
        let mut loads = std::mem::take(&mut self.scratch_loads);
        let mut slots = std::mem::take(&mut self.scratch_slots);
        loads.clear();
        slots.clear();
        let mut warming = 0usize;
        let mut draining = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            let Some(node) = &s.node else { continue };
            match s.state {
                SlotState::Active => {
                    loads.push(node.load());
                    slots.push(i);
                }
                SlotState::Warming { .. } => warming += 1,
                SlotState::Draining => draining += 1,
            }
        }
        let mut actions = {
            let scaler = self.autoscaler.as_mut().expect("checked above");
            let mut actions = std::mem::take(&mut scaler.actions);
            actions.clear();
            let crash_deficit = self.faults.as_ref().map_or(0, |f| f.crash_deficit);
            let signal = FleetSignal { now, loads: &loads, warming, draining, crash_deficit };
            scaler.policy.decide(&signal, &mut actions);
            actions
        };
        for action in actions.drain(..) {
            match action {
                ScaleAction::Spawn => self.spawn(now),
                ScaleAction::Drain { replica } => {
                    if let Some(&slot) = slots.get(replica) {
                        self.drain(slot, now);
                    }
                }
            }
        }
        self.autoscaler.as_mut().expect("checked above").actions = actions;
        self.scratch_loads = loads;
        self.scratch_slots = slots;
    }

    /// Samples the routable loads, records the load series, and routes
    /// `req`, returning the chosen slot index.
    fn route(&mut self, req: &Request) -> usize {
        let mut loads = std::mem::take(&mut self.scratch_loads);
        let mut slots = std::mem::take(&mut self.scratch_slots);
        loads.clear();
        slots.clear();
        for (i, s) in self.slots.iter().enumerate() {
            if matches!(s.state, SlotState::Active) {
                if let Some(node) = &s.node {
                    let load = node.load();
                    self.load_series.record(i, req.arrival, load.outstanding_tokens);
                    loads.push(load);
                    slots.push(i);
                }
            }
        }
        assert!(!loads.is_empty(), "no routable replica (min_replicas >= 1 guards this)");
        let pick = self.policy.pick(req, &loads).min(loads.len() - 1);
        let slot = slots[pick];
        self.decisions.push(RoutingDecision {
            request_id: req.id,
            replica: slot,
            at: req.arrival,
            load_tokens: loads[pick].outstanding_tokens,
        });
        self.scratch_loads = loads;
        self.scratch_slots = slots;
        slot
    }

    fn push_to(&mut self, slot: usize, req: Request) {
        self.slots[slot].node.as_mut().expect("routed to a live slot").push_request(req);
    }

    /// Dispatches one request at instant `now`: lifecycle work, then
    /// routing, then enqueue. Returns the chosen slot, or `None` when a
    /// fault consumed the dispatch (armed route timeout, or no routable
    /// replica left) and the request re-entered under the retry policy.
    ///
    /// With faults attached, the enqueued copy's `arrival` is clamped to
    /// the fault clock (engines require nondecreasing arrivals, and
    /// redeliveries happen after later work was pushed); the true
    /// arrival is remembered and patched back at report time. Without
    /// faults the clamp never fires and this is exactly the pre-fault
    /// dispatch path.
    fn dispatch(&mut self, req: Request, now: SimTime) -> Option<usize> {
        self.pre_dispatch(now);
        if self.faults.is_none() {
            let slot = self.route(&req);
            self.push_to(slot, req);
            return Some(slot);
        }
        {
            let f = self.faults.as_mut().expect("checked above");
            f.now = f.now.max(now);
            if f.route_timeout_armed {
                f.route_timeout_armed = false;
                self.requeue_after_fault(req, now);
                return None;
            }
        }
        if self.routable_count() == 0 {
            // Every replica is dead (crashes ignore `min_replicas`).
            // The request waits out a backoff and tries again — by then
            // the autoscaler may have replaced the losses.
            self.requeue_after_fault(req, now);
            return None;
        }
        let slot = self.route(&req);
        let f = self.faults.as_mut().expect("checked above");
        let push = if req.arrival.as_secs() < f.now.as_secs() {
            f.origin_arrival.entry(req.id).or_insert(req.arrival);
            Request { arrival: f.now, ..req }
        } else {
            req
        };
        self.push_to(slot, push);
        Some(slot)
    }

    /// Re-enters a fault-displaced request under the retry policy:
    /// consumes one attempt, then either parks it behind an exponential
    /// backoff or — budget exhausted — records a terminal failure.
    fn requeue_after_fault(&mut self, req: Request, at: SimTime) {
        let f = self.faults.as_mut().expect("fault requeue requires fault state");
        f.origin_arrival.entry(req.id).or_insert(req.arrival);
        let attempts = f.attempts.entry(req.id).or_insert(0);
        *attempts += 1;
        let attempt = *attempts;
        if attempt > f.retry.max_retries {
            f.failed.push(FailedRequest { request_id: req.id, attempts: f.retry.max_retries });
            self.timeline.record_request_fault(
                req.id,
                at,
                RequestFaultKind::Failed { attempts: f.retry.max_retries },
            );
            return;
        }
        let deliver = at + f.retry.backoff_for(attempt);
        let seq = f.next_seq;
        f.next_seq += 1;
        let key = (deliver.as_secs().to_bits(), seq);
        let pos = f.pending.partition_point(|p| (p.at.as_secs().to_bits(), p.seq) <= key);
        f.pending_tokens += req.total_tokens();
        f.pending.insert(pos, PendingRetry { at: deliver, seq, attempt, lost_at: at, req });
    }

    /// Kills the tenant of slot `i` at instant `at`: its report is kept
    /// (completed work survives), its unfinished requests are salvaged
    /// into the retry queue with their prefill progress written off (the
    /// KV cache died with the replica), and the slot retires *without*
    /// draining — the generation bump tombstones its calendar keys
    /// exactly like the retire path. Crashing an empty slot is a no-op.
    fn crash(&mut self, i: usize, at: SimTime) {
        if i >= self.slots.len() || self.slots[i].node.is_none() {
            return;
        }
        let mut node = self.slots[i].node.take().expect("checked above");
        let salvage = node.take_unfinished();
        self.retired.push(node.take_report());
        self.slots[i].gen += 1;
        self.slots[i].state = SlotState::Active;
        self.timeline.record(i, at, ReplicaEventKind::Crashed);
        self.timeline.note_wasted_prefill(salvage.wasted_prefill_tokens);
        {
            let f = self.faults.as_mut().expect("crash requires fault state");
            f.crash_deficit += 1;
            // The slowdown window dies with its tenant.
            f.slow_until.retain(|&(_, s)| s != i);
        }
        let mut requests = salvage.requests;
        requests.sort_by(|a, b| {
            a.arrival.as_secs().total_cmp(&b.arrival.as_secs()).then(a.id.cmp(&b.id))
        });
        for req in requests {
            self.requeue_after_fault(req, at);
        }
    }

    /// Instant of the earliest unfired fault timer, if any.
    fn next_timer_time(&self) -> Option<SimTime> {
        self.faults.as_ref().and_then(FaultState::peek_timer).map(|(t, _)| t)
    }

    /// Fires exactly the earliest fault timer. Returns the slot whose
    /// next-event key may have changed (the crash victim, or the slot a
    /// retry was redelivered to) so the calendar can republish it.
    fn fire_next_timer(&mut self) -> Option<usize> {
        let (tt, choice) = self.faults.as_ref().and_then(FaultState::peek_timer)?;
        let f = self.faults.as_mut().expect("peeked above");
        f.now = f.now.max(tt);
        match choice {
            TimerChoice::Fault => {
                let event = f.plan[f.cursor];
                f.cursor += 1;
                match event.fault {
                    Fault::Crash { replica } => {
                        self.crash(replica, tt);
                        // An out-of-range target was a no-op: nothing to
                        // republish in the calendar.
                        (replica < self.slots.len()).then_some(replica)
                    }
                    Fault::Slowdown { replica, factor, duration } => {
                        if replica < self.slots.len() {
                            if let Some(n) = self.slots[replica].node.as_mut() {
                                n.set_slowdown(factor);
                                let f = self.faults.as_mut().expect("fault state");
                                // A new window replaces any open one.
                                f.slow_until.retain(|&(_, s)| s != replica);
                                f.slow_until.push((tt + duration, replica));
                            }
                        }
                        None
                    }
                    Fault::RouteTimeout => {
                        f.route_timeout_armed = true;
                        None
                    }
                }
            }
            TimerChoice::SlowEnd(j) => {
                let (_, slot) = f.slow_until.remove(j);
                if let Some(n) = self.slots[slot].node.as_mut() {
                    n.set_slowdown(1.0);
                }
                None
            }
            TimerChoice::Retry => {
                let p = f.pending.remove(0);
                f.pending_tokens -= p.req.total_tokens();
                // Full re-prefill: the cached prefix (and any prefix
                // group sharing) died with the replica's KV cache.
                let req = Request { arrival: tt, cached_prefix: 0, prefix_group: None, ..p.req };
                let slot = self.dispatch(req, tt);
                if slot.is_some() {
                    self.timeline.record_request_fault(
                        p.req.id,
                        tt,
                        RequestFaultKind::Redispatched { attempt: p.attempt },
                    );
                    self.timeline.note_recovery(tt.since(p.lost_at));
                }
                slot
            }
        }
    }

    /// Salvages every unfinished request in the fleet — live nodes'
    /// queues plus the fault-retry queue — so a faulted fleet nested as
    /// a node inside a larger simulation loses nothing when *it* is
    /// crashed.
    fn take_unfinished_all(&mut self) -> SalvagedWork {
        let mut salvaged = SalvagedWork::default();
        for slot in &mut self.slots {
            if let Some(n) = slot.node.as_mut() {
                let part = n.take_unfinished();
                salvaged.wasted_prefill_tokens += part.wasted_prefill_tokens;
                salvaged.requests.extend(part.requests);
            }
        }
        if let Some(f) = self.faults.as_mut() {
            for p in f.pending.drain(..) {
                salvaged.requests.push(p.req);
            }
            f.pending_tokens = 0;
        }
        salvaged
    }

    fn set_slowdown_all(&mut self, factor: f64) {
        for slot in &mut self.slots {
            if let Some(n) = slot.node.as_mut() {
                n.set_slowdown(factor);
            }
        }
    }

    fn outstanding(&self) -> u64 {
        let parked = self.faults.as_ref().map_or(0, |f| f.pending_tokens);
        self.slots
            .iter()
            .filter_map(|s| s.node.as_ref())
            .map(SimNode::outstanding_tokens)
            .sum::<u64>()
            + parked
    }

    fn aggregate_load(&self) -> NodeLoad {
        let seed = NodeLoad { min_kv_free_tokens: u64::MAX, ..NodeLoad::default() };
        self.slots.iter().filter_map(|s| s.node.as_ref()).map(SimNode::load).fold(seed, |acc, l| {
            NodeLoad {
                outstanding_tokens: acc.outstanding_tokens + l.outstanding_tokens,
                queued_prefill_tokens: acc.queued_prefill_tokens + l.queued_prefill_tokens,
                kv_free_tokens: acc.kv_free_tokens + l.kv_free_tokens,
                min_kv_free_tokens: acc.min_kv_free_tokens.min(l.min_kv_free_tokens),
                prefill_tokens_per_sec: acc.prefill_tokens_per_sec + l.prefill_tokens_per_sec,
            }
        })
    }

    /// Finalizes an incremental run: merges retired and live per-node
    /// reports and attaches the accumulated decision trail, load samples
    /// and lifecycle timeline (all reset). With faults attached, every
    /// record whose `arrival` was rewritten (dispatch clamp or retry
    /// redelivery) is patched back to its true arrival *before* the
    /// merge replays it into the latency metrics, so TTFT and E2E count
    /// the backoff the user actually waited; terminal failures ride
    /// along via [`EngineReport::failed`].
    fn take_report(&mut self) -> EngineReport {
        let mut merged = EngineReport::new(self.throughput_bin);
        let origin = self.faults.as_mut().map(|f| std::mem::take(&mut f.origin_arrival));
        let mut reports = std::mem::take(&mut self.retired);
        for s in &mut self.slots {
            if let Some(n) = s.node.as_mut() {
                reports.push(n.take_report());
            }
        }
        for mut report in reports {
            if let Some(origin) = &origin {
                for r in report.records_mut() {
                    if let Some(&arrival) = origin.get(&r.request_id) {
                        r.arrival = arrival;
                    }
                }
            }
            merged.merge(report);
        }
        if let Some(f) = self.faults.as_mut() {
            merged.note_failures(std::mem::take(&mut f.failed));
            f.attempts.clear();
        }
        merged.set_routing(
            std::mem::take(&mut self.decisions),
            std::mem::take(&mut self.load_series),
        );
        merged.set_fleet_timeline(std::mem::take(&mut self.timeline));
        merged
    }

    fn into_nodes(self) -> Vec<N> {
        self.slots.into_iter().filter_map(|s| s.node).collect()
    }
}

/// Event-driven multi-replica co-simulation.
///
/// Replicas advance in global simulated-time order; each request is
/// dispatched *at its arrival instant* to the replica the
/// [`RoutingPolicy`] picks from live `outstanding_tokens`. The merged
/// report carries the routing decision trail and a per-replica load time
/// series sampled at every dispatch.
///
/// Attach an [`Autoscaler`] with [`ClusterSim::with_autoscaler`] to let
/// a [`crate::autoscale::ScalePolicy`] grow and shrink the fleet
/// mid-trace on the load signal (scale-out with a cold-start delay,
/// drain-then-retire on the way down); the report then also carries the
/// replica lifecycle timeline and its replica-seconds cost accounting.
///
/// # Examples
///
/// ```
/// use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
/// use sp_engine::routing::{ClusterSim, RoutingKind};
/// use sp_engine::{Engine, EngineConfig};
/// use sp_model::presets;
/// use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
/// use sp_workload::synthetic;
///
/// let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
/// let replicas = (0..2)
///     .map(|_| {
///         Engine::new(
///             ExecutionModel::new(node, presets::qwen_32b()),
///             Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
///             EngineConfig::default(),
///         )
///     })
///     .collect();
/// let mut sim = ClusterSim::new(replicas, RoutingKind::default().policy());
/// let report = sim.run(&synthetic::poisson(8, 4.0, 512, 8, 1));
/// assert_eq!(report.records().len(), 8);
/// assert_eq!(report.routing_decisions().len(), 8);
/// ```
#[derive(Debug)]
pub struct ClusterSim<N: SimNode> {
    fleet: Fleet<N>,
    /// The event calendar: a min-heap of `(next_event_time, slot,
    /// generation)` entries with *lazy invalidation*. Stepping or
    /// feeding a slot pushes its fresh key instead of rewriting the old
    /// entry; stale entries (whose key no longer matches the slot's live
    /// `next_event_time`) are discarded when they surface at the top.
    /// The key includes the slot index, so simultaneous events pop in
    /// slot order — the same lowest-index tie-break the original linear
    /// rescanning loop got from `min_by`, keeping every downstream
    /// report byte-identical while next-event dispatch drops from O(R)
    /// to O(log R).
    ///
    /// The *generation* tombstones entries across replica lifecycles:
    /// when a draining replica retires, its published keys stay buried
    /// in the heap, and a scale-out may install a new tenant in the same
    /// slot whose next event happens to coincide with a dead entry's
    /// key. Pure key matching would mistake that stale entry for live.
    /// The tenancy generation (bumped at every retire) makes entries
    /// from retired tenants compare unequal regardless of key
    /// coincidences.
    ///
    /// Invariant (holds between public calls): every live slot's current
    /// key is present, and the heap top is not stale — so read-only
    /// peeks need no cleanup.
    ///
    /// `None` below [`LINEAR_SCAN_MAX_REPLICAS`] slots: at small fleet
    /// sizes the heap's push/pop/settle traffic costs more than an O(R)
    /// rescan (`Fleet::earliest_linear`, whose `total_cmp` + first-min
    /// tie-break is the same total order as the heap key), so the
    /// calendar degrades to the linear scan and upgrades to a heap the
    /// moment a scale-out grows the slot vector past the threshold.
    calendar: Option<BinaryHeap<Reverse<(EventKey, usize, u64)>>>,
    /// Fan-out width for horizon-parallel windows (see
    /// [`ClusterSim::set_threads`]); `1` steps windows inline.
    threads: usize,
    /// `false` pins the legacy one-event-at-a-time advance loop — kept
    /// only so the property suite can compare the horizon-parallel
    /// engine against the sequential calendar it must be byte-identical
    /// to.
    horizon_parallel: bool,
    /// Scratch buffers for window stepping, reused across windows to
    /// keep the hot path allocation-free.
    window_pending: Vec<usize>,
    window_outcomes: Vec<WindowOutcome>,
    window_retires: Vec<(SimTime, usize)>,
    /// Fan-out result buffer for [`sp_core::map_into`], reused across
    /// windows like the other scratch — the per-window allocation was
    /// the last one on the horizon-parallel hot path.
    window_results: Vec<(Option<WindowOutcome>, bool)>,
}

/// Replica-count threshold below which [`ClusterSim`] uses the linear
/// rescanning `earliest` query instead of the heap calendar. Measured
/// crossover: at 1–4 replicas the heap's settle traffic loses to the
/// rescan (simperf's smoke `speedup_vs_reference` dipped to 0.93); by
/// 16 replicas the heap wins clearly.
const LINEAR_SCAN_MAX_REPLICAS: usize = 8;

/// What bounds one horizon-parallel window.
#[derive(Clone, Copy)]
enum WindowCap {
    /// Drain: no bound — step until idle (NaN-keyed events included,
    /// matching the sequential drain loops, which never compare against
    /// a horizon).
    Unbounded,
    /// Fault-free advance: step while `t < cap`, but a NaN-keyed event
    /// aborts the window for a sequential fallback — the sequential
    /// loop's `t >= horizon` break is false for NaN, and whether it
    /// steps a NaN node depends on *other* slots' keys (NaN sorts last
    /// in the calendar order), which a per-slot worker cannot see.
    FaultFree(f64),
    /// Faulted advance: step while `t < cap` — NaN simply stops the
    /// slot, exactly like the sequential faulted loop's
    /// `t < horizon` guard.
    Faulted(f64),
}

/// One slot's result for one horizon-parallel window.
#[derive(Debug, Clone, Copy)]
struct WindowOutcome {
    slot: usize,
    /// Instant of the last event stepped (retire candidates use it as
    /// their retire instant, matching the sequential `after_step`).
    last: SimTime,
    /// Max event instant stepped — folded into the fault clock `f.now`
    /// (per-slot max of maxes equals the sequential running max).
    hi: SimTime,
}

/// Raw base pointer to the slot vector, handed to pool workers. Each
/// worker dereferences only the slots assigned to it, so the `&mut`
/// accesses are disjoint.
struct SlotsPtr<N>(*mut Slot<N>);
impl<N> Clone for SlotsPtr<N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<N> Copy for SlotsPtr<N> {}
// SAFETY: workers access disjoint slots (each index is claimed exactly
// once per window), and `N: Send` via the `SimNode` supertrait.
unsafe impl<N: Send> Send for SlotsPtr<N> {}
unsafe impl<N: Send> Sync for SlotsPtr<N> {}

/// Steps one slot's node up to the window cap. Runs on a pool worker
/// (or inline); touches nothing but the node itself.
fn step_slot<N: SimNode>(node: &mut N, cap: WindowCap) -> (Option<WindowOutcome>, bool) {
    let mut last: Option<SimTime> = None;
    let mut hi: Option<SimTime> = None;
    let mut steps: u64 = 0;
    while let Some(t) = node.next_event_time() {
        let ts = t.as_secs();
        match cap {
            WindowCap::Unbounded => {}
            WindowCap::FaultFree(cap) => {
                if ts.is_nan() {
                    return (outcome_of(last, hi), true);
                }
                if ts >= cap {
                    break;
                }
            }
            WindowCap::Faulted(cap) => {
                // NaN fails `ts < cap` and stops the slot, matching the
                // sequential faulted loop.
                if ts.is_nan() || ts >= cap {
                    break;
                }
            }
        }
        // Try a fast-forward run first: the node advances a whole
        // steady-state stretch in one call (re-checking the cap per
        // event internally), and the calendar republishes once per run
        // instead of once per event. Run instants are nondecreasing, so
        // folding the run's final instant equals folding each one.
        let capf = match cap {
            WindowCap::Unbounded => None,
            WindowCap::FaultFree(c) | WindowCap::Faulted(c) => Some(c),
        };
        let advanced = match node.step_run(capf) {
            Some(run) => {
                last = Some(run.last);
                steps += run.events;
                run.last
            }
            None => {
                node.step_once();
                last = Some(t);
                steps += 1;
                t
            }
        };
        hi = Some(match hi {
            Some(h) => h.max(advanced),
            None => advanced,
        });
        // Mirrors the sequential loops' global progress guard, per slot.
        assert!(steps < 400_000_000, "cluster simulation failed to terminate");
    }
    (outcome_of(last, hi), false)
}

fn outcome_of(last: Option<SimTime>, hi: Option<SimTime>) -> Option<WindowOutcome> {
    match (last, hi) {
        (Some(last), Some(hi)) => Some(WindowOutcome { slot: usize::MAX, last, hi }),
        _ => None,
    }
}

impl<N: SimNode> ClusterSim<N> {
    /// Creates a co-simulation over `nodes` with the given router.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, policy: Box<dyn RoutingPolicy>) -> ClusterSim<N> {
        let calendar =
            if nodes.len() > LINEAR_SCAN_MAX_REPLICAS { Some(BinaryHeap::new()) } else { None };
        let mut sim = ClusterSim {
            fleet: Fleet::new(nodes, policy),
            calendar,
            threads: sp_core::default_threads(),
            horizon_parallel: true,
            window_pending: Vec::new(),
            window_outcomes: Vec::new(),
            window_retires: Vec::new(),
            window_results: Vec::new(),
        };
        for i in 0..sim.fleet.slot_count() {
            sim.reschedule(i);
        }
        sim
    }

    /// Sets the fan-out width for horizon-parallel windows (clamped to
    /// at least 1; `1` steps windows inline on the calling thread). The
    /// default comes from [`sp_core::default_threads`] — `SP_THREADS`
    /// or the machine's available parallelism. Reports are byte-identical
    /// for every width.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Builder form of [`ClusterSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> ClusterSim<N> {
        self.set_threads(threads);
        self
    }

    /// The current horizon-parallel fan-out width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pins the legacy one-event-at-a-time advance loop (`false`) or the
    /// horizon-parallel window engine (`true`, the default). Exists so
    /// the property suite can pin byte-identity between the two; not
    /// part of the supported API.
    #[doc(hidden)]
    pub fn set_horizon_parallel(&mut self, on: bool) {
        self.horizon_parallel = on;
    }

    /// Attaches an autoscaler: at every dispatch instant its
    /// [`crate::autoscale::ScalePolicy`] observes the routable loads and
    /// may provision replicas (routable after the configured cold-start
    /// delay) or drain-then-retire them. Without this, the fleet is
    /// fixed and dispatch behaves exactly as before.
    pub fn with_autoscaler(mut self, scaler: Autoscaler<N>) -> ClusterSim<N> {
        self.fleet.autoscaler = Some(scaler);
        self
    }

    /// Attaches a fault-injection plan and retry policy: plan events
    /// fire as timers in the global event order (crashes salvage and
    /// re-dispatch work under `retry`), and the report gains the
    /// crash/redispatch/failure accounting. Injecting
    /// [`FaultPlan::empty`] is byte-identical to no injection.
    pub fn with_faults(mut self, plan: FaultPlan, retry: RetryPolicy) -> ClusterSim<N> {
        self.fleet.faults = Some(FaultState::new(plan, retry));
        self
    }

    /// Sets the merged report's throughput bin width (default 1 s).
    pub fn throughput_bin(mut self, bin: Dur) -> ClusterSim<N> {
        self.fleet.throughput_bin = bin;
        self
    }

    /// Number of provisioned nodes (routable, warming or draining).
    pub fn node_count(&self) -> usize {
        self.fleet.live_count()
    }

    /// Number of routable nodes (provisioned and past warmup, not
    /// draining). Equals [`ClusterSim::node_count`] without an
    /// autoscaler.
    pub fn routable_count(&self) -> usize {
        self.fleet.routable_count()
    }

    /// The routing policy's name.
    pub fn policy_name(&self) -> &str {
        self.fleet.policy.name()
    }

    /// Consumes the simulation, returning its live nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.fleet.into_nodes()
    }

    /// Publishes slot `i`'s current next-event key on the calendar. Must
    /// be called after every operation that may change the slot's next
    /// event (stepping it, feeding it a request, installing or retiring
    /// a tenant); the key it superseded becomes stale and is lazily
    /// discarded by [`ClusterSim::settle`].
    fn reschedule(&mut self, i: usize) {
        let Some(cal) = self.calendar.as_mut() else { return };
        let _cal_span = sp_core::profile::start(sp_core::profile::Phase::Calendar);
        if let Some(key) = self.fleet.next_event_of(i).map(EventKey::of) {
            cal.push(Reverse((key, i, self.fleet.gen(i))));
        }
    }

    /// Upgrades the linear-scan `earliest` to the heap calendar once a
    /// scale-out grows the slot vector past
    /// [`LINEAR_SCAN_MAX_REPLICAS`]. Slots never shrink, so the upgrade
    /// is one-way. Must run after any operation that can spawn (dispatch
    /// and timer fires, both of which run autoscaler actions).
    fn maybe_upgrade_calendar(&mut self) {
        if self.calendar.is_some() || self.fleet.slot_count() <= LINEAR_SCAN_MAX_REPLICAS {
            return;
        }
        self.calendar = Some(BinaryHeap::with_capacity(self.fleet.slot_count() * 2));
        for i in 0..self.fleet.slot_count() {
            self.reschedule(i);
        }
    }

    /// Discards stale calendar entries until the top is live (same
    /// tenancy generation, key matches the slot's current
    /// `next_event_time`) or the calendar is empty. Every mutating
    /// public method ends with a settled calendar, so read-only peeks
    /// ([`ClusterSim::next_event_time`]) stay `&self`.
    fn settle(&mut self) {
        let Some(cal) = self.calendar.as_mut() else { return };
        let _cal_span = sp_core::profile::start(sp_core::profile::Phase::Calendar);
        while let Some(&Reverse((key, i, gen))) = cal.peek() {
            if self.fleet.gen(i) == gen
                && self.fleet.next_event_of(i).map(EventKey::of) == Some(key)
            {
                break;
            }
            cal.pop();
        }
    }

    /// Index of the slot with the earliest pending event, if any,
    /// settling the calendar first. Simultaneous events resolve to the
    /// lowest slot index (the index is part of the heap key), so
    /// stepping order — and therefore every downstream report — is
    /// deterministic and identical to the reference linear rescanning
    /// loop's `min_by` tie-break.
    fn earliest(&mut self) -> Option<usize> {
        if self.calendar.is_none() {
            return self.fleet.earliest_linear();
        }
        self.settle();
        self.calendar.as_ref().and_then(|cal| cal.peek().map(|&Reverse((_, i, _))| i))
    }

    /// Steps slot `i` by one event, runs the post-step lifecycle hook
    /// (a drained-dry replica retires at the event's instant), and
    /// republishes the slot's calendar key.
    fn step_node(&mut self, i: usize) {
        let t = self.fleet.next_event_of(i);
        self.fleet.step(i);
        if let Some(t) = t {
            self.fleet.after_step(i, t);
        }
        self.reschedule(i);
    }

    /// Fires the earliest fault timer and republishes whatever slot key
    /// it may have touched.
    fn fire_timer(&mut self) {
        if let Some(slot) = self.fleet.fire_next_timer() {
            self.reschedule(slot);
        }
        self.settle();
    }

    /// Steps the single globally earliest event — fault timer or node
    /// event, timers first on ties. Returns `false` when nothing is
    /// pending.
    fn step_event(&mut self) -> bool {
        let node = self.earliest();
        let node_t = node.and_then(|i| self.fleet.next_event_of(i));
        let timer_first = match (self.fleet.next_timer_time(), node_t) {
            (Some(_), None) => true,
            (Some(tt), Some(nt)) => tt.as_secs().total_cmp(&nt.as_secs()).is_le(),
            (None, _) => false,
        };
        if timer_first {
            self.fire_timer();
            return true;
        }
        if let Some(i) = node {
            self.step_node(i);
            self.settle();
            return true;
        }
        false
    }

    /// Steps every slot up to `horizon` (see [`WindowCap`] for the exact
    /// boundary semantics per mode). Dispatches to the horizon-parallel
    /// window engine or the legacy per-event loop.
    fn advance_to(&mut self, horizon: SimTime) {
        if self.horizon_parallel {
            self.advance_to_windowed(horizon);
        } else {
            self.advance_to_sequential(horizon);
        }
    }

    /// Horizon-parallel advance: within one window no coordination event
    /// (dispatch arrival, fault timer) can fire, so the slots share no
    /// state and step concurrently; fault windows are additionally cut
    /// at each pending timer, which fires between windows on the
    /// coordinator. Byte-identical to
    /// [`ClusterSim::advance_to_sequential`] for any thread count.
    fn advance_to_windowed(&mut self, horizon: SimTime) {
        if self.fleet.faults.is_none() {
            if self.step_window(WindowCap::FaultFree(horizon.as_secs())) {
                // A NaN-keyed event surfaced: whether the sequential
                // loop steps it depends on the *global* calendar order,
                // so replay the remainder sequentially.
                self.advance_to_sequential(horizon);
            }
            return;
        }
        loop {
            // The timer set is stable within a window: plan cursors,
            // slowdown ends and retry redeliveries only change when a
            // timer fires or a dispatch runs, and the clamped redelivery
            // instant `max(at, f.now)` cannot move while every stepped
            // event is earlier than it. So one query per window suffices.
            match self.fleet.next_timer_time() {
                Some(tt) if tt.as_secs() <= horizon.as_secs() => {
                    self.step_window(WindowCap::Faulted(tt.as_secs()));
                    self.fire_timer();
                    self.maybe_upgrade_calendar();
                }
                _ => {
                    self.step_window(WindowCap::Faulted(horizon.as_secs()));
                    return;
                }
            }
        }
    }

    /// Runs one horizon window: steps every pending slot up to `cap`
    /// (concurrently when `threads > 1`), then merges the per-slot
    /// results back into the global order — drained-dry draining slots
    /// retire sorted by (instant, slot), exactly the order the
    /// sequential loop would have retired them in; the fault clock
    /// advances to the max stepped instant; stepped slots republish
    /// their calendar keys. Returns whether a NaN-keyed event aborted a
    /// [`WindowCap::FaultFree`] window.
    fn step_window(&mut self, cap: WindowCap) -> bool {
        let mut outcomes = std::mem::take(&mut self.window_outcomes);
        outcomes.clear();
        let mut saw_nan = false;
        if self.threads <= 1 {
            for i in 0..self.fleet.slots.len() {
                let Some(node) = self.fleet.slots[i].node.as_mut() else { continue };
                let (outcome, nan) = step_slot(node, cap);
                saw_nan |= nan;
                if let Some(mut o) = outcome {
                    o.slot = i;
                    outcomes.push(o);
                }
            }
        } else {
            let mut pending = std::mem::take(&mut self.window_pending);
            pending.clear();
            pending.extend(
                (0..self.fleet.slots.len()).filter(|&i| self.fleet.next_event_of(i).is_some()),
            );
            let base = SlotsPtr(self.fleet.slots.as_mut_ptr());
            let mut results = std::mem::take(&mut self.window_results);
            sp_core::map_into(
                self.threads,
                &pending,
                |&i| {
                    // Not redundant: edition-2021 precise capture would
                    // otherwise capture the raw-pointer *field* (not
                    // Sync); rebinding forces capture of the whole
                    // `Send + Sync` wrapper.
                    #[allow(clippy::redundant_locals)]
                    let base = base;
                    // SAFETY: `pending` holds each slot index at most
                    // once and only this closure invocation touches
                    // slot `i`, so the `&mut` access is unaliased; the
                    // pointer stays valid for the whole fan-out (`self`
                    // is borrowed).
                    let slot = unsafe { &mut *base.0.add(i) };
                    let node = slot.node.as_mut().expect("pending slot holds a node");
                    step_slot(node, cap)
                },
                &mut results,
            );
            for (&i, &(outcome, nan)) in pending.iter().zip(&results) {
                saw_nan |= nan;
                if let Some(mut o) = outcome {
                    o.slot = i;
                    outcomes.push(o);
                }
            }
            self.window_results = results;
            self.window_pending = pending;
        }

        // Merge: fault clock first (retires and timer clamps read it),
        // then retires in (instant, slot) order — the global order the
        // sequential loop's `after_step` would have used.
        let _merge_span = sp_core::profile::start(sp_core::profile::Phase::Merge);
        let mut hi: Option<SimTime> = None;
        for o in &outcomes {
            hi = Some(match hi {
                Some(h) => h.max(o.hi),
                None => o.hi,
            });
        }
        if let (Some(f), Some(hi)) = (self.fleet.faults.as_mut(), hi) {
            f.now = f.now.max(hi);
        }
        let mut retires = std::mem::take(&mut self.window_retires);
        retires.clear();
        for o in &outcomes {
            let slot = &self.fleet.slots[o.slot];
            if slot.state == SlotState::Draining {
                retires.push((o.last, o.slot));
            }
        }
        retires.sort_by(sp_metrics::window_event_order);
        for &(t, i) in &retires {
            self.fleet.maybe_retire(i, t);
        }
        self.window_retires = retires;
        for o in &outcomes {
            self.reschedule(o.slot);
        }
        self.window_outcomes = outcomes;
        self.settle();
        saw_nan
    }

    /// The legacy one-event-at-a-time advance: steps slots in global
    /// time order until every pending event is at or after `horizon`.
    /// Fault timers interleave: a timer fires before any node event at
    /// the same instant, and — unlike node events — fires *at* the
    /// horizon too, so a crash scheduled exactly at an arrival instant
    /// lands before that dispatch.
    fn advance_to_sequential(&mut self, horizon: SimTime) {
        if self.fleet.faults.is_none() {
            while let Some(i) = self.earliest() {
                let t = self.fleet.next_event_of(i).expect("earliest implies event");
                if t.as_secs() >= horizon.as_secs() {
                    break;
                }
                self.step_node(i);
            }
            self.settle();
            return;
        }
        loop {
            let node = self.earliest();
            let node_t = node.and_then(|i| self.fleet.next_event_of(i));
            if let Some(tt) = self.fleet.next_timer_time() {
                let timer_first = match node_t {
                    Some(nt) => tt.as_secs().total_cmp(&nt.as_secs()).is_le(),
                    None => true,
                };
                if timer_first && tt.as_secs() <= horizon.as_secs() {
                    self.fire_timer();
                    continue;
                }
            }
            match (node, node_t) {
                (Some(i), Some(t)) if t.as_secs() < horizon.as_secs() => self.step_node(i),
                _ => break,
            }
        }
        self.settle();
    }

    /// Dispatches one request at its arrival instant: advances every
    /// node up to the arrival, runs autoscaler lifecycle work (warmups,
    /// retires, scale decisions), samples routable loads, routes, and
    /// enqueues. Requests must be pushed in nondecreasing arrival order
    /// (as [`ClusterSim::run`] does for a trace). The routing decision
    /// and load samples accumulate until [`ClusterSim::take_report`].
    pub fn push_request(&mut self, req: Request) {
        // Bring every node's local clock up to this arrival so the load
        // signal reflects work actually still outstanding now.
        self.advance_to(req.arrival);
        if let Some(slot) = self.fleet.dispatch(req, req.arrival) {
            self.reschedule(slot);
        }
        self.maybe_upgrade_calendar();
        self.settle();
    }

    /// Advances the cluster by one event — the globally earliest node
    /// event or fault timer. No-op when every node is idle and no timer
    /// is pending.
    pub fn step_once(&mut self) {
        self.step_event();
    }

    /// Instant of the cluster's next event (the earliest node event or
    /// fault timer), or `None` when all idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        // The calendar is settled at rest, so its top (when present) is a
        // live `(key, slot, gen)` triple; below the linear-scan
        // threshold there is no calendar and the rescan answers directly.
        let node = match &self.calendar {
            Some(cal) => cal.peek().and_then(|&Reverse((_, i, _))| self.fleet.next_event_of(i)),
            None => self.fleet.earliest_linear().and_then(|i| self.fleet.next_event_of(i)),
        };
        match (self.fleet.next_timer_time(), node) {
            (Some(tt), Some(nt)) => {
                Some(if tt.as_secs().total_cmp(&nt.as_secs()).is_le() { tt } else { nt })
            }
            (Some(tt), None) => Some(tt),
            (None, node) => node,
        }
    }

    /// Total outstanding work across live nodes, in tokens.
    pub fn outstanding_tokens(&self) -> u64 {
        self.fleet.outstanding()
    }

    /// Aggregate load: sums across nodes (capacity-style signals add;
    /// the prefill rate adds because replicas prefill concurrently),
    /// except `min_kv_free_tokens`, which is the most-congested node's
    /// headroom — the guaranteed admission room for a nested consumer
    /// that sees this whole cluster as one node (the summed
    /// `kv_free_tokens` overstates what a single request can use; see
    /// [`NodeLoad`]'s aggregate-semantics docs).
    pub fn load(&self) -> NodeLoad {
        self.fleet.aggregate_load()
    }

    /// Finalizes an incremental run: merges per-node reports (retired
    /// replicas included) and attaches the accumulated decision trail,
    /// load samples and replica lifecycle timeline (all reset).
    pub fn take_report(&mut self) -> EngineReport {
        self.fleet.take_report()
    }

    /// Runs `trace` to completion: dispatch at arrival instants, then
    /// drain, then merge per-node reports (plus the decision trail).
    ///
    /// # Panics
    ///
    /// Panics if the co-simulation fails to make progress (internal bug
    /// guard).
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        self.fleet.decisions.reserve(trace.len());
        for &req in trace.requests() {
            self.push_request(req);
        }

        // Drain: keep stepping until all idle. The fault-free fleet
        // drains in one unbounded window; with faults attached,
        // remaining timers (backoffs, trailing plan events) cut the
        // windows and fire between them, so salvaged requests finish —
        // or fail terminally — before the report is cut.
        let mut guard: u64 = 0;
        if !self.horizon_parallel {
            if self.fleet.faults.is_none() {
                while let Some(i) = self.earliest() {
                    guard += 1;
                    assert!(guard < 400_000_000, "cluster simulation failed to terminate");
                    self.step_node(i);
                }
            } else {
                while self.step_event() {
                    guard += 1;
                    assert!(guard < 400_000_000, "cluster simulation failed to terminate");
                }
            }
        } else if self.fleet.faults.is_none() {
            self.step_window(WindowCap::Unbounded);
        } else {
            loop {
                match self.fleet.next_timer_time() {
                    Some(tt) => {
                        self.step_window(WindowCap::Faulted(tt.as_secs()));
                        self.fire_timer();
                        self.maybe_upgrade_calendar();
                        guard += 1;
                        assert!(guard < 400_000_000, "cluster simulation failed to terminate");
                    }
                    None => {
                        // No timer can appear while only node events
                        // fire, so one unbounded window finishes it.
                        self.step_window(WindowCap::Unbounded);
                        break;
                    }
                }
            }
        }

        self.take_report()
    }
}

/// The pre-calendar cluster loop, kept as an executable specification:
/// every `earliest` query rescans all `R` nodes linearly, exactly as
/// [`ClusterSim`] did before it grew the event calendar.
///
/// It exists for two consumers only — the equivalence property in
/// `tests/cluster_properties.rs` (heap-driven runs must stay
/// byte-identical to this loop) and the `simperf` bench bin (which
/// measures the calendar's speedup against it). It is not part of the
/// supported API.
#[doc(hidden)]
#[derive(Debug)]
pub struct ReferenceClusterSim<N: SimNode> {
    fleet: Fleet<N>,
}

impl<N: SimNode> ReferenceClusterSim<N> {
    /// Creates the reference co-simulation over `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, policy: Box<dyn RoutingPolicy>) -> ReferenceClusterSim<N> {
        ReferenceClusterSim { fleet: Fleet::new(nodes, policy) }
    }

    /// Attaches an autoscaler (see [`ClusterSim::with_autoscaler`]). The
    /// lifecycle machinery is the shared [`Fleet`] core, so scale events
    /// exercise the byte-identity property too.
    pub fn with_autoscaler(mut self, scaler: Autoscaler<N>) -> ReferenceClusterSim<N> {
        self.fleet.autoscaler = Some(scaler);
        self
    }

    /// Attaches a fault-injection plan (see [`ClusterSim::with_faults`]).
    /// The fault machinery lives in the shared [`Fleet`] core, so crash,
    /// retry and slowdown scheduling exercise the byte-identity property
    /// too.
    pub fn with_faults(mut self, plan: FaultPlan, retry: RetryPolicy) -> ReferenceClusterSim<N> {
        self.fleet.faults = Some(FaultState::new(plan, retry));
        self
    }

    /// Sets the merged report's throughput bin width (default 1 s).
    pub fn throughput_bin(mut self, bin: Dur) -> ReferenceClusterSim<N> {
        self.fleet.throughput_bin = bin;
        self
    }

    /// Steps slot `i` with the same post-step lifecycle hook as
    /// [`ClusterSim`], so drained replicas retire at identical instants.
    fn step_node(&mut self, i: usize) {
        let t = self.fleet.next_event_of(i);
        self.fleet.step(i);
        if let Some(t) = t {
            self.fleet.after_step(i, t);
        }
    }

    /// Steps the single globally earliest event — fault timer or node
    /// event, timers first on ties (the mirror of
    /// [`ClusterSim::step_event`]).
    fn step_event(&mut self) -> bool {
        let node = self.fleet.earliest_linear();
        let node_t = node.and_then(|i| self.fleet.next_event_of(i));
        let timer_first = match (self.fleet.next_timer_time(), node_t) {
            (Some(_), None) => true,
            (Some(tt), Some(nt)) => tt.as_secs().total_cmp(&nt.as_secs()).is_le(),
            (None, _) => false,
        };
        if timer_first {
            self.fleet.fire_next_timer();
            return true;
        }
        if let Some(i) = node {
            self.step_node(i);
            return true;
        }
        false
    }

    fn advance_to(&mut self, horizon: SimTime) {
        if self.fleet.faults.is_none() {
            while let Some(i) = self.fleet.earliest_linear() {
                let t = self.fleet.next_event_of(i).expect("earliest implies event");
                if t.as_secs() >= horizon.as_secs() {
                    break;
                }
                self.step_node(i);
            }
            return;
        }
        loop {
            let node = self.fleet.earliest_linear();
            let node_t = node.and_then(|i| self.fleet.next_event_of(i));
            if let Some(tt) = self.fleet.next_timer_time() {
                let timer_first = match node_t {
                    Some(nt) => tt.as_secs().total_cmp(&nt.as_secs()).is_le(),
                    None => true,
                };
                if timer_first && tt.as_secs() <= horizon.as_secs() {
                    self.fleet.fire_next_timer();
                    continue;
                }
            }
            match (node, node_t) {
                (Some(i), Some(t)) if t.as_secs() < horizon.as_secs() => self.step_node(i),
                _ => break,
            }
        }
    }

    /// Dispatches one request at its arrival instant (see
    /// [`ClusterSim::push_request`]).
    pub fn push_request(&mut self, req: Request) {
        self.advance_to(req.arrival);
        self.fleet.dispatch(req, req.arrival);
    }

    /// Advances the cluster by one event — node event or fault timer.
    pub fn step_once(&mut self) {
        self.step_event();
    }

    /// Instant of the cluster's next event, or `None` when all idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let node = self.fleet.earliest_linear().and_then(|i| self.fleet.next_event_of(i));
        match (self.fleet.next_timer_time(), node) {
            (Some(tt), Some(nt)) => {
                Some(if tt.as_secs().total_cmp(&nt.as_secs()).is_le() { tt } else { nt })
            }
            (Some(tt), None) => Some(tt),
            (None, node) => node,
        }
    }

    /// Finalizes an incremental run (see [`ClusterSim::take_report`]).
    pub fn take_report(&mut self) -> EngineReport {
        self.fleet.take_report()
    }

    /// Runs `trace` to completion (see [`ClusterSim::run`]).
    ///
    /// # Panics
    ///
    /// Panics if the co-simulation fails to make progress (internal bug
    /// guard).
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        self.fleet.decisions.reserve(trace.len());
        for &req in trace.requests() {
            self.push_request(req);
        }
        let mut guard: u64 = 0;
        if self.fleet.faults.is_none() {
            while let Some(i) = self.fleet.earliest_linear() {
                guard += 1;
                assert!(guard < 400_000_000, "cluster simulation failed to terminate");
                self.step_node(i);
            }
        } else {
            while self.step_event() {
                guard += 1;
                assert!(guard < 400_000_000, "cluster simulation failed to terminate");
            }
        }
        self.take_report()
    }
}

impl<N: SimNode> SimNode for ClusterSim<N> {
    fn push_request(&mut self, req: Request) {
        ClusterSim::push_request(self, req);
    }

    fn step_once(&mut self) {
        ClusterSim::step_once(self);
    }

    fn next_event_time(&self) -> Option<SimTime> {
        ClusterSim::next_event_time(self)
    }

    fn outstanding_tokens(&self) -> u64 {
        ClusterSim::outstanding_tokens(self)
    }

    fn load(&self) -> NodeLoad {
        ClusterSim::load(self)
    }

    fn take_report(&mut self) -> EngineReport {
        ClusterSim::take_report(self)
    }

    fn take_unfinished(&mut self) -> SalvagedWork {
        let salvaged = self.fleet.take_unfinished_all();
        for i in 0..self.fleet.slot_count() {
            self.reschedule(i);
        }
        self.settle();
        salvaged
    }

    fn set_slowdown(&mut self, factor: f64) {
        self.fleet.set_slowdown_all(factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
    use sp_model::presets;
    use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
    use sp_workload::RequestClass;

    fn req(id: u64, at: f64, input: u32, output: u32) -> Request {
        Request {
            id,
            arrival: SimTime::from_secs(at),
            input_tokens: input,
            output_tokens: output,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        }
    }

    fn loads(outstanding: &[u64]) -> Vec<NodeLoad> {
        outstanding
            .iter()
            .map(|&l| NodeLoad { outstanding_tokens: l, ..NodeLoad::default() })
            .collect()
    }

    fn engines(n: usize) -> Vec<Engine> {
        let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
        (0..n)
            .map(|_| {
                Engine::new(
                    ExecutionModel::new(node, presets::qwen_32b()),
                    Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                    EngineConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn jsq_picks_least_loaded_with_ties_to_lowest_index() {
        let mut p = JoinShortestOutstanding;
        let r = req(0, 0.0, 100, 10);
        assert_eq!(p.pick(&r, &loads(&[500, 200, 900])), 1);
        assert_eq!(p.pick(&r, &loads(&[300, 300, 300])), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::default();
        let r = req(0, 0.0, 100, 10);
        let picks: Vec<usize> = (0..5).map(|_| p.pick(&r, &loads(&[0, 0, 0]))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn static_split_reproduces_offline_route() {
        // The online StaticSplit policy must assign each request to the
        // same replica the offline greedy router would.
        let cluster = crate::cluster::DataParallelCluster::new(3, |_| engines(1).pop().unwrap());
        let trace: Trace =
            (0..30).map(|i| req(i, i as f64 * 0.1, 200 + (i as u32 % 7) * 800, 20)).collect();
        let shards = cluster.route(&trace);

        let mut policy = StaticSplit::default();
        for r in trace.requests() {
            let online = policy.pick(r, &loads(&[0, 0, 0]));
            let offline = shards
                .iter()
                .position(|s| s.requests().iter().any(|q| q.id == r.id))
                .expect("every request lands in a shard");
            assert_eq!(online, offline, "request {}", r.id);
        }
    }

    #[test]
    fn edf_routes_interactive_to_feasible_replica() {
        // Replica 0: lighter raw load, but a prefill queue too deep to
        // make the 1 s interactive TTFT. Replica 1: heavier outstanding
        // but feasible. JSQ prefers 0; EDF must send interactive traffic
        // to 1 and keep batch traffic on JSQ.
        let snapshot = vec![
            NodeLoad {
                outstanding_tokens: 10_000,
                queued_prefill_tokens: 40_000,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
            NodeLoad {
                outstanding_tokens: 15_000,
                queued_prefill_tokens: 2_000,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
        ];
        let mut edf = EarliestDeadlineFeasible::default();
        let mut jsq = JoinShortestOutstanding;
        let interactive = req(0, 0.0, 500, 10);
        assert_eq!(jsq.pick(&interactive, &snapshot), 0);
        assert_eq!(edf.pick(&interactive, &snapshot), 1);
        let batch = Request { class: RequestClass::Batch, ..interactive };
        assert_eq!(edf.pick(&batch, &snapshot), 0, "batch follows JSQ");

        // No feasible replica: least-bad ETA wins.
        let swamped: Vec<NodeLoad> = snapshot
            .iter()
            .map(|l| NodeLoad { queued_prefill_tokens: l.queued_prefill_tokens + 100_000, ..*l })
            .collect();
        assert_eq!(edf.pick(&interactive, &swamped), 1);
    }

    #[test]
    fn jsq_by_ttft_ignores_decode_backlog_and_degrades_to_jsq() {
        // Replica 0 carries a huge decode backlog (large outstanding, no
        // prefill queue); replica 1 has little outstanding but a deep
        // prefill queue. JSQ picks 1; TTFT ranking picks 0.
        let snapshot = vec![
            NodeLoad {
                outstanding_tokens: 50_000,
                queued_prefill_tokens: 0,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
            NodeLoad {
                outstanding_tokens: 8_000,
                queued_prefill_tokens: 30_000,
                kv_free_tokens: 1_000_000,
                min_kv_free_tokens: 1_000_000,
                prefill_tokens_per_sec: 20_000.0,
            },
        ];
        let r = req(0, 0.0, 500, 10);
        assert_eq!(JoinShortestOutstanding.pick(&r, &snapshot), 1);
        assert_eq!(JsqByTtft.pick(&r, &snapshot), 0);
        // Without a prefill-rate estimate every ETA saturates at
        // `Dur::MAX` and the tie-break reproduces plain JSQ.
        assert_eq!(JsqByTtft.pick(&r, &loads(&[500, 200, 900])), 1);
        assert_eq!(JsqByTtft.pick(&r, &loads(&[300, 300, 300])), 0);
    }

    #[test]
    fn jsq_by_ttft_spreads_prompt_bursts_better_than_jsq() {
        // Three long generations at t=0 land 2-vs-1 across two replicas
        // (JSQ ties to the lowest index), so replica 0 carries twice the
        // outstanding decode work. A prompt-heavy burst then arrives.
        // Plain JSQ piles the burst onto replica 1 until its outstanding
        // tokens catch up with replica 0's decode backlog — but decode
        // backlog barely delays a new prefill, so those prompts queue
        // behind each other for nothing. TTFT ranking spreads the burst
        // by actual prefill wait and must win on tail TTFT.
        let bursty = || {
            let mut t: Vec<Request> = (0..3).map(|i| req(i, 0.0, 200, 12_000)).collect();
            t.extend((0..12u64).map(|i| req(3 + i, 0.5 + 0.02 * i as f64, 6_000, 8)));
            Trace::with_ids(t)
        };
        let burst_ttft_tail = |kind: RoutingKind| {
            let mut sim = ClusterSim::new(engines(2), kind.policy());
            let report = sim.run(&bursty());
            let mut ttfts: Vec<f64> = report
                .records()
                .iter()
                .filter(|r| r.input_tokens == 6_000)
                .map(|r| r.ttft().as_secs())
                .collect();
            assert_eq!(ttfts.len(), 12, "every burst prompt completes");
            ttfts.sort_by(f64::total_cmp);
            ttfts[ttfts.len() - 2]
        };
        let jsq = burst_ttft_tail(RoutingKind::JoinShortestOutstanding);
        let by_ttft = burst_ttft_tail(RoutingKind::JsqByTtft);
        assert!(
            by_ttft < jsq,
            "TTFT-ranked JSQ tail TTFT {by_ttft:.3}s must beat plain JSQ {jsq:.3}s"
        );
    }

    #[test]
    fn busy_replica_receives_no_new_work() {
        // Acceptance: a replica buried under a long prefill must receive
        // nothing while an idle replica takes every arrival.
        let mut sim = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy());
        let mut trace: Vec<Request> = vec![req(0, 0.0, 120_000, 512)];
        trace.extend((1..9).map(|i| req(i, 0.05 * i as f64, 256, 16)));
        let report = sim.run(&Trace::with_ids(trace));

        let d = report.routing_decisions();
        assert_eq!(d.len(), 9);
        assert_eq!(d[0].replica, 0, "first request ties to replica 0");
        for dec in &d[1..] {
            assert_eq!(
                dec.replica, 1,
                "request {} routed to the busy replica at load {}",
                dec.request_id, dec.load_tokens
            );
        }
        assert_eq!(report.records().len(), 9);
        assert_eq!(report.replica_loads().replica_count(), 2);
        assert!(report.replica_loads().peak(0) > 100_000);
    }

    #[test]
    fn routing_is_deterministic() {
        let trace = sp_workload::bursty::BurstyConfig {
            duration: sp_metrics::Dur::from_secs(60.0),
            base_rate: 1.0,
            bursts: 2,
            burst_size: 30,
            ..sp_workload::bursty::BurstyConfig::default()
        }
        .generate();
        let decide = || {
            let mut sim =
                ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy());
            sim.run(&trace).routing_decisions().to_vec()
        };
        let a = decide();
        let b = decide();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same trace must yield the same routing decisions");
    }

    #[test]
    fn every_arrival_is_dispatched_and_sampled() {
        let trace = sp_workload::synthetic::poisson(40, 20.0, 512, 8, 3);
        let mut sim = ClusterSim::new(engines(4), RoutingKind::RoundRobin.policy());
        let report = sim.run(&trace);
        assert_eq!(report.routing_decisions().len(), 40);
        // One load sample per replica per dispatch.
        assert_eq!(report.replica_loads().samples().len(), 40 * 4);
        assert_eq!(report.records().len(), 40);
    }

    #[test]
    fn spawned_engine_seeds_prefill_rate_from_compiled_plans() {
        // An engine straight out of construction — exactly what an
        // autoscaler's spawner builds — must already report a real
        // prefill rate from its compiled plan set, so deadline-aware
        // routers see its capacity before it has served anything.
        let e = engines(1).pop().unwrap();
        assert!(
            e.load().prefill_tokens_per_sec > 0.0,
            "fresh engine must price its prefill rate at construction"
        );
    }

    #[test]
    fn ttft_routing_never_dogpiles_a_rateless_replica() {
        // Regression (cold-replica dogpile): a replica with no prefill
        // rate sample used to estimate TTFT as *zero*, so TTFT-ranked
        // and deadline-aware routers piled every request onto it. Its
        // estimate now saturates at `Dur::MAX`: a warm replica — even a
        // heavily loaded one — must win.
        let warm = NodeLoad {
            outstanding_tokens: 30_000,
            queued_prefill_tokens: 10_000,
            kv_free_tokens: 1_000_000,
            min_kv_free_tokens: 1_000_000,
            prefill_tokens_per_sec: 20_000.0,
        };
        let cold = NodeLoad {
            outstanding_tokens: 0,
            queued_prefill_tokens: 0,
            kv_free_tokens: 1_000_000,
            min_kv_free_tokens: 1_000_000,
            prefill_tokens_per_sec: 0.0,
        };
        let r = req(0, 0.0, 500, 10);
        assert_eq!(JsqByTtft.pick(&r, &[warm, cold]), 0, "TTFT ranking must avoid the cold one");
        let mut edf = EarliestDeadlineFeasible::default();
        assert_eq!(edf.pick(&r, &[warm, cold]), 0, "EDF must treat the cold one as infeasible");
        // Two rateless replicas tie at MAX and degrade to JSQ on the
        // outstanding tie-break instead of herding onto index 0.
        let colder = NodeLoad { outstanding_tokens: 400, ..cold };
        assert_eq!(JsqByTtft.pick(&r, &[colder, cold]), 1);
        assert_eq!(edf.pick(&r, &[colder, cold]), 1);
    }

    /// Replays a fixed `(at, action)` script: each action fires at the
    /// first dispatch at or after its instant. Deterministic by
    /// construction.
    #[derive(Debug)]
    struct ScriptedScale {
        script: Vec<(f64, ScaleAction)>,
        next: usize,
    }

    impl ScriptedScale {
        fn new(script: Vec<(f64, ScaleAction)>) -> ScriptedScale {
            ScriptedScale { script, next: 0 }
        }
    }

    impl crate::autoscale::ScalePolicy for ScriptedScale {
        fn name(&self) -> &str {
            "scripted"
        }

        fn decide(&mut self, signal: &FleetSignal<'_>, actions: &mut Vec<ScaleAction>) {
            while self.next < self.script.len() && signal.now.as_secs() >= self.script[self.next].0
            {
                actions.push(self.script[self.next].1);
                self.next += 1;
            }
        }
    }

    fn scripted_scaler(
        config: crate::autoscale::AutoscaleConfig,
        script: Vec<(f64, ScaleAction)>,
    ) -> Autoscaler<Engine> {
        Autoscaler::new(config, Box::new(ScriptedScale::new(script)), |_| engines(1).pop().unwrap())
    }

    fn steady_trace(n: u64, gap: f64) -> Trace {
        Trace::with_ids((0..n).map(|i| req(i, i as f64 * gap, 512, 8)).collect::<Vec<_>>())
    }

    fn record_bits(report: &EngineReport) -> Vec<(u64, u64, u64)> {
        report
            .records()
            .iter()
            .map(|r| {
                (r.request_id, r.first_token.as_secs().to_bits(), r.finish.as_secs().to_bits())
            })
            .collect()
    }

    #[test]
    fn never_firing_autoscaler_is_byte_identical_to_fixed_fleet() {
        use crate::autoscale::{AutoscaleConfig, NeverScale};
        let trace = steady_trace(40, 0.25);
        let fixed = ClusterSim::new(engines(2), RoutingKind::JsqByTtft.policy()).run(&trace);
        let scaler = Autoscaler::new(AutoscaleConfig::default(), Box::new(NeverScale), |_| {
            engines(1).pop().unwrap()
        });
        let auto = ClusterSim::new(engines(2), RoutingKind::JsqByTtft.policy())
            .with_autoscaler(scaler)
            .run(&trace);
        assert_eq!(fixed.routing_decisions(), auto.routing_decisions());
        assert_eq!(record_bits(&fixed), record_bits(&auto));
    }

    #[test]
    fn autoscaled_cluster_spawns_and_retires_on_schedule() {
        use crate::autoscale::AutoscaleConfig;
        use sp_metrics::ReplicaEventKind;
        let config =
            AutoscaleConfig { cold_start: Dur::from_secs(2.0), min_replicas: 1, max_replicas: 4 };
        let script = vec![(1.0, ScaleAction::Spawn), (30.0, ScaleAction::Drain { replica: 1 })];
        let trace = steady_trace(80, 0.5);
        let mut sim = ClusterSim::new(engines(1), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scripted_scaler(config, script));
        let report = sim.run(&trace);

        assert_eq!(report.records().len(), 80, "drain must not drop in-flight work");
        let tl = report.fleet_timeline();
        let kinds = |k: ReplicaEventKind| tl.events().iter().filter(|e| e.kind == k).count();
        assert_eq!(kinds(ReplicaEventKind::Spawned), 2, "initial replica + one scale-out");
        assert_eq!(kinds(ReplicaEventKind::DrainStarted), 1);
        assert_eq!(kinds(ReplicaEventKind::Retired), 1);
        let spawned = tl
            .events()
            .iter()
            .find(|e| e.replica == 1 && e.kind == ReplicaEventKind::Spawned)
            .expect("scale-out recorded");
        let ready = tl
            .events()
            .iter()
            .find(|e| e.replica == 1 && e.kind == ReplicaEventKind::Ready)
            .expect("warmup completion recorded");
        assert_eq!(ready.at.since(spawned.at).as_secs(), 2.0, "cold start is paid in full");
        // No dispatch lands on the new replica before it is ready.
        for d in report.routing_decisions() {
            if d.replica == 1 {
                assert!(d.at >= ready.at, "request routed to a warming replica at {:?}", d.at);
            }
        }
        // Replica 1 lives for part of the run, so the fleet bills less
        // than two always-on replicas.
        let makespan = report.makespan();
        let rs = tl.replica_seconds(makespan);
        assert!(rs > makespan.as_secs(), "more than one replica existed");
        assert!(rs < 2.0 * makespan.as_secs(), "replica 1 must not bill the full run");
        assert_eq!(tl.peak_provisioned(), 2);
    }

    #[test]
    fn retire_then_respawn_reuses_the_slot_and_matches_reference() {
        // Regression (stale calendar entries): retiring a replica and
        // later installing a new tenant in the same slot must neither
        // resurrect the dead tenant's calendar entries nor shift live
        // ones — the tenancy generation in the heap key tombstones them.
        // A naive implementation that removes the node from the vector
        // (shifting indices) or reuses the slot without bumping the
        // generation diverges from the linear-rescan reference here.
        use crate::autoscale::AutoscaleConfig;
        use sp_metrics::ReplicaEventKind;
        let config =
            AutoscaleConfig { cold_start: Dur::from_secs(1.0), min_replicas: 1, max_replicas: 2 };
        let script = || vec![(5.0, ScaleAction::Drain { replica: 1 }), (15.0, ScaleAction::Spawn)];
        let trace = steady_trace(60, 0.5);
        let heap = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scripted_scaler(config, script()))
            .run(&trace);
        let reference =
            ReferenceClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy())
                .with_autoscaler(scripted_scaler(config, script()))
                .run(&trace);

        assert_eq!(heap.routing_decisions(), reference.routing_decisions());
        assert_eq!(record_bits(&heap), record_bits(&reference));

        // The respawn reused slot 1: two Spawned events on the same
        // stable replica index, one Retired between them.
        let slot1: Vec<ReplicaEventKind> = heap
            .fleet_timeline()
            .events()
            .iter()
            .filter(|e| e.replica == 1)
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            slot1,
            vec![
                ReplicaEventKind::Spawned,
                ReplicaEventKind::Ready,
                ReplicaEventKind::DrainStarted,
                ReplicaEventKind::Retired,
                ReplicaEventKind::Spawned,
                ReplicaEventKind::Ready,
            ]
        );
    }

    #[test]
    fn autoscaler_clamps_at_min_and_max_bounds() {
        use crate::autoscale::AutoscaleConfig;
        use sp_metrics::ReplicaEventKind;
        // min == max == 2: every scripted action must be ignored and the
        // run must stay byte-identical to the fixed fleet.
        let config =
            AutoscaleConfig { cold_start: Dur::from_secs(1.0), min_replicas: 2, max_replicas: 2 };
        let script = vec![
            (1.0, ScaleAction::Drain { replica: 0 }),
            (2.0, ScaleAction::Spawn),
            (3.0, ScaleAction::Spawn),
        ];
        let trace = steady_trace(40, 0.25);
        let fixed =
            ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy()).run(&trace);
        let clamped = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scripted_scaler(config, script))
            .run(&trace);
        assert_eq!(fixed.routing_decisions(), clamped.routing_decisions());
        assert_eq!(record_bits(&fixed), record_bits(&clamped));
        let tl = clamped.fleet_timeline();
        assert_eq!(tl.peak_provisioned(), 2);
        assert!(tl.events().iter().all(
            |e| e.kind != ReplicaEventKind::DrainStarted && e.kind != ReplicaEventKind::Retired
        ));
    }

    fn crash_at(at: f64, replica: usize) -> FaultEvent {
        FaultEvent { at: SimTime::from_secs(at), fault: Fault::Crash { replica } }
    }

    #[test]
    fn crash_salvages_inflight_work_and_redispatches_with_full_reprefill() {
        // A huge prompt lands on replica 0 and dies with it mid-prefill;
        // the salvaged request must re-enter after its backoff, complete
        // on the survivor, and the report must account the wasted
        // prefill, the recovery time, and a TTFT that includes the
        // backoff (arrival patched back to the true instant).
        let mut trace: Vec<Request> = vec![req(0, 0.0, 100_000, 64)];
        trace.extend((1..4).map(|i| req(i, 0.1 * i as f64, 256, 16)));
        let plan = FaultPlan::new(vec![crash_at(0.5, 0)]);
        let mut sim = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy())
            .with_faults(plan, RetryPolicy::default());
        let report = sim.run(&Trace::with_ids(trace));

        assert_eq!(report.records().len(), 4, "every request completes exactly once");
        let mut ids: Vec<u64> = report.records().iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        assert!(report.failed().is_empty());

        let tl = report.fleet_timeline();
        assert_eq!(tl.crash_count(), 1);
        assert!(tl.wasted_prefill_tokens() > 0, "mid-prefill work died with the KV cache");
        assert!(tl.recoveries() >= 1);
        assert!(
            tl.mean_recovery_secs() >= 1.0,
            "recovery waits out at least the base backoff, got {}",
            tl.mean_recovery_secs()
        );
        let redispatched: Vec<_> = tl
            .request_faults()
            .iter()
            .filter(|e| matches!(e.kind, RequestFaultKind::Redispatched { .. }))
            .collect();
        assert!(!redispatched.is_empty());
        assert!(redispatched.iter().any(|e| e.request_id == 0));

        // Request 0's record keeps its true arrival, so its TTFT covers
        // the crash wait + backoff + full re-prefill.
        let r0 = report.records().iter().find(|r| r.request_id == 0).expect("completed");
        assert_eq!(r0.arrival.as_secs(), 0.0, "arrival patched back to the true instant");
        assert!(
            r0.ttft().as_secs() >= 1.5,
            "TTFT must include crash wait + backoff, got {}",
            r0.ttft().as_secs()
        );
    }

    #[test]
    fn exhausted_retry_budget_is_a_terminal_failure_with_budget_attempts() {
        // One replica, killed while serving the only request, never
        // replaced: every backoff redelivery finds no routable replica
        // and burns an attempt, so the request must fail terminally with
        // exactly `max_retries` attempts on record.
        let retry = RetryPolicy { max_retries: 2, base_backoff: Dur::from_secs(1.0) };
        let plan = FaultPlan::new(vec![crash_at(0.5, 0)]);
        let mut sim = ClusterSim::new(engines(1), RoutingKind::JoinShortestOutstanding.policy())
            .with_faults(plan, retry);
        let report = sim.run(&Trace::with_ids(vec![req(0, 0.0, 50_000, 64)]));

        assert!(report.records().is_empty(), "the only replica died and never came back");
        assert_eq!(report.failed(), &[FailedRequest { request_id: 0, attempts: 2 }]);
        let tl = report.fleet_timeline();
        assert_eq!(tl.crash_count(), 1);
        assert!(tl
            .request_faults()
            .iter()
            .any(|e| e.kind == RequestFaultKind::Failed { attempts: 2 }));
    }

    #[test]
    fn zero_retry_budget_fails_on_first_fault() {
        let retry = RetryPolicy { max_retries: 0, base_backoff: Dur::from_secs(1.0) };
        let plan = FaultPlan::new(vec![crash_at(0.5, 0)]);
        let mut sim = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy())
            .with_faults(plan, retry);
        let report = sim.run(&Trace::with_ids(vec![req(0, 0.0, 50_000, 64)]));
        assert!(report.records().is_empty());
        assert_eq!(report.failed(), &[FailedRequest { request_id: 0, attempts: 0 }]);
    }

    #[test]
    fn slowdown_window_stretches_the_run_then_recovers() {
        // A compute-bound batch (everything arrives at t=0), so the
        // makespan tracks iteration durations, not arrival spread.
        let trace = Trace::with_ids((0..16).map(|i| req(i, 0.0, 8_000, 64)).collect::<Vec<_>>());
        let run_with = |plan: FaultPlan| {
            let mut sim =
                ClusterSim::new(engines(1), RoutingKind::JoinShortestOutstanding.policy())
                    .with_faults(plan, RetryPolicy::default());
            sim.run(&trace).makespan().as_secs()
        };
        let base = run_with(FaultPlan::empty());
        let slow = |duration: f64| {
            FaultPlan::new(vec![FaultEvent {
                at: SimTime::ZERO,
                fault: Fault::Slowdown {
                    replica: 0,
                    factor: 4.0,
                    duration: Dur::from_secs(duration),
                },
            }])
        };
        let slowed_throughout = run_with(slow(10_000.0));
        let slowed_briefly = run_with(slow(0.05));
        assert!(
            slowed_throughout > base * 1.5,
            "4x slowdown must stretch the run: base {base}, slowed {slowed_throughout}"
        );
        assert!(
            slowed_briefly < slowed_throughout,
            "recovering mid-run must beat staying slow: {slowed_briefly} vs {slowed_throughout}"
        );
    }

    #[test]
    fn route_timeout_consumes_an_attempt_and_redispatches() {
        let plan =
            FaultPlan::new(vec![FaultEvent { at: SimTime::ZERO, fault: Fault::RouteTimeout }]);
        let mut sim = ClusterSim::new(engines(1), RoutingKind::JoinShortestOutstanding.policy())
            .with_faults(plan, RetryPolicy::default());
        let report = sim.run(&Trace::with_ids(vec![req(0, 0.0, 512, 8)]));

        assert_eq!(report.records().len(), 1);
        assert!(report.failed().is_empty());
        let r0 = &report.records()[0];
        assert_eq!(r0.arrival.as_secs(), 0.0, "true arrival survives the timeout detour");
        assert!(r0.ttft().as_secs() >= 1.0, "the backoff counts toward TTFT");
        let tl = report.fleet_timeline();
        assert_eq!(tl.crash_count(), 0);
        assert!(tl
            .request_faults()
            .iter()
            .any(|e| e.kind == RequestFaultKind::Redispatched { attempt: 1 }));
        // The timed-out dispatch records no routing decision; the
        // redelivery does.
        assert_eq!(report.routing_decisions().len(), 1);
        assert!(report.routing_decisions()[0].at.as_secs() >= 1.0);
    }

    #[test]
    fn crash_while_warming_stops_billing_at_the_crash_instant() {
        // Satellite regression: a replica dying inside its cold-start
        // window must bill replica-seconds only up to the crash, not to
        // its would-be Ready instant (nor the end of the run).
        use crate::autoscale::AutoscaleConfig;
        let config =
            AutoscaleConfig { cold_start: Dur::from_secs(10.0), min_replicas: 1, max_replicas: 2 };
        let script = vec![(1.0, ScaleAction::Spawn)];
        let plan = FaultPlan::new(vec![crash_at(3.0, 1)]);
        let trace = steady_trace(40, 0.5);
        let mut sim = ClusterSim::new(engines(1), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scripted_scaler(config, script))
            .with_faults(plan, RetryPolicy::default());
        let report = sim.run(&trace);

        assert_eq!(report.records().len(), 40, "the warming replica held no work to lose");
        let tl = report.fleet_timeline();
        let slot1: Vec<ReplicaEventKind> =
            tl.events().iter().filter(|e| e.replica == 1).map(|e| e.kind).collect();
        assert_eq!(slot1, vec![ReplicaEventKind::Spawned, ReplicaEventKind::Crashed]);
        // Spawn fires at the first dispatch at/after t=1.0 (the arrival
        // at exactly 1.0), crash at 3.0: slot 1 bills exactly 2 s.
        let makespan = report.makespan();
        let rs = tl.replica_seconds(makespan);
        let expected = makespan.as_secs() + 2.0;
        assert!(
            (rs - expected).abs() < 1e-9,
            "warming crash must bill to the crash instant: {rs} vs {expected}"
        );
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_injection() {
        let trace = steady_trace(40, 0.25);
        let plain = ClusterSim::new(engines(2), RoutingKind::JsqByTtft.policy()).run(&trace);
        let faulted = ClusterSim::new(engines(2), RoutingKind::JsqByTtft.policy())
            .with_faults(FaultPlan::empty(), RetryPolicy::default())
            .run(&trace);
        assert_eq!(plain.routing_decisions(), faulted.routing_decisions());
        assert_eq!(record_bits(&plain), record_bits(&faulted));
        assert!(faulted.failed().is_empty());
        assert_eq!(faulted.fleet_timeline().crash_count(), 0);

        let reference = ReferenceClusterSim::new(engines(2), RoutingKind::JsqByTtft.policy())
            .with_faults(FaultPlan::empty(), RetryPolicy::default())
            .run(&trace);
        assert_eq!(plain.routing_decisions(), reference.routing_decisions());
        assert_eq!(record_bits(&plain), record_bits(&reference));
    }

    #[test]
    fn heap_and_reference_stay_lockstep_under_a_mixed_fault_plan() {
        let plan = || {
            FaultPlan::new(vec![
                crash_at(2.0, 0),
                FaultEvent {
                    at: SimTime::from_secs(4.0),
                    fault: Fault::Slowdown {
                        replica: 1,
                        factor: 2.5,
                        duration: Dur::from_secs(3.0),
                    },
                },
                FaultEvent { at: SimTime::from_secs(5.0), fault: Fault::RouteTimeout },
                crash_at(8.0, 1),
            ])
        };
        let retry = RetryPolicy { max_retries: 3, base_backoff: Dur::from_secs(0.5) };
        let trace = steady_trace(60, 0.25);
        let heap = ClusterSim::new(engines(3), RoutingKind::JoinShortestOutstanding.policy())
            .with_faults(plan(), retry)
            .run(&trace);
        let reference =
            ReferenceClusterSim::new(engines(3), RoutingKind::JoinShortestOutstanding.policy())
                .with_faults(plan(), retry)
                .run(&trace);

        assert_eq!(heap.routing_decisions(), reference.routing_decisions());
        assert_eq!(record_bits(&heap), record_bits(&reference));
        assert_eq!(heap.failed(), reference.failed());
        assert_eq!(
            heap.fleet_timeline().request_faults(),
            reference.fleet_timeline().request_faults()
        );
        assert_eq!(heap.fleet_timeline().crash_count(), 2);
        // Conservation: completed + failed covers the whole trace.
        assert_eq!(heap.records().len() + heap.failed().len(), 60);
    }

    #[test]
    fn crash_deficit_autoscaling_replaces_lost_capacity() {
        // LoadBandPolicy sees the crash deficit and respawns: after the
        // crash, a fresh replica must appear (Spawned after Crashed) and
        // every request must still complete.
        use crate::autoscale::{AutoscaleConfig, LoadBandPolicy};
        let config =
            AutoscaleConfig { cold_start: Dur::from_secs(1.0), min_replicas: 2, max_replicas: 4 };
        let policy = LoadBandPolicy::new(f64::MAX, 0.0).smoothing(1.0);
        let scaler = Autoscaler::new(config, Box::new(policy), |_| engines(1).pop().unwrap());
        let plan = FaultPlan::new(vec![crash_at(2.0, 0)]);
        let trace = steady_trace(80, 0.25);
        let mut sim = ClusterSim::new(engines(2), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scaler)
            .with_faults(plan, RetryPolicy::default());
        let report = sim.run(&trace);

        assert_eq!(report.records().len(), 80);
        assert!(report.failed().is_empty());
        let tl = report.fleet_timeline();
        assert_eq!(tl.crash_count(), 1);
        let crash_t = tl
            .events()
            .iter()
            .find(|e| e.kind == ReplicaEventKind::Crashed)
            .expect("crash recorded")
            .at;
        assert!(
            tl.events().iter().any(|e| e.kind == ReplicaEventKind::Spawned && e.at >= crash_t),
            "the deficit must trigger a replacement spawn"
        );
    }
}
