//! Disaggregated prefill/decode serving — the related-work baseline
//! (§5: DistServe, Mooncake).
//!
//! Disaggregated inference dedicates separate GPU pools to prefill and
//! decode. Prefill workers process one request's prompt at a time
//! (latency-optimal, no decode interference); the resulting KV cache is
//! then *transferred* to a decode worker over the interconnect before
//! generation starts. Compared with chunked-prefill systems (and Shift
//! Parallelism), this eliminates prefill/decode interference at the cost
//! of (i) statically partitioned capacity and (ii) a per-request KV
//! transfer on the critical path.
//!
//! The `disagg_compare` bench quantifies the paper's §5 argument: Shift
//! Parallelism with chunked prefill achieves the interference-mitigation
//! benefits without paying either cost.

use crate::report::EngineReport;
use sp_metrics::{Dur, RequestRecord, SimTime};
use sp_parallel::{BatchWork, ChunkWork, ExecPlan, ExecutionModel, ParallelConfig};
use sp_workload::{Request, Trace};

/// Configuration of a disaggregated deployment on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggConfig {
    /// Number of prefill workers (each a `prefill_tp`-GPU TP group).
    pub prefill_workers: usize,
    /// TP degree of each prefill worker.
    pub prefill_tp: usize,
    /// Number of decode workers (each a `decode_tp`-GPU TP group).
    pub decode_workers: usize,
    /// TP degree of each decode worker.
    pub decode_tp: usize,
    /// Bandwidth available for KV-cache migration, bytes/s (a share of the
    /// node interconnect; the transfer contends with collectives).
    pub kv_transfer_bw: f64,
    /// Maximum decode sequences batched per worker iteration.
    pub max_decode_batch: usize,
}

impl DisaggConfig {
    /// The canonical 8-GPU split used in disaggregation papers: 4 GPUs of
    /// prefill (2 workers × TP=2), 4 GPUs of decode (1 worker × TP=4).
    pub fn half_and_half() -> DisaggConfig {
        DisaggConfig {
            prefill_workers: 2,
            prefill_tp: 2,
            decode_workers: 1,
            decode_tp: 4,
            kv_transfer_bw: 300e9,
            max_decode_batch: 256,
        }
    }

    /// Total GPUs consumed.
    pub fn total_gpus(&self) -> usize {
        self.prefill_workers * self.prefill_tp + self.decode_workers * self.decode_tp
    }
}

/// A disaggregated prefill/decode simulator.
///
/// # Examples
///
/// ```
/// use sp_cluster::NodeSpec;
/// use sp_engine::disagg::{DisaggConfig, DisaggregatedServer};
/// use sp_model::presets;
/// use sp_workload::synthetic;
///
/// let mut server = DisaggregatedServer::new(
///     NodeSpec::p5en_48xlarge(),
///     presets::qwen_32b(),
///     DisaggConfig::half_and_half(),
/// );
/// let report = server.run(&synthetic::uniform_batch(4, 1024, 16));
/// assert_eq!(report.records().len(), 4);
/// ```
#[derive(Debug)]
pub struct DisaggregatedServer {
    exec: ExecutionModel,
    config: DisaggConfig,
    /// Compiled pricing for the prefill workers' TP config — both stage
    /// configs are fixed for the server's lifetime, so they compile once.
    prefill_plan: ExecPlan,
    /// Compiled pricing for the decode workers' TP config.
    decode_plan: ExecPlan,
}

#[derive(Debug, Clone)]
struct DecodeSeq {
    request: Request,
    first_token: SimTime,
    context: u64,
    generated: u32,
}

impl DisaggregatedServer {
    /// Creates a server.
    ///
    /// # Panics
    ///
    /// Panics if the configuration uses more GPUs than the node has, or
    /// if the model's KV heads cannot be distributed across either
    /// stage's TP degree.
    pub fn new(
        node: sp_cluster::NodeSpec,
        model: sp_model::ModelConfig,
        config: DisaggConfig,
    ) -> DisaggregatedServer {
        assert!(
            config.total_gpus() <= node.gpu_count,
            "disagg config needs {} GPUs, node has {}",
            config.total_gpus(),
            node.gpu_count
        );
        let exec = ExecutionModel::new(node, model);
        let compile = |tp: usize, stage: &str| {
            exec.compile(&ParallelConfig::tensor(tp)).unwrap_or_else(|e| {
                panic!("cannot run {stage} TP={tp} on {}: {e}", exec.model().name)
            })
        };
        let prefill_plan = compile(config.prefill_tp, "prefill");
        let decode_plan = compile(config.decode_tp, "decode");
        DisaggregatedServer { exec, config, prefill_plan, decode_plan }
    }

    /// Time to prefill one request exclusively on a prefill worker
    /// (chunked internally at 8k like the monolithic engine).
    fn prefill_time(&self, input_tokens: u64) -> Dur {
        let mut done = 0;
        let mut total = Dur::ZERO;
        while done < input_tokens {
            let chunk = (input_tokens - done).min(8192);
            let batch =
                BatchWork::new(vec![ChunkWork::prefill(chunk, done, done + chunk == input_tokens)]);
            total += self.exec.price_planned(&self.prefill_plan, &batch).total();
            done += chunk;
        }
        total
    }

    /// KV migration time for a prefilled context.
    fn transfer_time(&self, input_tokens: u64) -> Dur {
        let bytes = input_tokens * self.exec.model().kv_bytes_per_token();
        Dur::from_secs(bytes as f64 / self.config.kv_transfer_bw)
    }

    /// Runs the trace through both stages and reports.
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        let mut report = EngineReport::new(Dur::from_secs(1.0));

        // --- Stage 1: prefill pool (greedy earliest-free worker). ---
        let mut worker_free = vec![SimTime::ZERO; self.config.prefill_workers];
        // (request, decode-arrival instant after KV transfer)
        let mut handoffs: Vec<(Request, SimTime)> = Vec::new();
        for &req in trace.requests() {
            let w = (0..worker_free.len())
                .min_by(|&a, &b| {
                    worker_free[a].as_secs().partial_cmp(&worker_free[b].as_secs()).unwrap()
                })
                .expect("at least one prefill worker");
            let start = worker_free[w].max(req.arrival);
            let done = start + self.prefill_time(u64::from(req.input_tokens));
            worker_free[w] = done;
            report.note_kv_utilization(0.0);
            let ready = done + self.transfer_time(u64::from(req.input_tokens));
            handoffs.push((req, ready));
        }
        handoffs.sort_by(|a, b| a.1.as_secs().partial_cmp(&b.1.as_secs()).unwrap());

        // --- Stage 2: decode pool (single pooled continuous batch per
        // worker; we model one logical decode pool with aggregate width
        // workers × max_decode_batch and per-worker iteration cost). ---
        let decode_tp = ParallelConfig::tensor(self.config.decode_tp);
        let capacity = self.config.decode_workers * self.config.max_decode_batch;
        let mut clock = SimTime::ZERO;
        let mut pending: std::collections::VecDeque<(Request, SimTime)> = handoffs.into();
        let mut active: Vec<DecodeSeq> = Vec::new();

        while !pending.is_empty() || !active.is_empty() {
            // Admit ready handoffs.
            while active.len() < capacity {
                match pending.front() {
                    Some(&(_, ready)) if ready <= clock => {
                        let (req, ready) = pending.pop_front().expect("front exists");
                        active.push(DecodeSeq {
                            request: req,
                            // First token is produced by prefill; it reaches
                            // the client once the KV handoff completes.
                            first_token: ready.max(clock),
                            context: u64::from(req.input_tokens),
                            generated: 1,
                        });
                    }
                    _ => break,
                }
            }
            if active.is_empty() {
                if let Some(&(_, ready)) = pending.front() {
                    clock = clock.max(ready);
                    continue;
                }
                break;
            }

            // One decode iteration across the pool: each worker takes an
            // equal slice; iteration time is the slowest worker's.
            let per_worker =
                active.len().div_ceil(self.config.decode_workers).min(self.config.max_decode_batch);
            let batch = BatchWork::new(
                active.iter().take(per_worker).map(|s| ChunkWork::decode(s.context)).collect(),
            );
            let dur = self.exec.price_planned(&self.decode_plan, &batch).total();
            clock += dur;

            let mut emitted = 0u64;
            for seq in &mut active {
                seq.generated += 1;
                seq.context += 1;
                emitted += 1;
            }
            report.note_iteration(decode_tp, clock, emitted, dur);

            let clock_now = clock;
            active.retain(|seq| {
                if seq.generated >= seq.request.output_tokens {
                    report.note_completion(RequestRecord {
                        request_id: seq.request.id,
                        class: seq.request.class,
                        arrival: seq.request.arrival,
                        first_token: seq.first_token,
                        finish: clock_now,
                        input_tokens: seq.request.input_tokens,
                        output_tokens: seq.request.output_tokens,
                    });
                    false
                } else {
                    true
                }
            });
        }

        // Attribute prefill tokens to the throughput ledger at handoff.
        for &req in trace.requests() {
            report.note_iteration(
                ParallelConfig::tensor(self.config.prefill_tp),
                report.makespan(),
                u64::from(req.input_tokens),
                Dur::ZERO,
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cluster::NodeSpec;
    use sp_model::presets;
    use sp_workload::synthetic;

    fn server() -> DisaggregatedServer {
        DisaggregatedServer::new(
            NodeSpec::p5en_48xlarge(),
            presets::llama_70b(),
            DisaggConfig::half_and_half(),
        )
    }

    #[test]
    fn half_and_half_uses_all_gpus() {
        assert_eq!(DisaggConfig::half_and_half().total_gpus(), 8);
    }

    #[test]
    fn completes_all_requests() {
        let mut s = server();
        let trace = synthetic::uniform_batch(6, 2048, 16);
        let report = s.run(&trace);
        assert_eq!(report.records().len(), 6);
        for r in report.records() {
            assert!(r.first_token >= r.arrival);
            assert!(r.finish > r.first_token);
        }
    }

    #[test]
    fn kv_transfer_delays_first_token() {
        // With a tiny transfer bandwidth, TTFT must grow by the KV size
        // over bandwidth.
        let node = NodeSpec::p5en_48xlarge();
        let fast = DisaggConfig { kv_transfer_bw: 900e9, ..DisaggConfig::half_and_half() };
        let slow = DisaggConfig { kv_transfer_bw: 1e9, ..DisaggConfig::half_and_half() };
        let trace = synthetic::single(8192, 8);
        let ttft = |cfg| {
            let mut s = DisaggregatedServer::new(node, presets::llama_70b(), cfg);
            let mut report = s.run(&trace);
            report.metrics_mut().ttft().median().unwrap()
        };
        let kv_bytes = 8192 * presets::llama_70b().kv_bytes_per_token();
        let expected_extra = kv_bytes as f64 / 1e9 - kv_bytes as f64 / 900e9;
        let measured_extra = ttft(slow) - ttft(fast);
        assert!(
            (measured_extra - expected_extra).abs() / expected_extra < 0.05,
            "extra TTFT {measured_extra:.3}s vs expected {expected_extra:.3}s"
        );
    }

    #[test]
    fn no_prefill_decode_interference() {
        // A lone decode stream's TPOT is unaffected by a concurrent
        // prefill-heavy request (the selling point of disaggregation).
        let mut s = server();
        let solo = s.run(&synthetic::single(1024, 64));
        let mut s2 = server();
        let mixed =
            s2.run(&synthetic::uniform_batch(2, 30_000, 64).merge(synthetic::single(1024, 64)));
        let tpot = |mut r: EngineReport| r.metrics_mut().tpot().min().unwrap();
        let solo_tpot = tpot(solo);
        let mixed_tpot = tpot(mixed);
        assert!(
            mixed_tpot < solo_tpot * 1.3,
            "decode interference detected: {mixed_tpot} vs {solo_tpot}"
        );
    }

    #[test]
    #[should_panic(expected = "GPUs")]
    fn oversubscribed_config_rejected() {
        let cfg = DisaggConfig {
            prefill_workers: 4,
            prefill_tp: 2,
            decode_workers: 2,
            decode_tp: 4,
            ..DisaggConfig::half_and_half()
        };
        let _ = DisaggregatedServer::new(NodeSpec::p5en_48xlarge(), presets::llama_70b(), cfg);
    }
}
