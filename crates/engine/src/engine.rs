//! The serving engine: continuous batching with chunked prefill.

use crate::queue::{QueuePos, WaitQueue};
use crate::report::EngineReport;
use crate::seq::RunningSeq;
use sp_kvcache::KvCacheManager;
use sp_metrics::{ClassSlo, Dur, NodeLoad, RequestClass, RequestRecord, SimTime};
use sp_model::StepCost;
use sp_parallel::BatchSummary;
use sp_parallel::{
    BatchStats, BatchWork, ChunkWork, DecodeRunPricer, ExecPlan, ExecutionModel, ParallelConfig,
    ParallelismPolicy,
};
use sp_workload::{Request, Trace};
use std::collections::{HashMap, VecDeque};

// TEMP instrumentation — remove before commit.
/// Quantized decode-batch shape the pricing memo keys on: `(decode seq
/// count, Σ past-context / bucket, config)`.
type PriceKey = (usize, u64, ParallelConfig);

/// Entry cap on the pricing memo; reaching it clears the map (shapes from
/// long-retired load regimes would otherwise accumulate without bound).
const PRICE_MEMO_CAP: usize = 65_536;

/// Speculative decoding (§4.5): a free draft source (e.g. SuffixDecoding)
/// proposes `draft_len` tokens per decode step; the target model verifies
/// them in one pass and accepts a geometric prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecDecode {
    /// Draft tokens proposed per step.
    pub draft_len: u32,
    /// Probability each draft token matches the target distribution.
    pub acceptance: f64,
}

impl SpecDecode {
    /// Creates a speculative-decoding configuration.
    ///
    /// # Panics
    ///
    /// Panics if `draft_len` is zero or `acceptance` not in `[0, 1)`.
    pub fn new(draft_len: u32, acceptance: f64) -> SpecDecode {
        assert!(draft_len > 0, "draft length must be positive");
        assert!((0.0..1.0).contains(&acceptance), "acceptance must be in [0, 1), got {acceptance}");
        SpecDecode { draft_len, acceptance }
    }

    /// Expected tokens emitted per verification step:
    /// `Σ_{i=0}^{k} α^i = (1 − α^{k+1}) / (1 − α)`, always ≥ 1.
    pub fn expected_emitted(&self) -> f64 {
        (0..=self.draft_len).map(|i| self.acceptance.powi(i as i32)).sum()
    }
}

/// How the scheduler accounts for a request's KV footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Reserve the full prompt + output footprint at admission: decode can
    /// never overflow, at the cost of conservative concurrency.
    #[default]
    ReserveFull,
    /// Reserve only the prompt; decode tokens append incrementally. When
    /// the cache fills, the most recently admitted sequence is preempted
    /// and restarted (vLLM's recompute preemption). Admits more
    /// concurrency under pressure. Incompatible with speculative decoding.
    PreemptRestart,
}

/// Scheduler knobs (the vLLM analogues are noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Token budget per iteration — chunked prefill splits prompts to fit
    /// (`max_num_batched_tokens`).
    pub max_batched_tokens: u64,
    /// Maximum concurrently running sequences (`max_num_seqs`).
    pub max_seqs: usize,
    /// KV-cache capacity in tokens (derived from the memory plan).
    pub kv_capacity_tokens: u64,
    /// KV block size in tokens (`block_size`).
    pub block_tokens: u32,
    /// Bin width of the throughput time series in reports.
    pub throughput_bin: Dur,
    /// Speculative decoding, if enabled.
    pub spec_decode: Option<SpecDecode>,
    /// KV admission accounting.
    pub admission: AdmissionMode,
    /// Record a per-iteration [`crate::report::IterationEvent`] timeline
    /// in the report (costs memory on long runs; default off).
    pub record_timeline: bool,
    /// Honor each request's `cached_prefix` (vLLM automatic-prefix-caching
    /// analogue): admitted requests skip prefilling the cached tokens.
    /// The cached tokens still occupy KV space (they are reserved like any
    /// other context).
    pub prefix_caching: bool,
    /// Cap on *prefill* tokens per iteration (Sarathi-Serve-style): a cap
    /// below `max_batched_tokens` bounds the decode-latency interference
    /// a prefill burst can cause, trading some prefill throughput. `None`
    /// means prefill may fill the whole budget.
    pub max_prefill_tokens: Option<u64>,
    /// Which waiting request is admitted next.
    pub queue_policy: QueuePolicy,
    /// Per-class SLO targets. When set, admission becomes deadline-aware:
    /// the earliest salvageable TTFT deadline is admitted first (requests
    /// already past their deadline queue FCFS behind salvageable ones),
    /// batch-class prefills are deferred while a queued interactive
    /// request is at TTFT risk, and KV pressure may shed batch-class
    /// sequences still in prefill to make room for an at-risk interactive
    /// admission. Takes precedence over `queue_policy` for candidate
    /// selection.
    pub class_slo: Option<ClassSlo>,
    /// Bucket width, in total past-context tokens, of the decode-shape
    /// pricing memo. Steady-state decode batches repeat near-identical
    /// shapes for thousands of consecutive iterations; with a bucket the
    /// engine prices each quantized shape `(decode seqs, Σpast / bucket,
    /// config)` once and reuses the duration until the batch's total
    /// context drifts into the next bucket. Iteration durations are then
    /// approximate: the absolute error is bounded by the cost of one
    /// bucket of extra KV traffic (`bucket × kv_bytes_per_token ×
    /// shard_fraction / mem_bw`) plus its attention FLOPs. `None` (the
    /// default) disables the memo and prices every iteration exactly.
    pub decode_memo_tokens: Option<u64>,
}

/// Admission order among waiting requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Strict first-come-first-served (vLLM default).
    #[default]
    Fcfs,
    /// Interactive-class requests are admitted before batch-class ones
    /// (within a class, FCFS) — protects chatbot TTFT during batch bursts.
    InteractiveFirst,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_batched_tokens: 8192,
            max_seqs: 256,
            kv_capacity_tokens: 1_000_000,
            block_tokens: 16,
            throughput_bin: Dur::from_secs(1.0),
            spec_decode: None,
            admission: AdmissionMode::ReserveFull,
            record_timeline: false,
            prefix_caching: false,
            max_prefill_tokens: None,
            queue_policy: QueuePolicy::Fcfs,
            class_slo: None,
            decode_memo_tokens: None,
        }
    }
}

/// One serving engine over one attention-parallel GPU group.
///
/// Advances simulated time one iteration at a time: the scheduler builds a
/// batch (decodes first, then chunked prefill up to the token budget), the
/// deployment's policy picks the parallel configuration, and the execution
/// model prices the iteration.
///
/// # Examples
///
/// ```
/// use sp_cluster::NodeSpec;
/// use sp_engine::{Engine, EngineConfig};
/// use sp_model::presets;
/// use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
/// use sp_workload::synthetic;
///
/// let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::qwen_32b());
/// let policy = StaticPolicy::new("SP", ParallelConfig::sequence(8));
/// let mut engine = Engine::new(exec, Box::new(policy), EngineConfig::default());
/// let report = engine.run(&synthetic::uniform_batch(4, 1024, 8));
/// assert_eq!(report.records().len(), 4);
/// ```
#[derive(Debug)]
pub struct Engine {
    exec: ExecutionModel,
    policy: Box<dyn ParallelismPolicy>,
    config: EngineConfig,
    kv: KvCacheManager,
    clock: SimTime,
    arrivals: VecDeque<Request>,
    /// Waiting requests in an indexed queue: candidate selection and
    /// removal are O(log W) under every admission policy (the plain
    /// `VecDeque` this replaces rescanned and shifted O(W) per admit —
    /// quadratic under backlog).
    waiting: WaitQueue,
    running: Vec<RunningSeq>,
    live_groups: std::collections::HashSet<u64>,
    /// Rotating start index of the decode scan in
    /// [`Engine::build_batch`] — fairness under budget pressure.
    decode_cursor: usize,
    /// Sustained prefill throughput (tokens/s) at the full iteration
    /// budget, priced once at construction — the TTFT-estimate ingredient
    /// of [`Engine::load`] and the deadline-risk tests.
    prefill_rate: f64,
    /// Accumulates measurements across incremental [`Engine::step_once`]
    /// calls; taken (and reset) by [`Engine::take_report`].
    report: Option<EngineReport>,
    /// Reusable `(running index, chunk)` buffer for
    /// [`Engine::build_batch`]; lives on the engine so the per-iteration
    /// batch build allocates nothing in steady state.
    scratch_assignments: Vec<(usize, ChunkWork)>,
    /// Reusable chunk buffer recycled through [`BatchWork::into_chunks`]
    /// after each iteration is priced and applied.
    scratch_chunks: Vec<ChunkWork>,
    /// Reusable index buffer for the class-aware prefill ordering in
    /// [`Engine::build_batch`].
    scratch_order: Vec<usize>,
    /// When set, the scheduler's hot paths run their pre-optimization
    /// reference implementations — linear EDF admission rescans and
    /// fold-over-state load snapshots — instead of the indexed/counter
    /// fast paths (see [`Engine::set_reference_mode`]).
    reference_mode: bool,
    /// When set, iteration pricing alone runs the direct `try_iteration`
    /// walk (see [`Engine::set_direct_pricing`]); the scheduler fast
    /// paths stay on.
    direct_pricing: bool,
    /// Σ `total_tokens` over `arrivals` + `waiting` — incremental load
    /// counter; see [`Engine::load`].
    queued_total_tokens: u64,
    /// Σ `input_tokens` over `arrivals` + `waiting`.
    queued_input_tokens: u64,
    /// Σ (prefill remaining + output remaining) over `running`.
    running_outstanding_tokens: u64,
    /// Σ prefill remaining over `running`.
    running_prefill_tokens: u64,
    /// One compiled pricing plan per policy configuration, built at
    /// construction: iteration pricing evaluates the plan (O(1) after the
    /// shared batch fold) instead of re-deriving layout and coefficients
    /// per call. Bit-identical to the direct walk; debug builds assert so
    /// on every evaluation.
    plans: Vec<ExecPlan>,
    /// Decode-shape pricing memo (see
    /// [`EngineConfig::decode_memo_tokens`]). Lives with the plans so any
    /// future config/overhead mutation invalidates both together.
    price_memo: HashMap<PriceKey, Dur>,
    /// Fault-injection slowdown multiplier on iteration durations
    /// (1.0 = healthy). Applied *outside* the pricing memo, which keeps
    /// storing base durations, so a slowdown window never poisons it.
    slowdown: f64,
    /// Enables the decode fast-forward macro-step (see
    /// [`Engine::step_run`]). On by default; benches and equivalence
    /// tests turn it off to measure the per-iteration path.
    fast_forward: bool,
    /// Reusable base-context buffer for [`Engine::step_run`]: the
    /// running batch's context lengths in decode-scan order at run
    /// start, from which every rotated iteration shape is derived.
    scratch_run_pasts: Vec<u64>,
    /// Reusable context ring for [`Engine::mixed_run`], in running-index
    /// order with `None` marking the prefill leader's slot.
    scratch_run_slots: Vec<Option<u64>>,
    /// KV-blocked admission fast path (see [`AdmissionGate`]).
    admission_gate: Option<AdmissionGate>,
    /// Monotone version of the running batch's composition and
    /// contexts, bumped by anything that mutates them outside a decode
    /// window's uniform advance: every per-iteration [`Engine::step`]
    /// (which may admit, shed, preempt, retire, or just grow contexts
    /// non-uniformly), a mixed window (its prefill leader advances at a
    /// different rate), any window retirement, and crash salvage.
    /// Guards [`RunCache`] reuse.
    batch_version: u64,
    /// Cross-window continuation of the decode-run linear summary (see
    /// [`RunCache`]). Horizon-parallel windows are cut at every cluster
    /// coordination point (arrival dispatches, fault timers), so a
    /// steady decode batch is re-entered many times; re-deriving the
    /// summary's three real folds per window would dominate short
    /// windows.
    run_cache: Option<RunCache>,
}

/// A running sequence's contribution to the outstanding-token load
/// signal: prompt tokens still to prefill plus output tokens still to
/// generate.
fn seq_outstanding(seq: &RunningSeq) -> u64 {
    seq.prefill_remaining() + u64::from(seq.request.output_tokens.saturating_sub(seq.generated))
}

/// Armed when a full admission scan ends KV-blocked: records the head
/// candidate and the free-token level that would unblock it, so
/// subsequent admission passes (and shape-stable windows) can prove the
/// scan would reach the same blocked break without re-running it.
///
/// The cached verdict is only trusted while every input it depends on
/// is provably unchanged: the queue epoch pins the candidate choice
/// (queued entries are immutable and position tokens are never reused,
/// so an unchanged epoch means the same entries at the same positions),
/// the free-token threshold pins the reservation outcome, and `expires`
/// pins EDF candidate stability — a salvageable-deadline candidate is
/// the minimum deadline at or after the arming clock, so no other entry
/// can displace it until the clock passes that very deadline. Debug
/// builds re-derive the candidate from scratch on every gate hit.
#[derive(Debug, Clone, Copy)]
struct AdmissionGate {
    /// Queue position of the blocked head candidate.
    pos: QueuePos,
    /// The candidate itself (queued entries are immutable, so the copy
    /// cannot go stale while the epoch check holds).
    head: Request,
    /// KV tokens the candidate's reservation asks for (mode-dependent).
    footprint: u64,
    /// Block-rounded unblock level: the reservation fails exactly while
    /// `kv.free_tokens() < required_free_tokens`.
    required_free_tokens: u64,
    /// EDF stability horizon: a salvageable candidate stops being the
    /// candidate once the clock passes its own TTFT deadline. `None`
    /// for deadline-free policies and already-expired candidates, whose
    /// choice is stable until the queue mutates.
    expires: Option<SimTime>,
    /// [`WaitQueue::epoch`] at arming; any push or removal invalidates.
    epoch: u64,
}

/// Closed-form pricing input for a memo-off decode run (see
/// [`Engine::linear_run_summary`]): the batch summary at run iteration
/// `k` is `s0` plus `k` times the per-iteration deltas, bit-identical
/// to the materialized chunk fold while the exactness guards hold.
#[derive(Debug, Clone, Copy)]
struct LinearRunSummary {
    /// The real fold at run iteration 0.
    s0: BatchSummary,
    /// Attention-FLOP growth per iteration (every context +1 token).
    d_attn: f64,
    /// KV-read-byte growth per iteration.
    d_kv_read: u64,
}

/// A decode-run [`LinearRunSummary`] carried across windows: while
/// [`Engine::batch_version`] is unchanged, every running context has
/// advanced exactly `base_k` iterations since the summary was captured
/// (windows advance all decode contexts uniformly), so the summary for
/// a new window is the capture shifted by `base_k` — no folds needed.
/// The shift is exact under the same integer-exactness guards the
/// capture validated, re-checked against the new window's bounds; reuse
/// past the capture's fold-verified endpoint (`valid_to`) recaptures
/// from scratch instead of extrapolating on trust.
#[derive(Debug, Clone, Copy)]
struct RunCache {
    /// [`Engine::batch_version`] at capture.
    version: u64,
    /// Iterations advanced since capture.
    base_k: u64,
    /// Largest capture-relative iteration the endpoint fold verified.
    valid_to: u64,
    /// The summary as captured (s0 = fold at the capture window's k=0).
    lin: LinearRunSummary,
}

impl LinearRunSummary {
    /// The summary re-based `base_k` iterations after its capture,
    /// provided the endpoint of a further `run_limit` iterations stays
    /// in the exact-integer regime (`None` otherwise). Every operand is
    /// a nonnegative integer and every intermediate stays below 2^53,
    /// so each float multiply and add is exact — the shifted `s0`
    /// equals the real fold bit for bit.
    fn shifted(&self, base_k: u64, run_limit: u32) -> Option<LinearRunSummary> {
        /// Largest f64 below which integer addition is exact.
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let last = base_k.checked_add(u64::from(run_limit) - 1)?;
        let attn_last = self.s0.cost.attn_flops + last as f64 * self.d_attn;
        if attn_last >= EXACT || last as f64 >= EXACT {
            return None;
        }
        self.s0.cost.kv_read_bytes.checked_add(last.checked_mul(self.d_kv_read)?)?;
        let kv0 = self.s0.cost.kv_read_bytes + base_k * self.d_kv_read;
        Some(LinearRunSummary {
            s0: BatchSummary {
                cost: StepCost {
                    linear_flops: self.s0.cost.linear_flops,
                    attn_flops: self.s0.cost.attn_flops + base_k as f64 * self.d_attn,
                    logit_flops: self.s0.cost.logit_flops,
                    kv_read_bytes: kv0,
                    kv_write_bytes: self.s0.cost.kv_write_bytes,
                },
                total_new_tokens: self.s0.total_new_tokens,
                num_seqs: self.s0.num_seqs,
            },
            d_attn: self.d_attn,
            d_kv_read: self.d_kv_read,
        })
    }
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler limits are zero.
    pub fn new(
        exec: ExecutionModel,
        policy: Box<dyn ParallelismPolicy>,
        config: EngineConfig,
    ) -> Engine {
        assert!(config.max_batched_tokens > 0, "token budget must be positive");
        assert!(config.max_seqs > 0, "sequence limit must be positive");
        assert!(
            !(config.admission == AdmissionMode::PreemptRestart && config.spec_decode.is_some()),
            "recompute preemption does not compose with speculative decoding"
        );
        let kv = KvCacheManager::new(config.kv_capacity_tokens, config.block_tokens);
        // Compile one pricing plan per registered configuration up front:
        // every layout validation and coefficient derivation happens here,
        // once, instead of on every iteration.
        let plans = exec.compile_configs(&policy.configurations()).unwrap_or_else(|e| {
            panic!("cannot run {} on {}: {e}", policy.name(), exec.model().name)
        });
        // Price one budget-sized prefill chunk under every registered
        // configuration (one shared fold, one plan evaluation each) and
        // keep the fastest: the policy's own `choose` is deliberately not
        // consulted (adaptive policies count iterations, and this
        // reference pricing is not an iteration).
        let prefill_rate = {
            let tokens = config
                .max_prefill_tokens
                .unwrap_or(config.max_batched_tokens)
                .min(config.max_batched_tokens)
                .max(1);
            let work = BatchWork::new(vec![ChunkWork::prefill(tokens, 0, false)]);
            let best = exec
                .price_all(&plans, &work)
                .iter()
                .map(|it| it.total().as_secs())
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() && best > 0.0 {
                tokens as f64 / best
            } else {
                0.0
            }
        };
        Engine {
            exec,
            policy,
            config,
            kv,
            clock: SimTime::ZERO,
            arrivals: VecDeque::new(),
            waiting: WaitQueue::new(config.class_slo),
            running: Vec::new(),
            live_groups: std::collections::HashSet::new(),
            decode_cursor: 0,
            prefill_rate,
            report: None,
            scratch_assignments: Vec::new(),
            scratch_chunks: Vec::new(),
            scratch_order: Vec::new(),
            reference_mode: false,
            direct_pricing: false,
            queued_total_tokens: 0,
            queued_input_tokens: 0,
            running_outstanding_tokens: 0,
            running_prefill_tokens: 0,
            plans,
            price_memo: HashMap::new(),
            slowdown: 1.0,
            fast_forward: true,
            scratch_run_pasts: Vec::new(),
            scratch_run_slots: Vec::new(),
            admission_gate: None,
            batch_version: 0,
            run_cache: None,
        }
    }

    /// Sets the fault-injection slowdown multiplier: every subsequent
    /// iteration takes `factor`× its healthy duration until reset to 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "slowdown factor must be finite and positive");
        self.slowdown = factor;
    }

    /// Prices one iteration of `work` under `config`.
    ///
    /// Fast path: evaluate the config's compiled [`ExecPlan`] from one
    /// shared batch fold — bit-identical to the direct walk (debug builds
    /// assert so on every call). With
    /// [`EngineConfig::decode_memo_tokens`] set, steady-state decode
    /// batches are priced once per quantized shape and the duration
    /// reused until the shape drifts into the next bucket. Reference mode
    /// prices through `try_iteration` directly, preserving the
    /// pre-compilation path as an executable specification.
    fn price_iteration(&mut self, config: &ParallelConfig, work: &BatchWork) -> Dur {
        let _price_span = sp_core::profile::start(sp_core::profile::Phase::Pricing);
        let base = self.price_iteration_base(config, work);
        if self.slowdown == 1.0 {
            base
        } else {
            base * self.slowdown
        }
    }

    /// The healthy-hardware iteration price — what [`Engine::price_iteration`]
    /// scales by the fault-injection slowdown. Kept separate so the
    /// decode-shape memo only ever holds base durations.
    fn price_iteration_base(&mut self, config: &ParallelConfig, work: &BatchWork) -> Dur {
        if self.reference_mode || self.direct_pricing {
            return self.exec.iteration(config, work).total();
        }
        let Some(plan) = self.plans.iter().find(|p| p.config() == *config) else {
            // The policy chose a config outside `configurations()`;
            // price it directly rather than trusting the plan set.
            return self.exec.iteration(config, work).total();
        };
        if let Some(bucket) = self.config.decode_memo_tokens {
            if let Some((seqs, past)) = work.decode_only_shape() {
                let key = (seqs, past / bucket.max(1), *config);
                if let Some(&dur) = self.price_memo.get(&key) {
                    return dur;
                }
                let dur = self.exec.price_planned(plan, work).total();
                if self.price_memo.len() >= PRICE_MEMO_CAP {
                    self.price_memo.clear();
                }
                self.price_memo.insert(key, dur);
                return dur;
            }
        }
        self.exec.price_planned(plan, work).total()
    }

    /// Switches the scheduler's hot paths to their pre-optimization
    /// reference implementations, preserved as executable specifications
    /// of what the fast paths replaced: EDF admission becomes the linear
    /// `min_by` rescan (O(W) per candidate with two deadline evaluations
    /// per comparison, versus O(log W) on the [`WaitQueue`] index) and
    /// load snapshots become the fold over every queued and running
    /// request (O(queue + batch) per call, versus O(1) on the
    /// incremental counters), and iteration pricing calls
    /// `try_iteration` per iteration instead of evaluating the compiled
    /// per-config plan. Scheduling decisions are identical either way —
    /// only the cost differs (plan evaluation is bit-identical to the
    /// direct walk; the decode-shape memo, which is not, is ignored in
    /// reference mode and flushed here). Consumed by the `simperf` bench
    /// to measure the win and by equivalence tests; not part of the
    /// supported API.
    #[doc(hidden)]
    pub fn set_reference_mode(&mut self, reference: bool) {
        self.reference_mode = reference;
        self.price_memo.clear();
        self.admission_gate = None;
        self.run_cache = None;
    }

    /// Switches *only* iteration pricing to the direct `try_iteration`
    /// walk (per-call layout planning, chunk fold per candidate config,
    /// no plan evaluation, no decode-shape memo), leaving every other
    /// scheduler fast path in place. Unlike
    /// [`Engine::set_reference_mode`] this isolates the pricing cost, so
    /// the `simperf` pricing pair measures compiled-vs-direct pricing
    /// and nothing else. Not part of the supported API.
    #[doc(hidden)]
    pub fn set_direct_pricing(&mut self, direct: bool) {
        self.direct_pricing = direct;
        self.price_memo.clear();
    }

    /// Disables (or re-enables) the decode fast-forward macro-step, so
    /// benches and equivalence tests can force every iteration through
    /// the per-iteration scheduler. Scheduling and reports are
    /// bit-identical either way — only the cost differs. Not part of
    /// the supported API.
    #[doc(hidden)]
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Attempts a shape-stable fast-forward: when the batch composition
    /// is provably invariant — admission impossible (nothing waiting,
    /// no free sequence slot, or the KV-blocked gate holds), every
    /// running sequence mid-decode or at most one mid-prefill, no
    /// spec-decode or preemption machinery armed — advances up to the
    /// *run length* (the iteration count until the next schedulable
    /// change: earliest completion, the prefill leader's final chunk,
    /// the gate's EDF expiry, the caller cap, or the next arrival) in
    /// one tight loop that skips batch rebuilding and queue scans,
    /// accumulating time and metrics in the exact same float-op order
    /// as the per-iteration path.
    ///
    /// `cap` is the caller's window bound (a [`crate::WindowCap`]
    /// instant): the run stops before any iteration whose event instant
    /// is not strictly below it, exactly as the per-event window loop
    /// would. Returns `None` — with zero state change — whenever the
    /// shape-stability gates fail or the first iteration is already
    /// outside the cap, so callers fall back to [`Engine::step_once`].
    pub fn step_run(&mut self, cap: Option<f64>) -> Option<crate::routing::RunAdvance> {
        // Cheap gates first; the O(batch) scans only run once they pass.
        if !self.fast_forward
            || self.reference_mode
            || self.direct_pricing
            || self.config.spec_decode.is_some()
            || self.config.admission == AdmissionMode::PreemptRestart
            || self.running.is_empty()
        {
            return None;
        }
        // Admission must stay impossible across the whole window. With
        // requests waiting, only a full batch or a valid KV-blocked
        // gate proves that; a gated window additionally stops at the
        // gate's EDF expiry, where the candidate itself could change.
        let admit_bound: Option<SimTime> = {
            let _detect_span = sp_core::profile::start(sp_core::profile::Phase::WindowDetect);
            if self.waiting.is_empty() || self.running.len() >= self.config.max_seqs {
                None
            } else if self.gate_blocks_admission() {
                self.admission_gate.as_ref().expect("gate verified").expires
            } else {
                return None;
            }
        };
        let mut report = self.report.take().unwrap_or_else(|| self.fresh_report());
        let advanced = if self.running_prefill_tokens == 0 {
            self.decode_run(cap, admit_bound, &mut report)
        } else {
            self.mixed_run(cap, admit_bound, &mut report)
        };
        self.report = Some(report);
        advanced
    }

    /// The fast-forward loop itself. Every observable effect — policy
    /// `choose` calls, memo lookups and inserts, clock advances, report
    /// accumulation, retirement — happens at the same iteration and in
    /// the same order as `run_limit` calls of [`Engine::step`] would
    /// produce; see DESIGN.md decision 13 for the equivalence argument.
    fn decode_run(
        &mut self,
        cap: Option<f64>,
        admit_bound: Option<SimTime>,
        report: &mut EngineReport,
    ) -> Option<crate::routing::RunAdvance> {
        let n = self.running.len();
        if n as u64 > self.config.max_batched_tokens {
            return None; // budget-starved decode rotates batch membership per step
        }
        if let Some(front) = self.arrivals.front() {
            if front.arrival <= self.clock {
                return None; // this step ingests (and may admit)
            }
        }
        let mut base_pasts = std::mem::take(&mut self.scratch_run_pasts);
        base_pasts.clear();
        let mut past_total = 0u64;
        let run_limit: u32;
        let lin: Option<LinearRunSummary>;

        // Cache-hit fast path: a `batch_version` match proves the batch
        // composition is exactly the capture's (any admission, retire,
        // shed, preemption, or prefill bumps the version) and that every
        // sequence has advanced uniformly since capture — so the
        // validity scan below is already decided (all mid-stream
        // decodes, none finished) and the earliest completion sits
        // `base_k` iterations closer than at capture. Skipping the O(n)
        // scan is what makes re-entering the same steady batch across
        // many horizon windows O(1) per window instead of O(n).
        let hit = match self.run_cache {
            Some(cache)
                if cache.version == self.batch_version
                    && n > 0
                    && self.config.decode_memo_tokens.is_none() =>
            {
                let remaining = (cache.valid_to + 1).saturating_sub(cache.base_k);
                debug_assert!(remaining >= 1, "a consumed cache implies a retirement bump");
                let limit = remaining.min(u64::from(u32::MAX)) as u32;
                cache.lin.shifted(cache.base_k, limit).map(|l| (limit, l))
            }
            _ => None,
        };
        if let Some((limit, l)) = hit {
            run_limit = limit;
            lin = Some(l);
            #[cfg(debug_assertions)]
            {
                let mut rl = u32::MAX;
                for k in 0..n {
                    let seq = &self.running[(self.decode_cursor + k) % n];
                    assert!(
                        seq.in_decode() && seq.first_token.is_some() && !seq.finished(),
                        "cache-hit batch must be all mid-stream decodes"
                    );
                    rl = rl.min(seq.decode_remaining());
                    base_pasts.push(seq.context_len());
                }
                assert_eq!(rl, run_limit, "cached completion bound diverged from the scan");
                assert_eq!(
                    self.fold_run_summary(&base_pasts, 0),
                    l.s0,
                    "cached run summary diverged from the real fold"
                );
                base_pasts.clear();
            }
        } else {
            // One pass over the batch (in base decode order — the
            // per-iteration scan starts at the cursor, so at run
            // iteration k the chunk order is this base rotated left by k
            // with every context k tokens longer; the rotation matters:
            // the pricing fold over chunks is order-sensitive in f64):
            // validate that every sequence is a mid-stream decode, bound
            // the run by the earliest completion, and collect the base
            // contexts.
            let mut limit = u32::MAX;
            for k in 0..n {
                let seq = &self.running[(self.decode_cursor + k) % n];
                if !seq.in_decode() || seq.first_token.is_none() || seq.finished() {
                    self.scratch_run_pasts = base_pasts;
                    return None;
                }
                limit = limit.min(seq.decode_remaining());
                let ctx = seq.context_len();
                base_pasts.push(ctx);
                past_total += ctx;
            }
            debug_assert!(limit >= 1);
            run_limit = limit;
            // Memo-off runs re-price every rotation; when the chunk-cost
            // fold is provably exact integer arithmetic, replace the
            // O(n) fold per iteration with a closed-form summary (cached
            // across the horizon windows that repeatedly re-enter the
            // same steady batch; fresh captures pay three real folds).
            lin = self.capture_run_summary(&base_pasts, run_limit);
        }

        // A pure-decode batch's stats are constant across the run.
        let stats = BatchStats { total_new_tokens: n as u64, num_seqs: n };
        let bin_w = self.config.throughput_bin.as_secs();
        let timeline = report.timeline_enabled();
        let kv_util = self.kv.utilization();

        // Last priced (config, memo bucket) → base duration. Valid only
        // while the memo is on (a per-iteration repeat would hit the
        // memo and return the stored value); with the memo off every
        // iteration re-prices its own rotation, as the slow path does.
        let mut cached: Option<(ParallelConfig, u64, Dur)> = None;
        // Closed-form runs price through a partially evaluated plan:
        // built on first use (and on config change), it re-times only
        // the attention kernel per iteration.
        let mut pricer: Option<(ParallelConfig, DecodeRunPricer)> = None;
        let mut cur_config: Option<ParallelConfig> = None;
        let mut config_count = 0u64;
        // Throughput segment: iterations sharing a bin flush closed-form.
        let mut seg_bin = usize::MAX;
        let mut seg_count = 0u64;
        let mut seg_t = SimTime::ZERO;
        let mut run_max = Dur::ZERO;
        let mut last_t = SimTime::ZERO;
        let mut done = 0u32;

        for k in 0..run_limit {
            let t = self.clock;
            if let Some(c) = cap {
                // NaN-safe: `!(t < c)` breaks exactly where the
                // per-event window breaks (`t >= c`, or NaN under
                // either cap flavor — fault-free windows then abort to
                // the sequential replay upstream). The negated operator
                // is the point: `t >= c` would step past a NaN cap.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(t.as_secs() < c) {
                    break;
                }
            }
            if let Some(bound) = admit_bound {
                // Past the gate's EDF expiry the admission candidate
                // itself can change: hand back to the per-iteration
                // path (which re-scans) from this instant on.
                if t > bound {
                    break;
                }
            }
            if k > 0 {
                // An arrival due now means the next step ingests (and
                // may admit): the steady state ends here.
                if let Some(front) = self.arrivals.front() {
                    if front.arrival <= t {
                        break;
                    }
                }
            }

            let config = self.policy.choose(&stats);
            if cur_config != Some(config) {
                if let Some(prev) = cur_config {
                    report.note_config_usage(prev, config_count);
                }
                cur_config = Some(config);
                config_count = 0;
            }
            config_count += 1;

            let memo_bucket = self.config.decode_memo_tokens.map(|b| past_total / b.max(1));
            let base = match (memo_bucket, cached) {
                (Some(bi), Some((c, cbi, d))) if c == config && cbi == bi => d,
                _ => {
                    let d = match &lin {
                        Some(l) => self.price_linear_iteration(&config, k, l, &mut pricer),
                        None => {
                            self.price_run_iteration(&config, k as usize, &base_pasts, past_total)
                        }
                    };
                    if let Some(bi) = memo_bucket {
                        cached = Some((config, bi, d));
                    }
                    d
                }
            };
            let duration = if self.slowdown == 1.0 { base } else { base * self.slowdown };
            self.clock += duration;
            run_max = run_max.max(duration);
            last_t = t;
            done = k + 1;

            let idx = (self.clock.as_secs() / bin_w) as usize;
            if idx == seg_bin {
                seg_count += 1;
                seg_t = self.clock;
            } else {
                if seg_count > 0 {
                    report.observe_tokens_run(seg_t, n as f64, seg_count);
                }
                seg_bin = idx;
                seg_count = 1;
                seg_t = self.clock;
            }
            if timeline {
                report.note_event(crate::report::IterationEvent {
                    end: self.clock,
                    duration,
                    config,
                    tokens: n as u64,
                    num_seqs: n,
                    kv_utilization: kv_util,
                });
            }
            past_total += n as u64;
        }
        self.scratch_run_pasts = base_pasts;
        if done == 0 {
            // The cap closed the window before the first iteration (the
            // per-event loop would not have stepped either).
            return None;
        }

        // Flush the closed-form accumulators. Ends are monotone and the
        // folds are exact (see the report/metrics helpers), so this is
        // bit-identical to `done` per-iteration notes.
        if seg_count > 0 {
            report.observe_tokens_run(seg_t, n as f64, seg_count);
        }
        if let Some(cfg) = cur_config {
            report.note_config_usage(cfg, config_count);
        }
        report.note_kv_utilization(kv_util);
        report.note_run(u64::from(done), self.clock, run_max);

        // Apply the run to scheduler state: each sequence emitted one
        // token per iteration.
        for seq in &mut self.running {
            seq.generated += done;
        }
        self.running_outstanding_tokens -= n as u64 * u64::from(done);
        self.decode_cursor = self.decode_cursor.wrapping_add(done as usize);

        // Retire finished sequences exactly as the per-iteration step
        // does (completions can only land on the run's final iteration,
        // after all of its token attribution — same order as the slow
        // path). A window cut before the earliest-completion bound
        // cannot have finished anything (`run_limit` is the minimum of
        // `decode_remaining`), so the retire scan is skipped entirely.
        if done == run_limit {
            let clock = self.clock;
            let kv = &mut self.kv;
            self.running.retain(|seq| {
                if seq.finished() {
                    kv.release(seq.request.id);
                    report.note_completion(RequestRecord {
                        request_id: seq.request.id,
                        class: seq.request.class,
                        arrival: seq.request.arrival,
                        first_token: seq.first_token.expect("finished implies first token"),
                        finish: clock,
                        input_tokens: seq.request.input_tokens,
                        output_tokens: seq.request.output_tokens,
                    });
                    false
                } else {
                    true
                }
            });
        } else {
            debug_assert!(self.running.iter().all(|seq| !seq.finished()));
        }

        // Cache bookkeeping: retirement changes the batch (stale
        // summary); an intact batch advanced every context by exactly
        // `done` more iterations.
        if self.running.len() != n {
            self.batch_version = self.batch_version.wrapping_add(1);
        } else if let Some(cache) = &mut self.run_cache {
            if cache.version == self.batch_version {
                cache.base_k += u64::from(done);
            }
        }

        Some(crate::routing::RunAdvance { events: u64::from(done), last: last_t })
    }

    /// Prices run iteration `k` by materializing the rotated decode
    /// batch and walking the exact branch structure of
    /// [`Engine::price_iteration_base`] (plan lookup, memo get/insert
    /// with the cap-clear, direct fallback for out-of-set configs), so
    /// memo state after the run matches the per-iteration path's.
    fn price_run_iteration(
        &mut self,
        config: &ParallelConfig,
        k: usize,
        base_pasts: &[u64],
        past_total: u64,
    ) -> Dur {
        let _price_span = sp_core::profile::start(sp_core::profile::Phase::Pricing);
        let n = base_pasts.len();
        let mut chunks = std::mem::take(&mut self.scratch_chunks);
        chunks.clear();
        for j in 0..n {
            chunks.push(ChunkWork::decode(base_pasts[(j + k) % n] + k as u64));
        }
        let work = BatchWork::new(chunks);
        debug_assert_eq!(work.decode_only_shape(), Some((n, past_total)));
        let dur = match self.plans.iter().position(|p| p.config() == *config) {
            Some(pi) => {
                if let Some(bucket) = self.config.decode_memo_tokens {
                    let key = (n, past_total / bucket.max(1), *config);
                    if let Some(&d) = self.price_memo.get(&key) {
                        d
                    } else {
                        let d = self.exec.price_planned(&self.plans[pi], &work).total();
                        if self.price_memo.len() >= PRICE_MEMO_CAP {
                            self.price_memo.clear();
                        }
                        self.price_memo.insert(key, d);
                        d
                    }
                } else {
                    self.exec.price_planned(&self.plans[pi], &work).total()
                }
            }
            // The policy chose a config outside `configurations()`;
            // price directly, unmemoized, like the slow path.
            None => self.exec.iteration(config, &work).total(),
        };
        self.scratch_chunks = work.into_chunks();
        dur
    }

    /// Captures a fresh closed-form pricing summary for this window, if
    /// one can be proven: three real folds pin and verify the line, so
    /// the capture is worth it only for longer windows. The capture is
    /// cached on the engine; pure continuations of the same batch hit it
    /// in [`Engine::decode_run`] with zero folds (cache bookkeeping —
    /// advancing `base_k`, invalidating on retirement — happens at the
    /// window's end there).
    fn capture_run_summary(
        &mut self,
        base_pasts: &[u64],
        run_limit: u32,
    ) -> Option<LinearRunSummary> {
        if self.config.decode_memo_tokens.is_some() || run_limit < 4 {
            return None;
        }
        let lin = self.linear_run_summary(base_pasts, run_limit)?;
        self.run_cache = Some(RunCache {
            version: self.batch_version,
            base_k: 0,
            valid_to: u64::from(run_limit) - 1,
            lin,
        });
        Some(lin)
    }

    /// Attempts to prove the run's summarize fold is closed-form: for a
    /// pure-decode batch every chunk-cost field is a product and sum of
    /// integers (FLOP counts from integer model constants and context
    /// lengths, KV bytes in `u64`), and integer f64 arithmetic below
    /// 2^53 is exact — hence order-insensitive and linear in the run
    /// iteration `k` (each context grows by exactly one token per
    /// iteration). Three real folds (k = 0, 1, last) pin the line and
    /// verify it end to end; any field that is fractional, non-constant
    /// where it should be, at risk of crossing 2^53, or off the line at
    /// the last iteration disqualifies the run (`None` → the caller
    /// materializes every rotation as before). Debug builds additionally
    /// re-assert every extrapolated iteration against the real fold.
    fn linear_run_summary(
        &mut self,
        base_pasts: &[u64],
        run_limit: u32,
    ) -> Option<LinearRunSummary> {
        /// Largest f64 below which integer addition is exact.
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let s0 = self.fold_run_summary(base_pasts, 0);
        let s1 = self.fold_run_summary(base_pasts, 1);
        let c0 = &s0.cost;
        let c1 = &s1.cost;
        if c1.linear_flops != c0.linear_flops
            || c1.logit_flops != c0.logit_flops
            || c1.kv_write_bytes != c0.kv_write_bytes
            || c0.linear_flops.fract() != 0.0
            || c0.logit_flops.fract() != 0.0
            || c0.attn_flops.fract() != 0.0
            || c1.attn_flops.fract() != 0.0
        {
            return None;
        }
        let d_attn = c1.attn_flops - c0.attn_flops;
        if d_attn < 0.0 || d_attn.fract() != 0.0 {
            return None;
        }
        let d_kv_read = c1.kv_read_bytes.checked_sub(c0.kv_read_bytes)?;
        let last_k = u64::from(run_limit - 1);
        let attn_last = c0.attn_flops + last_k as f64 * d_attn;
        if attn_last >= EXACT {
            return None;
        }
        let kv_read_last = c0.kv_read_bytes.checked_add(last_k.checked_mul(d_kv_read)?)?;
        let s_last = self.fold_run_summary(base_pasts, run_limit as usize - 1);
        if s_last.cost.attn_flops != attn_last
            || s_last.cost.kv_read_bytes != kv_read_last
            || s_last.cost.linear_flops != c0.linear_flops
            || s_last.cost.logit_flops != c0.logit_flops
            || s_last.cost.kv_write_bytes != c0.kv_write_bytes
        {
            return None;
        }
        Some(LinearRunSummary { s0, d_attn, d_kv_read })
    }

    /// The real chunk-cost fold of run iteration `k`: materializes the
    /// rotated decode batch and summarizes it, exactly as
    /// [`Engine::price_run_iteration`] would before pricing.
    fn fold_run_summary(&mut self, base_pasts: &[u64], k: usize) -> BatchSummary {
        let n = base_pasts.len();
        let mut chunks = std::mem::take(&mut self.scratch_chunks);
        chunks.clear();
        for j in 0..n {
            chunks.push(ChunkWork::decode(base_pasts[(j + k) % n] + k as u64));
        }
        let work = BatchWork::new(chunks);
        let summary = self.exec.summarize(&work);
        self.scratch_chunks = work.into_chunks();
        summary
    }

    /// Prices run iteration `k` from the closed-form summary — the
    /// memo-off fast path that skips materializing and folding the
    /// rotated batch. The window's plan is partially evaluated once per
    /// `(window, config)` into `pricer`; each iteration then re-times
    /// only the attention kernel (the one cost term that moves along a
    /// pure-decode run), bit-identical to pricing the full summary.
    /// Falls back to the materialized path for configs outside the
    /// compiled plan set (whose direct pricing consumes the chunks
    /// themselves).
    fn price_linear_iteration(
        &mut self,
        config: &ParallelConfig,
        k: u32,
        lin: &LinearRunSummary,
        pricer: &mut Option<(ParallelConfig, DecodeRunPricer)>,
    ) -> Dur {
        if !matches!(pricer, Some((pc, _)) if pc == config) {
            let Some(pi) = self.plans.iter().position(|p| p.config() == *config) else {
                // Out-of-set config: materialize the rotation from live
                // batch state (closed-form windows may not have built
                // the base contexts) and price directly, as the slow
                // path would.
                let (pasts, base_total) = self.running_base_pasts();
                let past_total = base_total + u64::from(k) * pasts.len() as u64;
                return self.price_run_iteration(config, k as usize, &pasts, past_total);
            };
            *pricer = Some((*config, self.plans[pi].decode_run_pricer(&lin.s0)));
        }
        let (_, p) = pricer.as_ref().expect("pricer built above");
        let dur = {
            let _price_span = sp_core::profile::start(sp_core::profile::Phase::Pricing);
            let attn_flops = lin.s0.cost.attn_flops + f64::from(k) * lin.d_attn;
            let kv_read = lin.s0.cost.kv_read_bytes + u64::from(k) * lin.d_kv_read;
            p.price(attn_flops, kv_read)
        };
        #[cfg(debug_assertions)]
        {
            let (pasts, base_total) = self.running_base_pasts();
            let past_total = base_total + u64::from(k) * pasts.len() as u64;
            assert_eq!(
                dur,
                self.price_run_iteration(config, k as usize, &pasts, past_total),
                "linear summary extrapolation diverged from the materialized fold"
            );
        }
        dur
    }

    /// The live batch's base decode contexts in cursor order (the shape
    /// [`Engine::decode_run`]'s slow path scans out), plus their sum —
    /// for the rare paths that must materialize a rotation after the
    /// closed-form window skipped the scan.
    fn running_base_pasts(&self) -> (Vec<u64>, u64) {
        let n = self.running.len();
        let mut pasts = Vec::with_capacity(n);
        let mut total = 0u64;
        for k in 0..n {
            let ctx = self.running[(self.decode_cursor + k) % n].context_len();
            pasts.push(ctx);
            total += ctx;
        }
        (pasts, total)
    }

    /// The mixed-window fast-forward: exactly one running sequence
    /// mid-prefill (the chunked-prefill leader) advancing `pb` tokens
    /// per iteration alongside pure decodes. Engages only where every
    /// scheduling decision is provably clock-independent: the leader's
    /// chunk size is pinned at the full prefill budget until its final
    /// chunk (which flips it to decode and ends the window), and under
    /// SLO scheduling a batch-class leader only runs while no
    /// interactive request waits (the `urgent` deferral flag is
    /// clock-dependent otherwise). Every observable effect lands at the
    /// same iteration, in the same float-op order, as the per-iteration
    /// path; see DESIGN.md decision 14.
    fn mixed_run(
        &mut self,
        cap: Option<f64>,
        admit_bound: Option<SimTime>,
        report: &mut EngineReport,
    ) -> Option<crate::routing::RunAdvance> {
        let n = self.running.len();
        let mut leader = None;
        for (i, seq) in self.running.iter().enumerate() {
            if seq.in_decode() {
                if seq.first_token.is_none() || seq.finished() {
                    return None;
                }
            } else if leader.is_some() {
                // Two concurrent prefills: their chunk split depends on
                // queue order and budget interplay; stay per-iteration.
                return None;
            } else {
                leader = Some(i);
            }
        }
        let leader_idx = leader?;
        let decode_count = (n - 1) as u64;
        if decode_count > self.config.max_batched_tokens {
            return None; // budget-starved decode rotates batch membership
        }
        let budget_left = self.config.max_batched_tokens - decode_count;
        let pb = budget_left.min(self.config.max_prefill_tokens.unwrap_or(u64::MAX));
        if pb == 0 {
            return None; // frozen leader: rare, stay per-iteration
        }
        let rem0 = self.running[leader_idx].prefill_remaining();
        debug_assert!(rem0 > 0, "a non-decode sequence has prefill work");
        // Only non-final chunks are shape-stable: the final chunk emits
        // the first token and flips the leader to decode.
        let prefill_iters = (rem0 - 1) / pb;
        if prefill_iters == 0 {
            return None;
        }
        if self.config.class_slo.is_some()
            && self.running[leader_idx].request.class == RequestClass::Batch
            && self.waiting.first_interactive_pos().is_some()
        {
            // A waiting interactive request can turn TTFT-at-risk at a
            // clock-dependent instant, deferring the batch leader (and
            // possibly shedding it for the gate candidate).
            return None;
        }
        if let Some(front) = self.arrivals.front() {
            if front.arrival <= self.clock {
                return None; // this step ingests (and may admit)
            }
        }
        let mut run_limit = u32::try_from(prefill_iters).unwrap_or(u32::MAX);
        for seq in &self.running {
            if seq.in_decode() {
                run_limit = run_limit.min(seq.decode_remaining());
            }
        }
        debug_assert!(run_limit >= 1);

        // Context ring in running-index order; the per-iteration decode
        // scan starts at the rotating cursor, so iteration k materializes
        // slot (cursor + k + j) % n for j = 0..n, skipping the leader's
        // `None` slot, then appends the leader's prefill chunk — the
        // exact assignment order `build_batch` produces.
        let mut slots = std::mem::take(&mut self.scratch_run_slots);
        slots.clear();
        for (i, seq) in self.running.iter().enumerate() {
            slots.push(if i == leader_idx { None } else { Some(seq.context_len()) });
        }
        let done0 = self.running[leader_idx].prefill_done;

        // Mixed-batch stats are constant across the run: the decodes
        // emit one token each and the leader always takes `pb`.
        let ledger = decode_count + pb;
        let stats = BatchStats { total_new_tokens: ledger, num_seqs: n };
        let bin_w = self.config.throughput_bin.as_secs();
        let timeline = report.timeline_enabled();
        let kv_util = self.kv.utilization();

        let mut cur_config: Option<ParallelConfig> = None;
        let mut config_count = 0u64;
        let mut seg_bin = usize::MAX;
        let mut seg_count = 0u64;
        let mut seg_t = SimTime::ZERO;
        let mut run_max = Dur::ZERO;
        let mut last_t = SimTime::ZERO;
        let mut done = 0u32;

        for k in 0..run_limit {
            let t = self.clock;
            if let Some(c) = cap {
                // NaN-safe, exactly as in `decode_run`.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(t.as_secs() < c) {
                    break;
                }
            }
            if let Some(bound) = admit_bound {
                if t > bound {
                    break;
                }
            }
            if k > 0 {
                if let Some(front) = self.arrivals.front() {
                    if front.arrival <= t {
                        break;
                    }
                }
            }

            let config = self.policy.choose(&stats);
            if cur_config != Some(config) {
                if let Some(prev) = cur_config {
                    report.note_config_usage(prev, config_count);
                }
                cur_config = Some(config);
                config_count = 0;
            }
            config_count += 1;

            // Mixed batches never touch the decode-shape memo (their
            // shape is not decode-only), so pricing is a straight plan
            // evaluation per rotation, like the per-iteration path.
            let base = self.price_mixed_iteration(&config, k, &slots, done0, pb);
            let duration = if self.slowdown == 1.0 { base } else { base * self.slowdown };
            self.clock += duration;
            run_max = run_max.max(duration);
            last_t = t;
            done = k + 1;

            let idx = (self.clock.as_secs() / bin_w) as usize;
            if idx == seg_bin {
                seg_count += 1;
                seg_t = self.clock;
            } else {
                if seg_count > 0 {
                    report.observe_tokens_run(seg_t, ledger as f64, seg_count);
                }
                seg_bin = idx;
                seg_count = 1;
                seg_t = self.clock;
            }
            if timeline {
                report.note_event(crate::report::IterationEvent {
                    end: self.clock,
                    duration,
                    config,
                    tokens: ledger,
                    num_seqs: n,
                    kv_utilization: kv_util,
                });
            }
        }
        self.scratch_run_slots = slots;
        if done == 0 {
            return None;
        }

        if seg_count > 0 {
            report.observe_tokens_run(seg_t, ledger as f64, seg_count);
        }
        if let Some(cfg) = cur_config {
            report.note_config_usage(cfg, config_count);
        }
        report.note_kv_utilization(kv_util);
        report.note_run(u64::from(done), self.clock, run_max);

        // Apply the run: each decode emitted one token per iteration;
        // the leader prefilled `pb` tokens per iteration.
        let done_u = u64::from(done);
        for (i, seq) in self.running.iter_mut().enumerate() {
            if i == leader_idx {
                seq.prefill_done += done_u * pb;
            } else {
                seq.generated += done;
            }
        }
        self.running_outstanding_tokens -= done_u * ledger;
        self.running_prefill_tokens -= done_u * pb;
        self.decode_cursor = self.decode_cursor.wrapping_add(done as usize);

        // A mixed window advances the leader at a different rate than
        // the decodes: any cached decode-run summary is stale.
        self.batch_version = self.batch_version.wrapping_add(1);

        // Retire finished decodes (possible only on the run's final
        // iteration; the leader cannot finish mid-window).
        let clock = self.clock;
        let kv = &mut self.kv;
        self.running.retain(|seq| {
            if seq.finished() {
                kv.release(seq.request.id);
                report.note_completion(RequestRecord {
                    request_id: seq.request.id,
                    class: seq.request.class,
                    arrival: seq.request.arrival,
                    first_token: seq.first_token.expect("finished implies first token"),
                    finish: clock,
                    input_tokens: seq.request.input_tokens,
                    output_tokens: seq.request.output_tokens,
                });
                false
            } else {
                true
            }
        });

        Some(crate::routing::RunAdvance { events: u64::from(done), last: last_t })
    }

    /// Prices mixed-window iteration `k` by materializing the rotated
    /// decode chunks plus the leader's `k`-th prefill chunk and walking
    /// the branch structure of [`Engine::price_iteration_base`] for a
    /// prefill-bearing batch (plan lookup, no memo — the shape is not
    /// decode-only — with the direct fallback for out-of-set configs).
    fn price_mixed_iteration(
        &mut self,
        config: &ParallelConfig,
        k: u32,
        slots: &[Option<u64>],
        done0: u64,
        pb: u64,
    ) -> Dur {
        let _price_span = sp_core::profile::start(sp_core::profile::Phase::Pricing);
        let n = slots.len();
        let ku = u64::from(k);
        let mut chunks = std::mem::take(&mut self.scratch_chunks);
        chunks.clear();
        for j in 0..n {
            if let Some(ctx) = slots[(self.decode_cursor + k as usize + j) % n] {
                chunks.push(ChunkWork::decode(ctx + ku));
            }
        }
        chunks.push(ChunkWork::prefill(pb, done0 + ku * pb, false));
        let work = BatchWork::new(chunks);
        let dur = match self.plans.iter().position(|p| p.config() == *config) {
            Some(pi) => self.exec.price_planned(&self.plans[pi], &work).total(),
            None => self.exec.iteration(config, &work).total(),
        };
        self.scratch_chunks = work.into_chunks();
        dur
    }

    /// Recomputes the incremental load counters from the actual queue
    /// and batch state — used when [`Engine::run`] replaces the arrival
    /// queue wholesale.
    fn recount_load_counters(&mut self) {
        self.queued_total_tokens =
            self.arrivals.iter().chain(self.waiting.iter()).map(Request::total_tokens).sum();
        self.queued_input_tokens = self
            .arrivals
            .iter()
            .chain(self.waiting.iter())
            .map(|r| u64::from(r.input_tokens))
            .sum();
        self.running_outstanding_tokens = self.running.iter().map(seq_outstanding).sum();
        self.running_prefill_tokens = self.running.iter().map(RunningSeq::prefill_remaining).sum();
    }

    /// The current simulated time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current KV-cache block utilization (0..=1) — observable mid-run
    /// through the incremental stepping API.
    pub fn kv_utilization(&self) -> f64 {
        self.kv.utilization()
    }

    /// Outstanding work in tokens (queued + admitted but unfinished) — the
    /// router's load signal. O(1): read off counters maintained at every
    /// queue transition (routers poll every replica per dispatch, so a
    /// fold over live state here made dispatch O(R × state)).
    pub fn outstanding_tokens(&self) -> u64 {
        if self.reference_mode {
            return self.outstanding_tokens_fold();
        }
        let fast = self.queued_total_tokens + self.running_outstanding_tokens;
        debug_assert_eq!(fast, self.outstanding_tokens_fold(), "load counters drifted");
        fast
    }

    /// The pre-counter outstanding-tokens fold over every queued and
    /// running request — the reference implementation
    /// [`Engine::outstanding_tokens`] is checked against in debug builds.
    fn outstanding_tokens_fold(&self) -> u64 {
        let queued: u64 =
            self.arrivals.iter().chain(self.waiting.iter()).map(Request::total_tokens).sum();
        let admitted: u64 = self.running.iter().map(seq_outstanding).sum();
        queued + admitted
    }

    /// Live load snapshot for deadline-aware routing: outstanding tokens
    /// (the classic JSQ signal) plus the ingredients of a TTFT estimate —
    /// queued prefill work, KV headroom, and this engine's prefill rate.
    /// O(1), like [`Engine::outstanding_tokens`].
    pub fn load(&self) -> NodeLoad {
        if self.reference_mode {
            return self.load_fold();
        }
        let load = NodeLoad {
            outstanding_tokens: self.queued_total_tokens + self.running_outstanding_tokens,
            queued_prefill_tokens: self.queued_input_tokens + self.running_prefill_tokens,
            kv_free_tokens: self.kv.free_tokens(),
            min_kv_free_tokens: self.kv.free_tokens(),
            prefill_tokens_per_sec: self.prefill_rate,
        };
        debug_assert_eq!(load, self.load_fold(), "load counters drifted");
        load
    }

    /// The pre-counter load fold — reference implementation for
    /// [`Engine::load`].
    fn load_fold(&self) -> NodeLoad {
        let queued_prefill: u64 = self
            .arrivals
            .iter()
            .chain(self.waiting.iter())
            .map(|r| u64::from(r.input_tokens))
            .chain(self.running.iter().map(RunningSeq::prefill_remaining))
            .sum();
        NodeLoad {
            outstanding_tokens: self.outstanding_tokens_fold(),
            queued_prefill_tokens: queued_prefill,
            kv_free_tokens: self.kv.free_tokens(),
            min_kv_free_tokens: self.kv.free_tokens(),
            prefill_tokens_per_sec: self.prefill_rate,
        }
    }

    /// Runs a whole trace to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails to make progress (internal bug
    /// guard).
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        self.report = Some(self.fresh_report());
        self.arrivals = trace.requests().to_vec().into();
        self.recount_load_counters();
        self.clock = SimTime::ZERO;

        let mut guard: u64 = 0;
        let max_iterations = 200_000_000;
        while !self.is_idle() {
            guard += 1;
            assert!(guard < max_iterations, "simulation failed to terminate");
            // Fast-forward steady-state decode runs; fall back to the
            // per-iteration step everywhere else.
            if self.step_run(None).is_none() {
                self.step_once();
            }
        }
        self.take_report()
    }

    fn fresh_report(&self) -> EngineReport {
        let mut report = EngineReport::new(self.config.throughput_bin);
        if self.config.record_timeline {
            report.enable_timeline();
        }
        report
    }

    /// True when no request is queued, admitted, or yet to arrive. An idle
    /// engine stays idle until [`Engine::push_request`] feeds it.
    pub fn is_idle(&self) -> bool {
        self.arrivals.is_empty() && self.waiting.is_empty() && self.running.is_empty()
    }

    /// Enqueues one request for online serving (the event-driven cluster
    /// router's entry point). Requests must be pushed in nondecreasing
    /// arrival order — the router dispatches them in global simulated-time
    /// order, so this holds by construction there.
    ///
    /// # Panics
    ///
    /// Panics if `req.arrival` precedes a previously pushed arrival.
    pub fn push_request(&mut self, req: Request) {
        if let Some(back) = self.arrivals.back() {
            assert!(
                back.arrival.as_secs() <= req.arrival.as_secs(),
                "requests must be pushed in arrival order"
            );
        }
        self.queued_total_tokens += req.total_tokens();
        self.queued_input_tokens += u64::from(req.input_tokens);
        self.arrivals.push_back(req);
    }

    /// The instant of this engine's next event, or `None` when idle: the
    /// current clock while work is queued or running (the next iteration
    /// completes "now" in event-queue terms), otherwise the next arrival.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.running.is_empty() || !self.waiting.is_empty() {
            return Some(self.clock);
        }
        self.arrivals.front().map(|r| self.clock.max(r.arrival))
    }

    /// Advances the simulation by one scheduling step, accumulating into
    /// the engine-owned report (see [`Engine::take_report`]). No-op when
    /// idle.
    pub fn step_once(&mut self) {
        if self.is_idle() {
            return;
        }
        let mut report = self.report.take().unwrap_or_else(|| self.fresh_report());
        self.step(&mut report);
        self.report = Some(report);
    }

    /// Finalizes an incremental run: releases shared-prefix groups and
    /// returns (and resets) the accumulated report.
    pub fn take_report(&mut self) -> EngineReport {
        for group in std::mem::take(&mut self.live_groups) {
            self.kv.release_group(group);
        }
        self.report.take().unwrap_or_else(|| self.fresh_report())
    }

    /// Rips every unfinished request out of the engine, as a crash would:
    /// queued arrivals, waiting requests, and running sequences all come
    /// back (their KV reservations released, shared-prefix groups
    /// dropped), with the prompt tokens already prefilled counted as
    /// wasted — a re-dispatched request pays full re-prefill because its
    /// KV cache died with the replica. Completed work already in the
    /// report is untouched.
    pub fn take_unfinished(&mut self) -> crate::fault::SalvagedWork {
        self.batch_version = self.batch_version.wrapping_add(1);
        let mut salvaged = crate::fault::SalvagedWork::default();
        salvaged.requests.extend(std::mem::take(&mut self.arrivals));
        while let Some(pos) = self.waiting.front_pos() {
            salvaged.requests.push(self.waiting.remove(pos));
        }
        for seq in self.running.drain(..) {
            salvaged.wasted_prefill_tokens += seq.prefill_done;
            self.kv.release(seq.request.id);
            salvaged.requests.push(seq.request);
        }
        for group in std::mem::take(&mut self.live_groups) {
            self.kv.release_group(group);
        }
        self.queued_total_tokens = 0;
        self.queued_input_tokens = 0;
        self.running_outstanding_tokens = 0;
        self.running_prefill_tokens = 0;
        salvaged
    }

    /// Executes one scheduling step: admit, batch, price, apply.
    fn step(&mut self, report: &mut EngineReport) {
        // A per-iteration step can mutate the batch arbitrarily (admit,
        // shed, preempt, retire, non-uniform context growth): any
        // cached run summary is stale. Presume staleness up front; the
        // end of the step re-validates the cache for the common
        // arrival-driven step that turns out to be a pure uniform
        // decode advance.
        let prev_version = self.batch_version;
        let pre_seqs = self.running.len();
        let pre_prefill = self.running_prefill_tokens;
        let pre_outstanding = self.running_outstanding_tokens;
        self.batch_version = self.batch_version.wrapping_add(1);
        self.ingest_arrivals();
        self.admit(report);
        if self.config.admission == AdmissionMode::PreemptRestart {
            self.reserve_decode_appends(report);
        }
        report.note_kv_utilization(self.kv.utilization());

        let Some((work, deferred)) = self.build_batch() else {
            // Nothing runnable now: jump to the next arrival.
            if let Some(next) = self.arrivals.front() {
                self.clock = self.clock.max(next.arrival);
                return;
            }
            // No arrivals left; waiting must be drainable next admit pass.
            assert!(
                self.running.is_empty() && self.waiting.is_empty(),
                "scheduler stalled with queued work"
            );
            return;
        };
        report.note_deferrals(deferred);
        let stats = BatchStats::of(&work);
        let config = self.policy.choose(&stats);
        let duration = self.price_iteration(&config, &work);
        self.clock += duration;
        self.decode_cursor = self.decode_cursor.wrapping_add(1);

        // Apply results at iteration end. The throughput ledger counts
        // client-visible tokens: prompt tokens, emitted output tokens, and
        // the first output token each final prefill chunk produces.
        let mut ledger_tokens = 0u64;
        let assignments = std::mem::take(&mut self.scratch_assignments);
        for &(seq_idx, chunk) in &assignments {
            let seq = &mut self.running[seq_idx];
            match chunk.kind {
                sp_parallel::ChunkKind::Decode => {
                    // A chunk of >1 tokens is a speculative verification;
                    // a 1-token chunk is a plain decode (possibly degraded
                    // from speculative under budget pressure) and emits
                    // exactly one token.
                    let emitted = match self.config.spec_decode {
                        Some(sd) if chunk.new_tokens > 1 => {
                            let raw = sd.expected_emitted() + seq.spec_carry;
                            let whole = (raw.floor() as u32).max(1);
                            seq.spec_carry = raw - f64::from(whole);
                            whole
                        }
                        _ => 1,
                    };
                    let emitted = emitted.min(seq.decode_remaining());
                    seq.generated += emitted;
                    self.running_outstanding_tokens -= u64::from(emitted);
                    ledger_tokens += u64::from(emitted);
                }
                sp_parallel::ChunkKind::Prefill => {
                    seq.prefill_done += chunk.new_tokens;
                    self.running_outstanding_tokens -= chunk.new_tokens;
                    self.running_prefill_tokens -= chunk.new_tokens;
                    ledger_tokens += chunk.new_tokens;
                    if chunk.emits_logit {
                        seq.first_token = Some(self.clock);
                        seq.generated = 1;
                        self.running_outstanding_tokens -= 1;
                        ledger_tokens += 1;
                    }
                }
            }
        }
        self.scratch_assignments = assignments;
        report.note_iteration(config, self.clock, ledger_tokens, duration);
        report.note_event(crate::report::IterationEvent {
            end: self.clock,
            duration,
            config,
            tokens: ledger_tokens,
            num_seqs: work.num_seqs(),
            kv_utilization: self.kv.utilization(),
        });
        self.scratch_chunks = work.into_chunks();

        // Retire finished sequences.
        let clock = self.clock;
        let kv = &mut self.kv;
        self.running.retain(|seq| {
            if seq.finished() {
                kv.release(seq.request.id);
                report.note_completion(RequestRecord {
                    request_id: seq.request.id,
                    class: seq.request.class,
                    arrival: seq.request.arrival,
                    first_token: seq.first_token.expect("finished implies first token"),
                    finish: clock,
                    input_tokens: seq.request.input_tokens,
                    output_tokens: seq.request.output_tokens,
                });
                false
            } else {
                true
            }
        });

        // Cache re-validation: these invariants prove the step was a
        // uniform +1 decode advance, i.e. exactly one window iteration.
        // No prefill work existed before or after, so every chunk was a
        // 1-token decode and each sequence emitted 0 or 1 tokens; the
        // outstanding-token drop of exactly `pre_seqs` then forces
        // *every* sequence to have emitted 1. The unchanged batch size
        // rules out retirement, shedding, and preemption (an admission
        // offsetting one of those would have left prefill work or a
        // larger outstanding drop). A cached run summary is a fold of
        // per-context costs — order-insensitive under its exactness
        // guards — so it stays live, shifted one iteration forward.
        if self.config.spec_decode.is_none()
            && pre_prefill == 0
            && self.running_prefill_tokens == 0
            && pre_seqs > 0
            && self.running.len() == pre_seqs
            && self.running_outstanding_tokens == pre_outstanding - pre_seqs as u64
        {
            self.batch_version = prev_version;
            if let Some(cache) = &mut self.run_cache {
                if cache.version == prev_version {
                    cache.base_k += 1;
                }
            }
        }
    }

    /// Moves arrived requests into the waiting queue.
    fn ingest_arrivals(&mut self) {
        while let Some(front) = self.arrivals.front() {
            if front.arrival <= self.clock {
                self.waiting.push_back(self.arrivals.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
    }

    /// FCFS admission: reserve the full KV footprint (prompt + output)
    /// up-front, so decode can never overflow mid-flight. Head-of-line
    /// blocking is intentional — it reproduces the growing wait times of
    /// Figure 10 when the cache saturates.
    fn admit(&mut self, report: &mut EngineReport) {
        if self.running.len() >= self.config.max_seqs || self.waiting.is_empty() {
            // The scan below could not admit anything; an armed gate (if
            // any) stays armed for when a slot or a candidate appears.
            return;
        }
        if !self.reference_mode && self.gate_blocks_admission() {
            // KV-blocked fast path: the armed gate proves the scan would
            // end in the same blocked break it was armed on.
            return;
        }
        self.admission_gate = None;
        let _admit_span = sp_core::profile::start(sp_core::profile::Phase::Admission);
        while self.running.len() < self.config.max_seqs {
            let Some(pos) = self.next_admission_candidate() else { break };
            let head = *self.waiting.get(pos);
            if head.total_tokens() > self.kv.capacity_tokens() {
                // Can never fit: reject rather than deadlock.
                self.waiting.remove(pos);
                self.queued_total_tokens -= head.total_tokens();
                self.queued_input_tokens -= u64::from(head.input_tokens);
                report.note_rejection(head.id);
                continue;
            }
            // Shared-prefix memory: with prefix caching and a group id,
            // the cached tokens live in the group's shared allocation and
            // this request only reserves its fresh tokens + output.
            let shared = self.config.prefix_caching
                && self.config.admission == AdmissionMode::ReserveFull
                && head.prefix_group.is_some();
            // Watermark to restore if this admission attempt fails after
            // extending the shared-prefix group.
            let mut group_rollback = None;
            if shared {
                let group = head.prefix_group.expect("checked");
                let prior = self.kv.group_tokens(group);
                if !self.kv.try_extend_group(group, u64::from(head.cached_prefix)) {
                    break;
                }
                group_rollback = Some((group, prior));
            }
            let footprint = match self.config.admission {
                AdmissionMode::ReserveFull if shared => {
                    head.total_tokens() - u64::from(head.cached_prefix.min(head.input_tokens))
                }
                AdmissionMode::ReserveFull => head.total_tokens(),
                AdmissionMode::PreemptRestart => u64::from(head.input_tokens),
            };
            let mut reserved = self.kv.try_reserve(head.id, footprint);
            // SLO-aware shedding: an at-risk interactive admission may
            // evict batch-class sequences that have not yet emitted a
            // first token (their prefill restarts later; their SLO budget
            // is 30x looser). Each shed frees one reservation, so the
            // retry loop terminates.
            if !reserved {
                if let Some(slo) = self.config.class_slo {
                    if head.class == RequestClass::Interactive && self.ttft_at_risk(&head, &slo) {
                        while !reserved && self.shed_one_batch_prefill(report) {
                            reserved = self.kv.try_reserve(head.id, footprint);
                        }
                    }
                }
            }
            if !reserved {
                // The request was not admitted: undo its group extension,
                // or the orphaned watermark occupies blocks (re-extended
                // on every admit pass) until the cache wedges.
                if let Some((group, prior)) = group_rollback {
                    self.kv.shrink_group(group, prior);
                } else if !self.reference_mode {
                    // KV-blocked on a plain (non-shared) candidate: arm
                    // the gate so later passes skip the rescan until the
                    // headroom (or the candidate) can actually change.
                    self.arm_admission_gate(pos, head, footprint);
                }
                break;
            }
            if let Some((group, _)) = group_rollback {
                self.live_groups.insert(group);
            }
            let req = self.waiting.remove(pos);
            self.queued_total_tokens -= req.total_tokens();
            self.queued_input_tokens -= u64::from(req.input_tokens);
            let mut seq = RunningSeq::new(req);
            if self.config.prefix_caching {
                // The cached prefix is already resident: skip its prefill.
                // At least one prompt token must still be processed to
                // produce the first logit.
                seq.prefill_done =
                    u64::from(req.cached_prefix.min(req.input_tokens.saturating_sub(1)));
            }
            self.running_outstanding_tokens += seq_outstanding(&seq);
            self.running_prefill_tokens += seq.prefill_remaining();
            self.running.push(seq);
        }
    }

    /// Arms the KV-blocked admission gate for the head candidate at
    /// `pos`, whose `footprint`-token reservation just failed.
    ///
    /// `required_free_tokens` is the block-rounded footprint: with no
    /// existing allocation (waiting requests never hold one — sheds,
    /// preemptions, and crashes all release first), the reservation
    /// succeeds exactly when `free_tokens >= ceil(footprint / block) ×
    /// block`. The EDF expiry captures candidate stability: a candidate
    /// chosen as the minimum salvageable deadline at or after the
    /// arming clock stays the candidate until the clock passes that
    /// deadline (no smaller salvageable deadline can exist without a
    /// queue mutation); an already-expired candidate (every deadline
    /// blown) and the deadline-free policies are stable outright.
    fn arm_admission_gate(&mut self, pos: QueuePos, head: Request, footprint: u64) {
        let block = u64::from(self.config.block_tokens);
        let required_free_tokens = footprint.div_ceil(block) * block;
        let expires = self.config.class_slo.and_then(|slo| {
            let deadline = slo.ttft_deadline(head.arrival, head.class);
            (deadline >= self.clock).then_some(deadline)
        });
        self.admission_gate = Some(AdmissionGate {
            pos,
            head,
            footprint,
            required_free_tokens,
            expires,
            epoch: self.waiting.epoch(),
        });
    }

    /// True when the armed admission gate proves a full admission scan
    /// would end in the same KV-blocked break it was armed on: the
    /// queue epoch is unchanged (same candidate), free KV is still
    /// short of the candidate's requirement (same reservation failure),
    /// the EDF stability horizon has not passed, and the SLO shedding
    /// path could not free KV for it (an at-risk interactive head with
    /// a sheddable batch prefill in the batch re-enters the scan).
    /// Invalid gates are disarmed on the way out; debug builds check
    /// the cached candidate against a full rescan on every hit.
    fn gate_blocks_admission(&mut self) -> bool {
        let Some(gate) = self.admission_gate else { return false };
        if gate.epoch != self.waiting.epoch()
            || self.kv.free_tokens() >= gate.required_free_tokens
            || gate.expires.is_some_and(|deadline| self.clock > deadline)
        {
            self.admission_gate = None;
            return false;
        }
        if let Some(slo) = self.config.class_slo {
            if gate.head.class == RequestClass::Interactive
                && self.ttft_at_risk(&gate.head, &slo)
                && self
                    .running
                    .iter()
                    .any(|s| s.request.class == RequestClass::Batch && s.first_token.is_none())
            {
                self.admission_gate = None;
                return false;
            }
        }
        debug_assert_eq!(
            self.next_admission_candidate(),
            Some(gate.pos),
            "admission gate candidate diverged from a full rescan"
        );
        debug_assert!(
            !self.kv.can_reserve(gate.head.id, gate.footprint),
            "admission gate held but the candidate's reservation would succeed"
        );
        true
    }

    /// Queue position of the next request to admit under the admission
    /// policy, O(log W) via the [`WaitQueue`] indexes.
    ///
    /// With [`EngineConfig::class_slo`] set, admission is goodput-first
    /// EDF: earliest TTFT deadline first among requests whose deadline has
    /// not yet passed; requests that can no longer attain their SLO queue
    /// behind the salvageable ones (serving them first would burn
    /// capacity a salvageable deadline still needs). Ties break to the
    /// earlier queue position, so the order matches the linear scan this
    /// replaces exactly.
    fn next_admission_candidate(&self) -> Option<QueuePos> {
        if self.waiting.is_empty() {
            return None;
        }
        if let Some(slo) = self.config.class_slo {
            if self.reference_mode {
                return self.naive_admission_candidate(slo);
            }
            return self.waiting.edf_candidate(self.clock);
        }
        match self.config.queue_policy {
            QueuePolicy::Fcfs => self.waiting.front_pos(),
            QueuePolicy::InteractiveFirst => {
                self.waiting.first_interactive_pos().or_else(|| self.waiting.front_pos())
            }
        }
    }

    /// The pre-index EDF candidate scan: `min_by` over the whole queue
    /// with the `(deadline expired, deadline)` key recomputed for both
    /// sides of every comparison, exactly as the scheduler worked before
    /// the queue grew its deadline index. Same result as
    /// [`WaitQueue::edf_candidate`], at O(W) per call.
    fn naive_admission_candidate(&self, slo: sp_metrics::ClassSlo) -> Option<QueuePos> {
        let key = |r: &Request| {
            let deadline = slo.ttft_deadline(r.arrival, r.class);
            (deadline < self.clock, deadline.as_secs())
        };
        self.waiting
            .iter_with_pos()
            .min_by(|a, b| key(a.1).partial_cmp(&key(b.1)).expect("deadlines are finite"))
            .map(|(pos, _)| pos)
    }

    /// True when `req`'s first token is in jeopardy: its TTFT deadline is
    /// still attainable, but the remaining slack after its own prefill
    /// would be under half the class budget. The margin makes the engine
    /// act *before* the deadline is blown, while leaving freshly arrived
    /// requests to queue politely.
    fn ttft_at_risk(&self, req: &Request, slo: &ClassSlo) -> bool {
        if self.prefill_rate <= 0.0 {
            return false;
        }
        let budget = slo.target_for(req.class).ttft;
        let deadline = req.arrival + budget;
        if deadline < self.clock {
            return false; // Already lost; don't harm others for it.
        }
        let own_prefill = Dur::from_secs(f64::from(req.input_tokens) / self.prefill_rate);
        self.clock + own_prefill + budget * 0.5 > deadline
    }

    /// Sheds the youngest running batch-class sequence still in prefill:
    /// releases its KV reservation and requeues the request (prefill
    /// restarts from scratch on readmission). Returns false when no
    /// sheddable sequence exists.
    fn shed_one_batch_prefill(&mut self, report: &mut EngineReport) -> bool {
        let Some(victim_idx) = self
            .running
            .iter()
            .rposition(|s| s.request.class == RequestClass::Batch && s.first_token.is_none())
        else {
            return false;
        };
        let victim = self.running.remove(victim_idx);
        self.running_outstanding_tokens -= seq_outstanding(&victim);
        self.running_prefill_tokens -= victim.prefill_remaining();
        self.queued_total_tokens += victim.request.total_tokens();
        self.queued_input_tokens += u64::from(victim.request.input_tokens);
        self.kv.release(victim.request.id);
        report.note_shed(victim.request.id);
        self.waiting.push_back(victim.request);
        true
    }

    /// PreemptRestart mode: reserve one KV token for every decode step the
    /// upcoming iteration will take; when the cache cannot supply them,
    /// preempt the most recently admitted sequence (recompute preemption)
    /// and restart it from the waiting queue.
    fn reserve_decode_appends(&mut self, report: &mut EngineReport) {
        let mut idx = 0;
        while idx < self.running.len() {
            let seq = &self.running[idx];
            if !seq.in_decode() || seq.finished() {
                idx += 1;
                continue;
            }
            let id = seq.request.id;
            if self.kv.try_reserve(id, 1) {
                idx += 1;
                continue;
            }
            // Out of blocks: preempt the youngest sequence (possibly the
            // one we are reserving for) — it restarts from the queue.
            let victim_idx = self.running.len() - 1;
            let victim = self.running.remove(victim_idx);
            // The preempted request restarts from scratch, so its full
            // footprint moves back to the queued-side counters.
            self.running_outstanding_tokens -= seq_outstanding(&victim);
            self.running_prefill_tokens -= victim.prefill_remaining();
            self.queued_total_tokens += victim.request.total_tokens();
            self.queued_input_tokens += u64::from(victim.request.input_tokens);
            self.kv.release(victim.request.id);
            report.note_preemption(victim.request.id);
            self.waiting.push_front(victim.request);
            // Do not advance: retry the reservation for `idx` (now
            // possibly out of bounds if we preempted ourselves, which the
            // loop condition handles).
        }
    }

    /// Builds the iteration batch: all runnable decodes first, then prefill
    /// chunks in admission order until the token budget is spent.
    ///
    /// Every runnable decode gets at least one token of progress whenever
    /// the budget allows: a speculative chunk (`draft_len + 1` tokens)
    /// that no longer fits degrades to a plain 1-token decode instead of
    /// dropping the sequence's step. If even 1-token decodes exhaust the
    /// budget (more runnable decodes than `max_batched_tokens`), the scan
    /// starts from a cursor that rotates every iteration, so leftover
    /// sequences are first in line next iteration rather than starved
    /// behind the same earlier-admitted ones forever.
    /// On `Some`, the per-sequence assignments are left in
    /// `scratch_assignments` for the caller to apply (and hand back for
    /// reuse); all three scratch buffers are engine-owned so steady-state
    /// iterations allocate nothing here.
    fn build_batch(&mut self) -> Option<(BatchWork, u64)> {
        let _build_span = sp_core::profile::start(sp_core::profile::Phase::BatchBuild);
        let mut budget = self.config.max_batched_tokens;
        let mut assignments = std::mem::take(&mut self.scratch_assignments);
        assignments.clear();

        let n = self.running.len();
        for k in 0..n {
            let i = (self.decode_cursor + k) % n;
            let seq = &self.running[i];
            if seq.in_decode() && !seq.finished() {
                let mut chunk = match self.config.spec_decode {
                    None => ChunkWork::decode(seq.context_len()),
                    Some(sd) => ChunkWork::speculative_decode(seq.context_len(), sd.draft_len),
                };
                if budget < chunk.new_tokens {
                    chunk = ChunkWork::decode(seq.context_len());
                }
                if budget < chunk.new_tokens {
                    break;
                }
                budget -= chunk.new_tokens;
                assignments.push((i, chunk));
            }
        }
        let mut prefill_budget = budget.min(self.config.max_prefill_tokens.unwrap_or(u64::MAX));
        let mut deferred = 0u64;
        match self.config.class_slo {
            None => {
                for (i, seq) in self.running.iter().enumerate() {
                    if prefill_budget == 0 {
                        break;
                    }
                    if !seq.in_decode() {
                        let take = seq.prefill_remaining().min(prefill_budget);
                        let is_last = take == seq.prefill_remaining();
                        assignments.push((i, ChunkWork::prefill(take, seq.prefill_done, is_last)));
                        prefill_budget -= take;
                    }
                }
            }
            Some(slo) => {
                // Class-aware prefill: interactive prefills take the budget
                // first. While a queued interactive request is at TTFT risk,
                // batch prefills are skipped outright — iterations stay
                // short, so decode drains KV (and the at-risk request is
                // admitted) sooner in simulated wall-clock. A skipped batch
                // prefill is *deferred*, not dropped: it runs once the risk
                // clears. To guarantee progress, a batch prefill is never
                // skipped when it would be the only work in the batch.
                let urgent = if self.reference_mode {
                    // Pre-index scan: walks every queued entry.
                    self.waiting
                        .iter()
                        .any(|r| r.class == RequestClass::Interactive && self.ttft_at_risk(r, &slo))
                } else {
                    self.waiting.iter_interactive().any(|r| self.ttft_at_risk(r, &slo))
                };
                let prefill_order = self.running.iter().enumerate().filter(|(_, s)| !s.in_decode());
                let mut ordered = std::mem::take(&mut self.scratch_order);
                ordered.clear();
                ordered.extend(
                    prefill_order
                        .clone()
                        .filter(|(_, s)| s.request.class == RequestClass::Interactive)
                        .chain(
                            prefill_order.filter(|(_, s)| s.request.class == RequestClass::Batch),
                        )
                        .map(|(i, _)| i),
                );
                let mut scheduled_interactive = false;
                for &i in &ordered {
                    let seq = &self.running[i];
                    let is_batch = seq.request.class == RequestClass::Batch;
                    if is_batch && urgent && !assignments.is_empty() {
                        deferred += 1;
                        continue;
                    }
                    if prefill_budget == 0 {
                        if is_batch && scheduled_interactive {
                            deferred += 1;
                        }
                        continue;
                    }
                    let take = seq.prefill_remaining().min(prefill_budget);
                    let is_last = take == seq.prefill_remaining();
                    assignments.push((i, ChunkWork::prefill(take, seq.prefill_done, is_last)));
                    prefill_budget -= take;
                    if !is_batch {
                        scheduled_interactive = true;
                    }
                }
                self.scratch_order = ordered;
            }
        }

        if assignments.is_empty() {
            self.scratch_assignments = assignments;
            return None;
        }
        let mut chunks = std::mem::take(&mut self.scratch_chunks);
        chunks.clear();
        chunks.extend(assignments.iter().map(|&(_, c)| c));
        self.scratch_assignments = assignments;
        Some((BatchWork::new(chunks), deferred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cluster::NodeSpec;
    use sp_model::presets;
    use sp_parallel::{ParallelConfig, StaticPolicy};
    use sp_workload::{synthetic, RequestClass};

    fn engine_with(config: EngineConfig, parallel: ParallelConfig) -> Engine {
        let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::qwen_32b());
        Engine::new(exec, Box::new(StaticPolicy::new("test", parallel)), config)
    }

    fn engine() -> Engine {
        engine_with(EngineConfig::default(), ParallelConfig::tensor(8))
    }

    #[test]
    fn empty_trace_reports_nothing() {
        let report = engine().run(&Trace::default());
        assert!(report.records().is_empty());
        assert_eq!(report.iterations(), 0);
    }

    #[test]
    fn single_request_completes_with_consistent_timestamps() {
        let mut e = engine();
        let report = e.run(&synthetic::single(4096, 16));
        assert_eq!(report.records().len(), 1);
        let r = &report.records()[0];
        assert!(r.first_token > r.arrival);
        assert!(r.finish > r.first_token);
        assert_eq!(r.output_tokens, 16);
        // 16 output tokens = 1 (from prefill) + 15 decode iterations,
        // plus 1 prefill iteration (4096 fits one 8192-token budget).
        assert_eq!(report.iterations(), 16);
    }

    #[test]
    fn long_prompt_is_chunked() {
        let mut e = engine();
        let report = e.run(&synthetic::single(20_000, 1));
        // ceil(20000 / 8192) = 3 prefill chunks; output 1 needs no decode.
        assert_eq!(report.iterations(), 3);
        assert_eq!(report.records().len(), 1);
    }

    #[test]
    fn token_accounting_is_conserved() {
        let mut e = engine();
        let trace = synthetic::uniform_batch(8, 1000, 50);
        let report = e.run(&trace);
        assert_eq!(report.metrics().total_tokens(), trace.total_tokens());
    }

    #[test]
    fn concurrent_requests_batch_together() {
        let mut e = engine();
        let report = e.run(&synthetic::uniform_batch(4, 1000, 10));
        // All four prefills fit one 8192-token iteration; decodes batch
        // 4-wide: 1 + 9 iterations total.
        assert_eq!(report.iterations(), 10);
    }

    #[test]
    fn decode_memo_stays_within_bucket_error() {
        // Same trace priced exactly and through the decode-shape memo:
        // identical scheduling (iteration and completion counts), and
        // timing within the documented quantization error — one bucket
        // of KV traffic per memoized iteration.
        let trace = synthetic::uniform_batch(8, 512, 400);
        let exact = engine_with(EngineConfig::default(), ParallelConfig::tensor(8)).run(&trace);
        let cfg = EngineConfig { decode_memo_tokens: Some(4096), ..EngineConfig::default() };
        let memo = engine_with(cfg, ParallelConfig::tensor(8)).run(&trace);
        assert_eq!(exact.records().len(), memo.records().len());
        assert_eq!(exact.iterations(), memo.iterations());
        let end =
            |r: &EngineReport| r.records().iter().map(|c| c.finish.as_secs()).fold(0.0, f64::max);
        let (a, b) = (end(&exact), end(&memo));
        let rel = (a - b).abs() / a;
        assert!(rel < 0.02, "memoized makespan drifted {:.2}% from exact", rel * 100.0);
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn pricing_mode_switches_flush_the_decode_shape_memo() {
        // Regression pin: `set_direct_pricing` / `set_reference_mode`
        // must invalidate the decode-shape memo. A memo carried across a
        // pricing-mode switch is priced under the other mode's semantics
        // and silently corrupts every later run. Poison the memo, flip
        // the mode, and require a subsequent run to be bit-identical to
        // a fresh engine — if the flush is ever removed, the poisoned
        // entries inflate the makespan and this fails.
        let cfg = EngineConfig { decode_memo_tokens: Some(4096), ..EngineConfig::default() };
        let trace = synthetic::uniform_batch(8, 512, 400);
        let fresh = engine_with(cfg, ParallelConfig::tensor(8)).run(&trace);

        let mut e = engine_with(cfg, ParallelConfig::tensor(8));
        for seqs in 1..=16 {
            for bucket in 0..8 {
                e.price_memo.insert((seqs, bucket, ParallelConfig::tensor(8)), Dur::from_secs(1e6));
            }
        }
        e.set_direct_pricing(true);
        assert!(e.price_memo.is_empty(), "set_direct_pricing must flush the memo");
        for seqs in 1..=16 {
            for bucket in 0..8 {
                e.price_memo.insert((seqs, bucket, ParallelConfig::tensor(8)), Dur::from_secs(1e6));
            }
        }
        e.set_direct_pricing(false);
        assert!(e.price_memo.is_empty(), "leaving direct pricing must flush the memo");

        let report = e.run(&trace);
        let end =
            |r: &EngineReport| r.records().iter().map(|c| c.finish.as_secs()).fold(0.0, f64::max);
        assert_eq!(
            end(&fresh).to_bits(),
            end(&report).to_bits(),
            "a mode round-trip must leave pricing bit-identical to a fresh engine"
        );

        let mut r = engine_with(
            EngineConfig { decode_memo_tokens: Some(4096), ..EngineConfig::default() },
            ParallelConfig::tensor(8),
        );
        r.price_memo.insert((1, 0, ParallelConfig::tensor(8)), Dur::from_secs(1e6));
        r.set_reference_mode(true);
        assert!(r.price_memo.is_empty(), "set_reference_mode must flush the memo");
    }

    #[test]
    fn oversized_request_is_rejected_not_deadlocked() {
        let config = EngineConfig { kv_capacity_tokens: 1_000, ..EngineConfig::default() };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        let trace = synthetic::uniform_batch(1, 5_000, 10);
        let report = e.run(&trace);
        assert!(report.records().is_empty());
        assert_eq!(report.rejected(), &[0]);
    }

    #[test]
    fn kv_pressure_serializes_requests() {
        // Two requests, cache fits only one at a time: the second must
        // wait for the first to finish.
        let config = EngineConfig { kv_capacity_tokens: 1_200, ..EngineConfig::default() };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        let report = e.run(&synthetic::uniform_batch(2, 1_000, 8));
        assert_eq!(report.records().len(), 2);
        let a = &report.records()[0];
        let b = &report.records()[1];
        assert!(b.first_token >= a.finish, "second prefill must start after first completes");
        assert!(report.peak_kv_utilization() > 0.8);
    }

    #[test]
    fn max_seqs_caps_concurrency() {
        let config = EngineConfig { max_seqs: 2, ..EngineConfig::default() };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        let report = e.run(&synthetic::uniform_batch(4, 100, 10));
        assert_eq!(report.records().len(), 4);
        // With only 2 running at a time, more iterations than the
        // unconstrained case (10).
        assert!(report.iterations() > 10);
    }

    #[test]
    fn arrivals_gate_scheduling() {
        let trace = synthetic::poisson(3, 0.5, 512, 4, 7);
        let mut e = engine();
        let report = e.run(&trace);
        assert_eq!(report.records().len(), 3);
        for (rec, req) in report.records().iter().zip(trace.requests()) {
            assert!(rec.arrival.as_secs() >= req.arrival.as_secs() - 1e-9);
            assert!(rec.first_token > rec.arrival);
        }
    }

    #[test]
    fn clock_is_monotone_across_iterations() {
        let mut e = engine();
        let report = e.run(&synthetic::poisson(20, 5.0, 800, 20, 3));
        assert!(report.makespan().as_secs() > 0.0);
        for r in report.records() {
            assert!(r.finish.as_secs() <= report.makespan().as_secs() + 1e-9);
        }
    }

    #[test]
    fn config_usage_records_every_iteration() {
        let mut e = engine();
        let report = e.run(&synthetic::uniform_batch(2, 1000, 5));
        let total: u64 = report.config_usage().values().sum();
        assert_eq!(total, report.iterations());
        assert_eq!(report.config_usage().len(), 1); // static policy
    }

    #[test]
    fn outstanding_tokens_drain_to_zero() {
        let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::qwen_32b());
        let mut e = Engine::new(
            exec,
            Box::new(StaticPolicy::new("TP", ParallelConfig::tensor(8))),
            EngineConfig::default(),
        );
        assert_eq!(e.outstanding_tokens(), 0);
        let _ = e.run(&synthetic::uniform_batch(2, 100, 5));
        assert_eq!(e.outstanding_tokens(), 0);
    }

    #[test]
    fn preempt_mode_admits_more_concurrency() {
        // Cache fits both prompts but not both full footprints: reserve-
        // full serializes, preempt-restart overlaps the prefills.
        let tight = EngineConfig { kv_capacity_tokens: 2_600, ..EngineConfig::default() };
        let trace = synthetic::uniform_batch(2, 1_000, 500);

        let mut conservative = engine_with(tight, ParallelConfig::tensor(8));
        let conservative_report = conservative.run(&trace);

        let preemptive = EngineConfig { admission: AdmissionMode::PreemptRestart, ..tight };
        let mut aggressive = engine_with(preemptive, ParallelConfig::tensor(8));
        let aggressive_report = aggressive.run(&trace);

        // Conservative: second request waits for the first to finish.
        let c = conservative_report.records();
        assert!(c[1].first_token >= c[0].finish);
        // Aggressive: both prefill immediately (TTFTs overlap).
        let a = aggressive_report.records();
        let min_first = a.iter().map(|r| r.first_token.as_secs()).fold(f64::INFINITY, f64::min);
        let max_first = a.iter().map(|r| r.first_token.as_secs()).fold(0.0, f64::max);
        assert!(
            max_first < c[0].finish.as_secs(),
            "both requests should start decoding before the first finishes \
             (got {min_first:.2}/{max_first:.2} vs {:.2})",
            c[0].finish.as_secs()
        );
        assert_eq!(aggressive_report.records().len(), 2);
    }

    #[test]
    fn preemption_fires_under_pressure_and_all_complete() {
        // 4 requests whose decode growth overflows the cache: recompute
        // preemption must fire, and every request must still finish.
        let config = EngineConfig {
            kv_capacity_tokens: 3_000,
            admission: AdmissionMode::PreemptRestart,
            ..EngineConfig::default()
        };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        let report = e.run(&synthetic::uniform_batch(4, 500, 600));
        assert_eq!(report.records().len(), 4);
        assert!(report.preemptions() > 0, "expected recompute preemptions");
        assert!(report.peak_kv_utilization() > 0.9);
    }

    #[test]
    fn reserve_full_never_preempts() {
        let config = EngineConfig { kv_capacity_tokens: 3_000, ..EngineConfig::default() };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        let report = e.run(&synthetic::uniform_batch(4, 500, 600));
        assert_eq!(report.preemptions(), 0);
        assert_eq!(report.records().len(), 4);
    }

    #[test]
    #[should_panic(expected = "speculative")]
    fn preemption_rejects_spec_decode() {
        let config = EngineConfig {
            admission: AdmissionMode::PreemptRestart,
            spec_decode: Some(SpecDecode::new(4, 0.5)),
            ..EngineConfig::default()
        };
        let _ = engine_with(config, ParallelConfig::tensor(8));
    }

    #[test]
    fn prefill_cap_bounds_interference() {
        // A huge prefill arrives while a request decodes: with an
        // uncapped budget the decode's TPOT absorbs whole 8k-chunk
        // iterations; a 1k cap keeps iterations short.
        let trace = Trace::new(vec![
            sp_workload::Request {
                id: 0,
                arrival: SimTime::ZERO,
                input_tokens: 64,
                output_tokens: 200,
                class: RequestClass::Interactive,
                cached_prefix: 0,
                prefix_group: None,
            },
            sp_workload::Request {
                id: 1,
                arrival: SimTime::from_secs(0.05),
                input_tokens: 60_000,
                output_tokens: 4,
                class: RequestClass::Batch,
                cached_prefix: 0,
                prefix_group: None,
            },
        ]);
        let max_stall = |cap: Option<u64>| {
            let config = EngineConfig { max_prefill_tokens: cap, ..EngineConfig::default() };
            let mut e = engine_with(config, ParallelConfig::tensor(8));
            let report = e.run(&trace);
            assert_eq!(report.records().len(), 2);
            report.max_iteration_time().as_millis()
        };
        let uncapped = max_stall(None);
        let capped = max_stall(Some(1024));
        assert!(
            capped < 0.35 * uncapped,
            "prefill cap should bound the worst stall: {capped:.1}ms vs {uncapped:.1}ms"
        );
    }

    #[test]
    fn interactive_first_queue_jumps_batch_backlog() {
        // A pile of batch requests queued ahead of one interactive
        // request: InteractiveFirst admits it first.
        let mut reqs: Vec<sp_workload::Request> = (0..30)
            .map(|i| sp_workload::Request {
                id: i,
                arrival: SimTime::ZERO,
                input_tokens: 8_000,
                output_tokens: 8,
                class: RequestClass::Batch,
                cached_prefix: 0,
                prefix_group: None,
            })
            .collect();
        reqs.push(sp_workload::Request {
            id: 30,
            arrival: SimTime::from_secs(0.01),
            input_tokens: 256,
            output_tokens: 16,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        });
        let trace = Trace::new(reqs);
        // Tight KV so the batch backlog actually queues.
        let ttft_of_interactive = |policy| {
            let config = EngineConfig {
                kv_capacity_tokens: 40_000,
                queue_policy: policy,
                ..EngineConfig::default()
            };
            let mut e = engine_with(config, ParallelConfig::tensor(8));
            let report = e.run(&trace);
            report
                .records()
                .iter()
                .find(|r| r.input_tokens == 256)
                .expect("interactive request completes")
                .ttft()
                .as_secs()
        };
        let fcfs = ttft_of_interactive(QueuePolicy::Fcfs);
        let priority = ttft_of_interactive(QueuePolicy::InteractiveFirst);
        assert!(
            priority < 0.5 * fcfs,
            "priority admission should cut interactive TTFT: {priority:.2}s vs {fcfs:.2}s"
        );
    }

    #[test]
    fn prefix_caching_skips_cached_prefill() {
        // Second turn of a conversation: 8k context of which 7k is
        // cached. With prefix caching the prefill processes ~1k tokens.
        let warm = Trace::new(vec![sp_workload::Request {
            id: 0,
            arrival: SimTime::ZERO,
            input_tokens: 8_000,
            output_tokens: 4,
            class: RequestClass::Interactive,
            cached_prefix: 7_000,
            prefix_group: None,
        }]);
        let ttft = |caching: bool| {
            let config = EngineConfig { prefix_caching: caching, ..EngineConfig::default() };
            let mut e = engine_with(config, ParallelConfig::tensor(8));
            let report = e.run(&warm);
            report.records()[0].ttft().as_secs()
        };
        let cold = ttft(false);
        let cached = ttft(true);
        assert!(cached < 0.4 * cold, "cached {cached:.4}s vs cold {cold:.4}s");
    }

    #[test]
    fn shared_prefix_memory_admits_concurrent_branches() {
        // A parallel agent samples 3 candidate continuations of the SAME
        // 6k context concurrently (same prefix group). With shared prefix
        // memory the context is resident once (6k + 3 x 550 fits a 9k
        // cache, all branches run together); without sharing each branch
        // reserves the full 6.55k and they serialize.
        let branches: Vec<sp_workload::Request> = (0..3)
            .map(|b| sp_workload::Request {
                id: b,
                arrival: SimTime::ZERO,
                input_tokens: 6_500,
                output_tokens: 50,
                class: RequestClass::Interactive,
                cached_prefix: 6_000,
                prefix_group: Some(42),
            })
            .collect();
        let trace = Trace::with_ids(branches);
        let config = EngineConfig {
            kv_capacity_tokens: 9_000,
            prefix_caching: true,
            ..EngineConfig::default()
        };
        let run_last_finish = |trace: &Trace| {
            let mut e = engine_with(config, ParallelConfig::tensor(8));
            let report = e.run(trace);
            assert_eq!(report.records().len(), 3);
            report.records().iter().map(|r| r.finish.as_secs()).fold(0.0f64, f64::max)
        };
        let shared_makespan = run_last_finish(&trace);
        let no_group: Vec<sp_workload::Request> = trace
            .requests()
            .iter()
            .map(|r| sp_workload::Request { prefix_group: None, ..*r })
            .collect();
        let unshared_makespan = run_last_finish(&Trace::with_ids(no_group));
        assert!(
            shared_makespan < 0.6 * unshared_makespan,
            "shared branches should run concurrently: {shared_makespan:.2}s vs              serialized {unshared_makespan:.2}s"
        );
    }

    #[test]
    fn prefix_caching_clamps_fully_cached_prompts() {
        // cached_prefix >= input: at least one token must be processed.
        let trace = Trace::new(vec![sp_workload::Request {
            id: 0,
            arrival: SimTime::ZERO,
            input_tokens: 100,
            output_tokens: 4,
            class: RequestClass::Interactive,
            cached_prefix: 100,
            prefix_group: None,
        }]);
        let config = EngineConfig { prefix_caching: true, ..EngineConfig::default() };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        let report = e.run(&trace);
        assert_eq!(report.records().len(), 1);
        assert!(report.records()[0].first_token > report.records()[0].arrival);
    }

    #[test]
    fn interactive_request_latency_reasonable() {
        // A lone 4k-prompt request on TP=8 should see a sub-second TTFT
        // (Figure 12 reports ~100 ms scale).
        let mut e = engine();
        let trace = Trace::new(vec![sp_workload::Request {
            id: 0,
            arrival: SimTime::ZERO,
            input_tokens: 4096,
            output_tokens: 250,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        }]);
        let mut report = e.run(&trace);
        let ttft = report.metrics_mut().ttft().median().unwrap();
        assert!(ttft < 0.5, "TTFT {ttft}s too slow");
        let tpot = report.metrics_mut().tpot().median().unwrap();
        assert!((0.002..0.05).contains(&tpot), "TPOT {tpot}s out of range");
    }

    #[test]
    fn stepping_api_matches_batch_run() {
        // push_request + step_once + take_report must reproduce run().
        let trace = synthetic::poisson(12, 4.0, 768, 24, 11);
        let batch = engine().run(&trace);

        let mut e = engine();
        for &req in trace.requests() {
            e.push_request(req);
        }
        let mut guard = 0;
        while !e.is_idle() {
            guard += 1;
            assert!(guard < 1_000_000);
            e.step_once();
        }
        let stepped = e.take_report();

        assert_eq!(stepped.records().len(), batch.records().len());
        assert_eq!(stepped.iterations(), batch.iterations());
        for (a, b) in stepped.records().iter().zip(batch.records()) {
            assert_eq!(a.request_id, b.request_id);
            assert!((a.finish.as_secs() - b.finish.as_secs()).abs() < 1e-9);
        }
    }

    #[test]
    fn next_event_time_tracks_arrivals_and_work() {
        let mut e = engine();
        assert_eq!(e.next_event_time(), None);
        e.push_request(sp_workload::Request {
            id: 0,
            arrival: SimTime::from_secs(3.0),
            input_tokens: 128,
            output_tokens: 4,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        });
        // Idle engine: next event is the pending arrival.
        assert_eq!(e.next_event_time(), Some(SimTime::from_secs(3.0)));
        e.step_once();
        // Work admitted: the next iteration completes "now".
        assert_eq!(e.next_event_time(), Some(e.clock()));
        while !e.is_idle() {
            e.step_once();
        }
        assert_eq!(e.next_event_time(), None);
        assert_eq!(e.take_report().records().len(), 1);
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn push_request_rejects_time_travel() {
        let mut e = engine();
        let req = |id, at| sp_workload::Request {
            id,
            arrival: SimTime::from_secs(at),
            input_tokens: 64,
            output_tokens: 4,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        };
        e.push_request(req(0, 5.0));
        e.push_request(req(1, 2.0));
    }

    #[test]
    fn failed_shared_prefix_admission_leaks_no_kv() {
        // Regression: admit() used to extend the shared-prefix group (and
        // register it live) BEFORE reserving the request's own footprint.
        // When the reserve then failed, the extension was never rolled
        // back, so the orphaned watermark squatted on blocks until the
        // cache wedged. Here request B's group extension fits but its
        // footprint does not, so B must wait for A — without B's dead
        // extension inflating utilization in the meantime.
        let a = sp_workload::Request {
            id: 0,
            arrival: SimTime::ZERO,
            input_tokens: 4_000,
            output_tokens: 400,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        };
        let b = sp_workload::Request {
            id: 1,
            arrival: SimTime::ZERO,
            input_tokens: 1_600,
            output_tokens: 100,
            class: RequestClass::Interactive,
            cached_prefix: 1_500,
            prefix_group: Some(7),
        };
        let config = EngineConfig {
            kv_capacity_tokens: 6_000,
            prefix_caching: true,
            ..EngineConfig::default()
        };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        e.push_request(a);
        e.push_request(b);

        // Let A admit and run a few iterations; B's admission fails each
        // pass (extension 1500 fits the ~1600 free tokens, its 200-token
        // footprint then does not).
        for _ in 0..4 {
            e.step_once();
        }
        let occupied = e.kv_utilization();
        assert!(
            occupied < 0.8,
            "failed admission must not leave group tokens behind: {occupied:.3}"
        );
        // Repeated admit passes against the full cache must not creep.
        for _ in 0..8 {
            e.step_once();
            assert!((e.kv_utilization() - occupied).abs() < 1e-9);
        }

        let mut guard = 0;
        while !e.is_idle() {
            guard += 1;
            assert!(guard < 1_000_000);
            e.step_once();
        }
        let report = e.take_report();
        assert_eq!(report.records().len(), 2);
        assert_eq!(e.kv_utilization(), 0.0);
    }

    #[test]
    fn spec_decode_budget_pressure_starves_no_sequence() {
        // Regression: build_batch() used to stop at the first speculative
        // chunk that overflowed the token budget, always scanning from
        // sequence 0 — under budget pressure the tail of the running list
        // made zero progress until the head finished. Now over-budget
        // speculative chunks degrade to single-token decodes and the scan
        // rotates, so every runnable sequence advances every iteration.
        let config = EngineConfig {
            max_batched_tokens: 18, // two 8-token spec chunks + change
            spec_decode: Some(SpecDecode::new(7, 0.5)),
            ..EngineConfig::default()
        };
        let mut e = engine_with(config, ParallelConfig::tensor(8));
        // 1-token prompts: all four prefills share one iteration, so the
        // finish spread below measures decode fairness alone.
        let report = e.run(&synthetic::uniform_batch(4, 1, 64));
        assert_eq!(report.records().len(), 4);
        let finishes: Vec<f64> = report.records().iter().map(|r| r.finish.as_secs()).collect();
        let spread = finishes.iter().fold(0.0f64, |m, &f| m.max(f))
            / finishes.iter().fold(f64::INFINITY, |m, &f| m.min(f));
        // Starved tails used to finish ~2x after the head pair.
        assert!(
            spread < 1.3,
            "decode progress should be fair under budget pressure: spread {spread:.2}"
        );
    }
}
