//! The engine's indexed waiting queue.
//!
//! The scheduler used to keep waiting requests in a bare `VecDeque`:
//! every admission pass rescanned it for the next candidate (O(W)) and
//! evicted the winner with `VecDeque::remove` (O(W) shifting) — O(W²)
//! behaviour exactly when it hurts, under backlog. [`WaitQueue`] keeps
//! the same queue *order* but adds ordered indexes so candidate
//! selection and removal are O(log W) for FCFS, InteractiveFirst, and
//! EDF admission alike, with admission order unchanged.
//!
//! Ordering model: each entry gets a stable integer *position token*.
//! Back-pushes take increasing tokens, front-pushes decreasing ones, so
//! iterating tokens in ascending order replays the deque order exactly,
//! surviving arbitrary interleavings of `push_front` (preemption
//! requeues), `push_back` (arrivals, sheds) and mid-queue removals
//! (admissions, rejections).

use sp_metrics::{ClassSlo, SimTime};
use sp_workload::{Request, RequestClass};
use std::collections::{BTreeMap, BTreeSet};

/// Stable position token of a queued request. Ascending token order is
/// queue (front-to-back) order.
pub(crate) type QueuePos = i64;

/// Total-order bit encoding of a non-negative simulated instant:
/// for non-negative finite floats, `to_bits` is monotonic, so deadline
/// comparisons become integer comparisons. `-0.0` (bit pattern with the
/// sign bit set, which would sort above every positive value) is
/// normalized to `+0.0` first.
fn time_bits(t: SimTime) -> u64 {
    (t.as_secs() + 0.0).to_bits()
}

/// Indexed waiting queue: deque-ordered storage plus an EDF index on
/// TTFT deadlines and a position index of interactive-class entries.
#[derive(Debug)]
pub(crate) struct WaitQueue {
    /// The queue proper, keyed by position token.
    by_pos: BTreeMap<QueuePos, Request>,
    /// Next token handed to a front push (decreasing).
    next_front: QueuePos,
    /// Next token handed to a back push (increasing).
    next_back: QueuePos,
    /// EDF index: `(TTFT-deadline bits, position)`. Deadlines are fixed
    /// per request (`arrival + class budget`), so entries never need
    /// rekeying. Maintained only when `slo` is set.
    edf: BTreeSet<(u64, QueuePos)>,
    /// Positions of interactive-class entries (InteractiveFirst lookup).
    interactive: BTreeSet<QueuePos>,
    /// Deadline source for the EDF index.
    slo: Option<ClassSlo>,
    /// Mutation counter, bumped on every push and removal. The engine's
    /// KV-blocked admission gate records the epoch it was armed under and
    /// treats any mutation as invalidating: a changed queue can change
    /// the admission candidate, so the gate's cached verdict is stale.
    epoch: u64,
}

impl WaitQueue {
    /// Creates an empty queue. `slo` enables the EDF deadline index.
    pub fn new(slo: Option<ClassSlo>) -> WaitQueue {
        WaitQueue {
            by_pos: BTreeMap::new(),
            next_front: -1,
            next_back: 0,
            edf: BTreeSet::new(),
            interactive: BTreeSet::new(),
            slo,
            epoch: 0,
        }
    }

    /// Mutation epoch: changes whenever an entry is pushed or removed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.by_pos.is_empty()
    }

    /// The waiting requests in queue (front-to-back) order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.by_pos.values()
    }

    /// Queue-order iteration with position tokens — the reference
    /// (pre-index) admission scan needs positions to hand back.
    pub fn iter_with_pos(&self) -> impl Iterator<Item = (QueuePos, &Request)> {
        self.by_pos.iter().map(|(&p, r)| (p, r))
    }

    fn index_insert(&mut self, pos: QueuePos, req: &Request) {
        if let Some(slo) = self.slo {
            self.edf.insert((time_bits(slo.ttft_deadline(req.arrival, req.class)), pos));
        }
        if req.class == RequestClass::Interactive {
            self.interactive.insert(pos);
        }
    }

    /// Appends at the back of the queue.
    pub fn push_back(&mut self, req: Request) {
        let pos = self.next_back;
        self.next_back += 1;
        self.epoch += 1;
        self.index_insert(pos, &req);
        self.by_pos.insert(pos, req);
    }

    /// Prepends at the front of the queue (preemption requeues retry
    /// first).
    pub fn push_front(&mut self, req: Request) {
        let pos = self.next_front;
        self.next_front -= 1;
        self.epoch += 1;
        self.index_insert(pos, &req);
        self.by_pos.insert(pos, req);
    }

    /// The front entry's position, if any.
    pub fn front_pos(&self) -> Option<QueuePos> {
        self.by_pos.keys().next().copied()
    }

    /// The queued request at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not in the queue.
    pub fn get(&self, pos: QueuePos) -> &Request {
        self.by_pos.get(&pos).expect("position is queued")
    }

    /// Removes and returns the request at `pos`, O(log W).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not in the queue.
    pub fn remove(&mut self, pos: QueuePos) -> Request {
        let req = self.by_pos.remove(&pos).expect("position is queued");
        self.epoch += 1;
        if let Some(slo) = self.slo {
            self.edf.remove(&(time_bits(slo.ttft_deadline(req.arrival, req.class)), pos));
        }
        if req.class == RequestClass::Interactive {
            self.interactive.remove(&pos);
        }
        req
    }

    /// Position of the first interactive-class entry in queue order, if
    /// any.
    pub fn first_interactive_pos(&self) -> Option<QueuePos> {
        self.interactive.iter().next().copied()
    }

    /// The interactive-class waiting requests in queue order, via the
    /// position index — O(I log W) for I interactive entries, instead of
    /// scanning past every batch-class entry in between.
    pub fn iter_interactive(&self) -> impl Iterator<Item = &Request> {
        self.interactive.iter().map(|pos| self.by_pos.get(pos).expect("indexed position is queued"))
    }

    /// Goodput-first EDF candidate at instant `clock`: the earliest
    /// deadline among *salvageable* entries (deadline not yet passed,
    /// i.e. `deadline >= clock`), falling back to the earliest deadline
    /// overall when every deadline is blown. Equal deadlines resolve to
    /// the earlier queue position. O(log W).
    ///
    /// This reproduces the old linear scan's `min_by` over the key
    /// `(deadline < clock, deadline)` with first-minimum (queue-order)
    /// tie-break: expired entries are exactly those whose deadline sorts
    /// below `clock`, so they form a prefix of the deadline-ordered
    /// index and a single successor query skips them.
    pub fn edf_candidate(&self, clock: SimTime) -> Option<QueuePos> {
        let salvageable = (time_bits(clock), QueuePos::MIN);
        self.edf.range(salvageable..).next().or_else(|| self.edf.iter().next()).map(|&(_, pos)| pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metrics::{Dur, SloTarget};

    fn req(id: u64, at: f64, class: RequestClass) -> Request {
        Request {
            id,
            arrival: SimTime::from_secs(at),
            input_tokens: 100,
            output_tokens: 10,
            class,
            cached_prefix: 0,
            prefix_group: None,
        }
    }

    fn slo(interactive_ttft: f64, batch_ttft: f64) -> ClassSlo {
        ClassSlo {
            interactive: SloTarget {
                ttft: Dur::from_secs(interactive_ttft),
                tpot: Dur::from_secs(1.0),
            },
            batch: SloTarget { ttft: Dur::from_secs(batch_ttft), tpot: Dur::from_secs(1.0) },
        }
    }

    #[test]
    fn push_order_replays_a_deque() {
        let mut q = WaitQueue::new(None);
        q.push_back(req(0, 0.0, RequestClass::Batch));
        q.push_back(req(1, 0.0, RequestClass::Batch));
        q.push_front(req(2, 0.0, RequestClass::Batch));
        q.push_back(req(3, 0.0, RequestClass::Batch));
        q.push_front(req(4, 0.0, RequestClass::Batch));
        let ids: Vec<u64> = q.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![4, 2, 0, 1, 3]);
        assert_eq!(q.get(q.front_pos().unwrap()).id, 4);
        assert_eq!(q.iter().count(), 5);
    }

    #[test]
    fn remove_keeps_order_and_indexes() {
        let mut q = WaitQueue::new(None);
        q.push_back(req(0, 0.0, RequestClass::Batch));
        q.push_back(req(1, 0.0, RequestClass::Interactive));
        q.push_back(req(2, 0.0, RequestClass::Interactive));
        let first_interactive = q.first_interactive_pos().unwrap();
        assert_eq!(q.remove(first_interactive).id, 1);
        assert_eq!(q.get(q.first_interactive_pos().unwrap()).id, 2);
        let ids: Vec<u64> = q.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2]);
        assert!(!q.is_empty());
    }

    #[test]
    fn edf_prefers_earliest_salvageable_deadline() {
        // Batch deadline 30 s, interactive 1 s. At clock 0 the
        // interactive deadline (arrival 5 → deadline 6) beats the batch
        // one (arrival 0 → deadline 30).
        let mut q = WaitQueue::new(Some(slo(1.0, 30.0)));
        q.push_back(req(0, 0.0, RequestClass::Batch));
        q.push_back(req(1, 5.0, RequestClass::Interactive));
        let pick = q.edf_candidate(SimTime::ZERO).unwrap();
        assert_eq!(q.get(pick).id, 1);
    }

    #[test]
    fn edf_expired_deadlines_queue_behind_salvageable() {
        // Interactive arrived at 0, deadline 1 — expired by clock 10.
        // Batch arrived at 0, deadline 30 — still salvageable, wins
        // despite the later deadline.
        let mut q = WaitQueue::new(Some(slo(1.0, 30.0)));
        q.push_back(req(0, 0.0, RequestClass::Interactive));
        q.push_back(req(1, 0.0, RequestClass::Batch));
        let pick = q.edf_candidate(SimTime::from_secs(10.0)).unwrap();
        assert_eq!(q.get(pick).id, 1);
        // Once everything is expired, the earliest deadline wins again.
        let pick = q.edf_candidate(SimTime::from_secs(100.0)).unwrap();
        assert_eq!(q.get(pick).id, 0);
    }

    #[test]
    fn edf_ties_resolve_to_queue_order() {
        let mut q = WaitQueue::new(Some(slo(1.0, 1.0)));
        q.push_back(req(7, 2.0, RequestClass::Batch));
        q.push_back(req(8, 2.0, RequestClass::Interactive));
        let pick = q.edf_candidate(SimTime::ZERO).unwrap();
        assert_eq!(q.get(pick).id, 7, "equal deadlines must pick the earlier position");
    }
}
