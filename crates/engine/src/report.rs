//! Run reports.

use sp_metrics::{
    ClassSlo, ClassSloReport, Dur, FailedRequest, FleetTimeline, LatencyRecorder,
    ReplicaLoadSeries, RequestRecord, RoutingDecision, SimTime,
};
use sp_parallel::ParallelConfig;
use std::collections::HashMap;

/// One scheduler iteration, as recorded when timeline capture is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Instant the iteration finished.
    pub end: SimTime,
    /// Iteration duration.
    pub duration: Dur,
    /// Configuration it ran under.
    pub config: ParallelConfig,
    /// Client-visible tokens it produced/processed.
    pub tokens: u64,
    /// Sequences batched.
    pub num_seqs: usize,
    /// KV utilization at scheduling time.
    pub kv_utilization: f64,
}

/// Everything measured during one engine (or cluster) run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    records: Vec<RequestRecord>,
    recorder: LatencyRecorder,
    iterations: u64,
    config_usage: HashMap<ParallelConfig, u64>,
    rejected: Vec<u64>,
    failed: Vec<FailedRequest>,
    preemptions: u64,
    sheds: u64,
    deferrals: u64,
    peak_kv_utilization: f64,
    makespan: SimTime,
    max_iteration: Dur,
    timeline: Option<Vec<IterationEvent>>,
    routing: Vec<RoutingDecision>,
    replica_loads: ReplicaLoadSeries,
    fleet: FleetTimeline,
}

impl EngineReport {
    /// Creates an empty report (useful as a merge accumulator for
    /// multi-engine topologies).
    pub fn new(throughput_bin: Dur) -> EngineReport {
        EngineReport {
            records: Vec::new(),
            recorder: LatencyRecorder::new(throughput_bin),
            iterations: 0,
            config_usage: HashMap::new(),
            rejected: Vec::new(),
            failed: Vec::new(),
            preemptions: 0,
            sheds: 0,
            deferrals: 0,
            peak_kv_utilization: 0.0,
            makespan: SimTime::ZERO,
            max_iteration: Dur::ZERO,
            timeline: None,
            routing: Vec::new(),
            replica_loads: ReplicaLoadSeries::new(),
            fleet: FleetTimeline::new(),
        }
    }

    /// Attaches an online-routing decision trail and the replica load
    /// series sampled at each dispatch (set by the cluster simulation).
    pub fn set_routing(&mut self, decisions: Vec<RoutingDecision>, loads: ReplicaLoadSeries) {
        self.routing = decisions;
        self.replica_loads = loads;
    }

    /// Attaches the replica lifecycle timeline (set by the cluster
    /// simulation). Like [`EngineReport::set_routing`], this *replaces*
    /// the current timeline: the cluster tier that routed also owns the
    /// fleet's lifecycle, and nested tiers' trails are tier-local.
    pub fn set_fleet_timeline(&mut self, timeline: FleetTimeline) {
        self.fleet = timeline;
    }

    pub(crate) fn enable_timeline(&mut self) {
        self.timeline = Some(Vec::new());
    }

    pub(crate) fn note_event(&mut self, event: IterationEvent) {
        if let Some(t) = &mut self.timeline {
            t.push(event);
        }
    }

    pub(crate) fn note_iteration(
        &mut self,
        config: ParallelConfig,
        end: SimTime,
        tokens: u64,
        duration: Dur,
    ) {
        self.iterations += 1;
        *self.config_usage.entry(config).or_default() += 1;
        self.recorder.observe_tokens(end, tokens as f64);
        self.makespan = self.makespan.max(end);
        self.max_iteration = self.max_iteration.max(duration);
    }

    /// Closed-form accumulation of `count` fast-forwarded iterations
    /// ending at `end`, whose longest iteration was `max_duration`.
    /// Iteration ends are monotone within a run, so one max-fold of the
    /// final instant (and of the pre-folded duration max) is
    /// bit-identical to `count` per-iteration folds. Throughput is
    /// flushed separately per bin segment via
    /// [`EngineReport::observe_tokens_run`], and config usage via
    /// [`EngineReport::note_config_usage`].
    pub(crate) fn note_run(&mut self, count: u64, end: SimTime, max_duration: Dur) {
        self.iterations += count;
        self.makespan = self.makespan.max(end);
        self.max_iteration = self.max_iteration.max(max_duration);
    }

    pub(crate) fn note_config_usage(&mut self, config: ParallelConfig, count: u64) {
        *self.config_usage.entry(config).or_default() += count;
    }

    pub(crate) fn observe_tokens_run(&mut self, t: SimTime, per_event: f64, count: u64) {
        self.recorder.observe_tokens_run(t, per_event, count);
    }

    pub(crate) fn timeline_enabled(&self) -> bool {
        self.timeline.is_some()
    }

    pub(crate) fn note_completion(&mut self, record: RequestRecord) {
        self.recorder.observe_latency_only(&record);
        self.records.push(record);
    }

    pub(crate) fn note_rejection(&mut self, request_id: u64) {
        self.rejected.push(request_id);
    }

    pub(crate) fn note_failures(&mut self, failed: Vec<FailedRequest>) {
        self.failed.extend(failed);
    }

    /// Mutable record access, for the cluster tier to restore the *true*
    /// arrival instants of re-dispatched requests (the engine only ever
    /// saw the re-dispatch time) before latency aggregation.
    pub(crate) fn records_mut(&mut self) -> &mut [RequestRecord] {
        &mut self.records
    }

    pub(crate) fn note_preemption(&mut self, _request_id: u64) {
        self.preemptions += 1;
    }

    pub(crate) fn note_shed(&mut self, _request_id: u64) {
        self.sheds += 1;
    }

    pub(crate) fn note_deferrals(&mut self, n: u64) {
        self.deferrals += n;
    }

    pub(crate) fn note_kv_utilization(&mut self, utilization: f64) {
        self.peak_kv_utilization = self.peak_kv_utilization.max(utilization);
    }

    /// Completed requests in completion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Latency and throughput aggregates.
    pub fn metrics(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Mutable access to the aggregates (quantile queries sort lazily).
    pub fn metrics_mut(&mut self) -> &mut LatencyRecorder {
        &mut self.recorder
    }

    /// Iterations executed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// How many iterations ran under each parallel configuration — the
    /// shift policy's switching behaviour is visible here.
    pub fn config_usage(&self) -> &HashMap<ParallelConfig, u64> {
        &self.config_usage
    }

    /// Requests rejected because they could never fit the KV cache.
    pub fn rejected(&self) -> &[u64] {
        &self.rejected
    }

    /// Requests abandoned after exhausting their fault-retry budget
    /// (fault injection only; empty otherwise).
    pub fn failed(&self) -> &[FailedRequest] {
        &self.failed
    }

    /// Recompute preemptions (PreemptRestart admission mode only).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Batch-class sequences evicted mid-prefill to admit an at-risk
    /// interactive request (SLO-aware admission only). Shed requests
    /// requeue and complete later; they are not dropped.
    pub fn batch_sheds(&self) -> u64 {
        self.sheds
    }

    /// Batch-class prefill chunks skipped in favor of interactive work
    /// (SLO-aware scheduling only), summed over iterations.
    pub fn batch_deferrals(&self) -> u64 {
        self.deferrals
    }

    /// Scores the completed requests against per-class SLO targets.
    pub fn class_slo_report(&self, targets: &ClassSlo) -> ClassSloReport {
        ClassSloReport::evaluate(&self.records, targets)
    }

    /// The longest single iteration — the worst stall any co-batched
    /// decode token experienced (the tail-latency metric chunked-prefill
    /// caps are designed to bound).
    pub fn max_iteration_time(&self) -> Dur {
        self.max_iteration
    }

    /// Per-iteration events, if timeline capture was enabled
    /// ([`crate::EngineConfig::record_timeline`]).
    pub fn timeline(&self) -> Option<&[IterationEvent]> {
        self.timeline.as_deref()
    }

    /// Highest observed KV-cache block utilization (0..=1).
    pub fn peak_kv_utilization(&self) -> f64 {
        self.peak_kv_utilization
    }

    /// Instant the last iteration finished.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Online routing decisions, in dispatch order (empty for single-node
    /// runs and offline splits). Replica indices are local to the routing
    /// tier that made the decision.
    pub fn routing_decisions(&self) -> &[RoutingDecision] {
        &self.routing
    }

    /// Per-replica load time series sampled at every dispatch instant.
    pub fn replica_loads(&self) -> &ReplicaLoadSeries {
        &self.replica_loads
    }

    /// Replica lifecycle timeline (spawn / ready / drain / retire
    /// events) with replica-seconds accounting. For a fixed fleet every
    /// replica spawns ready at time zero and never retires, so
    /// `replica_seconds(makespan)` is exactly `replicas × makespan`.
    pub fn fleet_timeline(&self) -> &FleetTimeline {
        &self.fleet
    }

    /// Combined throughput over the whole run, tokens/second.
    pub fn combined_throughput(&self) -> f64 {
        if self.makespan.as_secs() == 0.0 {
            0.0
        } else {
            self.recorder.total_tokens() as f64 / self.makespan.as_secs()
        }
    }

    /// Merges another report (for data-parallel clusters). Iteration counts
    /// and config usage add; the makespan takes the maximum.
    pub fn merge(&mut self, other: EngineReport) {
        for r in &other.records {
            self.recorder.observe_latency_only(r);
        }
        self.records.extend(other.records);
        // Re-attribute the other's throughput series bin-by-bin.
        for (t, v) in other.recorder.throughput().totals() {
            if v > 0.0 {
                self.recorder.observe_tokens(t, v);
            }
        }
        self.iterations += other.iterations;
        for (cfg, n) in other.config_usage {
            *self.config_usage.entry(cfg).or_default() += n;
        }
        self.rejected.extend(other.rejected);
        self.failed.extend(other.failed);
        self.preemptions += other.preemptions;
        self.sheds += other.sheds;
        self.deferrals += other.deferrals;
        self.peak_kv_utilization = self.peak_kv_utilization.max(other.peak_kv_utilization);
        self.max_iteration = self.max_iteration.max(other.max_iteration);
        self.makespan = self.makespan.max(other.makespan);
        self.routing.extend(other.routing);
        self.replica_loads.absorb(other.replica_loads);
        self.fleet.absorb(other.fleet);
        if let (Some(mine), Some(theirs)) = (&mut self.timeline, other.timeline) {
            mine.extend(theirs);
            mine.sort_by(|a, b| a.end.as_secs().partial_cmp(&b.end.as_secs()).expect("finite"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_parallel::ParallelConfig;

    fn event(end: f64, tokens: u64) -> IterationEvent {
        IterationEvent {
            end: SimTime::from_secs(end),
            duration: Dur::from_millis(10.0),
            config: ParallelConfig::tensor(8),
            tokens,
            num_seqs: 1,
            kv_utilization: 0.5,
        }
    }

    #[test]
    fn fresh_report_is_empty() {
        let r = EngineReport::new(Dur::from_secs(1.0));
        assert_eq!(r.iterations(), 0);
        assert_eq!(r.combined_throughput(), 0.0);
        assert!(r.timeline().is_none());
        assert_eq!(r.max_iteration_time(), Dur::ZERO);
    }

    #[test]
    fn note_iteration_accumulates() {
        let mut r = EngineReport::new(Dur::from_secs(1.0));
        r.note_iteration(
            ParallelConfig::tensor(8),
            SimTime::from_secs(1.0),
            100,
            Dur::from_millis(20.0),
        );
        r.note_iteration(
            ParallelConfig::sequence(8),
            SimTime::from_secs(2.0),
            50,
            Dur::from_millis(30.0),
        );
        assert_eq!(r.iterations(), 2);
        assert_eq!(r.config_usage().len(), 2);
        assert_eq!(r.max_iteration_time(), Dur::from_millis(30.0));
        assert!((r.combined_throughput() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_timelines_in_time_order() {
        let mut a = EngineReport::new(Dur::from_secs(1.0));
        a.enable_timeline();
        a.note_event(event(2.0, 10));
        let mut b = EngineReport::new(Dur::from_secs(1.0));
        b.enable_timeline();
        b.note_event(event(1.0, 20));
        a.merge(b);
        let t = a.timeline().unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[0].end < t[1].end);
    }

    #[test]
    fn merge_takes_max_of_peaks() {
        let mut a = EngineReport::new(Dur::from_secs(1.0));
        a.note_kv_utilization(0.3);
        a.note_iteration(
            ParallelConfig::single(),
            SimTime::from_secs(1.0),
            5,
            Dur::from_millis(5.0),
        );
        let mut b = EngineReport::new(Dur::from_secs(1.0));
        b.note_kv_utilization(0.9);
        b.note_iteration(
            ParallelConfig::single(),
            SimTime::from_secs(3.0),
            5,
            Dur::from_millis(50.0),
        );
        a.merge(b);
        assert_eq!(a.peak_kv_utilization(), 0.9);
        assert_eq!(a.makespan(), SimTime::from_secs(3.0));
        assert_eq!(a.max_iteration_time(), Dur::from_millis(50.0));
        assert_eq!(a.iterations(), 2);
    }
}
