//! Streaming statistics for the Shift Parallelism simulator.
//!
//! The serving engine (`sp-engine`) and the benchmark harnesses record
//! per-request latencies (TTFT, TPOT, completion time) and system-wide
//! throughput over simulated time. This crate provides the measurement
//! primitives they share:
//!
//! * [`units`] — strongly-typed simulation time ([`SimTime`], [`Dur`]).
//! * [`summary`] — Welford-style [`StreamingSummary`] (mean/var/min/max).
//! * [`percentile`] — exact [`Quantiles`] over recorded samples.
//! * [`histogram`] — log-bucketed [`LogHistogram`] for latency spectra.
//! * [`timeseries`] — [`BinnedSeries`] for throughput-over-time plots.
//! * [`latency`] — [`LatencyRecorder`], the per-request metric sink.
//! * [`routing`] — [`RoutingDecision`] and [`ReplicaLoadSeries`], the
//!   cluster router's decision trail and per-replica load time series.
//!
//! # Examples
//!
//! ```
//! use sp_metrics::{Quantiles, StreamingSummary};
//!
//! let mut s = StreamingSummary::new();
//! let mut q = Quantiles::new();
//! for v in [1.0, 2.0, 3.0, 4.0] {
//!     s.record(v);
//!     q.record(v);
//! }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(q.quantile(0.5), Some(2.5));
//! ```

pub mod histogram;
pub mod latency;
pub mod percentile;
pub mod routing;
pub mod slo;
pub mod summary;
pub mod timeseries;
pub mod units;

pub use histogram::LogHistogram;
pub use latency::{LatencyRecorder, RequestRecord};
pub use percentile::Quantiles;
pub use routing::{
    window_event_order, FailedRequest, FleetTimeline, NodeLoad, ReplicaEvent, ReplicaEventKind,
    ReplicaLoadSample, ReplicaLoadSeries, RequestFaultEvent, RequestFaultKind, RoutingDecision,
};
pub use slo::{ClassSlo, ClassSloReport, RequestClass, SloReport, SloTarget};
pub use summary::StreamingSummary;
pub use timeseries::BinnedSeries;
pub use units::{Dur, SimTime};
