//! Per-request latency recording (TTFT, TPOT, completion time).

use crate::percentile::Quantiles;
use crate::slo::RequestClass;
use crate::summary::StreamingSummary;
use crate::timeseries::BinnedSeries;
use crate::units::{Dur, SimTime};

/// The lifecycle timestamps and outcome of one completed request.
///
/// Produced by the serving engine for every finished request; consumed by
/// [`LatencyRecorder`] and the figure-regeneration harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Client-visible request id.
    pub request_id: u64,
    /// QoS class the request was served under — per-class SLO scoring
    /// ([`crate::slo::ClassSloReport`]) partitions records on it.
    pub class: RequestClass,
    /// Instant the request arrived at the server.
    pub arrival: SimTime,
    /// Instant prefill finished and the first output token was emitted.
    pub first_token: SimTime,
    /// Instant the last output token was emitted.
    pub finish: SimTime,
    /// Number of prompt tokens.
    pub input_tokens: u32,
    /// Number of generated tokens.
    pub output_tokens: u32,
}

impl RequestRecord {
    /// Time to first token: arrival → first emitted token.
    pub fn ttft(&self) -> Dur {
        self.first_token.since(self.arrival)
    }

    /// Time per output token after the first: `(finish - first_token) /
    /// (output_tokens - 1)`, or zero for single-token outputs.
    pub fn tpot(&self) -> Dur {
        if self.output_tokens <= 1 {
            Dur::ZERO
        } else {
            self.finish.since(self.first_token) / (self.output_tokens - 1) as f64
        }
    }

    /// End-to-end completion time: arrival → last token.
    pub fn completion_time(&self) -> Dur {
        self.finish.since(self.arrival)
    }

    /// Prompt + generated tokens.
    pub fn total_tokens(&self) -> u64 {
        u64::from(self.input_tokens) + u64::from(self.output_tokens)
    }

    /// Response speed in input tokens per second of TTFT (Figure 1's
    /// "response speed" metric), or infinity for instant first tokens.
    pub fn response_speed(&self) -> f64 {
        let t = self.ttft().as_secs();
        if t == 0.0 {
            f64::INFINITY
        } else {
            f64::from(self.input_tokens) / t
        }
    }
}

/// Aggregates [`RequestRecord`]s into the paper's three headline metrics.
///
/// Tracks exact quantiles for TTFT / TPOT / completion time, streaming
/// summaries, and a token-throughput time series for peak/mean throughput.
///
/// # Examples
///
/// ```
/// use sp_metrics::{Dur, LatencyRecorder, RequestRecord, SimTime};
///
/// let mut rec = LatencyRecorder::new(Dur::from_secs(1.0));
/// rec.observe(&RequestRecord {
///     request_id: 0,
///     class: sp_metrics::RequestClass::Interactive,
///     arrival: SimTime::from_secs(0.0),
///     first_token: SimTime::from_secs(0.2),
///     finish: SimTime::from_secs(1.2),
///     input_tokens: 1000,
///     output_tokens: 101,
/// });
/// assert_eq!(rec.completed(), 1);
/// assert!((rec.ttft().median().unwrap() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    ttft: Quantiles,
    tpot: Quantiles,
    completion: Quantiles,
    ttft_summary: StreamingSummary,
    tpot_summary: StreamingSummary,
    throughput: BinnedSeries,
    completed: u64,
    total_tokens: u64,
    last_finish: SimTime,
}

impl LatencyRecorder {
    /// Creates a recorder whose throughput series uses `throughput_bin` bins.
    pub fn new(throughput_bin: Dur) -> LatencyRecorder {
        LatencyRecorder {
            ttft: Quantiles::new(),
            tpot: Quantiles::new(),
            completion: Quantiles::new(),
            ttft_summary: StreamingSummary::new(),
            tpot_summary: StreamingSummary::new(),
            throughput: BinnedSeries::new(throughput_bin),
            completed: 0,
            total_tokens: 0,
            last_finish: SimTime::ZERO,
        }
    }

    /// Ingests one completed request.
    pub fn observe(&mut self, r: &RequestRecord) {
        self.ttft.record(r.ttft().as_secs());
        self.tpot.record(r.tpot().as_secs());
        self.completion.record(r.completion_time().as_secs());
        self.ttft_summary.record(r.ttft().as_secs());
        self.tpot_summary.record(r.tpot().as_secs());
        // Tokens are attributed to the completion instant; fine-grained
        // engines may call `observe_tokens` per iteration instead.
        self.throughput.record(r.finish, r.total_tokens() as f64);
        self.completed += 1;
        self.total_tokens += r.total_tokens();
        self.last_finish = self.last_finish.max(r.finish);
    }

    /// Attributes `tokens` processed at instant `t` to the throughput series
    /// without touching the latency quantiles. Engines that want
    /// iteration-resolution throughput call this and pass
    /// `count_tokens_in_observe = false` style accounting by only using
    /// [`LatencyRecorder::observe_latency_only`].
    pub fn observe_tokens(&mut self, t: SimTime, tokens: f64) {
        self.throughput.record(t, tokens);
        self.total_tokens += tokens as u64;
        self.last_finish = self.last_finish.max(t);
    }

    /// Attributes `count` iterations of `per_event` tokens each, all
    /// landing in the same throughput bin, with `t` the instant of the
    /// latest iteration in the segment. Bit-identical to `count` calls
    /// of [`LatencyRecorder::observe_tokens`] at instants sharing `t`'s
    /// bin (see [`BinnedSeries::record_repeated`] for the exactness
    /// argument); the caller owns the same-bin guarantee.
    pub fn observe_tokens_run(&mut self, t: SimTime, per_event: f64, count: u64) {
        self.throughput.record_repeated(t, per_event, count);
        self.total_tokens += (per_event as u64) * count;
        self.last_finish = self.last_finish.max(t);
    }

    /// Ingests a request's latencies without adding its tokens to the
    /// throughput series (pair with [`LatencyRecorder::observe_tokens`]).
    pub fn observe_latency_only(&mut self, r: &RequestRecord) {
        self.ttft.record(r.ttft().as_secs());
        self.tpot.record(r.tpot().as_secs());
        self.completion.record(r.completion_time().as_secs());
        self.ttft_summary.record(r.ttft().as_secs());
        self.tpot_summary.record(r.tpot().as_secs());
        self.completed += 1;
        self.last_finish = self.last_finish.max(r.finish);
    }

    /// Number of completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total tokens (prompt + generated) attributed so far.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// TTFT quantiles in seconds.
    pub fn ttft(&mut self) -> &mut Quantiles {
        &mut self.ttft
    }

    /// TPOT quantiles in seconds.
    pub fn tpot(&mut self) -> &mut Quantiles {
        &mut self.tpot
    }

    /// Completion-time quantiles in seconds.
    pub fn completion(&mut self) -> &mut Quantiles {
        &mut self.completion
    }

    /// Mean TTFT in seconds.
    pub fn mean_ttft(&self) -> f64 {
        self.ttft_summary.mean()
    }

    /// Mean TPOT in seconds.
    pub fn mean_tpot(&self) -> f64 {
        self.tpot_summary.mean()
    }

    /// The throughput time series (tokens per bin).
    pub fn throughput(&self) -> &BinnedSeries {
        &self.throughput
    }

    /// Peak combined throughput in tokens/second.
    pub fn peak_throughput(&self) -> f64 {
        self.throughput.peak_rate()
    }

    /// Mean combined throughput in tokens/second over the run, computed as
    /// total tokens / makespan (not per-bin mean), matching how the paper
    /// reports batch throughput.
    pub fn mean_throughput(&self) -> f64 {
        let span = self.last_finish.as_secs();
        if span == 0.0 {
            0.0
        } else {
            self.total_tokens as f64 / span
        }
    }

    /// Instant of the latest observed completion.
    pub fn last_finish(&self) -> SimTime {
        self.last_finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival: f64, first: f64, finish: f64, inp: u32, out: u32) -> RequestRecord {
        RequestRecord {
            request_id: 0,
            class: RequestClass::Interactive,
            arrival: SimTime::from_secs(arrival),
            first_token: SimTime::from_secs(first),
            finish: SimTime::from_secs(finish),
            input_tokens: inp,
            output_tokens: out,
        }
    }

    #[test]
    fn ttft_tpot_completion_derivations() {
        let r = rec(1.0, 1.5, 2.5, 100, 11);
        assert_eq!(r.ttft().as_secs(), 0.5);
        assert!((r.tpot().as_secs() - 0.1).abs() < 1e-12);
        assert_eq!(r.completion_time().as_secs(), 1.5);
        assert_eq!(r.total_tokens(), 111);
        assert_eq!(r.response_speed(), 200.0);
    }

    #[test]
    fn single_output_token_has_zero_tpot() {
        let r = rec(0.0, 1.0, 1.0, 10, 1);
        assert_eq!(r.tpot(), Dur::ZERO);
    }

    #[test]
    fn recorder_aggregates_multiple_requests() {
        let mut l = LatencyRecorder::new(Dur::from_secs(1.0));
        l.observe(&rec(0.0, 0.1, 1.0, 100, 10));
        l.observe(&rec(0.0, 0.3, 2.0, 200, 20));
        assert_eq!(l.completed(), 2);
        assert_eq!(l.total_tokens(), 330);
        assert!((l.ttft().median().unwrap() - 0.2).abs() < 1e-12);
        assert!(l.mean_throughput() > 0.0);
    }

    #[test]
    fn latency_only_does_not_double_count_tokens() {
        let mut l = LatencyRecorder::new(Dur::from_secs(1.0));
        let r = rec(0.0, 0.1, 1.0, 100, 10);
        l.observe_tokens(SimTime::from_secs(0.5), 110.0);
        l.observe_latency_only(&r);
        assert_eq!(l.total_tokens(), 110);
        assert_eq!(l.completed(), 1);
    }

    #[test]
    fn mean_throughput_uses_makespan() {
        let mut l = LatencyRecorder::new(Dur::from_secs(1.0));
        l.observe(&rec(0.0, 0.5, 2.0, 50, 50)); // 100 tokens by t=2
        assert!((l.mean_throughput() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn instant_first_token_speed_is_infinite() {
        let r = rec(1.0, 1.0, 2.0, 10, 5);
        assert!(r.response_speed().is_infinite());
    }
}
