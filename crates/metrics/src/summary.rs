//! Welford streaming summary statistics.

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
///
/// Numerically stable for long simulations: the running mean is updated
/// incrementally instead of summing raw values.
///
/// # Examples
///
/// ```
/// use sp_metrics::StreamingSummary;
///
/// let mut s = StreamingSummary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingSummary {
    /// Creates an empty summary.
    pub fn new() -> StreamingSummary {
        StreamingSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Population variance (dividing by `n`), or 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by `n - 1`), or 0.0 for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for StreamingSummary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for StreamingSummary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> StreamingSummary {
        let mut s = StreamingSummary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_reports_zero() {
        let s = StreamingSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s: StreamingSummary = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn sum_matches_count_times_mean() {
        let s: StreamingSummary = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((s.sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a: StreamingSummary = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&StreamingSummary::new());
        assert_eq!(a, before);

        let mut empty = StreamingSummary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_rejected() {
        StreamingSummary::new().record(f64::NAN);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            xs in prop::collection::vec(-1e6f64..1e6, 0..100),
            ys in prop::collection::vec(-1e6f64..1e6, 0..100),
        ) {
            let mut merged: StreamingSummary = xs.iter().copied().collect();
            let right: StreamingSummary = ys.iter().copied().collect();
            merged.merge(&right);

            let sequential: StreamingSummary =
                xs.iter().chain(ys.iter()).copied().collect();

            prop_assert_eq!(merged.count(), sequential.count());
            if !merged.is_empty() {
                let mean_scale = merged.mean().abs().max(1.0);
                prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-9 * mean_scale);
                let var_scale = merged.population_variance().abs().max(1.0);
                prop_assert!(
                    (merged.population_variance() - sequential.population_variance()).abs()
                        < 1e-9 * var_scale
                );
                prop_assert_eq!(merged.min(), sequential.min());
                prop_assert_eq!(merged.max(), sequential.max());
            }
        }

        #[test]
        fn mean_within_min_max(xs in prop::collection::vec(-1e9f64..1e9, 1..200)) {
            let s: StreamingSummary = xs.iter().copied().collect();
            let (min, max) = (s.min().unwrap(), s.max().unwrap());
            prop_assert!(s.mean() >= min - 1e-9 && s.mean() <= max + 1e-9);
            prop_assert!(s.population_variance() >= -1e-9);
        }
    }
}
