//! Strongly-typed simulation time.
//!
//! The discrete-event engine advances a clock measured in seconds. Using
//! newtypes ([`SimTime`] for instants, [`Dur`] for spans) prevents the
//! classic bug of adding two instants or confusing milliseconds with
//! seconds: all constructors and accessors name their unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in seconds since simulation start.
///
/// # Examples
///
/// ```
/// use sp_metrics::{Dur, SimTime};
///
/// let t = SimTime::ZERO + Dur::from_millis(250.0);
/// assert_eq!(t.as_secs(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds.
///
/// # Examples
///
/// ```
/// use sp_metrics::Dur;
///
/// let d = Dur::from_millis(3.0) + Dur::from_micros(500.0);
/// assert!((d.as_millis() - 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dur(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(secs.is_finite() && secs >= 0.0, "SimTime must be finite and non-negative");
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds since the epoch.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Span from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Dur {
    /// The zero-length span.
    pub const ZERO: Dur = Dur(0.0);

    /// The longest representable span — an "effectively never" sentinel
    /// for estimates that cannot be bounded (e.g. a replica with no
    /// throughput sample). Finite, so arithmetic and `total_cmp`-based
    /// orderings stay well-behaved.
    pub const MAX: Dur = Dur(f64::MAX);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Dur {
        assert!(secs.is_finite() && secs >= 0.0, "Dur must be finite and non-negative");
        Dur(secs)
    }

    /// Creates a span of `ms` milliseconds.
    pub fn from_millis(ms: f64) -> Dur {
        Dur::from_secs(ms * 1e-3)
    }

    /// Creates a span of `us` microseconds.
    pub fn from_micros(us: f64) -> Dur {
        Dur::from_secs(us * 1e-6)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Length in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The longer of two spans.
    pub fn max(self, other: Dur) -> Dur {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The shorter of two spans.
    pub fn min(self, other: Dur) -> Dur {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this span is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: f64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<f64> for Dur {
    type Output = Dur;
    fn div(self, rhs: f64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_secs(1.5) + Dur::from_millis(500.0);
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!((t - SimTime::from_secs(1.0)).as_secs(), 1.0);
    }

    #[test]
    fn since_saturates_at_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.since(b), Dur::ZERO);
        assert_eq!(b.since(a).as_secs(), 1.0);
    }

    #[test]
    fn dur_sub_saturates() {
        assert_eq!(Dur::from_secs(1.0) - Dur::from_secs(2.0), Dur::ZERO);
    }

    #[test]
    fn dur_conversions_are_consistent() {
        let d = Dur::from_micros(1500.0);
        assert!((d.as_millis() - 1.5).abs() < 1e-12);
        assert!((d.as_secs() - 0.0015).abs() < 1e-15);
        assert!((d.as_micros() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn dur_sum_folds() {
        let total: Dur = (0..4).map(|_| Dur::from_millis(250.0)).sum();
        assert_eq!(total.as_secs(), 1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Dur::from_secs(2.0).to_string(), "2.000s");
        assert_eq!(Dur::from_millis(2.0).to_string(), "2.000ms");
        assert_eq!(Dur::from_micros(2.0).to_string(), "2.0us");
    }

    #[test]
    fn min_max_order_correctly() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_secs(1.0).max(Dur::from_secs(2.0)).as_secs(), 2.0);
        assert_eq!(Dur::from_secs(1.0).min(Dur::from_secs(2.0)).as_secs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }
}
