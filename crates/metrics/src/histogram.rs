//! Logarithmically-bucketed histogram for latency spectra.

/// A histogram with logarithmically-spaced buckets.
///
/// Latencies in LLM serving span five orders of magnitude (sub-millisecond
/// decode steps to multi-minute queue waits during bursts), so the buckets
/// grow geometrically: bucket `i` covers `[lo * growth^i, lo * growth^(i+1))`.
///
/// # Examples
///
/// ```
/// use sp_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new(1e-3, 10.0, 2.0);
/// h.record(0.005);
/// h.record(0.005);
/// h.record(4.0);
/// assert_eq!(h.total(), 3);
/// assert!(h.bucket_for(0.005) < h.bucket_for(4.0));
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    lo: f64,
    growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram covering `[lo, hi)` with buckets growing by
    /// `growth` per step.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `growth <= 1`.
    pub fn new(lo: f64, hi: f64, growth: f64) -> LogHistogram {
        assert!(lo > 0.0, "lo must be positive");
        assert!(hi > lo, "hi must exceed lo");
        assert!(growth > 1.0, "growth must exceed 1");
        let n = ((hi / lo).ln() / growth.ln()).ceil() as usize;
        LogHistogram { lo, growth, counts: vec![0; n.max(1)], underflow: 0, overflow: 0 }
    }

    /// Index of the bucket that `value` falls into (clamped to range).
    pub fn bucket_for(&self, value: f64) -> usize {
        if value < self.lo {
            return 0;
        }
        let idx = ((value / self.lo).ln() / self.growth.ln()).floor() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one sample.
    ///
    /// Values below the range count as underflow, above as overflow; both are
    /// still tallied in `total`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        if value < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((value / self.lo).ln() / self.growth.ln()).floor() as usize;
            if idx >= self.counts.len() {
                self.overflow += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Total number of recorded samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Number of samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of samples above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().map(move |(i, &c)| (self.lo * self.growth.powi(i as i32), c))
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the histogram has no buckets (never: `new` creates at least 1).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_bounds_grow_geometrically() {
        let h = LogHistogram::new(1.0, 16.0, 2.0);
        let bounds: Vec<f64> = h.buckets().map(|(b, _)| b).collect();
        assert_eq!(bounds, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = LogHistogram::new(1.0, 10.0, 2.0);
        h.record(0.1);
        h.record(100.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn boundary_value_lands_in_upper_bucket() {
        let h = LogHistogram::new(1.0, 16.0, 2.0);
        assert_eq!(h.bucket_for(1.0), 0);
        assert_eq!(h.bucket_for(2.0), 1);
        assert_eq!(h.bucket_for(3.999), 1);
        assert_eq!(h.bucket_for(4.0), 2);
    }

    #[test]
    #[should_panic(expected = "growth must exceed 1")]
    fn invalid_growth_rejected() {
        let _ = LogHistogram::new(1.0, 10.0, 1.0);
    }

    proptest! {
        #[test]
        fn total_counts_every_sample(
            xs in prop::collection::vec(1e-6f64..1e6, 0..200)
        ) {
            let mut h = LogHistogram::new(1e-3, 1e3, 2.0);
            for &x in &xs {
                h.record(x);
            }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        #[test]
        fn bucket_for_is_monotone(a in 1e-3f64..1e3, b in 1e-3f64..1e3) {
            let h = LogHistogram::new(1e-3, 1e3, 1.5);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(h.bucket_for(lo) <= h.bucket_for(hi));
        }
    }
}
