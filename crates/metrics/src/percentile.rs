//! Exact quantile computation over recorded samples.

/// Exact quantile estimator that stores every sample.
///
/// The simulator records at most a few hundred thousand requests per run, so
/// exact quantiles (with linear interpolation between order statistics) are
/// affordable and avoid the bias of sketch-based estimators when computing
/// tail SLOs such as p99 (Figure 11 of the paper).
///
/// Samples are sorted lazily: `record` is O(1) amortized and the first
/// quantile query after an insert pays the sort.
///
/// # Examples
///
/// ```
/// use sp_metrics::Quantiles;
///
/// let mut q = Quantiles::new();
/// q.extend([10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(q.quantile(0.0), Some(10.0));
/// assert_eq!(q.quantile(1.0), Some(40.0));
/// assert_eq!(q.quantile(0.5), Some(25.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty estimator.
    pub fn new() -> Quantiles {
        Quantiles { samples: Vec::new(), sorted: true }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) with linear interpolation, or `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (p50), or `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th percentile, or `None` when empty.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&mut self) -> Option<f64> {
        self.quantile(0.0)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }

    /// Returns the empirical CDF sampled at `points` evenly spaced quantiles,
    /// as `(value, cumulative_probability)` pairs. Empty when no samples.
    ///
    /// Used to regenerate the completion-time distributions of Figure 11.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (0..points)
            .map(|i| {
                let p = if points == 1 { 1.0 } else { i as f64 / (points - 1) as f64 };
                (self.quantile(p).expect("non-empty"), p)
            })
            .collect()
    }

    /// A sorted view of the recorded samples.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }
}

impl Extend<f64> for Quantiles {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Quantiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Quantiles {
        let mut q = Quantiles::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_returns_none() {
        let mut q = Quantiles::new();
        assert_eq!(q.median(), None);
        assert!(q.cdf(10).is_empty());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut q: Quantiles = [7.0].into_iter().collect();
        assert_eq!(q.quantile(0.0), Some(7.0));
        assert_eq!(q.quantile(0.37), Some(7.0));
        assert_eq!(q.quantile(1.0), Some(7.0));
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let mut q: Quantiles = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(q.median(), Some(2.5));
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut q = Quantiles::new();
        q.record(10.0);
        assert_eq!(q.median(), Some(10.0));
        q.record(20.0);
        assert_eq!(q.median(), Some(15.0));
        q.record(0.0);
        assert_eq!(q.median(), Some(10.0));
    }

    #[test]
    fn cdf_is_monotone() {
        let mut q: Quantiles = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let cdf = q.cdf(11);
        assert_eq!(cdf.len(), 11);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf[10].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_quantile_rejected() {
        let mut q: Quantiles = [1.0].into_iter().collect();
        let _ = q.quantile(1.5);
    }

    proptest! {
        #[test]
        fn quantiles_bounded_and_monotone(
            xs in prop::collection::vec(-1e6f64..1e6, 1..300),
            qs in prop::collection::vec(0.0f64..=1.0, 1..20),
        ) {
            let mut est: Quantiles = xs.iter().copied().collect();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);

            let mut sorted_qs = qs.clone();
            sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = f64::NEG_INFINITY;
            for q in sorted_qs {
                let v = est.quantile(q).unwrap();
                prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
                prop_assert!(v >= prev - 1e-9);
                prev = v;
            }
        }

        #[test]
        fn median_has_half_mass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut est: Quantiles = xs.iter().copied().collect();
            let m = est.median().unwrap();
            let below = xs.iter().filter(|&&x| x <= m + 1e-9).count();
            let above = xs.iter().filter(|&&x| x >= m - 1e-9).count();
            prop_assert!(below * 2 >= xs.len());
            prop_assert!(above * 2 >= xs.len());
        }
    }
}
