//! Cluster-routing records: which replica served each request, and how
//! loaded every replica was when the router decided.
//!
//! The event-driven cluster simulation (`sp-engine`'s `ClusterSim`)
//! dispatches each request at its arrival instant using live load
//! signals. These types preserve that decision trail in reports so the
//! Figure 16 production analyses can correlate tail latencies with
//! routing behaviour.

use crate::units::{Dur, SimTime};

/// A replica's live load, snapshotted at a routing instant.
///
/// Raw outstanding-token counts over-divert when TTFT is not
/// queue-dominated (ROADMAP "smarter load signals"), so the snapshot also
/// carries the ingredients of a *time-to-first-token* estimate: how much
/// prefill work is queued ahead, how fast this replica retires prefill
/// tokens, and how much KV headroom is left for admission.
///
/// # Aggregate semantics
///
/// A snapshot may describe a *group* of replicas (a nested cluster or a
/// whole fleet tier exposed as one routing node). Aggregation folds
/// capacity-style signals additively: `outstanding_tokens`,
/// `queued_prefill_tokens` and `kv_free_tokens` are sums across members,
/// and `prefill_tokens_per_sec` adds because members prefill
/// concurrently. The summed `kv_free_tokens` is the group's total KV
/// headroom — it deliberately *overstates* what any single request can
/// use, because one request must fit a single member's cache.
/// [`NodeLoad::min_kv_free_tokens`] carries the conservative
/// complement: the headroom of the most-congested member, i.e. the
/// admission room a consumer is guaranteed regardless of which member
/// the group's internal router picks. For a single engine the two
/// fields are equal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeLoad {
    /// Queued + admitted-but-unfinished work in tokens (the classic JSQ
    /// signal).
    pub outstanding_tokens: u64,
    /// Prompt tokens that must be prefilled before a new arrival's own
    /// prefill can finish: waiting prompts plus admitted-but-incomplete
    /// prefill remainders.
    pub queued_prefill_tokens: u64,
    /// Unreserved KV-cache tokens — admission headroom. For aggregated
    /// snapshots this is the *sum* across members (total group capacity,
    /// an upper bound for any single request — see "Aggregate
    /// semantics").
    pub kv_free_tokens: u64,
    /// Unreserved KV-cache tokens of the most-congested member — the
    /// guaranteed per-request admission headroom of an aggregated
    /// snapshot. Equals `kv_free_tokens` for a single engine.
    pub min_kv_free_tokens: u64,
    /// Sustained prefill throughput estimate, tokens/second (from the
    /// replica's execution model at its full iteration budget).
    pub prefill_tokens_per_sec: f64,
}

impl NodeLoad {
    /// Estimated time until a request with `input_tokens` of prompt and a
    /// KV footprint of `footprint_tokens` would emit its first token on
    /// this replica: drain the prefill queue ahead of it, prefill its own
    /// prompt, plus a KV-blocked penalty when the cache lacks headroom
    /// (the deficit must be freed by decode drain before admission, which
    /// the prefill-rate proxy undercounts — so it is weighted up).
    pub fn estimated_ttft(&self, input_tokens: u64, footprint_tokens: u64) -> Dur {
        if self.prefill_tokens_per_sec <= 0.0 {
            return Dur::ZERO;
        }
        let prefill = (self.queued_prefill_tokens + input_tokens) as f64;
        let mut secs = prefill / self.prefill_tokens_per_sec;
        if footprint_tokens > self.kv_free_tokens {
            let deficit = (footprint_tokens - self.kv_free_tokens) as f64;
            secs += 4.0 * deficit / self.prefill_tokens_per_sec;
        }
        Dur::from_secs(secs)
    }
}

/// One routing decision: `request_id` went to `replica` at instant `at`,
/// when that replica had `load_tokens` outstanding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingDecision {
    /// The dispatched request.
    pub request_id: u64,
    /// Index of the chosen replica (local to the routing tier that made
    /// the decision).
    pub replica: usize,
    /// Dispatch instant (the request's arrival time).
    pub at: SimTime,
    /// The chosen replica's outstanding tokens at dispatch.
    pub load_tokens: u64,
}

/// One load observation of one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaLoadSample {
    /// Replica index.
    pub replica: usize,
    /// Observation instant.
    pub at: SimTime,
    /// Outstanding work in tokens (queued + admitted but unfinished).
    pub outstanding_tokens: u64,
}

/// A per-replica load time series, sampled at routing instants.
///
/// # Examples
///
/// ```
/// use sp_metrics::{ReplicaLoadSeries, SimTime};
///
/// let mut s = ReplicaLoadSeries::new();
/// s.record(0, SimTime::from_secs(1.0), 500);
/// s.record(1, SimTime::from_secs(1.0), 0);
/// assert_eq!(s.replica_count(), 2);
/// assert_eq!(s.peak(0), 500);
/// assert_eq!(s.peak(1), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaLoadSeries {
    samples: Vec<ReplicaLoadSample>,
    replica_count: usize,
}

impl ReplicaLoadSeries {
    /// Creates an empty series.
    pub fn new() -> ReplicaLoadSeries {
        ReplicaLoadSeries::default()
    }

    /// Records one observation.
    pub fn record(&mut self, replica: usize, at: SimTime, outstanding_tokens: u64) {
        self.replica_count = self.replica_count.max(replica + 1);
        self.samples.push(ReplicaLoadSample { replica, at, outstanding_tokens });
    }

    /// All samples in recording order.
    pub fn samples(&self) -> &[ReplicaLoadSample] {
        &self.samples
    }

    /// Number of distinct replicas observed (max index + 1).
    pub fn replica_count(&self) -> usize {
        self.replica_count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak outstanding tokens observed for `replica` (0 if never seen).
    pub fn peak(&self, replica: usize) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.replica == replica)
            .map(|s| s.outstanding_tokens)
            .max()
            .unwrap_or(0)
    }

    /// Mean outstanding tokens over `replica`'s samples (0.0 if never
    /// seen).
    pub fn mean(&self, replica: usize) -> f64 {
        let xs: Vec<u64> = self
            .samples
            .iter()
            .filter(|s| s.replica == replica)
            .map(|s| s.outstanding_tokens)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        }
    }

    /// Absorbs `other`, shifting its replica indices past this series' —
    /// merged reports keep per-tier replica identities distinct.
    pub fn absorb(&mut self, other: ReplicaLoadSeries) {
        let offset = self.replica_count;
        for mut s in other.samples {
            s.replica += offset;
            self.replica_count = self.replica_count.max(s.replica + 1);
            self.samples.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_reports_zero() {
        let s = ReplicaLoadSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.replica_count(), 0);
        assert_eq!(s.peak(3), 0);
        assert_eq!(s.mean(3), 0.0);
    }

    #[test]
    fn peak_and_mean_are_per_replica() {
        let mut s = ReplicaLoadSeries::new();
        s.record(0, SimTime::from_secs(0.0), 100);
        s.record(0, SimTime::from_secs(1.0), 300);
        s.record(1, SimTime::from_secs(1.0), 50);
        assert_eq!(s.replica_count(), 2);
        assert_eq!(s.peak(0), 300);
        assert_eq!(s.mean(0), 200.0);
        assert_eq!(s.peak(1), 50);
    }

    #[test]
    fn estimated_ttft_orders_by_prefill_queue_not_raw_tokens() {
        // Replica A: small prefill queue but many outstanding (decode)
        // tokens. Replica B: fewer outstanding tokens but a huge prompt
        // queued ahead. A JSQ router prefers B; the TTFT estimate must
        // prefer A.
        let a = NodeLoad {
            outstanding_tokens: 50_000,
            queued_prefill_tokens: 1_000,
            kv_free_tokens: 100_000,
            min_kv_free_tokens: 100_000,
            prefill_tokens_per_sec: 10_000.0,
        };
        let b = NodeLoad {
            outstanding_tokens: 30_000,
            queued_prefill_tokens: 25_000,
            kv_free_tokens: 100_000,
            min_kv_free_tokens: 100_000,
            prefill_tokens_per_sec: 10_000.0,
        };
        assert!(a.estimated_ttft(500, 600) < b.estimated_ttft(500, 600));
    }

    #[test]
    fn estimated_ttft_penalizes_kv_deficit() {
        let free = NodeLoad {
            outstanding_tokens: 0,
            queued_prefill_tokens: 0,
            kv_free_tokens: 10_000,
            min_kv_free_tokens: 10_000,
            prefill_tokens_per_sec: 10_000.0,
        };
        let full = NodeLoad { kv_free_tokens: 100, min_kv_free_tokens: 100, ..free };
        assert!(full.estimated_ttft(500, 1_000) > free.estimated_ttft(500, 1_000));
        // Zero-rate snapshots (no execution model) degrade to zero rather
        // than dividing by zero.
        let dead = NodeLoad::default();
        assert_eq!(dead.estimated_ttft(500, 1_000), Dur::ZERO);
    }

    #[test]
    fn absorb_offsets_replica_indices() {
        let mut a = ReplicaLoadSeries::new();
        a.record(0, SimTime::from_secs(0.0), 10);
        a.record(1, SimTime::from_secs(0.0), 20);
        let mut b = ReplicaLoadSeries::new();
        b.record(0, SimTime::from_secs(1.0), 30);
        a.absorb(b);
        assert_eq!(a.replica_count(), 3);
        assert_eq!(a.peak(2), 30);
        assert_eq!(a.samples().len(), 3);
    }
}
