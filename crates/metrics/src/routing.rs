//! Cluster-routing records: which replica served each request, and how
//! loaded every replica was when the router decided.
//!
//! The event-driven cluster simulation (`sp-engine`'s `ClusterSim`)
//! dispatches each request at its arrival instant using live load
//! signals. These types preserve that decision trail in reports so the
//! Figure 16 production analyses can correlate tail latencies with
//! routing behaviour.

use crate::timeseries::BinnedSeries;
use crate::units::{Dur, SimTime};

/// A replica's live load, snapshotted at a routing instant.
///
/// Raw outstanding-token counts over-divert when TTFT is not
/// queue-dominated (ROADMAP "smarter load signals"), so the snapshot also
/// carries the ingredients of a *time-to-first-token* estimate: how much
/// prefill work is queued ahead, how fast this replica retires prefill
/// tokens, and how much KV headroom is left for admission.
///
/// # Aggregate semantics
///
/// A snapshot may describe a *group* of replicas (a nested cluster or a
/// whole fleet tier exposed as one routing node). Aggregation folds
/// capacity-style signals additively: `outstanding_tokens`,
/// `queued_prefill_tokens` and `kv_free_tokens` are sums across members,
/// and `prefill_tokens_per_sec` adds because members prefill
/// concurrently. The summed `kv_free_tokens` is the group's total KV
/// headroom — it deliberately *overstates* what any single request can
/// use, because one request must fit a single member's cache.
/// [`NodeLoad::min_kv_free_tokens`] carries the conservative
/// complement: the headroom of the most-congested member, i.e. the
/// admission room a consumer is guaranteed regardless of which member
/// the group's internal router picks. For a single engine the two
/// fields are equal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeLoad {
    /// Queued + admitted-but-unfinished work in tokens (the classic JSQ
    /// signal).
    pub outstanding_tokens: u64,
    /// Prompt tokens that must be prefilled before a new arrival's own
    /// prefill can finish: waiting prompts plus admitted-but-incomplete
    /// prefill remainders.
    pub queued_prefill_tokens: u64,
    /// Unreserved KV-cache tokens — admission headroom. For aggregated
    /// snapshots this is the *sum* across members (total group capacity,
    /// an upper bound for any single request — see "Aggregate
    /// semantics").
    pub kv_free_tokens: u64,
    /// Unreserved KV-cache tokens of the most-congested member — the
    /// guaranteed per-request admission headroom of an aggregated
    /// snapshot. Equals `kv_free_tokens` for a single engine.
    pub min_kv_free_tokens: u64,
    /// Sustained prefill throughput estimate, tokens/second (from the
    /// replica's execution model at its full iteration budget).
    pub prefill_tokens_per_sec: f64,
}

impl NodeLoad {
    /// Estimated time until a request with `input_tokens` of prompt and a
    /// KV footprint of `footprint_tokens` would emit its first token on
    /// this replica: drain the prefill queue ahead of it, prefill its own
    /// prompt, plus a KV-blocked penalty when the cache lacks headroom
    /// (the deficit must be freed by decode drain before admission, which
    /// the prefill-rate proxy undercounts — so it is weighted up).
    ///
    /// A snapshot with no prefill-rate sample (`prefill_tokens_per_sec <=
    /// 0.0`) yields [`Dur::MAX`]: an unknown rate cannot *promise* a
    /// first token, so the estimate is unbounded rather than zero. The
    /// zero it used to return made every cold replica look instantly
    /// available — deadline-aware routers dogpiled a freshly added
    /// replica no matter how deep its queue grew, because its estimate
    /// never moved off zero. When every replica is rate-less the
    /// estimates tie at `MAX` and TTFT-ranked policies degrade to their
    /// outstanding-token tie-breaks, preserving the old
    /// fall-back-to-JSQ behaviour. Live engines never hit this path:
    /// they seed the rate from their compiled plan set at construction.
    pub fn estimated_ttft(&self, input_tokens: u64, footprint_tokens: u64) -> Dur {
        if self.prefill_tokens_per_sec <= 0.0 {
            return Dur::MAX;
        }
        let prefill = (self.queued_prefill_tokens + input_tokens) as f64;
        let mut secs = prefill / self.prefill_tokens_per_sec;
        if footprint_tokens > self.kv_free_tokens {
            let deficit = (footprint_tokens - self.kv_free_tokens) as f64;
            secs += 4.0 * deficit / self.prefill_tokens_per_sec;
        }
        Dur::from_secs(secs)
    }
}

/// One routing decision: `request_id` went to `replica` at instant `at`,
/// when that replica had `load_tokens` outstanding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingDecision {
    /// The dispatched request.
    pub request_id: u64,
    /// Index of the chosen replica (local to the routing tier that made
    /// the decision).
    pub replica: usize,
    /// Dispatch instant (the request's arrival time).
    pub at: SimTime,
    /// The chosen replica's outstanding tokens at dispatch.
    pub load_tokens: u64,
}

/// One load observation of one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaLoadSample {
    /// Replica index.
    pub replica: usize,
    /// Observation instant.
    pub at: SimTime,
    /// Outstanding work in tokens (queued + admitted but unfinished).
    pub outstanding_tokens: u64,
}

/// A per-replica load time series, sampled at routing instants.
///
/// # Examples
///
/// ```
/// use sp_metrics::{ReplicaLoadSeries, SimTime};
///
/// let mut s = ReplicaLoadSeries::new();
/// s.record(0, SimTime::from_secs(1.0), 500);
/// s.record(1, SimTime::from_secs(1.0), 0);
/// assert_eq!(s.replica_count(), 2);
/// assert_eq!(s.peak(0), 500);
/// assert_eq!(s.peak(1), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaLoadSeries {
    samples: Vec<ReplicaLoadSample>,
    replica_count: usize,
}

impl ReplicaLoadSeries {
    /// Creates an empty series.
    pub fn new() -> ReplicaLoadSeries {
        ReplicaLoadSeries::default()
    }

    /// Records one observation.
    pub fn record(&mut self, replica: usize, at: SimTime, outstanding_tokens: u64) {
        self.replica_count = self.replica_count.max(replica + 1);
        self.samples.push(ReplicaLoadSample { replica, at, outstanding_tokens });
    }

    /// All samples in recording order.
    pub fn samples(&self) -> &[ReplicaLoadSample] {
        &self.samples
    }

    /// Number of distinct replicas observed (max index + 1).
    pub fn replica_count(&self) -> usize {
        self.replica_count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak outstanding tokens observed for `replica` (0 if never seen).
    pub fn peak(&self, replica: usize) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.replica == replica)
            .map(|s| s.outstanding_tokens)
            .max()
            .unwrap_or(0)
    }

    /// Mean outstanding tokens over `replica`'s samples (0.0 if never
    /// seen).
    pub fn mean(&self, replica: usize) -> f64 {
        let xs: Vec<u64> = self
            .samples
            .iter()
            .filter(|s| s.replica == replica)
            .map(|s| s.outstanding_tokens)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        }
    }

    /// Absorbs `other`, shifting its replica indices past this series' —
    /// merged reports keep per-tier replica identities distinct.
    pub fn absorb(&mut self, other: ReplicaLoadSeries) {
        let offset = self.replica_count;
        for mut s in other.samples {
            s.replica += offset;
            self.replica_count = self.replica_count.max(s.replica + 1);
            self.samples.push(s);
        }
    }
}

/// A replica lifecycle transition (autoscaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaEventKind {
    /// The replica was provisioned; cost accrues from here. A cold-start
    /// delay separates this from [`ReplicaEventKind::Ready`].
    Spawned,
    /// The replica finished warming up and became routable.
    Ready,
    /// The replica stopped receiving new work and began draining its
    /// in-flight sequences.
    DrainStarted,
    /// The replica drained dry and was removed; cost stops accruing.
    Retired,
    /// The replica died abruptly (fault injection): cost stops accruing
    /// at the crash instant — even mid-warmup — and its in-flight work
    /// is lost (KV gone, requests re-dispatched from scratch).
    Crashed,
}

/// A per-request fault-recovery transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestFaultKind {
    /// The request was re-dispatched after losing its replica; `attempt`
    /// counts retries consumed so far (1 = first re-dispatch).
    Redispatched {
        /// Retry attempts consumed, including this one.
        attempt: u32,
    },
    /// The request exhausted its retry budget and was abandoned.
    Failed {
        /// Retry attempts consumed before giving up.
        attempts: u32,
    },
}

/// One request-level fault event: `request_id` transitioned at `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestFaultEvent {
    /// The affected request.
    pub request_id: u64,
    /// Transition instant.
    pub at: SimTime,
    /// What happened.
    pub kind: RequestFaultKind,
}

/// A request that exhausted its retry budget and was never served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailedRequest {
    /// The abandoned request.
    pub request_id: u64,
    /// Retry attempts consumed (equals the configured budget).
    pub attempts: u32,
}

/// One replica lifecycle event: `replica` transitioned at instant `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaEvent {
    /// Stable replica slot index (reused slots keep the same index across
    /// tenants; the event order disambiguates).
    pub replica: usize,
    /// Transition instant.
    pub at: SimTime,
    /// What happened.
    pub kind: ReplicaEventKind,
}

/// The fleet's replica lifecycle trail and its cost accounting.
///
/// Records every spawn / ready / drain / retire transition in time order
/// and derives the *replica-seconds* cost metric from it: each replica
/// pays from [`ReplicaEventKind::Spawned`] (provisioning starts billing,
/// including the cold-start warmup) until [`ReplicaEventKind::Retired`]
/// (or the query horizon for replicas still up). A fixed fleet of `R`
/// replicas over a makespan `T` therefore costs exactly `R x T`, which is
/// the baseline autoscaling is measured against.
///
/// # Examples
///
/// ```
/// use sp_metrics::{FleetTimeline, ReplicaEventKind, SimTime};
///
/// let mut t = FleetTimeline::new();
/// t.record(0, SimTime::ZERO, ReplicaEventKind::Spawned);
/// t.record(0, SimTime::ZERO, ReplicaEventKind::Ready);
/// t.record(1, SimTime::from_secs(10.0), ReplicaEventKind::Spawned);
/// t.record(1, SimTime::from_secs(30.0), ReplicaEventKind::Retired);
/// assert_eq!(t.replica_seconds(SimTime::from_secs(100.0)), 100.0 + 20.0);
/// assert_eq!(t.peak_provisioned(), 2);
/// ```
/// The canonical total order for merging same-window fleet events back
/// into the global event order: ascending instant (`total_cmp`, so NaN
/// sorts last — the same order the event calendar uses) with ties
/// broken by replica slot index, matching the calendar's
/// lowest-slot-first tie-break. Horizon-parallel simulations sort
/// concurrently-collected per-replica events with this order before
/// folding them into reports, which is what keeps merged reports
/// byte-identical across thread counts.
pub fn window_event_order(a: &(SimTime, usize), b: &(SimTime, usize)) -> std::cmp::Ordering {
    a.0.as_secs().total_cmp(&b.0.as_secs()).then(a.1.cmp(&b.1))
}

#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTimeline {
    events: Vec<ReplicaEvent>,
    replica_count: usize,
    request_faults: Vec<RequestFaultEvent>,
    wasted_prefill_tokens: u64,
    recovery_secs: f64,
    recoveries: u64,
}

impl FleetTimeline {
    /// Creates an empty timeline.
    pub fn new() -> FleetTimeline {
        FleetTimeline::default()
    }

    /// Records one lifecycle transition. Events must be recorded in
    /// nondecreasing time order (as a simulation emits them).
    pub fn record(&mut self, replica: usize, at: SimTime, kind: ReplicaEventKind) {
        self.replica_count = self.replica_count.max(replica + 1);
        self.events.push(ReplicaEvent { replica, at, kind });
    }

    /// Records a batch of same-window transitions in the canonical merge
    /// order ([`window_event_order`]): a horizon-parallel simulation
    /// collects events from concurrently-stepped replicas and must
    /// append them exactly as the sequential event order would have, or
    /// timelines stop being byte-identical across thread counts.
    pub fn record_batch(&mut self, batch: &mut [(SimTime, usize, ReplicaEventKind)]) {
        batch.sort_by(|a, b| window_event_order(&(a.0, a.1), &(b.0, b.1)));
        for &(at, replica, kind) in batch.iter() {
            self.record(replica, at, kind);
        }
    }

    /// All events in recording (time) order.
    pub fn events(&self) -> &[ReplicaEvent] {
        &self.events
    }

    /// True if no lifecycle event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct replica slots observed (max index + 1).
    pub fn replica_count(&self) -> usize {
        self.replica_count
    }

    /// Provisioned spans per slot: `(replica, spawned, retired)` with
    /// `None` for spans still open. Slots retired and respawned yield
    /// multiple spans.
    fn spans(&self) -> Vec<(usize, SimTime, Option<SimTime>)> {
        let mut open: Vec<Option<SimTime>> = vec![None; self.replica_count];
        let mut spans = Vec::new();
        for e in &self.events {
            match e.kind {
                ReplicaEventKind::Spawned => open[e.replica] = Some(e.at),
                // A crash closes the span at the crash instant exactly like
                // a retire — in particular a replica that dies *mid-warmup*
                // stops billing right there, not at its would-be Ready time
                // (spans never look at Ready at all).
                ReplicaEventKind::Retired | ReplicaEventKind::Crashed => {
                    if let Some(from) = open[e.replica].take() {
                        spans.push((e.replica, from, Some(e.at)));
                    }
                }
                ReplicaEventKind::Ready | ReplicaEventKind::DrainStarted => {}
            }
        }
        for (replica, o) in open.into_iter().enumerate() {
            if let Some(from) = o {
                spans.push((replica, from, None));
            }
        }
        spans
    }

    /// Total replica-seconds provisioned up to `horizon`: the fleet cost
    /// metric. Spans still open at the horizon are clamped to it.
    pub fn replica_seconds(&self, horizon: SimTime) -> f64 {
        self.spans()
            .into_iter()
            .map(|(_, from, to)| {
                to.map_or(horizon, |t| t.min(horizon)).since(from.min(horizon)).as_secs()
            })
            .sum()
    }

    /// Replicas provisioned (spawned, not yet retired) at instant `t`.
    pub fn provisioned_at(&self, t: SimTime) -> usize {
        self.spans()
            .into_iter()
            .filter(|&(_, from, to)| from <= t && to.is_none_or(|r| t < r))
            .count()
    }

    /// Peak number of simultaneously provisioned replicas.
    pub fn peak_provisioned(&self) -> usize {
        let mut up = 0usize;
        let mut peak = 0usize;
        for e in &self.events {
            match e.kind {
                ReplicaEventKind::Spawned => {
                    up += 1;
                    peak = peak.max(up);
                }
                ReplicaEventKind::Retired | ReplicaEventKind::Crashed => {
                    up = up.saturating_sub(1);
                }
                ReplicaEventKind::Ready | ReplicaEventKind::DrainStarted => {}
            }
        }
        peak
    }

    /// Records one request-level fault transition (re-dispatch or terminal
    /// failure). Like replica events, these arrive in time order.
    pub fn record_request_fault(&mut self, request_id: u64, at: SimTime, kind: RequestFaultKind) {
        self.request_faults.push(RequestFaultEvent { request_id, at, kind });
    }

    /// All request-level fault events in recording (time) order.
    pub fn request_faults(&self) -> &[RequestFaultEvent] {
        &self.request_faults
    }

    /// Adds prompt tokens whose prefill work was destroyed by a crash
    /// (the KV is gone, so a re-dispatched request pays full re-prefill).
    pub fn note_wasted_prefill(&mut self, tokens: u64) {
        self.wasted_prefill_tokens += tokens;
    }

    /// Total prompt tokens prefilled and then lost to crashes.
    pub fn wasted_prefill_tokens(&self) -> u64 {
        self.wasted_prefill_tokens
    }

    /// Adds one recovery observation: the span from a request losing its
    /// replica to its successful re-dispatch.
    pub fn note_recovery(&mut self, took: Dur) {
        self.recovery_secs += took.as_secs();
        self.recoveries += 1;
    }

    /// Number of successful re-dispatches observed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Mean crash-to-re-dispatch recovery time in seconds (0.0 when no
    /// recovery happened).
    pub fn mean_recovery_secs(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_secs / self.recoveries as f64
        }
    }

    /// Number of replica crashes recorded.
    pub fn crash_count(&self) -> usize {
        self.events.iter().filter(|e| e.kind == ReplicaEventKind::Crashed).count()
    }

    /// The replica-seconds *cost series*: provisioned replica-seconds per
    /// `bin` up to `horizon` — plot it against the latency series to see
    /// what each burst's scale-out cost bought.
    pub fn cost_series(&self, bin: Dur, horizon: SimTime) -> BinnedSeries {
        let mut series = BinnedSeries::new(bin);
        for (_, from, to) in self.spans() {
            series.record_span(from.min(horizon), to.map_or(horizon, |t| t.min(horizon)), 1.0);
        }
        series
    }

    /// Absorbs `other`, shifting its replica indices past this
    /// timeline's, mirroring [`ReplicaLoadSeries::absorb`] so merged
    /// reports keep the two views' replica identities aligned.
    pub fn absorb(&mut self, other: FleetTimeline) {
        let offset = self.replica_count;
        for mut e in other.events {
            e.replica += offset;
            self.replica_count = self.replica_count.max(e.replica + 1);
            self.events.push(e);
        }
        self.request_faults.extend(other.request_faults);
        self.wasted_prefill_tokens += other.wasted_prefill_tokens;
        self.recovery_secs += other.recovery_secs;
        self.recoveries += other.recoveries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_event_order_sorts_by_instant_then_slot_with_nan_last() {
        let t = |s: f64| SimTime::from_secs(s);
        let mut evs = vec![(t(2.0), 0), (t(1.0), 3), (t(1.0), 1), (t(0.5), 9)];
        evs.sort_by(window_event_order);
        assert_eq!(
            evs.iter().map(|&(at, r)| (at.as_secs(), r)).collect::<Vec<_>>(),
            vec![(0.5, 9), (1.0, 1), (1.0, 3), (2.0, 0)]
        );
        // Positive NaN (total_cmp) sorts after every finite instant,
        // matching the event calendar's key order.
        let nan = SimTime::from_secs(0.0) + Dur::from_secs(1.0) * f64::NAN;
        assert!(window_event_order(&(t(1e12), 7), &(nan, 0)).is_lt());
    }

    #[test]
    fn record_batch_appends_in_canonical_merge_order() {
        let t = |s: f64| SimTime::from_secs(s);
        let mut sequential = FleetTimeline::new();
        sequential.record(1, t(1.0), ReplicaEventKind::Retired);
        sequential.record(4, t(1.0), ReplicaEventKind::Retired);
        sequential.record(0, t(3.0), ReplicaEventKind::Retired);
        let mut merged = FleetTimeline::new();
        let mut batch = vec![
            (t(3.0), 0, ReplicaEventKind::Retired),
            (t(1.0), 4, ReplicaEventKind::Retired),
            (t(1.0), 1, ReplicaEventKind::Retired),
        ];
        merged.record_batch(&mut batch);
        assert_eq!(merged, sequential);
    }

    #[test]
    fn empty_series_reports_zero() {
        let s = ReplicaLoadSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.replica_count(), 0);
        assert_eq!(s.peak(3), 0);
        assert_eq!(s.mean(3), 0.0);
    }

    #[test]
    fn peak_and_mean_are_per_replica() {
        let mut s = ReplicaLoadSeries::new();
        s.record(0, SimTime::from_secs(0.0), 100);
        s.record(0, SimTime::from_secs(1.0), 300);
        s.record(1, SimTime::from_secs(1.0), 50);
        assert_eq!(s.replica_count(), 2);
        assert_eq!(s.peak(0), 300);
        assert_eq!(s.mean(0), 200.0);
        assert_eq!(s.peak(1), 50);
    }

    #[test]
    fn estimated_ttft_orders_by_prefill_queue_not_raw_tokens() {
        // Replica A: small prefill queue but many outstanding (decode)
        // tokens. Replica B: fewer outstanding tokens but a huge prompt
        // queued ahead. A JSQ router prefers B; the TTFT estimate must
        // prefer A.
        let a = NodeLoad {
            outstanding_tokens: 50_000,
            queued_prefill_tokens: 1_000,
            kv_free_tokens: 100_000,
            min_kv_free_tokens: 100_000,
            prefill_tokens_per_sec: 10_000.0,
        };
        let b = NodeLoad {
            outstanding_tokens: 30_000,
            queued_prefill_tokens: 25_000,
            kv_free_tokens: 100_000,
            min_kv_free_tokens: 100_000,
            prefill_tokens_per_sec: 10_000.0,
        };
        assert!(a.estimated_ttft(500, 600) < b.estimated_ttft(500, 600));
    }

    #[test]
    fn estimated_ttft_penalizes_kv_deficit() {
        let free = NodeLoad {
            outstanding_tokens: 0,
            queued_prefill_tokens: 0,
            kv_free_tokens: 10_000,
            min_kv_free_tokens: 10_000,
            prefill_tokens_per_sec: 10_000.0,
        };
        let full = NodeLoad { kv_free_tokens: 100, min_kv_free_tokens: 100, ..free };
        assert!(full.estimated_ttft(500, 1_000) > free.estimated_ttft(500, 1_000));
        // Zero-rate snapshots (no throughput sample) are unbounded rather
        // than dividing by zero — and rather than the old `Dur::ZERO`,
        // which read as "instantly available".
        let dead = NodeLoad::default();
        assert_eq!(dead.estimated_ttft(500, 1_000), Dur::MAX);
    }

    #[test]
    fn cold_replica_with_queued_work_is_never_estimated_instant() {
        // Regression (cold-replica dogpile): a replica with no prefill-rate
        // sample used to estimate TTFT = 0 regardless of its queue, so
        // TTFT-ranked routers kept picking it while its backlog mounted.
        // Its estimate must be *unbounded*, i.e. worse than any replica
        // with a real rate — no matter how loaded the warm one is.
        let cold = NodeLoad {
            outstanding_tokens: 9_000,
            queued_prefill_tokens: 8_000,
            kv_free_tokens: 50_000,
            min_kv_free_tokens: 50_000,
            prefill_tokens_per_sec: 0.0,
        };
        let warm = NodeLoad {
            outstanding_tokens: 60_000,
            queued_prefill_tokens: 45_000,
            kv_free_tokens: 1_000,
            min_kv_free_tokens: 1_000,
            prefill_tokens_per_sec: 20_000.0,
        };
        assert!(cold.estimated_ttft(500, 600) > warm.estimated_ttft(500, 600));
        // But two rate-less replicas still tie (so TTFT-ranked policies
        // degrade to their outstanding-token tie-breaks, not to herding).
        let also_cold = NodeLoad { outstanding_tokens: 1, ..cold };
        assert_eq!(cold.estimated_ttft(500, 600), also_cold.estimated_ttft(500, 600));
    }

    #[test]
    fn replica_seconds_accounts_spawn_to_retire() {
        let mut t = FleetTimeline::new();
        // Slot 0: up for the whole run. Slot 1: spawned at 10, warmed at
        // 15, retired at 40 — pays for the warmup too.
        t.record(0, SimTime::ZERO, ReplicaEventKind::Spawned);
        t.record(0, SimTime::ZERO, ReplicaEventKind::Ready);
        t.record(1, SimTime::from_secs(10.0), ReplicaEventKind::Spawned);
        t.record(1, SimTime::from_secs(15.0), ReplicaEventKind::Ready);
        t.record(1, SimTime::from_secs(35.0), ReplicaEventKind::DrainStarted);
        t.record(1, SimTime::from_secs(40.0), ReplicaEventKind::Retired);
        let horizon = SimTime::from_secs(100.0);
        assert_eq!(t.replica_seconds(horizon), 100.0 + 30.0);
        assert_eq!(t.peak_provisioned(), 2);
        assert_eq!(t.provisioned_at(SimTime::from_secs(20.0)), 2);
        assert_eq!(t.provisioned_at(SimTime::from_secs(50.0)), 1);
        // The cost series conserves the same total.
        let series = t.cost_series(Dur::from_secs(10.0), horizon);
        assert!((series.total() - 130.0).abs() < 1e-9);
    }

    #[test]
    fn replica_seconds_handles_slot_reuse_and_horizon_clamp() {
        let mut t = FleetTimeline::new();
        // Slot 0 serves two tenants: [0, 10) and [20, open).
        t.record(0, SimTime::ZERO, ReplicaEventKind::Spawned);
        t.record(0, SimTime::from_secs(10.0), ReplicaEventKind::Retired);
        t.record(0, SimTime::from_secs(20.0), ReplicaEventKind::Spawned);
        assert_eq!(t.replica_seconds(SimTime::from_secs(50.0)), 10.0 + 30.0);
        // Horizon before the second spawn: only the first span counts.
        assert_eq!(t.replica_seconds(SimTime::from_secs(15.0)), 10.0);
        assert_eq!(t.peak_provisioned(), 1);
    }

    #[test]
    fn crash_while_warming_stops_billing_at_the_crash_instant() {
        // Regression: a replica spawned at 10 with a 10 s cold start dies
        // at 15, *before* its would-be Ready at 20. Billing must stop at
        // the crash instant (5 replica-seconds), not run on to Ready.
        let mut t = FleetTimeline::new();
        t.record(0, SimTime::from_secs(10.0), ReplicaEventKind::Spawned);
        t.record(0, SimTime::from_secs(15.0), ReplicaEventKind::Crashed);
        assert_eq!(t.replica_seconds(SimTime::from_secs(100.0)), 5.0);
        assert_eq!(t.provisioned_at(SimTime::from_secs(12.0)), 1);
        assert_eq!(t.provisioned_at(SimTime::from_secs(18.0)), 0);
        assert_eq!(t.crash_count(), 1);
    }

    #[test]
    fn crash_closes_spans_and_decrements_peak_like_retire() {
        let mut t = FleetTimeline::new();
        t.record(0, SimTime::ZERO, ReplicaEventKind::Spawned);
        t.record(0, SimTime::ZERO, ReplicaEventKind::Ready);
        t.record(1, SimTime::from_secs(5.0), ReplicaEventKind::Spawned);
        t.record(1, SimTime::from_secs(5.0), ReplicaEventKind::Ready);
        t.record(1, SimTime::from_secs(20.0), ReplicaEventKind::Crashed);
        // Slot 1 respawns after the crash: peak stays 2, not 3.
        t.record(1, SimTime::from_secs(30.0), ReplicaEventKind::Spawned);
        assert_eq!(t.peak_provisioned(), 2);
        let horizon = SimTime::from_secs(40.0);
        assert_eq!(t.replica_seconds(horizon), 40.0 + 15.0 + 10.0);
    }

    #[test]
    fn fault_accounting_accumulates_and_absorbs() {
        let mut a = FleetTimeline::new();
        a.record_request_fault(
            7,
            SimTime::from_secs(1.0),
            RequestFaultKind::Redispatched { attempt: 1 },
        );
        a.note_wasted_prefill(500);
        a.note_recovery(Dur::from_secs(2.0));
        let mut b = FleetTimeline::new();
        b.record_request_fault(
            9,
            SimTime::from_secs(3.0),
            RequestFaultKind::Failed { attempts: 3 },
        );
        b.note_wasted_prefill(250);
        b.note_recovery(Dur::from_secs(4.0));
        a.absorb(b);
        assert_eq!(a.request_faults().len(), 2);
        assert_eq!(a.wasted_prefill_tokens(), 750);
        assert_eq!(a.recoveries(), 2);
        assert!((a.mean_recovery_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_absorb_offsets_replica_indices() {
        let mut a = FleetTimeline::new();
        a.record(0, SimTime::ZERO, ReplicaEventKind::Spawned);
        a.record(1, SimTime::ZERO, ReplicaEventKind::Spawned);
        let mut b = FleetTimeline::new();
        b.record(0, SimTime::from_secs(1.0), ReplicaEventKind::Spawned);
        a.absorb(b);
        assert_eq!(a.replica_count(), 3);
        assert_eq!(a.events().last().unwrap().replica, 2);
    }

    #[test]
    fn absorb_offsets_replica_indices() {
        let mut a = ReplicaLoadSeries::new();
        a.record(0, SimTime::from_secs(0.0), 10);
        a.record(1, SimTime::from_secs(0.0), 20);
        let mut b = ReplicaLoadSeries::new();
        b.record(0, SimTime::from_secs(1.0), 30);
        a.absorb(b);
        assert_eq!(a.replica_count(), 3);
        assert_eq!(a.peak(2), 30);
        assert_eq!(a.samples().len(), 3);
    }
}
