//! Service-level objectives and goodput.
//!
//! §2.1: "different requests are subject to different quality-of-service
//! metrics". This module scores completed requests against TTFT/TPOT
//! targets and computes *goodput* — tokens delivered within SLO per second
//! — the metric disaggregation papers optimize and a natural yardstick for
//! Shift Parallelism's QoS claim.

use crate::latency::RequestRecord;
use crate::units::{Dur, SimTime};

/// Quality-of-service class of a request (§2.1).
///
/// Defined here (rather than in the workload crate, which re-exports it)
/// so completed-request records and SLO scoring can carry the class
/// without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Latency-sensitive: chatbot/agentic traffic; TTFT and TPOT matter.
    Interactive,
    /// Throughput-sensitive: bulk summarization/translation jobs.
    Batch,
}

/// A per-request latency target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// Maximum acceptable time-to-first-token.
    pub ttft: Dur,
    /// Maximum acceptable time-per-output-token.
    pub tpot: Dur,
}

impl SloTarget {
    /// A chatbot-grade target: first token within 1 s, 20 tokens/s
    /// generation.
    pub fn interactive() -> SloTarget {
        SloTarget { ttft: Dur::from_millis(1000.0), tpot: Dur::from_millis(50.0) }
    }

    /// A relaxed target for background/batch traffic: first token within
    /// 30 s, 5 tokens/s generation.
    pub fn relaxed() -> SloTarget {
        SloTarget { ttft: Dur::from_secs(30.0), tpot: Dur::from_millis(200.0) }
    }

    /// True if `record` meets both components of the target.
    pub fn met_by(&self, record: &RequestRecord) -> bool {
        record.ttft() <= self.ttft && record.tpot() <= self.tpot
    }
}

/// Per-class SLO targets — the deadline source for SLO-aware admission
/// and deadline-aware routing.
///
/// A request's *TTFT deadline* is `arrival + target_for(class).ttft`: the
/// instant by which its first token must be emitted for the request to
/// attain its SLO. Schedulers and routers act on that deadline; scoring
/// ([`ClassSloReport`]) checks it after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSlo {
    /// Target for [`RequestClass::Interactive`] traffic.
    pub interactive: SloTarget,
    /// Target for [`RequestClass::Batch`] traffic.
    pub batch: SloTarget,
}

impl Default for ClassSlo {
    /// Chatbot-grade interactive target, relaxed batch target.
    fn default() -> ClassSlo {
        ClassSlo { interactive: SloTarget::interactive(), batch: SloTarget::relaxed() }
    }
}

impl ClassSlo {
    /// The target governing `class`.
    pub fn target_for(&self, class: RequestClass) -> SloTarget {
        match class {
            RequestClass::Interactive => self.interactive,
            RequestClass::Batch => self.batch,
        }
    }

    /// The instant by which a request of `class` arriving at `arrival`
    /// must see its first token.
    pub fn ttft_deadline(&self, arrival: SimTime, class: RequestClass) -> SimTime {
        arrival + self.target_for(class).ttft
    }
}

/// SLO attainment split by QoS class — the quality-of-service view of a
/// mixed-traffic run (§2.1): did Interactive requests keep their tight
/// TTFT while Batch work rode along?
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassSloReport {
    /// Attainment of interactive-class requests against the interactive
    /// target.
    pub interactive: SloReport,
    /// Attainment of batch-class requests against the batch target.
    pub batch: SloReport,
}

impl ClassSloReport {
    /// Scores `records` against the per-class targets, partitioning on
    /// each record's class.
    pub fn evaluate<'a>(
        records: impl IntoIterator<Item = &'a RequestRecord>,
        targets: &ClassSlo,
    ) -> ClassSloReport {
        let mut report = ClassSloReport::default();
        for r in records {
            let (bucket, target) = match r.class {
                RequestClass::Interactive => (&mut report.interactive, targets.interactive),
                RequestClass::Batch => (&mut report.batch, targets.batch),
            };
            bucket.total += 1;
            if target.met_by(r) {
                bucket.attained += 1;
                bucket.attained_tokens += r.total_tokens();
            }
        }
        report
    }

    /// Combined view (both classes pooled).
    pub fn overall(&self) -> SloReport {
        SloReport {
            attained: self.interactive.attained + self.batch.attained,
            total: self.interactive.total + self.batch.total,
            attained_tokens: self.interactive.attained_tokens + self.batch.attained_tokens,
        }
    }
}

/// Aggregate SLO attainment over a set of completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloReport {
    /// Requests meeting the target.
    pub attained: u64,
    /// All scored requests.
    pub total: u64,
    /// Prompt + output tokens of the attaining requests.
    pub attained_tokens: u64,
}

impl SloReport {
    /// Scores `records` against `target`.
    pub fn evaluate<'a>(
        records: impl IntoIterator<Item = &'a RequestRecord>,
        target: SloTarget,
    ) -> SloReport {
        let mut report = SloReport::default();
        for r in records {
            report.total += 1;
            if target.met_by(r) {
                report.attained += 1;
                report.attained_tokens += r.total_tokens();
            }
        }
        report
    }

    /// Fraction of requests meeting the SLO (1.0 when no requests).
    pub fn attainment(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.attained as f64 / self.total as f64
        }
    }

    /// Goodput over a run of length `makespan`: SLO-attaining tokens per
    /// second (0 for an empty run).
    pub fn goodput(&self, makespan: Dur) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.attained_tokens as f64 / makespan.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::SimTime;

    fn rec(ttft_ms: f64, tpot_ms: f64, inp: u32, out: u32) -> RequestRecord {
        let first = SimTime::from_secs(ttft_ms * 1e-3);
        RequestRecord {
            request_id: 0,
            class: RequestClass::Interactive,
            arrival: SimTime::ZERO,
            first_token: first,
            finish: first + Dur::from_millis(tpot_ms) * f64::from(out - 1),
            input_tokens: inp,
            output_tokens: out,
        }
    }

    #[test]
    fn interactive_target_splits_fast_and_slow() {
        let t = SloTarget::interactive();
        assert!(t.met_by(&rec(200.0, 20.0, 100, 10)));
        assert!(!t.met_by(&rec(2000.0, 20.0, 100, 10)), "TTFT violation");
        assert!(!t.met_by(&rec(200.0, 80.0, 100, 10)), "TPOT violation");
    }

    #[test]
    fn ttft_boundary_is_inclusive() {
        // (TPOT kept well under target: its reconstruction from
        // timestamps is subject to float rounding at the exact boundary.)
        let t = SloTarget::interactive();
        assert!(t.met_by(&rec(1000.0, 20.0, 1, 10)));
        assert!(!t.met_by(&rec(1000.1, 20.0, 1, 10)));
    }

    #[test]
    fn report_counts_and_goodput() {
        let records = vec![
            rec(100.0, 10.0, 1000, 100), // attains: 1100 tokens
            rec(5000.0, 10.0, 500, 50),  // misses
        ];
        let report = SloReport::evaluate(&records, SloTarget::interactive());
        assert_eq!(report.attained, 1);
        assert_eq!(report.total, 2);
        assert_eq!(report.attained_tokens, 1100);
        assert_eq!(report.attainment(), 0.5);
        assert_eq!(report.goodput(Dur::from_secs(11.0)), 100.0);
    }

    #[test]
    fn empty_run_is_vacuously_attained() {
        let report = SloReport::evaluate([], SloTarget::relaxed());
        assert_eq!(report.attainment(), 1.0);
        assert_eq!(report.goodput(Dur::ZERO), 0.0);
    }

    #[test]
    fn relaxed_target_is_weaker() {
        let marginal = rec(10_000.0, 100.0, 100, 10);
        assert!(!SloTarget::interactive().met_by(&marginal));
        assert!(SloTarget::relaxed().met_by(&marginal));
    }

    #[test]
    fn ttft_deadline_depends_on_class() {
        let slo = ClassSlo::default();
        let arrival = SimTime::from_secs(10.0);
        let interactive = slo.ttft_deadline(arrival, RequestClass::Interactive);
        let batch = slo.ttft_deadline(arrival, RequestClass::Batch);
        assert_eq!(interactive.as_secs(), 11.0);
        assert_eq!(batch.as_secs(), 40.0);
        assert!(interactive < batch, "interactive deadlines are tighter");
    }

    #[test]
    fn class_report_partitions_by_record_class() {
        // Same marginal latency: misses the interactive target, meets the
        // batch target — so the class decides the outcome.
        let mut fast = rec(100.0, 10.0, 1000, 100);
        let mut marginal = rec(10_000.0, 100.0, 500, 50);
        fast.class = RequestClass::Interactive;
        marginal.class = RequestClass::Batch;
        let report = ClassSloReport::evaluate([&fast, &marginal], &ClassSlo::default());
        assert_eq!(report.interactive.attained, 1);
        assert_eq!(report.interactive.total, 1);
        assert_eq!(report.batch.attained, 1);
        assert_eq!(report.batch.total, 1);

        // Flip the marginal record to interactive: it now misses.
        marginal.class = RequestClass::Interactive;
        let report = ClassSloReport::evaluate([&fast, &marginal], &ClassSlo::default());
        assert_eq!(report.interactive.attained, 1);
        assert_eq!(report.interactive.total, 2);
        assert_eq!(report.batch.total, 0);
        assert_eq!(report.overall().attained, 1);
        assert_eq!(report.overall().total, 2);
    }
}
