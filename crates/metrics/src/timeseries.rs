//! Time-binned series for throughput-over-time plots.

use crate::units::{Dur, SimTime};

/// Accumulates `(time, weight)` events into fixed-width time bins.
///
/// Used for the throughput panels of Figures 1 and 7: every processed token
/// is recorded at its completion instant, and `rates()` yields tokens/second
/// per bin. Bins extend automatically as time advances.
///
/// # Examples
///
/// ```
/// use sp_metrics::{BinnedSeries, Dur, SimTime};
///
/// let mut s = BinnedSeries::new(Dur::from_secs(1.0));
/// s.record(SimTime::from_secs(0.5), 100.0);
/// s.record(SimTime::from_secs(0.9), 50.0);
/// s.record(SimTime::from_secs(1.5), 10.0);
/// let rates: Vec<_> = s.rates().collect();
/// assert_eq!(rates[0].1, 150.0); // 150 units in the first 1 s bin
/// assert_eq!(rates[1].1, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    bin_width: Dur,
    bins: Vec<f64>,
}

impl BinnedSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: Dur) -> BinnedSeries {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        BinnedSeries { bin_width, bins: Vec::new() }
    }

    /// Adds `weight` at instant `t`.
    pub fn record(&mut self, t: SimTime, weight: f64) {
        let idx = (t.as_secs() / self.bin_width.as_secs()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += weight;
    }

    /// Adds `count` repetitions of weight `weight`, all landing in the
    /// bin of instant `t` — the closed-form equivalent of calling
    /// [`BinnedSeries::record`] `count` times with instants that share
    /// `t`'s bin. The caller owns that same-bin guarantee (the engine's
    /// decode fast-forward segments its runs at bin boundaries).
    ///
    /// Bit-identity with the per-event loop is load-bearing: when the
    /// bin and the weight are both non-negative integers and the final
    /// total stays at or below 2^53, every partial sum of the per-event
    /// loop is an exactly-representable integer, so one fused add of
    /// `weight × count` produces the same bits. Outside that regime
    /// (fractional weights, giant totals) the method falls back to the
    /// literal per-event loop rather than re-associate inexact sums.
    pub fn record_repeated(&mut self, t: SimTime, weight: f64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = (t.as_secs() / self.bin_width.as_secs()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        /// Largest integer up to which every f64 add of integers is exact.
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let bin = &mut self.bins[idx];
        let total = weight * count as f64;
        let exact = weight >= 0.0
            && weight.fract() == 0.0
            && *bin >= 0.0
            && bin.fract() == 0.0
            && count as f64 <= EXACT
            && *bin + total <= EXACT;
        if exact {
            *bin += total;
        } else {
            for _ in 0..count {
                *bin += weight;
            }
        }
    }

    /// Adds weight accruing at `rate` per second uniformly over the
    /// half-open interval `[from, to)`, split across bins by overlap —
    /// the span analogue of [`BinnedSeries::record`], used for cost
    /// series where a resource is held over time (e.g. replica-seconds)
    /// rather than delivered at an instant. No-op when `to <= from`.
    pub fn record_span(&mut self, from: SimTime, to: SimTime, rate: f64) {
        let (a, b) = (from.as_secs(), to.as_secs());
        if b <= a {
            return;
        }
        let w = self.bin_width.as_secs();
        let last = (b / w).ceil().max(1.0) as usize;
        if last > self.bins.len() {
            self.bins.resize(last, 0.0);
        }
        let first = (a / w) as usize;
        for (i, bin) in self.bins.iter_mut().enumerate().take(last).skip(first) {
            let lo = i as f64 * w;
            let overlap = (b.min(lo + w) - a.max(lo)).max(0.0);
            *bin += overlap * rate;
        }
    }

    /// Number of bins so far.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> Dur {
        self.bin_width
    }

    /// Iterates over `(bin_start_time, total_weight_in_bin)`.
    pub fn totals(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let w = self.bin_width.as_secs();
        self.bins.iter().enumerate().map(move |(i, &v)| (SimTime::from_secs(i as f64 * w), v))
    }

    /// Iterates over `(bin_start_time, weight_per_second)`.
    pub fn rates(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let w = self.bin_width.as_secs();
        self.totals().map(move |(t, v)| (t, v / w))
    }

    /// Peak per-second rate over all bins, or 0.0 when empty.
    pub fn peak_rate(&self) -> f64 {
        self.rates().map(|(_, r)| r).fold(0.0, f64::max)
    }

    /// Mean per-second rate over the recorded span, or 0.0 when empty.
    pub fn mean_rate(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        let total: f64 = self.bins.iter().sum();
        total / (self.bins.len() as f64 * self.bin_width.as_secs())
    }

    /// Total weight across all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut s = BinnedSeries::new(Dur::from_secs(2.0));
        s.record(SimTime::from_secs(0.0), 1.0);
        s.record(SimTime::from_secs(1.99), 2.0);
        s.record(SimTime::from_secs(2.0), 4.0);
        let totals: Vec<_> = s.totals().map(|(_, v)| v).collect();
        assert_eq!(totals, vec![3.0, 4.0]);
    }

    #[test]
    fn gap_bins_are_zero() {
        let mut s = BinnedSeries::new(Dur::from_secs(1.0));
        s.record(SimTime::from_secs(0.5), 1.0);
        s.record(SimTime::from_secs(3.5), 1.0);
        let totals: Vec<_> = s.totals().map(|(_, v)| v).collect();
        assert_eq!(totals, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn peak_and_mean_rates() {
        let mut s = BinnedSeries::new(Dur::from_millis(500.0));
        s.record(SimTime::from_secs(0.1), 10.0); // bin 0: 20/s
        s.record(SimTime::from_secs(0.6), 5.0); // bin 1: 10/s
        assert_eq!(s.peak_rate(), 20.0);
        assert_eq!(s.mean_rate(), 15.0);
        assert_eq!(s.total(), 15.0);
    }

    #[test]
    fn record_span_splits_weight_by_bin_overlap() {
        let mut s = BinnedSeries::new(Dur::from_secs(1.0));
        // 1 unit/s over [0.5, 2.5): 0.5 in bin 0, 1.0 in bin 1, 0.5 in
        // bin 2.
        s.record_span(SimTime::from_secs(0.5), SimTime::from_secs(2.5), 1.0);
        let totals: Vec<_> = s.totals().map(|(_, v)| v).collect();
        assert_eq!(totals, vec![0.5, 1.0, 0.5]);
        // A span ending exactly on a bin edge doesn't open the next bin.
        let mut t = BinnedSeries::new(Dur::from_secs(1.0));
        t.record_span(SimTime::from_secs(0.0), SimTime::from_secs(2.0), 2.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total(), 4.0);
        // Empty spans are no-ops.
        t.record_span(SimTime::from_secs(5.0), SimTime::from_secs(5.0), 9.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_series_rates_are_zero() {
        let s = BinnedSeries::new(Dur::from_secs(1.0));
        assert!(s.is_empty());
        assert_eq!(s.peak_rate(), 0.0);
        assert_eq!(s.mean_rate(), 0.0);
    }

    proptest! {
        #[test]
        fn total_is_conserved(
            events in prop::collection::vec((0.0f64..100.0, 0.0f64..10.0), 0..100)
        ) {
            let mut s = BinnedSeries::new(Dur::from_secs(0.7));
            let mut expected = 0.0;
            for &(t, w) in &events {
                s.record(SimTime::from_secs(t), w);
                expected += w;
            }
            prop_assert!((s.total() - expected).abs() < 1e-9);
        }

        #[test]
        fn peak_rate_at_least_mean_rate(
            events in prop::collection::vec((0.0f64..50.0, 0.1f64..10.0), 1..100)
        ) {
            let mut s = BinnedSeries::new(Dur::from_secs(1.0));
            for &(t, w) in &events {
                s.record(SimTime::from_secs(t), w);
            }
            prop_assert!(s.peak_rate() >= s.mean_rate() - 1e-9);
        }
    }
}
