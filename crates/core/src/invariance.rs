//! Machine-checked KV-cache invariance (§3.3.1).
//!
//! Shift Parallelism is only sound if the base `(SP, TP)` and shift
//! `(1, SP·TP)` configurations place every attention head — and hence
//! every KV-cache entry — on the same GPU. For pure SP or pure TP bases
//! this is automatic; for mixed bases the head order interleaves (the
//! paper's `(0, 2, 4, 1, 3, 5)` example) and the shift model must shard
//! its weights in `SP_TP`-group order.
//!
//! [`InvarianceCertificate`] verifies the property for a concrete model
//! and base configuration, covering both query heads and KV heads (with
//! replication when the degree exceeds the KV head count).

use sp_kvcache::KvShardLayout;
use sp_model::ModelConfig;
use sp_parallel::{ParallelConfig, ProcessMapping};
use std::fmt;

/// Why invariance verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvarianceError {
    /// Query heads are not divisible by the parallel degree.
    IndivisibleQueryHeads {
        /// Query heads in the model.
        q_heads: u32,
        /// Total parallel degree.
        degree: usize,
    },
    /// KV heads can be neither split nor replicated evenly.
    KvLayout(String),
    /// A rank's base and shift head sets differ (would corrupt the cache).
    HeadMismatch {
        /// The offending global rank.
        rank: usize,
        /// Heads under the base configuration.
        base: Vec<u32>,
        /// Heads under the shift configuration.
        shift: Vec<u32>,
    },
}

impl fmt::Display for InvarianceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvarianceError::IndivisibleQueryHeads { q_heads, degree } => {
                write!(f, "{q_heads} query heads do not divide across {degree} GPUs")
            }
            InvarianceError::KvLayout(e) => write!(f, "KV head layout invalid: {e}"),
            InvarianceError::HeadMismatch { rank, base, shift } => {
                write!(f, "rank {rank} holds heads {base:?} in base but {shift:?} in shift config")
            }
        }
    }
}

impl std::error::Error for InvarianceError {}

/// Proof that a model can shift safely under a given base configuration.
///
/// # Examples
///
/// ```
/// use shift_core::InvarianceCertificate;
/// use sp_model::presets;
/// use sp_parallel::ParallelConfig;
///
/// let cert =
///     InvarianceCertificate::verify(&presets::llama_70b(), ParallelConfig::new(4, 2))
///         .unwrap();
/// assert_eq!(cert.kv_replication(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvarianceCertificate {
    base: ParallelConfig,
    q_heads_per_rank: u32,
    kv_replication: u32,
    head_order: Vec<u32>,
}

impl InvarianceCertificate {
    /// Verifies KV-cache invariance of `model` for `base` and its derived
    /// shift configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvarianceError`] if heads cannot be laid out or any rank
    /// would disagree between the two configurations.
    pub fn verify(
        model: &ModelConfig,
        base: ParallelConfig,
    ) -> Result<InvarianceCertificate, InvarianceError> {
        let degree = base.degree();
        if !(model.q_heads as usize).is_multiple_of(degree) {
            return Err(InvarianceError::IndivisibleQueryHeads { q_heads: model.q_heads, degree });
        }
        KvShardLayout::for_model(model, degree)
            .map_err(|e| InvarianceError::KvLayout(e.to_string()))?;

        let mapping = ProcessMapping::new(base.sp(), base.tp());
        for rank in 0..degree {
            let base_heads = mapping.base_heads_of_rank(rank, model.q_heads);
            let shift_heads = mapping.shift_heads_of_rank(rank, model.q_heads);
            if base_heads != shift_heads {
                return Err(InvarianceError::HeadMismatch {
                    rank,
                    base: base_heads,
                    shift: shift_heads,
                });
            }
        }

        let layout = KvShardLayout::for_model(model, degree).expect("checked above");
        // Head h is owned by the h-th rank of the SP_TP group — the order
        // the shift model loads its shards in (§3.3.2).
        let head_order: Vec<u32> = mapping.sp_tp_group().into_iter().map(|r| r as u32).collect();

        Ok(InvarianceCertificate {
            base,
            q_heads_per_rank: model.q_heads / degree as u32,
            kv_replication: layout.replication(),
            head_order,
        })
    }

    /// The certified base configuration.
    pub fn base(&self) -> ParallelConfig {
        self.base
    }

    /// Query heads resident on each rank.
    pub fn q_heads_per_rank(&self) -> u32 {
        self.q_heads_per_rank
    }

    /// KV-head replication factor (1 means every head stored once).
    pub fn kv_replication(&self) -> u32 {
        self.kv_replication
    }

    /// For each head chunk `i`, the global rank owning it — the paper's
    /// `(0, 2, 4, 1, 3, 5)` ordering for the `(SP=3, TP=2)` example.
    pub fn head_order(&self) -> &[u32] {
        &self.head_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp_model::presets;

    #[test]
    fn all_table4_models_certify_on_eight_gpus() {
        for model in presets::all_table4() {
            for base in
                [ParallelConfig::sequence(8), ParallelConfig::new(4, 2), ParallelConfig::new(2, 4)]
            {
                InvarianceCertificate::verify(&model, base)
                    .unwrap_or_else(|e| panic!("{} {base}: {e}", model.name));
            }
        }
    }

    #[test]
    fn paper_head_order_example() {
        // (SP=3, TP=2) on a 6-head model: order (0, 2, 4, 1, 3, 5).
        let mut model = presets::llama_70b();
        model.q_heads = 6;
        model.kv_heads = 6;
        let cert = InvarianceCertificate::verify(&model, ParallelConfig::new(3, 2)).unwrap();
        assert_eq!(cert.head_order(), &[0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn replication_reported_for_a3b() {
        let cert =
            InvarianceCertificate::verify(&presets::qwen_30b_a3b(), ParallelConfig::sequence(8))
                .unwrap();
        assert_eq!(cert.kv_replication(), 2);
        assert_eq!(cert.q_heads_per_rank(), 4); // 32 / 8
    }

    #[test]
    fn indivisible_query_heads_rejected() {
        let mut model = presets::llama_70b();
        model.q_heads = 60; // not divisible by 8
        let err = InvarianceCertificate::verify(&model, ParallelConfig::sequence(8)).unwrap_err();
        assert!(matches!(err, InvarianceError::IndivisibleQueryHeads { .. }));
    }

    #[test]
    fn bad_kv_layout_rejected() {
        let mut model = presets::llama_70b();
        model.q_heads = 63;
        model.kv_heads = 9;
        let err = InvarianceCertificate::verify(&model, ParallelConfig::new(7, 1)).unwrap_err();
        // 9 KV heads across 7 GPUs: neither splits nor replicates.
        assert!(matches!(err, InvarianceError::KvLayout(_)), "got {err}");
    }

    #[test]
    fn error_messages_are_informative() {
        let e = InvarianceError::HeadMismatch { rank: 3, base: vec![1], shift: vec![2] };
        let msg = e.to_string();
        assert!(msg.contains("rank 3"));
        assert!(msg.contains("[1]") && msg.contains("[2]"));
    }

    proptest! {
        #[test]
        fn certificates_exist_for_every_even_factorization(
            sp_pow in 0u32..4, tp_pow in 0u32..4,
        ) {
            let sp = 1usize << sp_pow;
            let tp = 1usize << tp_pow;
            prop_assume!(sp * tp > 1 && sp * tp <= 64);
            let model = presets::llama_70b(); // 64 Q / 8 KV heads
            let cert = InvarianceCertificate::verify(&model, ParallelConfig::new(sp, tp));
            prop_assert!(cert.is_ok(), "({sp},{tp}): {:?}", cert.err());
        }
    }
}
