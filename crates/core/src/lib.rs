//! Shift Parallelism — the paper's primary contribution.
//!
//! Shift Parallelism serves one model under **two** parallel
//! configurations that share the KV cache:
//!
//! * the **base** configuration — Ulysses SP, optionally combined with TP
//!   (`SP × TP = P`) — optimizes TTFT and combined throughput;
//! * the **shift** configuration — full TP (`SP = 1, TP = P`) — optimizes
//!   TPOT.
//!
//! Every iteration, the engine switches between them by the batched token
//! count (Algorithm 2): large batches (prefills, bursts) run in the base
//! config; small batches (low-traffic decode) run in the shift config.
//! Switching is free because the two configurations' attention-head
//! layouts — and therefore KV caches — are provably identical
//! ([`invariance`]).
//!
//! Modules:
//!
//! * [`policy::ShiftPolicy`] — the Algorithm 2 threshold switch.
//! * [`invariance`] — machine-checked KV-cache invariance certificates for
//!   arbitrary `(SP, TP)` bases (§3.3.1).
//! * [`weights`] — the two weight-handling strategies of §3.3.2 and the
//!   Eq. 1 memory footprint.
//! * [`deployment`] — the user-facing facade: build a deployment
//!   (TP / DP / SP / Shift) on a node and run traces through it.
//!
//! # Examples
//!
//! ```
//! use shift_core::{Deployment, DeploymentKind};
//! use sp_cluster::NodeSpec;
//! use sp_model::presets;
//! use sp_workload::synthetic;
//!
//! let mut dep = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::llama_70b())
//!     .kind(DeploymentKind::Shift)
//!     .build()
//!     .unwrap();
//! let report = dep.run(&synthetic::single(4096, 32));
//! assert_eq!(report.records().len(), 1);
//! ```

pub mod deployment;
pub mod fleet;
pub mod graphs;
pub mod invariance;
pub mod policy;
pub mod shards;
pub mod tuner;
pub mod weights;

pub use deployment::{Deployment, DeploymentBuilder, DeploymentError, DeploymentKind};
pub use fleet::Fleet;
pub use invariance::InvarianceCertificate;
pub use policy::{ShiftPolicy, DEFAULT_SHIFT_THRESHOLD};
pub use sp_engine::RoutingKind;
pub use weights::{ShiftWeightPlan, WeightStrategy};
