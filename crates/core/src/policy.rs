//! The Algorithm 2 threshold switch.

use sp_parallel::{BatchStats, ParallelConfig, ParallelismPolicy};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default switching threshold in batched tokens.
///
/// Below it the iteration is decode-dominated (a handful of sequences each
/// contributing one token) and full TP minimizes TPOT; above it prefill
/// work dominates and the SP base config minimizes TTFT and cost. The
/// ablation bench (`threshold` in `sp-bench`) sweeps this value.
pub const DEFAULT_SHIFT_THRESHOLD: u64 = 256;

/// Shift Parallelism's per-iteration decision (Algorithm 2):
///
/// ```text
/// if batched_tokens > threshold { base (SP, TP) } else { shift (1, SP·TP) }
/// ```
///
/// # Examples
///
/// ```
/// use shift_core::ShiftPolicy;
/// use sp_parallel::{BatchStats, ParallelConfig, ParallelismPolicy};
///
/// let policy = ShiftPolicy::new(ParallelConfig::sequence(8), 256);
/// let small = BatchStats { total_new_tokens: 8, num_seqs: 8 };
/// let large = BatchStats { total_new_tokens: 4096, num_seqs: 2 };
/// assert_eq!(policy.choose(&small), ParallelConfig::tensor(8));
/// assert_eq!(policy.choose(&large), ParallelConfig::sequence(8));
/// ```
#[derive(Debug)]
pub struct ShiftPolicy {
    base: ParallelConfig,
    shift: ParallelConfig,
    threshold: u64,
    base_iterations: AtomicU64,
    shift_iterations: AtomicU64,
    switches: AtomicU64,
    // 0 = none yet, 1 = base, 2 = shift.
    last: AtomicU64,
}

impl ShiftPolicy {
    /// Creates a shift policy over `base` (the shift configuration is
    /// derived: full TP across the same GPUs).
    ///
    /// # Panics
    ///
    /// Panics if `base` is already pure TP on one GPU group of size 1 —
    /// there would be nothing to shift between (degree must exceed 1).
    pub fn new(base: ParallelConfig, threshold: u64) -> ShiftPolicy {
        assert!(base.degree() > 1, "shift parallelism needs more than one GPU");
        ShiftPolicy {
            base,
            shift: base.shift_config(),
            threshold,
            base_iterations: AtomicU64::new(0),
            shift_iterations: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            last: AtomicU64::new(0),
        }
    }

    /// Creates a shift policy with the default threshold.
    pub fn with_default_threshold(base: ParallelConfig) -> ShiftPolicy {
        ShiftPolicy::new(base, DEFAULT_SHIFT_THRESHOLD)
    }

    /// The base `(SP, TP)` configuration.
    pub fn base(&self) -> ParallelConfig {
        self.base
    }

    /// The shift configuration (`SP = 1, TP = P`).
    pub fn shift(&self) -> ParallelConfig {
        self.shift
    }

    /// The switching threshold in batched tokens.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Iterations run in the base configuration so far.
    pub fn base_iterations(&self) -> u64 {
        self.base_iterations.load(Ordering::Relaxed)
    }

    /// Iterations run in the shift configuration so far.
    pub fn shift_iterations(&self) -> u64 {
        self.shift_iterations.load(Ordering::Relaxed)
    }

    /// Number of base↔shift transitions observed.
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    fn record(&self, to_base: bool) {
        let tag = if to_base { 1 } else { 2 };
        let prev = self.last.swap(tag, Ordering::Relaxed);
        if prev != 0 && prev != tag {
            self.switches.fetch_add(1, Ordering::Relaxed);
        }
        if to_base {
            self.base_iterations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shift_iterations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl ParallelismPolicy for ShiftPolicy {
    fn choose(&self, stats: &BatchStats) -> ParallelConfig {
        let to_base = stats.total_new_tokens > self.threshold;
        self.record(to_base);
        if to_base {
            self.base
        } else {
            self.shift
        }
    }

    fn configurations(&self) -> Vec<ParallelConfig> {
        vec![self.base, self.shift]
    }

    fn name(&self) -> &str {
        "Shift Parallelism"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stats(tokens: u64) -> BatchStats {
        BatchStats { total_new_tokens: tokens, num_seqs: 1 }
    }

    #[test]
    fn threshold_is_exclusive_lower_bound() {
        // Algorithm 2: "if n > threshold" — equality stays in shift mode.
        let p = ShiftPolicy::new(ParallelConfig::sequence(8), 100);
        assert_eq!(p.choose(&stats(100)), ParallelConfig::tensor(8));
        assert_eq!(p.choose(&stats(101)), ParallelConfig::sequence(8));
    }

    #[test]
    fn mixed_base_shifts_to_full_tp() {
        let p = ShiftPolicy::new(ParallelConfig::new(4, 2), 256);
        assert_eq!(p.shift(), ParallelConfig::tensor(8));
        assert_eq!(p.choose(&stats(1)), ParallelConfig::tensor(8));
        assert_eq!(p.choose(&stats(10_000)), ParallelConfig::new(4, 2));
    }

    #[test]
    fn switch_counter_tracks_transitions() {
        let p = ShiftPolicy::new(ParallelConfig::sequence(8), 10);
        p.choose(&stats(100)); // base
        p.choose(&stats(200)); // base (no switch)
        p.choose(&stats(1)); // shift (switch 1)
        p.choose(&stats(500)); // base (switch 2)
        assert_eq!(p.switches(), 2);
        assert_eq!(p.base_iterations(), 3);
        assert_eq!(p.shift_iterations(), 1);
    }

    #[test]
    fn configurations_lists_both() {
        let p = ShiftPolicy::with_default_threshold(ParallelConfig::new(4, 2));
        assert_eq!(p.configurations(), vec![ParallelConfig::new(4, 2), ParallelConfig::tensor(8)]);
        assert_eq!(p.threshold(), DEFAULT_SHIFT_THRESHOLD);
    }

    #[test]
    #[should_panic(expected = "more than one GPU")]
    fn single_gpu_base_rejected() {
        let _ = ShiftPolicy::new(ParallelConfig::single(), 10);
    }

    proptest! {
        #[test]
        fn decision_is_deterministic_in_tokens(tokens in 0u64..1_000_000, thr in 0u64..100_000) {
            let p = ShiftPolicy::new(ParallelConfig::sequence(8), thr);
            let expected = if tokens > thr { p.base() } else { p.shift() };
            prop_assert_eq!(p.choose(&stats(tokens)), expected);
        }

        #[test]
        fn iteration_counts_sum(tokens in prop::collection::vec(0u64..2_000, 0..200)) {
            let p = ShiftPolicy::new(ParallelConfig::sequence(8), 256);
            for t in &tokens {
                p.choose(&stats(*t));
            }
            prop_assert_eq!(
                p.base_iterations() + p.shift_iterations(),
                tokens.len() as u64
            );
            prop_assert!(p.switches() < tokens.len().max(1) as u64);
        }
    }
}
