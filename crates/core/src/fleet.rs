//! Multi-node fleets: data parallelism *across* shift nodes.
//!
//! The paper deploys one 8-GPU node; production scales out by replicating
//! that deployment behind a router (§1 mentions the naive alternative —
//! separate TP and DP fleets — which doubles cost). A
//! [`Fleet`] composes N identical single-node deployments, each running
//! Shift Parallelism internally, with least-loaded routing between them:
//! intra-request speedup from SP/TP inside the node, scale-out throughput
//! across nodes.

use crate::deployment::{Deployment, DeploymentBuilder, DeploymentError};
use sp_engine::{ClusterSim, EngineReport, FaultPlan, RetryPolicy, RoutingKind};
use sp_metrics::Dur;
use sp_workload::{Request, Trace};

/// N single-node deployments behind a balance-by-expected-work router.
///
/// # Examples
///
/// ```
/// use shift_core::{Deployment, DeploymentKind, fleet::Fleet};
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
/// use sp_workload::synthetic;
///
/// let mut fleet = Fleet::new(2, || {
///     Deployment::builder(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
///         .kind(DeploymentKind::Shift)
/// })
/// .unwrap();
/// let report = fleet.run(&synthetic::uniform_batch(8, 1024, 8));
/// assert_eq!(report.records().len(), 8);
/// ```
#[derive(Debug)]
pub struct Fleet {
    nodes: Vec<Deployment>,
    routing: RoutingKind,
    faults: Option<(FaultPlan, RetryPolicy)>,
}

impl Fleet {
    /// Builds `node_count` deployments from the builder factory.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DeploymentError`].
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(
        node_count: usize,
        mut make: impl FnMut() -> DeploymentBuilder,
    ) -> Result<Fleet, DeploymentError> {
        assert!(node_count > 0, "fleet needs at least one node");
        let nodes = (0..node_count).map(|_| make().build()).collect::<Result<Vec<_>, _>>()?;
        Ok(Fleet { nodes, routing: RoutingKind::default(), faults: None })
    }

    /// Selects the inter-node routing policy (default:
    /// join-shortest-outstanding-tokens).
    pub fn routing(mut self, kind: RoutingKind) -> Fleet {
        self.routing = kind;
        self
    }

    /// Injects a fault schedule into every subsequent [`Fleet::run`]:
    /// node crashes salvage and re-dispatch in-flight work under `retry`
    /// (see [`ClusterSim::with_faults`]).
    pub fn with_faults(mut self, plan: FaultPlan, retry: RetryPolicy) -> Fleet {
        self.faults = Some((plan, retry));
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Splits `trace` across nodes offline: each request goes to the node
    /// with the least total tokens assigned so far. This is the static
    /// baseline [`Fleet::run`] replaced — kept for comparisons (it is the
    /// assignment [`sp_engine::StaticSplit`] reproduces online).
    pub fn route(&self, trace: &Trace) -> Vec<Trace> {
        let n = self.nodes.len();
        let mut assigned: Vec<Vec<Request>> = vec![Vec::new(); n];
        let mut load = vec![0u64; n];
        for r in trace.requests() {
            let target = (0..n).min_by_key(|&i| load[i]).expect("non-empty fleet");
            load[target] += r.total_tokens();
            assigned[target].push(*r);
        }
        assigned.into_iter().map(Trace::with_ids).collect()
    }

    /// Runs `trace` across the fleet with online routing: nodes advance
    /// together in simulated time and each request is dispatched at its
    /// arrival instant by the configured policy acting on live
    /// outstanding load. The merged report carries the routing decision
    /// trail and per-node load series.
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        let nodes = std::mem::take(&mut self.nodes);
        let mut sim =
            ClusterSim::new(nodes, self.routing.policy()).throughput_bin(Dur::from_secs(1.0));
        if let Some((plan, retry)) = self.faults.clone() {
            sim = sim.with_faults(plan, retry);
        }
        let report = sim.run(trace);
        self.nodes = sim.into_nodes();
        report
    }

    /// Runs `trace` with the offline static split ([`Fleet::route`]) —
    /// the pre-event-driven behaviour, kept as a comparison baseline.
    pub fn run_offline(&mut self, trace: &Trace) -> EngineReport {
        let shards = self.route(trace);
        let mut merged = EngineReport::new(Dur::from_secs(1.0));
        for (node, shard) in self.nodes.iter_mut().zip(shards) {
            merged.merge(node.run(&shard));
        }
        merged
    }

    /// Aggregated shift statistics `(base, shift, switches)` across nodes,
    /// `None` if the deployments are not shift deployments.
    pub fn shift_stats(&self) -> Option<(u64, u64, u64)> {
        self.nodes.iter().try_fold((0, 0, 0), |(a, b, c), node| {
            node.shift_stats().map(|(x, y, z)| (a + x, b + y, c + z))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentKind;
    use sp_cluster::NodeSpec;
    use sp_model::presets;
    use sp_workload::synthetic;

    fn make_fleet(nodes: usize) -> Fleet {
        Fleet::new(nodes, || {
            Deployment::builder(NodeSpec::p5en_48xlarge(), presets::llama_70b())
                .kind(DeploymentKind::Shift)
        })
        .unwrap()
    }

    #[test]
    fn fleet_scales_batch_throughput() {
        let trace = synthetic::uniform_batch(64, 4096, 32);
        let one = make_fleet(1).run(&trace);
        let two = make_fleet(2).run(&trace);
        let speedup = one.makespan().as_secs() / two.makespan().as_secs();
        assert!(speedup > 1.6, "2-node speedup {speedup:.2}");
        assert_eq!(two.records().len(), 64);
    }

    #[test]
    fn fleet_preserves_single_request_latency() {
        // Adding nodes must not slow a lone request down.
        let trace = synthetic::single(8192, 32);
        let mut lone = make_fleet(1).run(&trace);
        let mut pair = make_fleet(2).run(&trace);
        let a = lone.metrics_mut().ttft().median().unwrap();
        let b = pair.metrics_mut().ttft().median().unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn fleet_shift_stats_aggregate() {
        let mut fleet = make_fleet(2);
        let _ = fleet.run(&synthetic::uniform_batch(8, 2048, 16));
        let (base, shift, _) = fleet.shift_stats().unwrap();
        assert!(base + shift > 0);
    }

    #[test]
    fn routing_is_conservative() {
        let fleet = make_fleet(3);
        let trace = synthetic::poisson(31, 10.0, 1024, 16, 8);
        let shards = fleet.route(&trace);
        let total: usize = shards.iter().map(Trace::len).sum();
        assert_eq!(total, 31);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        let _ = make_fleet(0);
    }
}
