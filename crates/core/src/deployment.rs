//! The deployment facade: build and run TP / DP / SP / Shift serving
//! systems on a node.
//!
//! This is the crate's main entry point. It wires together the memory
//! plan (KV capacity from the weight footprint), the invariance check,
//! the parallelism policy, and the serving engine(s).

use crate::invariance::InvarianceCertificate;
use crate::policy::{ShiftPolicy, DEFAULT_SHIFT_THRESHOLD};
use crate::weights::{ShiftWeightPlan, WeightStrategy};
use sp_cluster::NodeSpec;
use sp_engine::{DataParallelCluster, Engine, EngineConfig, EngineReport, RoutingKind, SimNode};
use sp_metrics::{Dur, SimTime};
use sp_model::ModelConfig;
use sp_parallel::{
    BatchStats, EngineOverhead, ExecutionModel, MemoryPlan, ParallelConfig, ParallelismPolicy,
    StaticPolicy,
};
use sp_workload::Trace;
use std::fmt;
use std::sync::Arc;

/// Minimum group-wide KV capacity (tokens) a base configuration must leave
/// for [`Deployment::auto_base`] to accept it (§3.2.2's "enough room for
/// KV cache for providing concurrency and high throughput"; §4.6 rejects
/// Llama-17B-16E at SP=8 because ~600k tokens cannot sustain concurrent
/// long contexts).
pub const MIN_KV_TOKENS_FOR_BASE: u64 = 800_000;

/// Which serving strategy to deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentKind {
    /// Latency-optimized vLLM baseline: full TP across the node.
    TensorParallel,
    /// Throughput-optimized vLLM baseline: one replica per GPU.
    DataParallel,
    /// Pure Ulysses SP across the node.
    SequenceParallel,
    /// Shift Parallelism with an automatically chosen base configuration
    /// and the default threshold.
    Shift,
    /// Shift Parallelism with an explicit base and threshold.
    ShiftWithBase {
        /// The base `(SP, TP)` configuration.
        base: ParallelConfig,
        /// Switching threshold in batched tokens.
        threshold: u64,
    },
    /// Any fixed `(SP, TP)` configuration.
    Static(ParallelConfig),
}

/// Why a deployment could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeploymentError {
    /// Weights do not fit the GPUs under the requested configuration.
    DoesNotFit {
        /// The offending configuration.
        config: ParallelConfig,
        /// Required weight bytes per GPU.
        needed: u64,
        /// Usable bytes per GPU.
        available: u64,
    },
    /// KV heads cannot be laid out for the configuration.
    Layout(String),
    /// The base/shift pair violates KV-cache invariance.
    Invariance(String),
}

impl fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentError::DoesNotFit { config, needed, available } => write!(
                f,
                "weights need {needed} bytes/GPU under {config} but only {available} usable"
            ),
            DeploymentError::Layout(e) => write!(f, "invalid KV layout: {e}"),
            DeploymentError::Invariance(e) => write!(f, "invariance violated: {e}"),
        }
    }
}

impl std::error::Error for DeploymentError {}

/// Shares one policy between the deployment (for statistics) and the
/// engine (for decisions).
#[derive(Debug, Clone)]
struct SharedPolicy(Arc<dyn ParallelismPolicy>);

impl ParallelismPolicy for SharedPolicy {
    fn choose(&self, stats: &BatchStats) -> ParallelConfig {
        self.0.choose(stats)
    }
    fn configurations(&self) -> Vec<ParallelConfig> {
        self.0.configurations()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Builder for [`Deployment`].
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    node: NodeSpec,
    model: ModelConfig,
    kind: DeploymentKind,
    overhead: EngineOverhead,
    weight_strategy: WeightStrategy,
    max_batched_tokens: u64,
    max_seqs: usize,
    block_tokens: u32,
    throughput_bin: Dur,
    mem_fraction: f64,
    spec_decode: Option<sp_engine::SpecDecode>,
    prefill_flops_scale: f64,
    admission: sp_engine::AdmissionMode,
    max_prefill_tokens: Option<u64>,
    queue_policy: sp_engine::QueuePolicy,
    record_timeline: bool,
    prefix_caching: bool,
    routing: RoutingKind,
    class_slo: Option<sp_metrics::ClassSlo>,
}

impl DeploymentBuilder {
    fn new(node: NodeSpec, model: ModelConfig) -> DeploymentBuilder {
        DeploymentBuilder {
            node,
            model,
            kind: DeploymentKind::Shift,
            overhead: EngineOverhead::default(),
            weight_strategy: WeightStrategy::SeparateModels,
            max_batched_tokens: 8192,
            max_seqs: 256,
            block_tokens: 16,
            throughput_bin: Dur::from_secs(1.0),
            mem_fraction: sp_parallel::memory::DEFAULT_MEM_FRACTION,
            spec_decode: None,
            prefill_flops_scale: 1.0,
            admission: sp_engine::AdmissionMode::ReserveFull,
            max_prefill_tokens: None,
            queue_policy: sp_engine::QueuePolicy::Fcfs,
            record_timeline: false,
            prefix_caching: false,
            routing: RoutingKind::default(),
            class_slo: None,
        }
    }

    /// Enables SLO-aware scheduling: per-class TTFT deadlines drive
    /// admission order, batch-prefill deferral, and shedding (see
    /// [`sp_engine::EngineConfig::class_slo`]). Pair with
    /// [`RoutingKind::EarliestDeadlineFeasible`] for deadline-aware
    /// dispatch across replicas.
    pub fn class_slo(mut self, slo: sp_metrics::ClassSlo) -> DeploymentBuilder {
        self.class_slo = Some(slo);
        self
    }

    /// Selects the online routing policy for multi-replica deployments
    /// (default: join-shortest-outstanding-tokens). Single-engine
    /// deployments ignore it.
    pub fn routing(mut self, kind: RoutingKind) -> DeploymentBuilder {
        self.routing = kind;
        self
    }

    /// Honors requests' cached prefixes (automatic prefix caching).
    pub fn prefix_caching(mut self, on: bool) -> DeploymentBuilder {
        self.prefix_caching = on;
        self
    }

    /// Records a per-iteration timeline in reports (default off).
    pub fn record_timeline(mut self, on: bool) -> DeploymentBuilder {
        self.record_timeline = on;
        self
    }

    /// Caps prefill tokens per iteration (Sarathi-Serve-style decode
    /// protection; default: uncapped).
    pub fn max_prefill_tokens(mut self, cap: u64) -> DeploymentBuilder {
        self.max_prefill_tokens = Some(cap);
        self
    }

    /// Selects the waiting-queue admission order (default: FCFS).
    pub fn queue_policy(mut self, policy: sp_engine::QueuePolicy) -> DeploymentBuilder {
        self.queue_policy = policy;
        self
    }

    /// Selects the KV admission mode (default: reserve-full; see
    /// [`sp_engine::AdmissionMode`]).
    pub fn admission(mut self, mode: sp_engine::AdmissionMode) -> DeploymentBuilder {
        self.admission = mode;
        self
    }

    /// Enables speculative decoding (§4.5 composition).
    pub fn spec_decode(mut self, sd: sp_engine::SpecDecode) -> DeploymentBuilder {
        self.spec_decode = Some(sd);
        self
    }

    /// Scales prefill linear FLOPs — the SwiftKV composition hook (§4.5).
    pub fn prefill_flops_scale(mut self, scale: f64) -> DeploymentBuilder {
        self.prefill_flops_scale = scale;
        self
    }

    /// Selects the serving strategy (default: [`DeploymentKind::Shift`]).
    pub fn kind(mut self, kind: DeploymentKind) -> DeploymentBuilder {
        self.kind = kind;
        self
    }

    /// Overrides the engine CPU overhead model.
    pub fn overhead(mut self, overhead: EngineOverhead) -> DeploymentBuilder {
        self.overhead = overhead;
        self
    }

    /// Selects the §3.3.2 weight strategy (default: separate models).
    pub fn weight_strategy(mut self, strategy: WeightStrategy) -> DeploymentBuilder {
        self.weight_strategy = strategy;
        self
    }

    /// Sets the chunked-prefill token budget per iteration.
    pub fn max_batched_tokens(mut self, budget: u64) -> DeploymentBuilder {
        self.max_batched_tokens = budget;
        self
    }

    /// Sets the maximum concurrent sequences.
    pub fn max_seqs(mut self, max: usize) -> DeploymentBuilder {
        self.max_seqs = max;
        self
    }

    /// Sets the throughput time-series bin width for reports.
    pub fn throughput_bin(mut self, bin: Dur) -> DeploymentBuilder {
        self.throughput_bin = bin;
        self
    }

    /// Sets the usable GPU memory fraction.
    pub fn mem_fraction(mut self, fraction: f64) -> DeploymentBuilder {
        self.mem_fraction = fraction;
        self
    }

    /// Builds the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if weights do not fit, KV heads cannot
    /// be laid out, or (for shift deployments) invariance fails.
    pub fn build(self) -> Result<Deployment, DeploymentError> {
        let gpus = self.node.gpu_count;
        let usable = (self.node.gpu.mem_bytes as f64 * self.mem_fraction) as u64;

        let check_fit =
            |config: ParallelConfig, extra: u64| -> Result<MemoryPlan, DeploymentError> {
                let plan = MemoryPlan::plan_with_extra(
                    &self.node,
                    &self.model,
                    &config,
                    extra,
                    self.mem_fraction,
                )
                .map_err(|e| DeploymentError::Layout(e.to_string()))?;
                if !plan.fits {
                    return Err(DeploymentError::DoesNotFit {
                        config,
                        needed: plan.weight_bytes_per_gpu,
                        available: usable,
                    });
                }
                Ok(plan)
            };

        let engine_config = |kv_capacity_tokens: u64| EngineConfig {
            max_batched_tokens: self.max_batched_tokens,
            max_seqs: self.max_seqs,
            kv_capacity_tokens,
            block_tokens: self.block_tokens,
            throughput_bin: self.throughput_bin,
            spec_decode: self.spec_decode,
            admission: self.admission,
            record_timeline: self.record_timeline,
            prefix_caching: self.prefix_caching,
            max_prefill_tokens: self.max_prefill_tokens,
            queue_policy: self.queue_policy,
            class_slo: self.class_slo,
            decode_memo_tokens: None,
        };

        let make_exec = |node: NodeSpec| -> ExecutionModel {
            let mut exec = ExecutionModel::with_overhead(node, self.model.clone(), self.overhead);
            if self.prefill_flops_scale < 1.0 {
                exec.set_prefill_flops_scale(self.prefill_flops_scale);
            }
            exec
        };

        let make_static = |config: ParallelConfig, name: &str, plan: MemoryPlan| -> Engine {
            Engine::new(
                make_exec(self.node),
                Box::new(StaticPolicy::new(name, config)),
                engine_config(plan.kv_capacity_tokens),
            )
        };

        match self.kind {
            DeploymentKind::TensorParallel => {
                let config = ParallelConfig::tensor(gpus);
                let plan = check_fit(config, 0)?;
                Ok(Deployment {
                    kind: self.kind,
                    kv_capacity_tokens: plan.kv_capacity_tokens,
                    shift_policy: None,
                    routing: self.routing,
                    inner: Inner::Single(Box::new(make_static(config, "TP", plan))),
                })
            }
            DeploymentKind::SequenceParallel => {
                let config = ParallelConfig::sequence(gpus);
                let plan = check_fit(config, 0)?;
                Ok(Deployment {
                    kind: self.kind,
                    kv_capacity_tokens: plan.kv_capacity_tokens,
                    shift_policy: None,
                    routing: self.routing,
                    inner: Inner::Single(Box::new(make_static(config, "SP", plan))),
                })
            }
            DeploymentKind::Static(config) => {
                let plan = check_fit(config, 0)?;
                Ok(Deployment {
                    kind: self.kind,
                    kv_capacity_tokens: plan.kv_capacity_tokens,
                    shift_policy: None,
                    routing: self.routing,
                    inner: Inner::Single(Box::new(make_static(config, "static", plan))),
                })
            }
            DeploymentKind::DataParallel => {
                let replica_node = NodeSpec { gpu_count: 1, ..self.node };
                let config = ParallelConfig::single();
                let plan = MemoryPlan::plan_with_extra(
                    &replica_node,
                    &self.model,
                    &config,
                    0,
                    self.mem_fraction,
                )
                .map_err(|e| DeploymentError::Layout(e.to_string()))?;
                if !plan.fits {
                    return Err(DeploymentError::DoesNotFit {
                        config,
                        needed: plan.weight_bytes_per_gpu,
                        available: usable,
                    });
                }
                let cluster = DataParallelCluster::new(gpus, |_| {
                    Engine::new(
                        make_exec(replica_node),
                        Box::new(StaticPolicy::new("DP", config)),
                        engine_config(plan.kv_capacity_tokens),
                    )
                });
                Ok(Deployment {
                    kind: self.kind,
                    kv_capacity_tokens: plan.kv_capacity_tokens * gpus as u64,
                    shift_policy: None,
                    routing: self.routing,
                    inner: Inner::Cluster(cluster),
                })
            }
            DeploymentKind::Shift | DeploymentKind::ShiftWithBase { .. } => {
                let (base, threshold) = match self.kind {
                    DeploymentKind::ShiftWithBase { base, threshold } => (base, threshold),
                    _ => (
                        Deployment::auto_base(&self.node, &self.model, self.mem_fraction)
                            .map_err(|e| DeploymentError::Layout(e.to_string()))?,
                        DEFAULT_SHIFT_THRESHOLD,
                    ),
                };
                InvarianceCertificate::verify(&self.model, base)
                    .map_err(|e| DeploymentError::Invariance(e.to_string()))?;
                let weight_plan = ShiftWeightPlan::new(&self.model, base, self.weight_strategy);
                let plan = check_fit(base, weight_plan.shift_extra_bytes_per_gpu())?;
                let policy = Arc::new(ShiftPolicy::new(base, threshold));
                let engine = Engine::new(
                    make_exec(self.node),
                    Box::new(SharedPolicy(policy.clone())),
                    engine_config(plan.kv_capacity_tokens),
                );
                Ok(Deployment {
                    kind: self.kind,
                    kv_capacity_tokens: plan.kv_capacity_tokens,
                    shift_policy: Some(policy),
                    routing: self.routing,
                    inner: Inner::Single(Box::new(engine)),
                })
            }
        }
    }
}

#[derive(Debug)]
enum Inner {
    Single(Box<Engine>),
    Cluster(DataParallelCluster),
}

/// A built serving deployment, ready to run traces.
///
/// # Examples
///
/// ```
/// use shift_core::{Deployment, DeploymentKind};
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
/// use sp_workload::synthetic;
///
/// let mut tp = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
///     .kind(DeploymentKind::TensorParallel)
///     .build()
///     .unwrap();
/// let report = tp.run(&synthetic::uniform_batch(4, 1024, 8));
/// assert_eq!(report.records().len(), 4);
/// ```
#[derive(Debug)]
pub struct Deployment {
    kind: DeploymentKind,
    kv_capacity_tokens: u64,
    shift_policy: Option<Arc<ShiftPolicy>>,
    routing: RoutingKind,
    inner: Inner,
}

impl Deployment {
    /// Starts building a deployment of `model` on `node`.
    pub fn builder(node: NodeSpec, model: ModelConfig) -> DeploymentBuilder {
        DeploymentBuilder::new(node, model)
    }

    /// Chooses the base configuration per §3.2.2: the smallest TP degree
    /// (most SP) whose weights fit with at least
    /// [`MIN_KV_TOKENS_FOR_BASE`] tokens of KV capacity, accounting for
    /// the shift model's Eq. 1 overhead.
    ///
    /// # Errors
    ///
    /// Returns the layout error of the last candidate if none fits.
    pub fn auto_base(
        node: &NodeSpec,
        model: &ModelConfig,
        mem_fraction: f64,
    ) -> Result<ParallelConfig, sp_kvcache::layout::LayoutError> {
        let gpus = node.gpu_count;
        let shift_extra = model.weight_bytes() / gpus as u64;
        let mut tp = 1;
        let mut last_err = None;
        while tp <= gpus {
            if gpus.is_multiple_of(tp) {
                let base = ParallelConfig::new(gpus / tp, tp);
                match MemoryPlan::plan_with_extra(node, model, &base, shift_extra, mem_fraction) {
                    Ok(plan) if plan.fits && plan.kv_capacity_tokens >= MIN_KV_TOKENS_FOR_BASE => {
                        return Ok(base);
                    }
                    Ok(_) => {}
                    Err(e) => last_err = Some(e),
                }
            }
            tp *= 2;
        }
        match last_err {
            Some(e) => Err(e),
            // Everything laid out but nothing left KV room: fall back to
            // full TP (no SP benefit, but functional).
            None => Ok(ParallelConfig::tensor(gpus)),
        }
    }

    /// The deployment's strategy.
    pub fn kind(&self) -> DeploymentKind {
        self.kind
    }

    /// Total KV-cache capacity in tokens (summed across DP replicas).
    pub fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity_tokens
    }

    /// For shift deployments: `(base_iterations, shift_iterations,
    /// switches)` observed so far.
    pub fn shift_stats(&self) -> Option<(u64, u64, u64)> {
        self.shift_policy
            .as_ref()
            .map(|p| (p.base_iterations(), p.shift_iterations(), p.switches()))
    }

    /// The online routing policy multi-replica deployments dispatch with.
    pub fn routing_kind(&self) -> RoutingKind {
        self.routing
    }

    /// Runs a trace to completion. Multi-replica (DP) deployments serve it
    /// online: replicas advance together in simulated time and each request
    /// is dispatched at its arrival instant by the configured
    /// [`RoutingKind`] acting on live load.
    pub fn run(&mut self, trace: &Trace) -> EngineReport {
        match &mut self.inner {
            Inner::Single(engine) => engine.run(trace),
            Inner::Cluster(cluster) => cluster.run_online(trace, self.routing.policy()),
        }
    }
}

/// A deployment is itself a steppable node, so whole fleets of them can be
/// co-simulated behind an online router (see [`crate::fleet::Fleet`]).
impl SimNode for Deployment {
    fn push_request(&mut self, req: sp_workload::Request) {
        match &mut self.inner {
            Inner::Single(engine) => engine.push_request(req),
            Inner::Cluster(cluster) => SimNode::push_request(cluster, req),
        }
    }

    fn step_once(&mut self) {
        match &mut self.inner {
            Inner::Single(engine) => engine.step_once(),
            Inner::Cluster(cluster) => SimNode::step_once(cluster),
        }
    }

    fn next_event_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Single(engine) => engine.next_event_time(),
            Inner::Cluster(cluster) => SimNode::next_event_time(cluster),
        }
    }

    fn outstanding_tokens(&self) -> u64 {
        match &self.inner {
            Inner::Single(engine) => engine.outstanding_tokens(),
            Inner::Cluster(cluster) => SimNode::outstanding_tokens(cluster),
        }
    }

    fn load(&self) -> sp_metrics::NodeLoad {
        match &self.inner {
            Inner::Single(engine) => engine.load(),
            Inner::Cluster(cluster) => SimNode::load(cluster),
        }
    }

    fn take_report(&mut self) -> EngineReport {
        match &mut self.inner {
            Inner::Single(engine) => engine.take_report(),
            Inner::Cluster(cluster) => SimNode::take_report(cluster),
        }
    }

    fn take_unfinished(&mut self) -> sp_engine::SalvagedWork {
        match &mut self.inner {
            Inner::Single(engine) => engine.take_unfinished(),
            Inner::Cluster(cluster) => SimNode::take_unfinished(cluster),
        }
    }

    fn set_slowdown(&mut self, factor: f64) {
        match &mut self.inner {
            Inner::Single(engine) => engine.set_slowdown(factor),
            Inner::Cluster(cluster) => SimNode::set_slowdown(cluster, factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;
    use sp_workload::synthetic;

    fn node() -> NodeSpec {
        NodeSpec::p5en_48xlarge()
    }

    fn build(kind: DeploymentKind, model: ModelConfig) -> Deployment {
        Deployment::builder(node(), model).kind(kind).build().unwrap()
    }

    #[test]
    fn auto_base_is_pure_sp_for_dense_models() {
        // Llama-70B (70 GB FP8) fits one H200 with KV to spare: SP=8.
        let base = Deployment::auto_base(&node(), &presets::llama_70b(), 0.9).unwrap();
        assert_eq!(base, ParallelConfig::sequence(8));
        let base = Deployment::auto_base(&node(), &presets::qwen_32b(), 0.9).unwrap();
        assert_eq!(base, ParallelConfig::sequence(8));
    }

    #[test]
    fn auto_base_uses_tp_for_scout() {
        // §4.6: Llama-17B-16E barely fits one GPU → (SP=4, TP=2).
        let base = Deployment::auto_base(&node(), &presets::llama_17b_16e(), 0.9).unwrap();
        assert_eq!(base, ParallelConfig::new(4, 2));
    }

    #[test]
    fn auto_base_replicates_kv_for_a3b() {
        // §4.6: Qwen-30B-A3B scales to SP=8 via KV replication.
        let base = Deployment::auto_base(&node(), &presets::qwen_30b_a3b(), 0.9).unwrap();
        assert_eq!(base, ParallelConfig::sequence(8));
    }

    #[test]
    fn all_kinds_serve_a_small_trace() {
        let trace = synthetic::uniform_batch(4, 512, 8);
        for kind in [
            DeploymentKind::TensorParallel,
            DeploymentKind::DataParallel,
            DeploymentKind::SequenceParallel,
            DeploymentKind::Shift,
        ] {
            let mut dep = build(kind, presets::qwen_32b());
            let report = dep.run(&trace);
            assert_eq!(report.records().len(), 4, "{kind:?}");
        }
    }

    #[test]
    fn shift_uses_both_configs_on_mixed_traffic() {
        let mut dep = build(DeploymentKind::Shift, presets::llama_70b());
        // A large prefill (base config) followed by a long decode tail
        // (shift config).
        let report = dep.run(&synthetic::single(8192, 64));
        let (base_iters, shift_iters, switches) = dep.shift_stats().unwrap();
        assert!(base_iters >= 1, "prefill should run in base config");
        assert!(shift_iters >= 32, "decode should run in shift config");
        assert!(switches >= 1);
        assert_eq!(report.config_usage().len(), 2);
    }

    #[test]
    fn shift_threshold_is_respected() {
        let mut dep = Deployment::builder(node(), presets::llama_70b())
            .kind(DeploymentKind::ShiftWithBase { base: ParallelConfig::sequence(8), threshold: 0 })
            .build()
            .unwrap();
        // Threshold 0: every non-empty batch runs in the base config.
        let _ = dep.run(&synthetic::single(1024, 16));
        let (base_iters, shift_iters, _) = dep.shift_stats().unwrap();
        assert!(base_iters > 0);
        assert_eq!(shift_iters, 0);
    }

    #[test]
    fn dp_kv_capacity_sums_replicas() {
        let dp = build(DeploymentKind::DataParallel, presets::qwen_32b());
        let tp = build(DeploymentKind::TensorParallel, presets::qwen_32b());
        // Each DP replica sacrifices capacity to full weight copies.
        assert!(dp.kv_capacity_tokens() < tp.kv_capacity_tokens());
    }

    #[test]
    fn oversized_model_fails_to_build_dp() {
        // Scout (109 GB) + KV cannot run one-GPU replicas with default
        // margins? It fits 126 GB usable, so artificially lower the
        // fraction to force the error path.
        let err = Deployment::builder(node(), presets::llama_17b_16e())
            .kind(DeploymentKind::DataParallel)
            .mem_fraction(0.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeploymentError::DoesNotFit { .. }), "{err}");
    }

    #[test]
    fn static_kind_accepts_mixed_config() {
        let mut dep =
            build(DeploymentKind::Static(ParallelConfig::new(2, 4)), presets::llama_70b());
        let report = dep.run(&synthetic::uniform_batch(2, 256, 4));
        assert_eq!(report.records().len(), 2);
        assert_eq!(report.config_usage().len(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DeploymentError::DoesNotFit {
            config: ParallelConfig::single(),
            needed: 100,
            available: 50,
        };
        let msg = e.to_string();
        assert!(msg.contains("100") && msg.contains("50"));
    }
}
