//! Deployment auto-tuning.
//!
//! The paper picks its configurations by expert reasoning (§3.2.2 for the
//! base config, a fixed threshold for Algorithm 2). This module automates
//! the choice: given a node, a model, and a *sample of the expected
//! workload*, it grid-searches the shift deployment's knobs — base
//! `(SP, TP)`, switch threshold, and chunked-prefill cap — against a
//! user-chosen objective, by running the candidate deployments in the
//! simulator.

use crate::deployment::{Deployment, DeploymentKind};
use sp_cluster::NodeSpec;
use sp_metrics::{SloReport, SloTarget};
use sp_model::ModelConfig;
use sp_parallel::ParallelConfig;
use sp_workload::Trace;
use std::fmt;

/// What the tuner optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize median request completion time.
    MedianCompletion,
    /// Minimize p99 TTFT (burst robustness).
    TailTtft,
    /// Maximize combined throughput.
    Throughput,
    /// Maximize SLO-attaining tokens per second.
    Goodput(SloTarget),
}

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Base `(SP, TP)` configuration.
    pub base: ParallelConfig,
    /// Shift threshold in batched tokens.
    pub threshold: u64,
    /// Chunked-prefill cap (`None` = uncapped).
    pub max_prefill_tokens: Option<u64>,
    /// Objective score — *lower is better* (throughput-style objectives
    /// are negated).
    pub score: f64,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "base {} threshold {} cap {} score {:.4}",
            self.base,
            self.threshold,
            self.max_prefill_tokens.map_or("none".to_string(), |c| c.to_string()),
            self.score
        )
    }
}

/// Grid-search tuner for shift deployments.
///
/// # Examples
///
/// ```
/// use shift_core::tuner::{Objective, Tuner};
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
/// use sp_workload::synthetic;
///
/// let sample = synthetic::poisson(30, 4.0, 2048, 64, 1);
/// let tuner = Tuner::new(NodeSpec::p5en_48xlarge(), presets::qwen_32b());
/// let best = tuner.tune(&sample, Objective::MedianCompletion).unwrap();
/// assert!(best.base.degree() == 8);
/// ```
#[derive(Debug, Clone)]
pub struct Tuner {
    node: NodeSpec,
    model: ModelConfig,
    thresholds: Vec<u64>,
    prefill_caps: Vec<Option<u64>>,
}

impl Tuner {
    /// Creates a tuner with the default search grid.
    pub fn new(node: NodeSpec, model: ModelConfig) -> Tuner {
        Tuner { node, model, thresholds: vec![64, 256, 1024], prefill_caps: vec![None, Some(2048)] }
    }

    /// Overrides the threshold grid.
    pub fn thresholds(mut self, thresholds: Vec<u64>) -> Tuner {
        self.thresholds = thresholds;
        self
    }

    /// Overrides the prefill-cap grid.
    pub fn prefill_caps(mut self, caps: Vec<Option<u64>>) -> Tuner {
        self.prefill_caps = caps;
        self
    }

    /// Viable base configurations on this node (weights fit, heads lay
    /// out, shift-model overhead accounted).
    pub fn base_candidates(&self) -> Vec<ParallelConfig> {
        let gpus = self.node.gpu_count;
        let mut out = Vec::new();
        let mut tp = 1;
        while tp <= gpus {
            if gpus.is_multiple_of(tp) {
                let base = ParallelConfig::new(gpus / tp, tp);
                if base.degree() > 1
                    && Deployment::builder(self.node, self.model.clone())
                        .kind(DeploymentKind::ShiftWithBase { base, threshold: 256 })
                        .build()
                        .is_ok()
                {
                    out.push(base);
                }
            }
            tp *= 2;
        }
        out
    }

    fn score(&self, candidate: &mut Deployment, sample: &Trace, objective: Objective) -> f64 {
        let mut report = candidate.run(sample);
        match objective {
            Objective::MedianCompletion => {
                report.metrics_mut().completion().median().unwrap_or(f64::INFINITY)
            }
            Objective::TailTtft => report.metrics_mut().ttft().p99().unwrap_or(f64::INFINITY),
            Objective::Throughput => -report.combined_throughput(),
            Objective::Goodput(target) => {
                let slo = SloReport::evaluate(report.records(), target);
                -slo.goodput(report.makespan().since(sp_metrics::SimTime::ZERO))
            }
        }
    }

    /// Evaluates the full grid and returns all candidates, best first.
    ///
    /// # Errors
    ///
    /// Returns an error message if no base configuration is viable.
    pub fn sweep(&self, sample: &Trace, objective: Objective) -> Result<Vec<Candidate>, String> {
        let bases = self.base_candidates();
        if bases.is_empty() {
            return Err(format!("no viable shift base for {} on this node", self.model.name));
        }
        let mut out = Vec::new();
        for &base in &bases {
            for &threshold in &self.thresholds {
                for &cap in &self.prefill_caps {
                    let mut builder = Deployment::builder(self.node, self.model.clone())
                        .kind(DeploymentKind::ShiftWithBase { base, threshold });
                    if let Some(c) = cap {
                        builder = builder.max_prefill_tokens(c);
                    }
                    let Ok(mut dep) = builder.build() else { continue };
                    let score = self.score(&mut dep, sample, objective);
                    out.push(Candidate { base, threshold, max_prefill_tokens: cap, score });
                }
            }
        }
        out.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
        Ok(out)
    }

    /// Returns the best candidate for `objective` on `sample`.
    ///
    /// # Errors
    ///
    /// Returns an error message if no candidate could be evaluated.
    pub fn tune(&self, sample: &Trace, objective: Objective) -> Result<Candidate, String> {
        self.sweep(sample, objective)?
            .into_iter()
            .next()
            .ok_or_else(|| "no candidate evaluated".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;
    use sp_workload::synthetic;

    fn tuner() -> Tuner {
        Tuner::new(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
    }

    #[test]
    fn base_candidates_cover_factorizations() {
        let bases = tuner().base_candidates();
        assert!(bases.contains(&ParallelConfig::sequence(8)));
        assert!(bases.contains(&ParallelConfig::new(4, 2)));
        // degree-1 configs are excluded (nothing to shift).
        assert!(bases.iter().all(|b| b.degree() > 1));
    }

    #[test]
    fn sweep_is_sorted_best_first() {
        let sample = synthetic::poisson(20, 4.0, 1024, 32, 2);
        let t = tuner().thresholds(vec![0, 256]).prefill_caps(vec![None]);
        let sweep = t.sweep(&sample, Objective::MedianCompletion).unwrap();
        assert!(sweep.len() >= 4);
        for w in sweep.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
    }

    #[test]
    fn completion_objective_rejects_pure_sp_decode() {
        // "Always base" with a pure-SP base (threshold 0, SP=8) has the
        // worst TPOT; on decode-heavy traffic the tuner must rank it last.
        // (It may legitimately pick a *mixed* base with threshold 0: for
        // small models at batch 1, a (SP=2, TP=4) decode beats TP=8
        // because the all-reduce is latency-bound — a real crossover the
        // grid search discovers.)
        let sample = synthetic::poisson(16, 2.0, 512, 200, 3);
        let t = tuner().thresholds(vec![0, 256]).prefill_caps(vec![None]);
        let sweep = t.sweep(&sample, Objective::MedianCompletion).unwrap();
        let worst = sweep.last().unwrap();
        assert_eq!(worst.base, ParallelConfig::sequence(8), "worst {worst}");
        assert_eq!(worst.threshold, 0);
        let best = sweep.first().unwrap();
        assert!(best.score < 0.8 * worst.score, "best {best} vs worst {worst}");
    }

    #[test]
    fn throughput_objective_negates_score() {
        let sample = synthetic::uniform_batch(32, 2048, 32);
        let t = tuner().thresholds(vec![256]).prefill_caps(vec![None]);
        let best = t.tune(&sample, Objective::Throughput).unwrap();
        assert!(best.score < 0.0, "throughput scores are negated: {best}");
    }

    #[test]
    fn goodput_objective_runs() {
        let sample = synthetic::poisson(16, 4.0, 1024, 64, 4);
        let t = tuner().thresholds(vec![256]).prefill_caps(vec![None, Some(1024)]);
        let best = t.tune(&sample, Objective::Goodput(SloTarget::interactive())).unwrap();
        assert!(best.score <= 0.0);
    }
}
