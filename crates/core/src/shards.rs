//! Per-rank weight shard maps (Figure 6, §3.3.2).
//!
//! The invariance certificate says *which heads* each rank owns; this
//! module says *which weight rows/columns* that implies, for both the
//! base and shift models — the information a real loader needs to stream
//! the right slice of each checkpoint tensor to each GPU.
//!
//! Conventions: Q/K/V are column-sharded by head; the attention output
//! projection `O` is row-sharded by head; MLP up/gate are column-sharded
//! and MLP down row-sharded by the TP degree.

use sp_model::ModelConfig;
use sp_parallel::{ParallelConfig, ProcessMapping};

/// A contiguous slice of one weight tensor's sharded dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First element index (inclusive).
    pub start: u64,
    /// One past the last element index.
    pub end: u64,
}

impl ShardRange {
    /// Number of elements in the slice.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The weight slices one rank loads for one transformer layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankShard {
    /// Global rank.
    pub rank: usize,
    /// Q-head columns owned (unit: heads; multiply by `head_dim` for
    /// elements). Possibly non-contiguous under mixed bases, hence a list.
    pub q_heads: Vec<u32>,
    /// KV-head columns owned (unit: heads; replicas repeat ids).
    pub kv_heads: Vec<u32>,
    /// MLP intermediate slice (unit: intermediate columns).
    pub mlp: ShardRange,
}

/// Shard maps for a whole configuration.
///
/// # Examples
///
/// ```
/// use shift_core::shards::ShardMap;
/// use sp_model::presets;
/// use sp_parallel::ParallelConfig;
///
/// let map = ShardMap::for_base(&presets::llama_70b(), ParallelConfig::new(4, 2)).unwrap();
/// assert_eq!(map.ranks().len(), 8);
/// // Every rank holds 64/8 = 8 Q heads.
/// assert!(map.ranks().iter().all(|r| r.q_heads.len() == 8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    config: ParallelConfig,
    ranks: Vec<RankShard>,
}

impl ShardMap {
    /// Builds the *base-model* shard map for `config`: attention sharded
    /// by head across all `SP × TP` ranks (post all-to-all ownership), MLP
    /// sharded across the TP group only (SP replicates it).
    ///
    /// # Errors
    ///
    /// Returns a message if heads do not divide across the configuration.
    pub fn for_base(model: &ModelConfig, config: ParallelConfig) -> Result<ShardMap, String> {
        let p = config.degree();
        if !(model.q_heads as usize).is_multiple_of(p) {
            return Err(format!("{} Q heads do not divide across {p} ranks", model.q_heads));
        }
        let mapping = ProcessMapping::new(config.sp(), config.tp());
        let kv_layout =
            sp_kvcache::KvShardLayout::for_model(model, p).map_err(|e| e.to_string())?;
        let mlp_cols = u64::from(model.intermediate_size).max(1);
        let per_tp = mlp_cols / config.tp() as u64;

        let ranks = (0..p)
            .map(|rank| {
                let t = mapping.tp_rank(rank) as u64;
                RankShard {
                    rank,
                    q_heads: mapping.base_heads_of_rank(rank, model.q_heads),
                    kv_heads: kv_layout.heads_on_gpu(rank),
                    mlp: ShardRange { start: t * per_tp, end: (t + 1) * per_tp },
                }
            })
            .collect();
        Ok(ShardMap { config, ranks })
    }

    /// Builds the *shift-model* shard map: full TP across the same ranks,
    /// with head chunks dealt in SP_TP-group order so attention shards
    /// coincide with the base map (§3.3.2), and MLP re-sharded `P` ways.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardMap::for_base`].
    pub fn for_shift(model: &ModelConfig, base: ParallelConfig) -> Result<ShardMap, String> {
        let p = base.degree();
        if !(model.q_heads as usize).is_multiple_of(p) {
            return Err(format!("{} Q heads do not divide across {p} ranks", model.q_heads));
        }
        let mapping = ProcessMapping::new(base.sp(), base.tp());
        let kv_layout =
            sp_kvcache::KvShardLayout::for_model(model, p).map_err(|e| e.to_string())?;
        let mlp_cols = u64::from(model.intermediate_size).max(1);
        let per_rank = mlp_cols / p as u64;
        let order = mapping.sp_tp_group();

        let ranks = (0..p)
            .map(|rank| {
                // The shift model deals MLP slices in SP_TP order too, so
                // slice i goes to order[i].
                let position = order.iter().position(|&r| r == rank).expect("rank in group") as u64;
                RankShard {
                    rank,
                    q_heads: mapping.shift_heads_of_rank(rank, model.q_heads),
                    kv_heads: kv_layout.heads_on_gpu(rank),
                    mlp: ShardRange { start: position * per_rank, end: (position + 1) * per_rank },
                }
            })
            .collect();
        Ok(ShardMap { config: base.shift_config(), ranks })
    }

    /// The configuration this map shards for.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// Per-rank shards, indexed by global rank.
    pub fn ranks(&self) -> &[RankShard] {
        &self.ranks
    }

    /// True if attention ownership (Q and KV heads per rank) coincides
    /// with `other` — the loader-level statement of KV-cache invariance.
    pub fn attention_coincides_with(&self, other: &ShardMap) -> bool {
        self.ranks.len() == other.ranks.len()
            && self
                .ranks
                .iter()
                .zip(&other.ranks)
                .all(|(a, b)| a.q_heads == b.q_heads && a.kv_heads == b.kv_heads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp_model::presets;

    #[test]
    fn base_and_shift_attention_coincide() {
        let m = presets::llama_70b();
        for base in
            [ParallelConfig::sequence(8), ParallelConfig::new(4, 2), ParallelConfig::new(2, 4)]
        {
            let b = ShardMap::for_base(&m, base).unwrap();
            let s = ShardMap::for_shift(&m, base).unwrap();
            assert!(b.attention_coincides_with(&s), "{base}");
        }
    }

    #[test]
    fn mlp_resharded_for_shift() {
        let m = presets::llama_70b();
        let base = ParallelConfig::new(4, 2);
        let b = ShardMap::for_base(&m, base).unwrap();
        let s = ShardMap::for_shift(&m, base).unwrap();
        // Base: TP=2 → half the intermediate each; shift: 1/8 each.
        assert_eq!(b.ranks()[0].mlp.len() * 2, u64::from(m.intermediate_size));
        assert_eq!(s.ranks()[0].mlp.len() * 8, u64::from(m.intermediate_size));
    }

    #[test]
    fn shift_mlp_slices_partition_the_matrix() {
        let m = presets::qwen_32b();
        let s = ShardMap::for_shift(&m, ParallelConfig::new(2, 4)).unwrap();
        let mut slices: Vec<(u64, u64)> =
            s.ranks().iter().map(|r| (r.mlp.start, r.mlp.end)).collect();
        slices.sort_unstable();
        assert_eq!(slices[0].0, 0);
        assert_eq!(slices.last().unwrap().1, u64::from(m.intermediate_size));
        for w in slices.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gap or overlap between MLP slices");
        }
    }

    #[test]
    fn indivisible_heads_error() {
        let mut m = presets::llama_70b();
        m.q_heads = 60;
        assert!(ShardMap::for_base(&m, ParallelConfig::sequence(8)).is_err());
    }

    proptest! {
        #[test]
        fn invariance_at_loader_level(sp_pow in 0u32..4, tp_pow in 0u32..4) {
            let base = ParallelConfig::new(1 << sp_pow, 1 << tp_pow);
            prop_assume!(base.degree() <= 64 && base.degree() > 1);
            let m = presets::llama_70b();
            let b = ShardMap::for_base(&m, base).unwrap();
            let s = ShardMap::for_shift(&m, base).unwrap();
            prop_assert!(b.attention_coincides_with(&s));
        }
    }
}
