//! Weight handling for the two configurations (§3.3.2).
//!
//! The base and shift models need compatible weights on every GPU. The
//! paper considers two strategies:
//!
//! * **on-the-fly slicing** — the shift pass multiplies a slice of the
//!   base partition; zero extra memory, but each slice requires a matrix
//!   transposition on Hopper FP8 tensor cores (a per-iteration time
//!   penalty);
//! * **separate models** (adopted) — load a second, fully-TP-sharded copy
//!   of the weights in SP_TP order; Eq. 1 gives the footprint:
//!
//! ```text
//! w_total = w/TP + w/(SP·TP)        // base + shift
//! ```
//!
//! so the shift model's overhead is `1/SP` of the base model's memory —
//! e.g. 12.5% at SP = 8.

use sp_model::ModelConfig;
use sp_parallel::ParallelConfig;

/// How the shift configuration obtains its weight shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightStrategy {
    /// Slice the base partition per iteration (FP8 transpose penalty).
    OnTheFlySlicing,
    /// Keep a separate fully-sharded shift model (extra memory, Eq. 1).
    SeparateModels,
}

/// Relative GEMM slowdown of the shift pass under on-the-fly slicing
/// (the Hopper FP8 transpose penalty the paper cites for rejecting it).
pub const SLICING_GEMM_PENALTY: f64 = 1.15;

/// Memory/time consequences of a weight strategy for one deployment.
///
/// # Examples
///
/// ```
/// use shift_core::{ShiftWeightPlan, WeightStrategy};
/// use sp_model::presets;
/// use sp_parallel::ParallelConfig;
///
/// let plan = ShiftWeightPlan::new(
///     &presets::llama_70b(),
///     ParallelConfig::sequence(8),
///     WeightStrategy::SeparateModels,
/// );
/// // Eq. 1 at SP=8: the shift copy adds 1/8 = 12.5%.
/// assert!((plan.overhead_fraction() - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftWeightPlan {
    strategy: WeightStrategy,
    base_bytes_per_gpu: u64,
    shift_extra_bytes_per_gpu: u64,
}

impl ShiftWeightPlan {
    /// Plans weights for `model` under `base` with `strategy`.
    pub fn new(
        model: &ModelConfig,
        base: ParallelConfig,
        strategy: WeightStrategy,
    ) -> ShiftWeightPlan {
        let w = model.weight_bytes();
        let base_bytes_per_gpu = w / base.tp() as u64;
        let shift_extra_bytes_per_gpu = match strategy {
            WeightStrategy::OnTheFlySlicing => 0,
            WeightStrategy::SeparateModels => w / base.degree() as u64,
        };
        ShiftWeightPlan { strategy, base_bytes_per_gpu, shift_extra_bytes_per_gpu }
    }

    /// The chosen strategy.
    pub fn strategy(&self) -> WeightStrategy {
        self.strategy
    }

    /// Base-model weight bytes per GPU (`w/TP`).
    pub fn base_bytes_per_gpu(&self) -> u64 {
        self.base_bytes_per_gpu
    }

    /// Extra bytes per GPU for the shift model (`w/(SP·TP)` for separate
    /// models, 0 for slicing).
    pub fn shift_extra_bytes_per_gpu(&self) -> u64 {
        self.shift_extra_bytes_per_gpu
    }

    /// Total resident weight bytes per GPU — Eq. 1 divided by the GPU
    /// count for the separate-models strategy.
    pub fn total_bytes_per_gpu(&self) -> u64 {
        self.base_bytes_per_gpu + self.shift_extra_bytes_per_gpu
    }

    /// Shift-model memory overhead as a fraction of the base model's
    /// per-GPU weights (`1/SP` for separate models).
    pub fn overhead_fraction(&self) -> f64 {
        self.shift_extra_bytes_per_gpu as f64 / self.base_bytes_per_gpu as f64
    }

    /// Multiplier on shift-pass GEMM time (1.0 unless slicing).
    pub fn shift_gemm_penalty(&self) -> f64 {
        match self.strategy {
            WeightStrategy::OnTheFlySlicing => SLICING_GEMM_PENALTY,
            WeightStrategy::SeparateModels => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp_model::presets;

    #[test]
    fn eq1_matches_closed_form() {
        // w_total = w/TP + w/(SP·TP), checked against the struct.
        let m = presets::llama_70b();
        let base = ParallelConfig::new(4, 2);
        let plan = ShiftWeightPlan::new(&m, base, WeightStrategy::SeparateModels);
        let w = m.weight_bytes();
        assert_eq!(plan.total_bytes_per_gpu(), w / 2 + w / 8);
    }

    #[test]
    fn overhead_is_one_over_sp() {
        let m = presets::qwen_32b();
        for sp in [2usize, 4, 8] {
            let plan = ShiftWeightPlan::new(
                &m,
                ParallelConfig::sequence(sp),
                WeightStrategy::SeparateModels,
            );
            assert!(
                (plan.overhead_fraction() - 1.0 / sp as f64).abs() < 1e-9,
                "SP={sp}: {}",
                plan.overhead_fraction()
            );
        }
    }

    #[test]
    fn paper_example_12_5_percent() {
        // §3.3.2: "when SP = 8, the shift model's memory overhead is 12.5%".
        let plan = ShiftWeightPlan::new(
            &presets::llama_70b(),
            ParallelConfig::sequence(8),
            WeightStrategy::SeparateModels,
        );
        assert!((plan.overhead_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn slicing_has_no_memory_but_a_time_penalty() {
        let plan = ShiftWeightPlan::new(
            &presets::llama_70b(),
            ParallelConfig::sequence(8),
            WeightStrategy::OnTheFlySlicing,
        );
        assert_eq!(plan.shift_extra_bytes_per_gpu(), 0);
        assert_eq!(plan.overhead_fraction(), 0.0);
        assert!(plan.shift_gemm_penalty() > 1.0);
    }

    #[test]
    fn more_tp_in_base_shrinks_both_terms() {
        let m = presets::llama_70b();
        let sp8 =
            ShiftWeightPlan::new(&m, ParallelConfig::sequence(8), WeightStrategy::SeparateModels);
        let mixed =
            ShiftWeightPlan::new(&m, ParallelConfig::new(4, 2), WeightStrategy::SeparateModels);
        assert!(mixed.base_bytes_per_gpu() < sp8.base_bytes_per_gpu());
        assert_eq!(mixed.shift_extra_bytes_per_gpu(), sp8.shift_extra_bytes_per_gpu());
    }

    proptest! {
        #[test]
        fn separate_models_total_below_double_base(
            sp_pow in 0u32..4, tp_pow in 0u32..4,
        ) {
            let base = ParallelConfig::new(1 << sp_pow, 1 << tp_pow);
            prop_assume!(base.degree() > 1);
            let plan = ShiftWeightPlan::new(
                &presets::llama_70b(), base, WeightStrategy::SeparateModels);
            // Degenerate SP=1 bases double the weights (overhead 1/SP = 1).
            prop_assert!(plan.total_bytes_per_gpu() <= 2 * plan.base_bytes_per_gpu().max(1));
            prop_assert!(plan.overhead_fraction() <= 1.0);
        }
    }
}
