//! CUDA-graph capture planning (§3.4).
//!
//! For low latency, vLLM replays pre-captured CUDA graphs instead of
//! launching kernels eagerly. A graph is specific to a (configuration,
//! padded batch size) pair, so the plug-in "compiles and captures both
//! base model and shift model separately… yielding hundreds of graphs,
//! which are registered during initialization and replayed accordingly at
//! runtime". This module models that registry: which graphs exist, which
//! one an iteration replays, and what capture costs at startup — backing
//! the paper's claim that the shift model's extra graphs "do not increase
//! the capturing time or memory significantly".

use sp_metrics::Dur;
use sp_parallel::ParallelConfig;
use std::collections::BTreeMap;

/// The batch-size buckets vLLM captures graphs for (decode sizes; powers
/// of two up to 512 plus small linear steps, mirroring
/// `cuda_graph_sizes`).
pub fn default_capture_sizes() -> Vec<u64> {
    let mut sizes: Vec<u64> = (1..=8).collect();
    let mut s = 16;
    while s <= 512 {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

/// One captured graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedGraph {
    /// The configuration the graph was captured under.
    pub config: ParallelConfig,
    /// The padded batch size it replays.
    pub batch_size: u64,
}

/// A registry of captured graphs for a set of configurations.
///
/// # Examples
///
/// ```
/// use shift_core::graphs::GraphRegistry;
/// use sp_parallel::ParallelConfig;
///
/// let reg = GraphRegistry::capture_all(
///     &[ParallelConfig::sequence(8), ParallelConfig::tensor(8)],
/// );
/// // Replay picks the smallest captured size >= the batch.
/// let g = reg.lookup(ParallelConfig::tensor(8), 13).unwrap();
/// assert_eq!(g.batch_size, 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRegistry {
    graphs: BTreeMap<(ParallelConfig, u64), CapturedGraph>,
    capture_cost_per_graph: Dur,
}

impl GraphRegistry {
    /// Captures the default size ladder for every configuration (what a
    /// shift deployment does at startup for its base and shift models).
    pub fn capture_all(configs: &[ParallelConfig]) -> GraphRegistry {
        GraphRegistry::capture(configs, &default_capture_sizes())
    }

    /// Captures explicit sizes for every configuration.
    pub fn capture(configs: &[ParallelConfig], sizes: &[u64]) -> GraphRegistry {
        let mut graphs = BTreeMap::new();
        for &config in configs {
            for &batch_size in sizes {
                graphs.insert((config, batch_size), CapturedGraph { config, batch_size });
            }
        }
        GraphRegistry {
            graphs,
            // ~0.4 s per captured shape (kernel warmup + graph
            // instantiation), the dominant startup cost after weights.
            capture_cost_per_graph: Dur::from_millis(400.0),
        }
    }

    /// Number of captured graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Total capture time at startup.
    pub fn capture_time(&self) -> Dur {
        self.capture_cost_per_graph * self.len() as f64
    }

    /// The graph an iteration of `batch_size` tokens replays under
    /// `config`: the smallest captured size that fits, or `None` (eager
    /// fallback — large prefill batches run eagerly, as in vLLM).
    pub fn lookup(&self, config: ParallelConfig, batch_size: u64) -> Option<CapturedGraph> {
        self.graphs
            .range((config, batch_size)..)
            .take_while(|((c, _), _)| *c == config)
            .map(|(_, g)| *g)
            .next()
    }

    /// Padding waste of replaying `batch_size` under `config`: replayed
    /// size minus actual, 0 when falling back to eager.
    pub fn padding_waste(&self, config: ParallelConfig, batch_size: u64) -> u64 {
        self.lookup(config, batch_size).map_or(0, |g| g.batch_size - batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_ladder_is_sorted_and_dedup() {
        let sizes = default_capture_sizes();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sizes.len(), sorted.len());
    }

    #[test]
    fn shift_adds_one_configs_worth_of_graphs() {
        // §3.4: "the additional graphs for the shift model do not increase
        // the capturing time or memory significantly" — it is exactly 2x a
        // single config, i.e. linear, not combinatorial.
        let base_only = GraphRegistry::capture_all(&[ParallelConfig::sequence(8)]);
        let with_shift =
            GraphRegistry::capture_all(&[ParallelConfig::sequence(8), ParallelConfig::tensor(8)]);
        assert_eq!(with_shift.len(), 2 * base_only.len());
        assert!(
            with_shift.capture_time().as_secs() <= 2.0 * base_only.capture_time().as_secs() + 1e-12
        );
    }

    #[test]
    fn lookup_picks_next_size_up() {
        let reg = GraphRegistry::capture_all(&[ParallelConfig::tensor(8)]);
        assert_eq!(reg.lookup(ParallelConfig::tensor(8), 1).unwrap().batch_size, 1);
        assert_eq!(reg.lookup(ParallelConfig::tensor(8), 9).unwrap().batch_size, 16);
        assert_eq!(reg.lookup(ParallelConfig::tensor(8), 512).unwrap().batch_size, 512);
        assert_eq!(reg.lookup(ParallelConfig::tensor(8), 513), None);
    }

    #[test]
    fn lookup_is_config_scoped() {
        let reg = GraphRegistry::capture_all(&[ParallelConfig::sequence(8)]);
        assert!(reg.lookup(ParallelConfig::tensor(8), 4).is_none());
    }

    #[test]
    fn empty_registry_behaves() {
        let reg = GraphRegistry::capture(&[], &[]);
        assert!(reg.is_empty());
        assert_eq!(reg.capture_time(), Dur::ZERO);
    }

    proptest! {
        #[test]
        fn padding_waste_is_bounded_by_next_bucket(batch in 1u64..512) {
            let reg = GraphRegistry::capture_all(&[ParallelConfig::tensor(8)]);
            let waste = reg.padding_waste(ParallelConfig::tensor(8), batch);
            // Buckets at worst double, so waste < batch.
            prop_assert!(waste < batch.max(8));
        }
    }
}
