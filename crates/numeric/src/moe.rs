//! Numerical validation of expert parallelism (the §4.6 future-work
//! extension modelled in `sp-parallel::expert`).
//!
//! A mixture-of-experts layer with deterministic top-1 routing, executed
//! three ways:
//!
//! * serially;
//! * **EP with replicated activations** (TP-style): each rank holds a
//!   shard of the experts, computes the tokens routed to them, and an
//!   all-reduce combines the disjoint partial outputs;
//! * **SP × EP**: activations row-sharded, tokens *dispatched* to their
//!   expert's owner with an all-to-all, processed, and *combined* with the
//!   inverse all-to-all — the DeepSpeed-MoE / Switch dataflow.
//!
//! All three must agree exactly.

use crate::collective::{all_reduce_sum, all_to_all};
use crate::tensor::Matrix;

/// A top-1-routed MoE layer: router `[d, E]` and per-expert MLPs
/// (`w1 [d, ff]`, `w2 [ff, d]`).
#[derive(Debug, Clone)]
pub struct MoeLayer {
    /// Router logits projection.
    pub router: Matrix,
    /// Per-expert up projections.
    pub w1: Vec<Matrix>,
    /// Per-expert down projections.
    pub w2: Vec<Matrix>,
}

impl MoeLayer {
    /// Builds a deterministic random layer with `experts` experts.
    pub fn seeded(d: usize, ff: usize, experts: usize, seed: u64) -> MoeLayer {
        MoeLayer {
            router: Matrix::random(d, experts, seed),
            w1: (0..experts).map(|e| Matrix::random(d, ff, seed + 10 + e as u64)).collect(),
            w2: (0..experts).map(|e| Matrix::random(ff, d, seed + 100 + e as u64)).collect(),
        }
    }

    /// Number of experts.
    pub fn experts(&self) -> usize {
        self.w1.len()
    }

    /// Deterministic top-1 routing of each row of `x`.
    pub fn route(&self, x: &Matrix) -> Vec<usize> {
        let logits = x.matmul(&self.router);
        (0..x.rows())
            .map(|r| {
                (0..logits.cols())
                    .max_by(|&a, &b| {
                        logits[(r, a)].partial_cmp(&logits[(r, b)]).expect("finite logits")
                    })
                    .expect("at least one expert")
            })
            .collect()
    }

    /// Serial reference: each row goes through its routed expert.
    pub fn forward_serial(&self, x: &Matrix) -> Matrix {
        let routes = self.route(x);
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for (r, &e) in routes.iter().enumerate() {
            let row = x.slice_rows(r, r + 1);
            let y = row.matmul(&self.w1[e]).map(f32::tanh).matmul(&self.w2[e]);
            for c in 0..x.cols() {
                out[(r, c)] = y[(0, c)];
            }
        }
        out
    }

    /// EP with replicated activations across `p` ranks: rank `r` owns
    /// experts `[r·E/p, (r+1)·E/p)`, computes only the rows routed to
    /// them (zeros elsewhere), and an all-reduce sums the disjoint
    /// partials.
    ///
    /// # Panics
    ///
    /// Panics if the experts do not divide across `p`.
    pub fn forward_ep_replicated(&self, x: &Matrix, p: usize) -> Matrix {
        let experts = self.experts();
        assert!(experts.is_multiple_of(p), "{experts} experts do not divide across {p} ranks");
        let per = experts / p;
        let routes = self.route(x); // every rank computes the same routing
        let partials: Vec<Matrix> = (0..p)
            .map(|rank| {
                let mut out = Matrix::zeros(x.rows(), x.cols());
                for (r, &e) in routes.iter().enumerate() {
                    if e / per != rank {
                        continue;
                    }
                    let row = x.slice_rows(r, r + 1);
                    let y = row.matmul(&self.w1[e]).map(f32::tanh).matmul(&self.w2[e]);
                    for c in 0..x.cols() {
                        out[(r, c)] = y[(0, c)];
                    }
                }
                out
            })
            .collect();
        all_reduce_sum(&partials).swap_remove(0)
    }

    /// SP × EP: activations row-sharded across `p` ranks; tokens are
    /// dispatched to their expert's owner with an all-to-all, processed
    /// there, and combined with the inverse all-to-all.
    ///
    /// # Panics
    ///
    /// Panics if rows or experts do not divide across `p`.
    pub fn forward_sp_ep(&self, x: &Matrix, p: usize) -> Matrix {
        let n = x.rows();
        let experts = self.experts();
        assert!(n.is_multiple_of(p), "{n} rows do not divide across {p} ranks");
        assert!(experts.is_multiple_of(p), "{experts} experts do not divide across {p} ranks");
        let rows = n / p;
        let per = experts / p;

        // Each rank routes its local rows and builds per-destination
        // dispatch buffers (plus the index bookkeeping to un-permute).
        let mut send_rows: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); p]; p]; // [src][dst] -> local row ids
        let mut sends: Vec<Vec<Matrix>> = Vec::with_capacity(p);
        let mut local_routes: Vec<Vec<usize>> = Vec::with_capacity(p);
        for (src, row_map) in send_rows.iter_mut().enumerate() {
            let x_local = x.slice_rows(src * rows, (src + 1) * rows);
            let routes = self.route(&x_local);
            let mut blocks = Vec::with_capacity(p);
            for (dst, slot) in row_map.iter_mut().enumerate() {
                let picked: Vec<usize> = (0..rows).filter(|&r| routes[r] / per == dst).collect();
                let block = if picked.is_empty() {
                    Matrix::zeros(0, x.cols())
                } else {
                    Matrix::concat_rows(
                        &picked.iter().map(|&r| x_local.slice_rows(r, r + 1)).collect::<Vec<_>>(),
                    )
                };
                *slot = picked;
                blocks.push(block);
            }
            sends.push(blocks);
            local_routes.push(routes);
        }
        let dispatched = all_to_all(sends);

        // Each owner processes the received rows with its experts and
        // sends the results straight back (the combine all-to-all).
        let mut returns: Vec<Vec<Matrix>> = Vec::with_capacity(p);
        for (owner, received) in dispatched.iter().enumerate() {
            let mut blocks = Vec::with_capacity(p);
            for (src, block) in received.iter().enumerate() {
                if block.rows() == 0 {
                    blocks.push(Matrix::zeros(0, x.cols()));
                    continue;
                }
                let outs: Vec<Matrix> = send_rows[src][owner]
                    .iter()
                    .enumerate()
                    .map(|(i, &local_row)| {
                        let e = local_routes[src][local_row];
                        debug_assert_eq!(e / per, owner, "dispatch sent to wrong owner");
                        block
                            .slice_rows(i, i + 1)
                            .matmul(&self.w1[e])
                            .map(f32::tanh)
                            .matmul(&self.w2[e])
                    })
                    .collect();
                blocks.push(Matrix::concat_rows(&outs));
            }
            returns.push(blocks);
        }
        let combined = all_to_all(returns);

        // Each rank un-permutes its rows back into sequence order.
        let slices: Vec<Matrix> = (0..p)
            .map(|src| {
                let mut out = Matrix::zeros(rows, x.cols());
                for (owner, block) in combined[src].iter().enumerate() {
                    for (i, &local_row) in send_rows[src][owner].iter().enumerate() {
                        for c in 0..x.cols() {
                            out[(local_row, c)] = block[(i, c)];
                        }
                    }
                }
                out
            })
            .collect();
        Matrix::concat_rows(&slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> MoeLayer {
        MoeLayer::seeded(16, 32, 8, 5)
    }

    #[test]
    fn routing_is_deterministic_and_uses_multiple_experts() {
        let l = layer();
        let x = Matrix::random(32, 16, 9);
        let a = l.route(&x);
        let b = l.route(&x);
        assert_eq!(a, b);
        let distinct: std::collections::BTreeSet<usize> = a.iter().copied().collect();
        assert!(distinct.len() >= 3, "routing collapsed to {distinct:?}");
    }

    #[test]
    fn ep_replicated_matches_serial() {
        let l = layer();
        let x = Matrix::random(16, 16, 10);
        let serial = l.forward_serial(&x);
        for p in [1, 2, 4, 8] {
            let ep = l.forward_ep_replicated(&x, p);
            assert!(ep.approx_eq(&serial, 1e-5), "EP={p} diff {}", ep.max_abs_diff(&serial));
        }
    }

    #[test]
    fn sp_ep_dispatch_matches_serial() {
        let l = layer();
        let x = Matrix::random(16, 16, 11);
        let serial = l.forward_serial(&x);
        for p in [1, 2, 4] {
            let spep = l.forward_sp_ep(&x, p);
            assert!(spep.approx_eq(&serial, 1e-5), "SPxEP={p} diff {}", spep.max_abs_diff(&serial));
        }
    }

    #[test]
    fn imbalanced_routing_still_exact() {
        // A router that sends almost everything to expert 0 (hot expert):
        // the dispatch path must handle empty and overfull blocks.
        let mut l = layer();
        l.router = Matrix::from_fn(16, 8, |_, c| if c == 0 { 1.0 } else { 0.0 });
        let x = Matrix::random(8, 16, 12).map(f32::abs); // positive rows → all route to 0
        let serial = l.forward_serial(&x);
        let spep = l.forward_sp_ep(&x, 4);
        assert!(spep.approx_eq(&serial, 1e-5));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_experts_rejected() {
        let l = layer();
        let _ = l.forward_ep_replicated(&Matrix::random(4, 16, 13), 3);
    }
}
