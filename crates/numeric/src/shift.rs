//! The numerical proof of Shift Parallelism itself.
//!
//! Prefill runs in the base `(SP, TP)` configuration; decode continues in
//! the shift configuration (full TP across the same ranks) **reusing the
//! base configuration's KV shards unchanged** — exactly the runtime
//! behaviour of the paper's system. The tests verify:
//!
//! * the shifted decode reproduces the serial decode bit-for-bit (to
//!   `f32` tolerance);
//! * shifting back and forth mid-generation stays correct;
//! * the §3.3.2 correction is *necessary*: decoding with naive
//!   (contiguous) shift sharding on a mixed base's cache produces wrong
//!   outputs.

use crate::collective::RankKv;
use crate::reference::{KvCache, ToyTransformer};
use crate::tensor::Matrix;
use crate::{combined, tp};

/// Runs prefill under `(sp, tp)` and `steps` decode iterations under the
/// shift configuration (full TP over the same ranks, same shards),
/// returning the decode outputs.
///
/// The prefill runs in the base config, the decode in the shift config —
/// one full simulated run of the paper's system on a single request.
pub fn prefill_base_decode_shift(
    model: &ToyTransformer,
    x: &Matrix,
    sp: usize,
    tp: usize,
    decode_tokens: &[Matrix],
) -> (Matrix, Vec<Matrix>, Vec<RankKv>) {
    let (prefill_out, mut shards) = combined::forward(model, x, sp, tp);
    let decode_out = decode_tokens.iter().map(|tok| tp::advance(model, tok, &mut shards)).collect();
    (prefill_out, decode_out, shards)
}

/// The serial equivalent, for comparison.
pub fn serial_run(
    model: &ToyTransformer,
    x: &Matrix,
    decode_tokens: &[Matrix],
) -> (Matrix, Vec<Matrix>, KvCache) {
    let (prefill_out, mut cache) = model.forward(x);
    let decode_out = decode_tokens.iter().map(|tok| model.advance(tok, &mut cache)).collect();
    (prefill_out, decode_out, cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ToyTransformer {
        ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7)
    }

    fn decode_tokens(n: usize, seed: u64) -> Vec<Matrix> {
        (0..n).map(|i| Matrix::random(1, 16, seed + i as u64)).collect()
    }

    #[test]
    fn shift_decode_matches_serial_for_every_base() {
        // The paper's core claim, numerically: prefill in any base
        // (SP, TP), decode in full TP on the *same* KV shards, and the
        // generated stream is identical to serial execution.
        let m = model();
        let x = Matrix::random(8, 16, 41);
        let toks = decode_tokens(4, 500);
        let (serial_prefill, serial_decode, _) = serial_run(&m, &x, &toks);

        for (sp, tp) in [(4, 1), (2, 2), (1, 4), (2, 1)] {
            let (prefill, decode, _) = prefill_base_decode_shift(&m, &x, sp, tp, &toks);
            assert!(
                prefill.approx_eq(&serial_prefill, 1e-4),
                "(SP={sp},TP={tp}) prefill diff {}",
                prefill.max_abs_diff(&serial_prefill)
            );
            for (step, (got, want)) in decode.iter().zip(&serial_decode).enumerate() {
                assert!(
                    got.approx_eq(want, 1e-4),
                    "(SP={sp},TP={tp}) decode step {step} diff {}",
                    got.max_abs_diff(want)
                );
            }
        }
    }

    #[test]
    fn shift_back_and_forth_midstream() {
        // Chunked prefill in the base config, a decode step in the shift
        // config, another prefill chunk in the base config (a new request
        // joining the batch would do this), then decode again — the cache
        // must stay coherent throughout. We emulate with one sequence:
        // prefill 4, decode 1, prefill 4 more via SP chunks, decode 1.
        let m = model();
        let x = Matrix::random(8, 16, 42);
        let toks = decode_tokens(2, 600);

        // Serial: advance 4, decode, advance 4, decode.
        let mut serial_cache = KvCache::default();
        let _ = m.advance(&x.slice_rows(0, 4), &mut serial_cache);
        let s1 = m.advance(&toks[0], &mut serial_cache);
        let _ = m.advance(&x.slice_rows(4, 8), &mut serial_cache);
        let s2 = m.advance(&toks[1], &mut serial_cache);

        // Parallel: base (2,2) prefill of rows 0..4 → shift decode →
        // base-style prefill of rows 4..8 (via TP advance on the same
        // shards — the engine's chunk path) → shift decode.
        let (_, mut shards) = combined::forward(&m, &x.slice_rows(0, 4), 2, 2);
        let p1 = tp::advance(&m, &toks[0], &mut shards);
        let _ = tp::advance(&m, &x.slice_rows(4, 8), &mut shards);
        let p2 = tp::advance(&m, &toks[1], &mut shards);

        assert!(p1.approx_eq(&s1, 1e-4), "first decode diff {}", p1.max_abs_diff(&s1));
        assert!(p2.approx_eq(&s2, 1e-4), "second decode diff {}", p2.max_abs_diff(&s2));
    }

    #[test]
    fn naive_shift_sharding_corrupts_generation() {
        // §3.3.1's warning, demonstrated: a mixed base (SP=2, TP=2) owns
        // heads in interleaved order [0],[2],[1],[3]. If the shift model
        // naively shards heads contiguously [0],[1],[2],[3] over the same
        // cache, ranks 1 and 2 read each other's KV — and the decode
        // output is wrong.
        let m = model();
        let x = Matrix::random(8, 16, 43);
        let toks = decode_tokens(1, 700);
        let (_, serial_decode, _) = serial_run(&m, &x, &toks);

        let (_, mut shards) = combined::forward(&m, &x, 2, 2);
        // Sabotage: relabel head ownership contiguously without moving
        // the cached KV bytes.
        shards[1].q_heads = vec![1];
        shards[2].q_heads = vec![2];
        // (kv_heads stay as stored — exactly the naive loader's mistake:
        // rank 1 now applies q-head 1's query against kv-head 1's cache.)
        shards[1].kv_heads = vec![0];
        shards[2].kv_heads = vec![1];

        let wrong = tp::advance(&m, &toks[0], &mut shards);
        let diff = wrong.max_abs_diff(&serial_decode[0]);
        assert!(diff > 1e-3, "naive sharding should corrupt the output (diff only {diff})");
    }

    #[test]
    fn property_shift_exactness_over_random_models() {
        // A light-weight property sweep: random seeds, GQA ratios and
        // factorizations — the invariance must hold for all of them.
        for seed in [1u64, 2, 3, 4, 5] {
            for (q_heads, kv_heads) in [(4, 4), (4, 2), (8, 2)] {
                let m = ToyTransformer::seeded(2, 16, q_heads, kv_heads, 4, 32, seed);
                let x = Matrix::random(8, 16, seed * 31);
                let toks = decode_tokens(2, seed * 97);
                let (_, serial_decode, _) = serial_run(&m, &x, &toks);
                for (sp, tp) in [(2, 2), (4, 1)] {
                    let (_, decode, _) = prefill_base_decode_shift(&m, &x, sp, tp, &toks);
                    for (step, (got, want)) in decode.iter().zip(&serial_decode).enumerate() {
                        assert!(
                            got.approx_eq(want, 2e-4),
                            "seed {seed} q{q_heads}/kv{kv_heads} (SP={sp},TP={tp}) \
                             step {step} diff {}",
                            got.max_abs_diff(want)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pure_sp_base_shift_is_also_exact() {
        // The common production case: base = pure SP (Llama-70B),
        // shift = TP=4.
        let m = model();
        let x = Matrix::random(8, 16, 44);
        let toks = decode_tokens(3, 800);
        let (_, serial_decode, _) = serial_run(&m, &x, &toks);
        let (_, mut shards) = crate::sp::forward(&m, &x, 4);
        for (step, tok) in toks.iter().enumerate() {
            let got = tp::advance(&m, tok, &mut shards);
            assert!(
                got.approx_eq(&serial_decode[step], 1e-4),
                "step {step} diff {}",
                got.max_abs_diff(&serial_decode[step])
            );
        }
    }
}
