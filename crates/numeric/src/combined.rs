//! Combined `(SP, TP)` execution — Algorithm 1 of the paper, line by
//! line, executed numerically.
//!
//! Rank `r` sits at SP coordinate `s = r / TP` and TP coordinate
//! `t = r % TP` (the paper's group construction, §3.3.2): it holds the
//! `s`-th row slice of the sequence and the `t`-th column slice of each
//! weight matrix. After the Ulysses all-to-all inside each SP group, rank
//! `r` owns the *interleaved* head set `ProcessMapping::base_heads_of_rank`
//! — which is why the shift model must shard in SP_TP order (Figure 6).

use crate::collective::{all_gather_rows, all_reduce_sum, all_to_all, RankKv};
use crate::reference::ToyTransformer;
use crate::sp::{fused_qkv_block, split_fused};
use crate::tensor::Matrix;
use crate::tp::{append_kv_from_buffers, rank_attention, wo_rows_for};
use sp_parallel::ProcessMapping;

/// Combined `(SP, TP)` prefill. Returns the output embeddings and the
/// per-global-rank KV shards (head ownership per the §3.3.1 mapping).
///
/// # Panics
///
/// Panics if the sequence, heads, or `d_ff` do not divide across the
/// configuration.
pub fn forward(model: &ToyTransformer, x: &Matrix, sp: usize, tp: usize) -> (Matrix, Vec<RankKv>) {
    let p = sp * tp;
    let n = x.rows();
    assert!(n.is_multiple_of(sp), "sequence length {n} must divide across SP={sp}");
    assert!(model.q_heads.is_multiple_of(p), "q heads must divide across {p} ranks");
    assert!(model.d_ff.is_multiple_of(tp), "d_ff must divide across TP={tp}");
    let rows = n / sp;
    let ff = model.d_ff / tp;
    let _hd = model.head_dim;

    let mapping = ProcessMapping::new(sp, tp);
    let mut shards: Vec<RankKv> = (0..p)
        .map(|r| {
            let heads = mapping
                .base_heads_of_rank(r, model.q_heads as u32)
                .into_iter()
                .map(|h| h as usize)
                .collect();
            RankKv::new(model, heads)
        })
        .collect();

    // Rank r holds the row slice of its SP coordinate.
    let mut h: Vec<Matrix> = (0..p)
        .map(|r| {
            let s = mapping.sp_rank(r);
            x.slice_rows(s * rows, (s + 1) * rows)
        })
        .collect();

    for (l, w) in model.layers.iter().enumerate() {
        let past = shards[0].len_at(l);

        // Lines 3–4: local QKV (TP column slice) + all-to-all within each
        // SP group. We compute exactly the columns each destination owns —
        // all within this rank's TP slice by construction.
        let mut q_owned: Vec<Option<Matrix>> = (0..p).map(|_| None).collect();
        for t in 0..tp {
            let members: Vec<usize> = (0..sp).map(|s| s * tp + t).collect();
            let sends: Vec<Vec<Matrix>> = members
                .iter()
                .map(|&src| {
                    let q_full = h[src].matmul(&w.wq);
                    let k_full = h[src].matmul(&w.wk);
                    let v_full = h[src].matmul(&w.wv);
                    members
                        .iter()
                        .map(|&dst| fused_qkv_block(model, &q_full, &k_full, &v_full, &shards[dst]))
                        .collect()
                })
                .collect();
            let received = all_to_all(sends);
            for (i, &r) in members.iter().enumerate() {
                let parts: Vec<(Matrix, Matrix, Matrix)> =
                    received[i].iter().map(|f| split_fused(model, f, &shards[r])).collect();
                let q = Matrix::concat_rows(
                    &parts.iter().map(|(q, _, _)| q.clone()).collect::<Vec<_>>(),
                );
                let k_new = Matrix::concat_rows(
                    &parts.iter().map(|(_, k, _)| k.clone()).collect::<Vec<_>>(),
                );
                let v_new = Matrix::concat_rows(
                    &parts.iter().map(|(_, _, v)| v.clone()).collect::<Vec<_>>(),
                );
                append_kv_from_buffers(&mut shards[r], l, k_new, v_new);
                q_owned[r] = Some(q);
            }
        }

        // Line 5: attention on owned (interleaved) heads.
        let attn: Vec<Matrix> = (0..p)
            .map(|r| {
                rank_attention(model, q_owned[r].as_ref().expect("assembled"), &shards[r], l, past)
            })
            .collect();

        // Line 6: all-to-all back within each SP group.
        let mut attn_rows: Vec<Option<Matrix>> = (0..p).map(|_| None).collect();
        let mut wire_orders: Vec<Vec<usize>> = vec![Vec::new(); tp];
        for (t, wire_order) in wire_orders.iter_mut().enumerate() {
            let members: Vec<usize> = (0..sp).map(|s| s * tp + t).collect();
            *wire_order = members.iter().flat_map(|&r| shards[r].q_heads.iter().copied()).collect();
            let sends: Vec<Vec<Matrix>> = members
                .iter()
                .map(|&src| {
                    (0..sp).map(|dst| attn[src].slice_rows(dst * rows, (dst + 1) * rows)).collect()
                })
                .collect();
            let received = all_to_all(sends);
            for (i, &r) in members.iter().enumerate() {
                attn_rows[r] = Some(Matrix::concat_cols(&received[i]));
            }
        }

        // Lines 7–8: partial O projection + all-reduce within TP groups.
        let partials: Vec<Matrix> = (0..p)
            .map(|r| {
                let t = mapping.tp_rank(r);
                let wo = wo_rows_for(model, &w.wo, &wire_orders[t]);
                attn_rows[r].as_ref().expect("assembled").matmul(&wo)
            })
            .collect();
        for s in 0..sp {
            let members: Vec<usize> = (0..tp).map(|t| s * tp + t).collect();
            let group: Vec<Matrix> = members.iter().map(|&r| partials[r].clone()).collect();
            let reduced = all_reduce_sum(&group);
            for (i, &r) in members.iter().enumerate() {
                h[r] = h[r].add(&reduced[i]);
            }
        }

        // Lines 9–11: TP-sharded MLP + all-reduce within TP groups.
        let partials: Vec<Matrix> = (0..p)
            .map(|r| {
                let t = mapping.tp_rank(r);
                let up = h[r].matmul(&w.w1.slice_cols(t * ff, (t + 1) * ff)).map(f32::tanh);
                up.matmul(&w.w2.slice_rows(t * ff, (t + 1) * ff))
            })
            .collect();
        for s in 0..sp {
            let members: Vec<usize> = (0..tp).map(|t| s * tp + t).collect();
            let group: Vec<Matrix> = members.iter().map(|&r| partials[r].clone()).collect();
            let reduced = all_reduce_sum(&group);
            for (i, &r) in members.iter().enumerate() {
                h[r] = h[r].add(&reduced[i]);
            }
        }
    }

    // Line 13: all-gather across the SP dimension (t = 0 members).
    let slices: Vec<Matrix> = (0..sp).map(|s| h[s * tp].clone()).collect();
    let y = all_gather_rows(&slices).swap_remove(0);
    (y, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ToyTransformer {
        ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7)
    }

    #[test]
    fn combined_matches_serial_for_every_factorization() {
        let m = model();
        let x = Matrix::random(8, 16, 31);
        let (serial, _) = m.forward(&x);
        for (sp, tp) in [(1, 1), (1, 2), (2, 1), (2, 2), (4, 1), (1, 4)] {
            let (parallel, _) = forward(&m, &x, sp, tp);
            assert!(
                parallel.approx_eq(&serial, 1e-4),
                "(SP={sp},TP={tp}) diff {}",
                parallel.max_abs_diff(&serial)
            );
        }
    }

    #[test]
    fn mixed_base_interleaves_head_ownership() {
        // (SP=2, TP=2) on 4 heads: ownership [0], [2], [1], [3] — the
        // Figure 6 interleaving.
        let m = model();
        let (_, shards) = forward(&m, &Matrix::random(4, 16, 32), 2, 2);
        let owned: Vec<Vec<usize>> = shards.iter().map(|s| s.q_heads.clone()).collect();
        assert_eq!(owned, vec![vec![0], vec![2], vec![1], vec![3]]);
    }

    #[test]
    fn combined_kv_shards_match_serial_columns() {
        let m = model();
        let x = Matrix::random(8, 16, 33);
        let (_, serial_cache) = m.forward(&x);
        let (_, shards) = forward(&m, &x, 2, 2);
        let hd = m.head_dim;
        for shard in &shards {
            for (l, (k, v)) in shard.layers.iter().enumerate() {
                for (slot, &g) in shard.kv_heads.iter().enumerate() {
                    let k_ref = serial_cache.layers[l].0.slice_cols(g * hd, (g + 1) * hd);
                    assert!(k.slice_cols(slot * hd, (slot + 1) * hd).approx_eq(&k_ref, 1e-4));
                    let v_ref = serial_cache.layers[l].1.slice_cols(g * hd, (g + 1) * hd);
                    assert!(v.slice_cols(slot * hd, (slot + 1) * hd).approx_eq(&v_ref, 1e-4));
                }
            }
        }
    }
}
