//! The serial reference transformer.
//!
//! A small decoder-only transformer with causal GQA attention: the ground
//! truth every parallel execution in this crate is checked against.

use crate::tensor::Matrix;

/// Weights of one layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `[d, q_heads·head_dim]`.
    pub wq: Matrix,
    /// Key projection `[d, kv_heads·head_dim]`.
    pub wk: Matrix,
    /// Value projection `[d, kv_heads·head_dim]`.
    pub wv: Matrix,
    /// Attention output projection `[q_heads·head_dim, d]`.
    pub wo: Matrix,
    /// MLP up projection `[d, d_ff]`.
    pub w1: Matrix,
    /// MLP down projection `[d_ff, d]`.
    pub w2: Matrix,
}

/// The KV cache: per layer, the keys and values of every processed token
/// (`[tokens, kv_heads·head_dim]` each).
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    /// One `(K, V)` pair per layer.
    pub layers: Vec<(Matrix, Matrix)>,
}

impl KvCache {
    /// Tokens currently cached (0 for a fresh cache).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, |(k, _)| k.rows())
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A runnable toy transformer.
#[derive(Debug, Clone)]
pub struct ToyTransformer {
    /// Number of layers.
    pub num_layers: usize,
    /// Hidden size `d`.
    pub d: usize,
    /// Query heads.
    pub q_heads: usize,
    /// KV heads (GQA when fewer than `q_heads`).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// MLP intermediate size.
    pub d_ff: usize,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
}

impl ToyTransformer {
    /// Builds a deterministic random model.
    ///
    /// # Panics
    ///
    /// Panics if `q_heads` is not a multiple of `kv_heads`.
    pub fn seeded(
        num_layers: usize,
        d: usize,
        q_heads: usize,
        kv_heads: usize,
        head_dim: usize,
        d_ff: usize,
        seed: u64,
    ) -> ToyTransformer {
        assert!(q_heads.is_multiple_of(kv_heads), "GQA requires q_heads % kv_heads == 0");
        let layers = (0..num_layers)
            .map(|l| {
                let s = seed.wrapping_mul(1000).wrapping_add(l as u64 * 10);
                LayerWeights {
                    wq: Matrix::random(d, q_heads * head_dim, s),
                    wk: Matrix::random(d, kv_heads * head_dim, s + 1),
                    wv: Matrix::random(d, kv_heads * head_dim, s + 2),
                    wo: Matrix::random(q_heads * head_dim, d, s + 3),
                    w1: Matrix::random(d, d_ff, s + 4),
                    w2: Matrix::random(d_ff, d, s + 5),
                }
            })
            .collect();
        ToyTransformer { num_layers, d, q_heads, kv_heads, head_dim, d_ff, layers }
    }

    /// Queries per KV head.
    pub fn gqa_group(&self) -> usize {
        self.q_heads / self.kv_heads
    }

    /// The KV head serving query head `h`.
    pub fn kv_head_of(&self, q_head: usize) -> usize {
        q_head / self.gqa_group()
    }

    /// Causal GQA attention of `q` `[m, qh·hd]` against the full `k`/`v`
    /// `[past+m, kvh·hd]`, where the `m` query rows sit at positions
    /// `past..past+m`.
    pub fn attention(&self, q: &Matrix, k: &Matrix, v: &Matrix, past: usize) -> Matrix {
        let hd = self.head_dim;
        let m = q.rows();
        let limits: Vec<usize> = (0..m).map(|r| past + r + 1).collect();
        let scale = 1.0 / (hd as f32).sqrt();
        let heads: Vec<Matrix> = (0..self.q_heads)
            .map(|h| {
                let qh = q.slice_cols(h * hd, (h + 1) * hd);
                let g = self.kv_head_of(h);
                let kh = k.slice_cols(g * hd, (g + 1) * hd);
                let vh = v.slice_cols(g * hd, (g + 1) * hd);
                let scores = qh.matmul(&kh.transpose()).map(|x| x * scale);
                scores.masked_softmax_rows(&limits).matmul(&vh)
            })
            .collect();
        Matrix::concat_cols(&heads)
    }

    /// Processes `x` (`[m, d]`, the embeddings of the next `m` tokens)
    /// against `cache`, appending their KV entries and returning the
    /// output embeddings. Prefill is `advance` from an empty cache; decode
    /// is `advance` with one row.
    pub fn advance(&self, x: &Matrix, cache: &mut KvCache) -> Matrix {
        if cache.layers.is_empty() {
            cache.layers = (0..self.num_layers)
                .map(|_| {
                    (
                        Matrix::zeros(0, self.kv_heads * self.head_dim),
                        Matrix::zeros(0, self.kv_heads * self.head_dim),
                    )
                })
                .collect();
        }
        let mut h = x.clone();
        for (l, w) in self.layers.iter().enumerate() {
            let past = cache.layers[l].0.rows();
            let q = h.matmul(&w.wq);
            let k_new = h.matmul(&w.wk);
            let v_new = h.matmul(&w.wv);
            let (k_cache, v_cache) = &mut cache.layers[l];
            *k_cache = Matrix::concat_rows(&[k_cache.clone(), k_new]);
            *v_cache = Matrix::concat_rows(&[v_cache.clone(), v_new]);
            let attn = self.attention(&q, k_cache, v_cache, past);
            h = h.add(&attn.matmul(&w.wo));
            let mlp = h.matmul(&w.w1).map(f32::tanh).matmul(&w.w2);
            h = h.add(&mlp);
        }
        h
    }

    /// Full prefill of `x`, returning output embeddings and the cache.
    pub fn forward(&self, x: &Matrix) -> (Matrix, KvCache) {
        let mut cache = KvCache::default();
        let y = self.advance(x, &mut cache);
        (y, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ToyTransformer {
        ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7)
    }

    #[test]
    fn forward_shapes() {
        let m = model();
        let x = Matrix::random(6, 16, 1);
        let (y, cache) = m.forward(&x);
        assert_eq!((y.rows(), y.cols()), (6, 16));
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.layers.len(), 2);
        assert_eq!(cache.layers[0].0.cols(), 2 * 4);
    }

    #[test]
    fn chunked_prefill_equals_whole() {
        // Processing [x1; x2] in two advances equals one shot — the
        // foundation of chunked prefill.
        let m = model();
        let x = Matrix::random(6, 16, 2);
        let (whole, whole_cache) = m.forward(&x);

        let mut cache = KvCache::default();
        let y1 = m.advance(&x.slice_rows(0, 2), &mut cache);
        let y2 = m.advance(&x.slice_rows(2, 6), &mut cache);
        let chunked = Matrix::concat_rows(&[y1, y2]);

        assert!(chunked.approx_eq(&whole, 1e-5), "diff {}", chunked.max_abs_diff(&whole));
        for (a, b) in cache.layers.iter().zip(&whole_cache.layers) {
            assert!(a.0.approx_eq(&b.0, 1e-5));
            assert!(a.1.approx_eq(&b.1, 1e-5));
        }
    }

    #[test]
    fn causality_later_tokens_do_not_affect_earlier_outputs() {
        let m = model();
        let x6 = Matrix::random(6, 16, 3);
        let x4 = x6.slice_rows(0, 4);
        let (y6, _) = m.forward(&x6);
        let (y4, _) = m.forward(&x4);
        assert!(y6.slice_rows(0, 4).approx_eq(&y4, 1e-5));
    }

    #[test]
    fn decode_extends_cache_one_token_at_a_time() {
        let m = model();
        let x = Matrix::random(3, 16, 4);
        let (_, mut cache) = m.forward(&x);
        let tok = Matrix::random(1, 16, 5);
        let y = m.advance(&tok, &mut cache);
        assert_eq!(y.rows(), 1);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn gqa_mapping() {
        let m = model(); // 4 q heads, 2 kv heads
        assert_eq!(m.gqa_group(), 2);
        assert_eq!(m.kv_head_of(0), 0);
        assert_eq!(m.kv_head_of(1), 0);
        assert_eq!(m.kv_head_of(2), 1);
        assert_eq!(m.kv_head_of(3), 1);
    }

    #[test]
    #[should_panic(expected = "GQA")]
    fn misaligned_gqa_rejected() {
        let _ = ToyTransformer::seeded(1, 8, 3, 2, 4, 8, 0);
    }
}
