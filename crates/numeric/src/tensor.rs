//! Minimal row-major `f32` matrices — just enough linear algebra for the
//! toy transformer. Deliberately simple and obviously correct; this crate
//! validates *parallelization*, not kernels.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled by `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// A deterministic pseudo-random matrix with entries in ±0.5, scaled
    /// by `1/sqrt(cols)` for stable magnitudes through deep stacks.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (cols as f32).sqrt();
        Matrix::from_fn(rows, cols, |_, _| (rng.gen_range(-0.5..0.5)) * scale)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Rows `start..end` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Matrix::from_fn(end - start, self.cols, |r, c| self[(start + r, c)])
    }

    /// Columns `start..end` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "col slice out of range");
        Matrix::from_fn(self.rows, end - start, |r, c| self[(r, start + c)])
    }

    /// Stacks matrices vertically (same column count).
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree on columns or are empty.
    pub fn concat_rows(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut at = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "column mismatch in concat_rows");
            for r in 0..p.rows {
                for c in 0..cols {
                    out[(at + r, c)] = p[(r, c)];
                }
            }
            at += p.rows;
        }
        out
    }

    /// Stacks matrices horizontally (same row count).
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree on rows or are empty.
    pub fn concat_cols(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let rows = parts[0].rows;
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut at = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "row mismatch in concat_cols");
            for r in 0..rows {
                for c in 0..p.cols {
                    out[(r, at + c)] = p[(r, c)];
                }
            }
            at += p.cols;
        }
        out
    }

    /// Row-wise softmax over the first `limit[r]` entries of each row;
    /// entries at or beyond the limit get probability 0 (the causal mask).
    ///
    /// # Panics
    ///
    /// Panics if `limits.len() != rows` or any limit is 0 or out of range.
    pub fn masked_softmax_rows(&self, limits: &[usize]) -> Matrix {
        assert_eq!(limits.len(), self.rows, "one limit per row");
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let limit = limits[r];
            assert!(limit > 0 && limit <= self.cols, "bad causal limit");
            if c >= limit {
                return 0.0;
            }
            let max = (0..limit).map(|j| self[(r, j)]).fold(f32::MIN, f32::max);
            let denom: f32 = (0..limit).map(|j| (self[(r, j)] - max).exp()).sum();
            (self[(r, c)] - max).exp() / denom
        })
    }

    /// True if every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Largest absolute element difference (infinity when shapes differ).
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        if self.rows != other.rows || self.cols != other.cols {
            return f32::INFINITY;
        }
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 10.0);
        assert_eq!(c[(0, 1)], 13.0);
        assert_eq!(c[(1, 0)], 28.0);
        assert_eq!(c[(1, 1)], 40.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::random(3, 5, 1);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn slices_and_concat_roundtrip() {
        let a = Matrix::random(4, 6, 2);
        let left = a.slice_cols(0, 2);
        let right = a.slice_cols(2, 6);
        assert!(Matrix::concat_cols(&[left, right]).approx_eq(&a, 0.0));
        let top = a.slice_rows(0, 1);
        let bottom = a.slice_rows(1, 4);
        assert!(Matrix::concat_rows(&[top, bottom]).approx_eq(&a, 0.0));
    }

    #[test]
    fn masked_softmax_rows_sum_to_one_within_mask() {
        let a = Matrix::random(3, 4, 3);
        let sm = a.masked_softmax_rows(&[1, 2, 4]);
        for (r, &limit) in [1usize, 2, 4].iter().enumerate() {
            let sum: f32 = (0..4).map(|c| sm[(r, c)]).sum();
            assert!((sum - 1.0).abs() < 1e-6);
            for c in limit..4 {
                assert_eq!(sm[(r, c)], 0.0, "masked entry leaked");
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn mismatched_matmul_panics() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_column_split(
            seed in 0u64..1000, rows in 1usize..5, inner in 1usize..5, cols in 2usize..6,
        ) {
            // A×[B1|B2] == [A×B1 | A×B2] — the identity column sharding
            // (tensor parallelism) relies on.
            let a = Matrix::random(rows, inner, seed);
            let b = Matrix::random(inner, cols, seed + 1);
            let split = cols / 2;
            let whole = a.matmul(&b);
            let left = a.matmul(&b.slice_cols(0, split));
            let right = a.matmul(&b.slice_cols(split, cols));
            prop_assert!(Matrix::concat_cols(&[left, right]).approx_eq(&whole, 1e-6));
        }

        #[test]
        fn matmul_partial_sums_over_row_split(
            seed in 0u64..1000, rows in 1usize..5, inner in 2usize..6, cols in 1usize..5,
        ) {
            // [A1|A2]×[B1;B2] == A1×B1 + A2×B2 — the identity row sharding
            // (the all-reduce in TP) relies on.
            let a = Matrix::random(rows, inner, seed);
            let b = Matrix::random(inner, cols, seed + 1);
            let split = inner / 2;
            let whole = a.matmul(&b);
            let p1 = a.slice_cols(0, split).matmul(&b.slice_rows(0, split));
            let p2 = a.slice_cols(split, inner).matmul(&b.slice_rows(split, inner));
            prop_assert!(p1.add(&p2).approx_eq(&whole, 1e-5));
        }

        #[test]
        fn row_split_matmul_is_row_slice(
            seed in 0u64..1000, rows in 2usize..6, inner in 1usize..5, cols in 1usize..5,
        ) {
            // [X1;X2]×W == [X1×W; X2×W] — the identity sequence
            // parallelism relies on.
            let x = Matrix::random(rows, inner, seed);
            let w = Matrix::random(inner, cols, seed + 1);
            let split = rows / 2;
            let whole = x.matmul(&w);
            let top = x.slice_rows(0, split).matmul(&w);
            let bottom = x.slice_rows(split, rows).matmul(&w);
            prop_assert!(Matrix::concat_rows(&[top, bottom]).approx_eq(&whole, 1e-6));
        }
    }
}
