//! Tensor-parallel execution of the toy transformer.
//!
//! Head-parallel attention (column-sharded QKV, row-sharded O) and
//! column/row-sharded MLP, with an explicit all-reduce after each block —
//! Figure 3a of the paper, executed numerically.

use crate::collective::{all_reduce_sum, contiguous_heads, RankKv};
use crate::reference::ToyTransformer;
use crate::tensor::Matrix;

/// Gathers the `wo` rows for a rank's q heads, in the rank's head order.
pub(crate) fn wo_rows_for(model: &ToyTransformer, wo: &Matrix, q_heads: &[usize]) -> Matrix {
    let hd = model.head_dim;
    let parts: Vec<Matrix> = q_heads.iter().map(|&h| wo.slice_rows(h * hd, (h + 1) * hd)).collect();
    Matrix::concat_rows(&parts)
}

/// Computes one rank's attention over its owned heads.
///
/// `q` has the rank's heads as column blocks in `shard.q_heads` order;
/// `shard` holds the full-sequence K/V for the needed KV heads.
pub(crate) fn rank_attention(
    model: &ToyTransformer,
    q: &Matrix,
    shard: &RankKv,
    layer: usize,
    past: usize,
) -> Matrix {
    let hd = model.head_dim;
    let m = q.rows();
    let limits: Vec<usize> = (0..m).map(|r| past + r + 1).collect();
    let scale = 1.0 / (hd as f32).sqrt();
    let (k, v) = &shard.layers[layer];
    let heads: Vec<Matrix> = shard
        .q_heads
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            let qh = q.slice_cols(i * hd, (i + 1) * hd);
            let slot = shard.kv_slot(model.kv_head_of(h));
            let kh = k.slice_cols(slot * hd, (slot + 1) * hd);
            let vh = v.slice_cols(slot * hd, (slot + 1) * hd);
            let scores = qh.matmul(&kh.transpose()).map(|x| x * scale);
            scores.masked_softmax_rows(&limits).matmul(&vh)
        })
        .collect();
    Matrix::concat_cols(&heads)
}

/// Appends this step's K/V (for the shard's KV heads) to the shard.
pub(crate) fn append_kv(
    model: &ToyTransformer,
    shard: &mut RankKv,
    layer: usize,
    h_in: &Matrix,
    wk: &Matrix,
    wv: &Matrix,
) {
    let hd = model.head_dim;
    let k_cols: Vec<Matrix> =
        shard.kv_heads.iter().map(|&g| h_in.matmul(&wk.slice_cols(g * hd, (g + 1) * hd))).collect();
    let v_cols: Vec<Matrix> =
        shard.kv_heads.iter().map(|&g| h_in.matmul(&wv.slice_cols(g * hd, (g + 1) * hd))).collect();
    let (k, v) = &mut shard.layers[layer];
    *k = Matrix::concat_rows(&[k.clone(), Matrix::concat_cols(&k_cols)]);
    *v = Matrix::concat_rows(&[v.clone(), Matrix::concat_cols(&v_cols)]);
}

/// Appends already-assembled K/V rows (in the shard's KV-head column
/// order) to the shard — the SP path, where the all-to-all delivers the
/// buffers ready-made.
pub(crate) fn append_kv_from_buffers(
    shard: &mut RankKv,
    layer: usize,
    k_new: Matrix,
    v_new: Matrix,
) {
    let (k, v) = &mut shard.layers[layer];
    *k = Matrix::concat_rows(&[k.clone(), k_new]);
    *v = Matrix::concat_rows(&[v.clone(), v_new]);
}

/// One TP step over `shards.len()` ranks with the head ownership recorded
/// in `shards` (arbitrary assignments supported — the shift configuration
/// uses the base config's interleaved order). Activations are replicated;
/// each rank computes its shard and two all-reduces per layer recombine.
///
/// Returns the output embeddings (identical on every rank).
///
/// # Panics
///
/// Panics if `d_ff` does not divide across the ranks.
pub fn advance(model: &ToyTransformer, x: &Matrix, shards: &mut [RankKv]) -> Matrix {
    let p = shards.len();
    let hd = model.head_dim;
    assert!(model.d_ff.is_multiple_of(p), "d_ff must divide across ranks");
    let ff = model.d_ff / p;

    let mut h = vec![x.clone(); p]; // replicated activations
    for (l, w) in model.layers.iter().enumerate() {
        let past = shards[0].len_at(l);

        // Attention: each rank projects, caches, and attends its heads.
        let mut partials = Vec::with_capacity(p);
        for (r, shard) in shards.iter_mut().enumerate() {
            let q_cols: Vec<Matrix> = shard
                .q_heads
                .iter()
                .map(|&qh| h[r].matmul(&w.wq.slice_cols(qh * hd, (qh + 1) * hd)))
                .collect();
            let q = Matrix::concat_cols(&q_cols);
            append_kv(model, shard, l, &h[r], &w.wk, &w.wv);
            let attn = rank_attention(model, &q, shard, l, past);
            partials.push(attn.matmul(&wo_rows_for(model, &w.wo, &shard.q_heads)));
        }
        let attn_out = all_reduce_sum(&partials);
        for r in 0..p {
            h[r] = h[r].add(&attn_out[r]);
        }

        // MLP: column/row sharded with a second all-reduce.
        let mut partials = Vec::with_capacity(p);
        for (r, h_r) in h.iter().enumerate() {
            let up = h_r.matmul(&w.w1.slice_cols(r * ff, (r + 1) * ff)).map(f32::tanh);
            partials.push(up.matmul(&w.w2.slice_rows(r * ff, (r + 1) * ff)));
        }
        let mlp_out = all_reduce_sum(&partials);
        for r in 0..p {
            h[r] = h[r].add(&mlp_out[r]);
        }
    }
    h.swap_remove(0)
}

/// Full TP prefill across `p` ranks with the standard contiguous head
/// layout. Returns the output and the per-rank KV shards.
pub fn forward(model: &ToyTransformer, x: &Matrix, p: usize) -> (Matrix, Vec<RankKv>) {
    let mut shards: Vec<RankKv> = contiguous_heads(model.q_heads, p)
        .into_iter()
        .map(|heads| RankKv::new(model, heads))
        .collect();
    let y = advance(model, x, &mut shards);
    (y, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ToyTransformer {
        ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7)
    }

    #[test]
    fn tp_matches_serial_for_all_degrees() {
        let m = model();
        let x = Matrix::random(6, 16, 11);
        let (serial, _) = m.forward(&x);
        for p in [1, 2, 4] {
            let (parallel, _) = forward(&m, &x, p);
            assert!(
                parallel.approx_eq(&serial, 1e-4),
                "TP={p} diff {}",
                parallel.max_abs_diff(&serial)
            );
        }
    }

    #[test]
    fn tp_kv_shards_are_column_slices_of_serial_cache() {
        let m = model();
        let x = Matrix::random(5, 16, 12);
        let (_, serial_cache) = m.forward(&x);
        let (_, shards) = forward(&m, &x, 2);
        let hd = m.head_dim;
        for (l, (k_serial, v_serial)) in serial_cache.layers.iter().enumerate() {
            for shard in &shards {
                for (slot, &g) in shard.kv_heads.iter().enumerate() {
                    let k_shard = shard.layers[l].0.slice_cols(slot * hd, (slot + 1) * hd);
                    let k_ref = k_serial.slice_cols(g * hd, (g + 1) * hd);
                    assert!(k_shard.approx_eq(&k_ref, 1e-5));
                    let v_shard = shard.layers[l].1.slice_cols(slot * hd, (slot + 1) * hd);
                    let v_ref = v_serial.slice_cols(g * hd, (g + 1) * hd);
                    assert!(v_shard.approx_eq(&v_ref, 1e-5));
                }
            }
        }
    }

    #[test]
    fn tp_decode_matches_serial_decode() {
        let m = model();
        let x = Matrix::random(4, 16, 13);
        let (_, mut serial_cache) = m.forward(&x);
        let (_, mut shards) = forward(&m, &x, 4);
        // Three decode steps.
        for step in 0..3u64 {
            let tok = Matrix::random(1, 16, 100 + step);
            let serial = m.advance(&tok, &mut serial_cache);
            let parallel = advance(&m, &tok, &mut shards);
            assert!(
                parallel.approx_eq(&serial, 1e-4),
                "step {step} diff {}",
                parallel.max_abs_diff(&serial)
            );
        }
    }

    #[test]
    fn tp_with_replicated_kv_heads() {
        // 4 ranks, 2 kv heads: kv head replication across ranks (GQA
        // scaling, §3.2.1) — each rank stores exactly one kv head.
        let m = model();
        let (_, shards) = forward(&m, &Matrix::random(4, 16, 14), 4);
        for shard in &shards {
            assert_eq!(shard.kv_heads.len(), 1);
        }
        // Each kv head stored on exactly 2 ranks.
        let copies = shards.iter().filter(|s| s.kv_heads[0] == 0).count();
        assert_eq!(copies, 2);
    }
}
