//! Ulysses sequence-parallel execution of the toy transformer.
//!
//! Figure 3b / Algorithm 1 with `TP = 1`, executed numerically: the input
//! sequence is row-sharded; a fused all-to-all switches to head
//! parallelism for attention (replicating KV heads in the send buffers
//! when GQA requires, §3.2.1); a second all-to-all switches back; MLP runs
//! on local rows with full weights; a final all-gather recombines.

use crate::collective::{all_gather_rows, all_to_all, contiguous_heads, RankKv};
use crate::reference::ToyTransformer;
use crate::tensor::Matrix;
use crate::tp::{append_kv_from_buffers, rank_attention, wo_rows_for};

/// The per-destination fused QKV send buffer: the destination's Q-head
/// columns, then its KV-head K columns, then its KV-head V columns.
pub(crate) fn fused_qkv_block(
    model: &ToyTransformer,
    q_full: &Matrix,
    k_full: &Matrix,
    v_full: &Matrix,
    dst: &RankKv,
) -> Matrix {
    let hd = model.head_dim;
    let mut parts: Vec<Matrix> =
        dst.q_heads.iter().map(|&h| q_full.slice_cols(h * hd, (h + 1) * hd)).collect();
    for &g in &dst.kv_heads {
        parts.push(k_full.slice_cols(g * hd, (g + 1) * hd));
    }
    for &g in &dst.kv_heads {
        parts.push(v_full.slice_cols(g * hd, (g + 1) * hd));
    }
    Matrix::concat_cols(&parts)
}

/// Splits a received fused buffer back into `(q, k, v)` for `dst`.
pub(crate) fn split_fused(
    model: &ToyTransformer,
    fused: &Matrix,
    dst: &RankKv,
) -> (Matrix, Matrix, Matrix) {
    let hd = model.head_dim;
    let qw = dst.q_heads.len() * hd;
    let kw = dst.kv_heads.len() * hd;
    (fused.slice_cols(0, qw), fused.slice_cols(qw, qw + kw), fused.slice_cols(qw + kw, qw + 2 * kw))
}

/// Sequence-parallel prefill of `x` across `p` ranks with the standard
/// contiguous head layout. Returns the output embeddings and the per-rank
/// KV shards — which are *the same shards TP would produce* (the KV-cache
/// invariance the shift policy relies on).
///
/// # Panics
///
/// Panics if the sequence length or head count does not divide by `p`.
pub fn forward(model: &ToyTransformer, x: &Matrix, p: usize) -> (Matrix, Vec<RankKv>) {
    let n = x.rows();
    assert!(n.is_multiple_of(p), "sequence length {n} must divide across {p} ranks");
    let rows = n / p;
    let mut shards: Vec<RankKv> = contiguous_heads(model.q_heads, p)
        .into_iter()
        .map(|heads| RankKv::new(model, heads))
        .collect();
    // Head order across the wire: rank-major (identical to global order
    // for the contiguous layout).
    let wire_order: Vec<usize> = shards.iter().flat_map(|s| s.q_heads.iter().copied()).collect();

    let mut h: Vec<Matrix> = (0..p).map(|r| x.slice_rows(r * rows, (r + 1) * rows)).collect();

    for (l, w) in model.layers.iter().enumerate() {
        let past = shards[0].len_at(l);

        // Line 3: local QKV on the row shard with full weights.
        let q_full: Vec<Matrix> = h.iter().map(|hr| hr.matmul(&w.wq)).collect();
        let k_full: Vec<Matrix> = h.iter().map(|hr| hr.matmul(&w.wk)).collect();
        let v_full: Vec<Matrix> = h.iter().map(|hr| hr.matmul(&w.wv)).collect();

        // Line 4: fused all-to-all to head parallelism.
        let sends: Vec<Vec<Matrix>> = (0..p)
            .map(|src| {
                (0..p)
                    .map(|dst| {
                        fused_qkv_block(
                            model,
                            &q_full[src],
                            &k_full[src],
                            &v_full[src],
                            &shards[dst],
                        )
                    })
                    .collect()
            })
            .collect();
        let received = all_to_all(sends);

        // Line 5: attention on owned heads over the full sequence.
        let mut attn_per_rank = Vec::with_capacity(p);
        for (r, shard) in shards.iter_mut().enumerate() {
            let parts: Vec<(Matrix, Matrix, Matrix)> =
                received[r].iter().map(|f| split_fused(model, f, shard)).collect();
            let q =
                Matrix::concat_rows(&parts.iter().map(|(q, _, _)| q.clone()).collect::<Vec<_>>());
            let k_new =
                Matrix::concat_rows(&parts.iter().map(|(_, k, _)| k.clone()).collect::<Vec<_>>());
            let v_new =
                Matrix::concat_rows(&parts.iter().map(|(_, _, v)| v.clone()).collect::<Vec<_>>());
            append_kv_from_buffers(shard, l, k_new, v_new);
            attn_per_rank.push(rank_attention(model, &q, shard, l, past));
        }

        // Line 6: all-to-all back to sequence parallelism.
        let sends: Vec<Vec<Matrix>> = attn_per_rank
            .iter()
            .map(|attn| (0..p).map(|dst| attn.slice_rows(dst * rows, (dst + 1) * rows)).collect())
            .collect();
        let received = all_to_all(sends);

        // Line 7 + residual: output projection on local rows, with wo rows
        // gathered in wire order.
        let wo = wo_rows_for(model, &w.wo, &wire_order);
        for (r, h_r) in h.iter_mut().enumerate() {
            let attn_rows = Matrix::concat_cols(&received[r]);
            *h_r = h_r.add(&attn_rows.matmul(&wo));
            // Lines 9–10 + residual: MLP on local rows, full weights.
            let mlp = h_r.matmul(&w.w1).map(f32::tanh).matmul(&w.w2);
            *h_r = h_r.add(&mlp);
        }
    }

    // Line 13: final all-gather.
    let y = all_gather_rows(&h).swap_remove(0);
    (y, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ToyTransformer {
        ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7)
    }

    #[test]
    fn sp_matches_serial_for_all_degrees() {
        let m = model();
        let x = Matrix::random(8, 16, 21);
        let (serial, _) = m.forward(&x);
        for p in [1, 2, 4] {
            let (parallel, _) = forward(&m, &x, p);
            assert!(
                parallel.approx_eq(&serial, 1e-4),
                "SP={p} diff {}",
                parallel.max_abs_diff(&serial)
            );
        }
    }

    #[test]
    fn sp_and_tp_produce_identical_kv_shards() {
        // THE invariance property (§3.1): same ranks, same heads, same KV
        // bytes — switching costs nothing.
        let m = model();
        let x = Matrix::random(8, 16, 22);
        let (_, sp_shards) = forward(&m, &x, 4);
        let (_, tp_shards) = crate::tp::forward(&m, &x, 4);
        for (s, t) in sp_shards.iter().zip(&tp_shards) {
            assert_eq!(s.q_heads, t.q_heads);
            assert_eq!(s.kv_heads, t.kv_heads);
            for ((ks, vs), (kt, vt)) in s.layers.iter().zip(&t.layers) {
                assert!(ks.approx_eq(kt, 1e-4), "K diff {}", ks.max_abs_diff(kt));
                assert!(vs.approx_eq(vt, 1e-4), "V diff {}", vs.max_abs_diff(vt));
            }
        }
    }

    #[test]
    fn sp_replicates_kv_heads_when_needed() {
        // 4 ranks, 2 KV heads: the fused all-to-all replicates each KV
        // head into two ranks' receive buffers (§3.2.1).
        let m = model();
        let (_, shards) = forward(&m, &Matrix::random(4, 16, 23), 4);
        let copies = shards.iter().filter(|s| s.kv_heads.contains(&0)).count();
        assert_eq!(copies, 2);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_sequence_rejected() {
        let m = model();
        let _ = forward(&m, &Matrix::random(5, 16, 24), 4);
    }
}
