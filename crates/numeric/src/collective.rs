//! Simulated collectives and per-rank KV shards.
//!
//! Ranks are simulated in-process: each holds only its own buffers, and
//! all inter-rank data movement goes through the explicit collective
//! functions here — mirroring the real system's NCCL calls so the
//! dataflow of Algorithm 1 is reproduced faithfully, not shortcut.

use crate::reference::ToyTransformer;
use crate::tensor::Matrix;

/// All-reduce (sum): every rank contributes a same-shaped matrix and every
/// rank receives the element-wise sum.
///
/// # Panics
///
/// Panics if shapes disagree or `parts` is empty.
pub fn all_reduce_sum(parts: &[Matrix]) -> Vec<Matrix> {
    assert!(!parts.is_empty(), "all-reduce needs at least one rank");
    let mut sum = parts[0].clone();
    for p in &parts[1..] {
        sum = sum.add(p);
    }
    vec![sum; parts.len()]
}

/// All-gather over row shards: every rank receives the row-concatenation
/// of all ranks' shards in rank order.
///
/// # Panics
///
/// Panics if `parts` is empty or column counts disagree.
pub fn all_gather_rows(parts: &[Matrix]) -> Vec<Matrix> {
    let full = Matrix::concat_rows(parts);
    vec![full; parts.len()]
}

/// All-to-all: `blocks[src][dst]` is what rank `src` sends to rank `dst`;
/// the result's `[dst][src]` is what rank `dst` received from `src`.
///
/// # Panics
///
/// Panics if the send grid is not square.
pub fn all_to_all(blocks: Vec<Vec<Matrix>>) -> Vec<Vec<Matrix>> {
    let p = blocks.len();
    assert!(blocks.iter().all(|row| row.len() == p), "all-to-all grid must be square");
    let mut received: Vec<Vec<Option<Matrix>>> = (0..p).map(|_| vec![None; p]).collect();
    for (src, row) in blocks.into_iter().enumerate() {
        for (dst, block) in row.into_iter().enumerate() {
            received[dst][src] = Some(block);
        }
    }
    received
        .into_iter()
        .map(|row| row.into_iter().map(|b| b.expect("square grid")).collect())
        .collect()
}

/// The attention state one rank owns: its query heads, the KV heads they
/// require (GQA), and the per-layer KV shards for those heads.
#[derive(Debug, Clone)]
pub struct RankKv {
    /// Query heads owned by this rank (global head ids).
    pub q_heads: Vec<usize>,
    /// KV heads stored by this rank (deduplicated, sorted).
    pub kv_heads: Vec<usize>,
    /// Per-layer `(K, V)` shards, `[tokens, kv_heads.len()·head_dim]`.
    pub layers: Vec<(Matrix, Matrix)>,
}

impl RankKv {
    /// Creates the empty shard for a rank owning `q_heads` of `model`.
    pub fn new(model: &ToyTransformer, q_heads: Vec<usize>) -> RankKv {
        let mut kv_heads: Vec<usize> = q_heads.iter().map(|&h| model.kv_head_of(h)).collect();
        kv_heads.sort_unstable();
        kv_heads.dedup();
        let width = kv_heads.len() * model.head_dim;
        let layers = (0..model.num_layers)
            .map(|_| (Matrix::zeros(0, width), Matrix::zeros(0, width)))
            .collect();
        RankKv { q_heads, kv_heads, layers }
    }

    /// Local column offset of global KV head `kv_head` in this shard.
    ///
    /// # Panics
    ///
    /// Panics if the head is not stored here.
    pub fn kv_slot(&self, kv_head: usize) -> usize {
        self.kv_heads
            .iter()
            .position(|&h| h == kv_head)
            .unwrap_or_else(|| panic!("kv head {kv_head} not on this rank"))
    }

    /// Tokens cached so far.
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, |(k, _)| k.rows())
    }

    /// Tokens cached in `layer` (layers earlier in the stack fill first
    /// within one step).
    pub fn len_at(&self, layer: usize) -> usize {
        self.layers.get(layer).map_or(0, |(k, _)| k.rows())
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Contiguous query-head assignment: rank `r` of `p` owns heads
/// `[r·qh/p, (r+1)·qh/p)` — the layout of pure TP and pure SP.
///
/// # Panics
///
/// Panics if `q_heads` is not divisible by `p`.
pub fn contiguous_heads(q_heads: usize, p: usize) -> Vec<Vec<usize>> {
    assert!(q_heads.is_multiple_of(p), "{q_heads} heads do not divide across {p} ranks");
    let per = q_heads / p;
    (0..p).map(|r| (r * per..(r + 1) * per).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_sums_everywhere() {
        let parts =
            vec![Matrix::from_fn(2, 2, |r, c| (r + c) as f32), Matrix::from_fn(2, 2, |_, _| 1.0)];
        let out = all_reduce_sum(&parts);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][(1, 1)], 3.0);
        assert!(out[0].approx_eq(&out[1], 0.0));
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let parts = vec![Matrix::from_fn(1, 2, |_, c| c as f32), Matrix::from_fn(2, 2, |_, _| 9.0)];
        let out = all_gather_rows(&parts);
        assert_eq!(out[0].rows(), 3);
        assert_eq!(out[1][(0, 1)], 1.0);
        assert_eq!(out[0][(2, 0)], 9.0);
    }

    #[test]
    fn all_to_all_transposes_the_grid() {
        let tag = |s: usize, d: usize| Matrix::from_fn(1, 1, |_, _| (10 * s + d) as f32);
        let sent = vec![vec![tag(0, 0), tag(0, 1)], vec![tag(1, 0), tag(1, 1)]];
        let got = all_to_all(sent);
        assert_eq!(got[1][0][(0, 0)], 1.0); // rank 1 received src 0's (0→1)
        assert_eq!(got[0][1][(0, 0)], 10.0); // rank 0 received src 1's (1→0)
    }

    #[test]
    fn rank_kv_dedups_gqa_heads() {
        let model = ToyTransformer::seeded(1, 8, 4, 2, 2, 8, 1);
        // q heads 0 and 1 share kv head 0.
        let shard = RankKv::new(&model, vec![0, 1]);
        assert_eq!(shard.kv_heads, vec![0]);
        assert_eq!(shard.kv_slot(0), 0);
        assert!(shard.is_empty());
    }

    #[test]
    fn contiguous_assignment_partitions() {
        let a = contiguous_heads(8, 4);
        assert_eq!(a[0], vec![0, 1]);
        assert_eq!(a[3], vec![6, 7]);
    }

    #[test]
    #[should_panic(expected = "not on this rank")]
    fn foreign_kv_head_panics() {
        let model = ToyTransformer::seeded(1, 8, 4, 2, 2, 8, 1);
        let shard = RankKv::new(&model, vec![0]);
        let _ = shard.kv_slot(1);
    }
}
