//! Numerical validation of Shift Parallelism.
//!
//! Everything else in this workspace *times* the parallelisms; this crate
//! *executes* them, on a small dense transformer with real `f32` weights,
//! and proves the paper's correctness claims at the tensor level:
//!
//! 1. **TP correctness** — head/column-sharded execution with explicit
//!    all-reduces equals the serial forward pass ([`tp`]).
//! 2. **SP (Ulysses) correctness** — sequence-sharded execution with the
//!    two all-to-alls and final all-gather of Algorithm 1 equals the
//!    serial forward pass ([`sp`]).
//! 3. **Combined (SP, TP)** — Algorithm 1 with both degrees equals the
//!    serial pass for every factorization ([`combined`]).
//! 4. **KV-cache invariance** — the per-rank KV shards produced by the
//!    base `(SP, TP)` prefill are *bit-identical* to what the shift
//!    configuration `(1, SP·TP)` expects, so decoding can continue in the
//!    shift configuration on the base cache and still reproduce the serial
//!    decode exactly ([`shift`]).
//!
//! The toy model is a real (if small) decoder: per layer, causal GQA
//! attention with residual, then a 2-matrix tanh MLP with residual. No
//! normalization — parallelism correctness is independent of it and the
//! numbers stay well-conditioned without.
//!
//! # Examples
//!
//! ```
//! use sp_numeric::{reference::ToyTransformer, tensor::Matrix, tp};
//!
//! let model = ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7);
//! let x = Matrix::random(6, 16, 11);
//! let (serial, _) = model.forward(&x);
//! let (parallel, _) = tp::forward(&model, &x, 2);
//! assert!(serial.approx_eq(&parallel, 1e-4));
//! ```

pub mod collective;
pub mod combined;
pub mod moe;
pub mod reference;
pub mod shift;
pub mod sp;
pub mod tensor;
pub mod tp;

pub use reference::ToyTransformer;
pub use tensor::Matrix;
