//! Model hyper-parameters.

/// Weight / activation / KV-cache element precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 8-bit floating point (the paper serves all models in FP8).
    Fp8,
    /// 16-bit floating point.
    Fp16,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fp8 => 1,
            Precision::Fp16 => 2,
        }
    }
}

/// Mixture-of-experts configuration for the MLP blocks.
///
/// Dense models have `None` for [`ModelConfig::moe`]; MoE models route each
/// token to `active_experts` of `num_experts` feed-forward experts, plus an
/// optional always-on shared expert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoeConfig {
    /// Total routed experts per layer.
    pub num_experts: u32,
    /// Experts active per token (top-k routing).
    pub active_experts: u32,
    /// Intermediate (FFN) size of each routed expert.
    pub expert_intermediate: u32,
    /// Intermediate size of the shared (always-active) expert, 0 if absent.
    pub shared_intermediate: u32,
}

/// Architecture of one decoder-only transformer.
///
/// Field names follow the usual HuggingFace conventions. The accounting
/// methods in [`crate::accounting`] derive every FLOP/byte quantity the
/// simulator needs from these fields.
///
/// # Examples
///
/// ```
/// use sp_model::presets;
///
/// let qwen = presets::qwen_32b();
/// assert_eq!(qwen.gqa_group_size(), 8); // 64 Q heads / 8 KV heads
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Hidden (embedding) dimension `d`.
    pub hidden_size: u32,
    /// Number of query heads `h`.
    pub q_heads: u32,
    /// Number of key/value heads `h_kv` (GQA when `h_kv < h`).
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Dense MLP intermediate size (ignored for MoE layers).
    pub intermediate_size: u32,
    /// Vocabulary size (embedding + LM head).
    pub vocab_size: u32,
    /// Weight precision.
    pub weight_precision: Precision,
    /// KV-cache precision (the Mooncake experiment flips this to FP8).
    pub kv_precision: Precision,
    /// Mixture-of-experts configuration, `None` for dense models.
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Queries per KV head (the GQA group size); 1 means plain MHA.
    ///
    /// # Panics
    ///
    /// Panics if `kv_heads` is zero (invalid config).
    pub fn gqa_group_size(&self) -> u32 {
        assert!(self.kv_heads > 0, "model must have at least one KV head");
        self.q_heads / self.kv_heads
    }

    /// Parameters in one layer's fused QKV projection:
    /// `d × (h + 2·h_kv) × head_dim`.
    pub fn qkv_params_per_layer(&self) -> u64 {
        u64::from(self.hidden_size)
            * u64::from(self.q_heads + 2 * self.kv_heads)
            * u64::from(self.head_dim)
    }

    /// Parameters in one layer's attention output projection:
    /// `(h × head_dim) × d`.
    pub fn o_params_per_layer(&self) -> u64 {
        u64::from(self.q_heads) * u64::from(self.head_dim) * u64::from(self.hidden_size)
    }

    /// Total attention parameters in one layer (QKV + O).
    pub fn attn_params_per_layer(&self) -> u64 {
        self.qkv_params_per_layer() + self.o_params_per_layer()
    }

    /// *Stored* MLP parameters in one layer (all experts for MoE).
    ///
    /// Gated FFNs (SwiGLU) have three matrices: up, gate, down — hence the
    /// factor 3.
    pub fn mlp_params_per_layer_total(&self) -> u64 {
        match self.moe {
            None => 3 * u64::from(self.hidden_size) * u64::from(self.intermediate_size),
            Some(moe) => {
                let routed = u64::from(moe.num_experts)
                    * 3
                    * u64::from(self.hidden_size)
                    * u64::from(moe.expert_intermediate);
                let shared = 3 * u64::from(self.hidden_size) * u64::from(moe.shared_intermediate);
                routed + shared
            }
        }
    }

    /// *Active* MLP parameters per token in one layer (top-k experts for
    /// MoE; equal to total for dense).
    pub fn mlp_params_per_layer_active(&self) -> u64 {
        match self.moe {
            None => self.mlp_params_per_layer_total(),
            Some(moe) => {
                let routed = u64::from(moe.active_experts)
                    * 3
                    * u64::from(self.hidden_size)
                    * u64::from(moe.expert_intermediate);
                let shared = 3 * u64::from(self.hidden_size) * u64::from(moe.shared_intermediate);
                routed + shared
            }
        }
    }

    /// Embedding + LM-head parameters (untied): `2 × d × vocab`.
    pub fn embed_params(&self) -> u64 {
        2 * u64::from(self.hidden_size) * u64::from(self.vocab_size)
    }

    /// Total stored parameters.
    pub fn total_params(&self) -> u64 {
        u64::from(self.num_layers)
            * (self.attn_params_per_layer() + self.mlp_params_per_layer_total())
            + self.embed_params()
    }

    /// Parameters active per token (MoE models activate a subset).
    pub fn active_params(&self) -> u64 {
        u64::from(self.num_layers)
            * (self.attn_params_per_layer() + self.mlp_params_per_layer_active())
            + self.embed_params()
    }

    /// Total weight footprint in bytes at the configured precision.
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * self.weight_precision.bytes()
    }

    /// Bytes of weights streamed per token of decode (active parameters).
    pub fn active_weight_bytes(&self) -> u64 {
        self.active_params() * self.weight_precision.bytes()
    }

    /// KV-cache bytes per token across all layers:
    /// `layers × 2 × h_kv × head_dim × kv_bytes`.
    pub fn kv_bytes_per_token(&self) -> u64 {
        u64::from(self.num_layers)
            * 2
            * u64::from(self.kv_heads)
            * u64::from(self.head_dim)
            * self.kv_precision.bytes()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: zero-sized
    /// dimensions, Q heads not divisible by KV heads, or inconsistent MoE
    /// shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0
            || self.hidden_size == 0
            || self.q_heads == 0
            || self.kv_heads == 0
            || self.head_dim == 0
            || self.vocab_size == 0
        {
            return Err(format!("{}: all dimensions must be positive", self.name));
        }
        if !self.q_heads.is_multiple_of(self.kv_heads) {
            return Err(format!(
                "{}: Q heads ({}) must be a multiple of KV heads ({})",
                self.name, self.q_heads, self.kv_heads
            ));
        }
        if let Some(moe) = self.moe {
            if moe.num_experts == 0 || moe.active_experts == 0 {
                return Err(format!("{}: MoE must have at least one expert", self.name));
            }
            if moe.active_experts > moe.num_experts {
                return Err(format!(
                    "{}: active experts ({}) exceed total ({})",
                    self.name, moe.active_experts, moe.num_experts
                ));
            }
            if moe.expert_intermediate == 0 {
                return Err(format!("{}: expert intermediate size must be positive", self.name));
            }
        } else if self.intermediate_size == 0 {
            return Err(format!("{}: dense intermediate size must be positive", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Fp8.bytes(), 1);
        assert_eq!(Precision::Fp16.bytes(), 2);
    }

    #[test]
    fn dense_active_equals_total() {
        let m = presets::llama_70b();
        assert_eq!(m.total_params(), m.active_params());
    }

    #[test]
    fn moe_active_less_than_total() {
        let m = presets::qwen_30b_a3b();
        assert!(m.active_params() < m.total_params() / 5);
    }

    #[test]
    fn gqa_group_sizes_match_table4() {
        assert_eq!(presets::llama_70b().gqa_group_size(), 8);
        assert_eq!(presets::qwen_32b().gqa_group_size(), 8);
        assert_eq!(presets::llama_17b_16e().gqa_group_size(), 5);
        assert_eq!(presets::qwen_30b_a3b().gqa_group_size(), 8);
    }

    #[test]
    fn kv_bytes_scale_with_precision() {
        let mut m = presets::qwen_32b();
        let fp16 = m.kv_bytes_per_token();
        m.kv_precision = Precision::Fp8;
        assert_eq!(m.kv_bytes_per_token() * 2, fp16);
    }

    #[test]
    fn validate_rejects_misaligned_gqa() {
        let mut m = presets::llama_70b();
        m.kv_heads = 7;
        assert!(m.validate().unwrap_err().contains("multiple"));
    }

    #[test]
    fn validate_rejects_overactive_moe() {
        let mut m = presets::qwen_30b_a3b();
        let moe = m.moe.as_mut().unwrap();
        moe.active_experts = moe.num_experts + 1;
        assert!(m.validate().is_err());
    }

    #[test]
    fn qkv_fused_width_uses_gqa() {
        // GQA replaces 3h with h + 2·h_kv (paper §3.2.1).
        let m = presets::llama_70b();
        let full_mha_width = 3 * m.q_heads;
        let gqa_width = m.q_heads + 2 * m.kv_heads;
        assert!(gqa_width < full_mha_width);
        assert_eq!(
            m.qkv_params_per_layer(),
            u64::from(m.hidden_size) * u64::from(gqa_width) * u64::from(m.head_dim)
        );
    }
}
