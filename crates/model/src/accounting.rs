//! FLOP and byte accounting for prefill/decode steps.
//!
//! A serving iteration processes, for each request in the batch, a *chunk*
//! of `new_tokens` at context offset `past`. The cost of a chunk decomposes
//! into:
//!
//! * **linear FLOPs** — QKV/O/MLP GEMMs: `2 × active linear params` per
//!   token (compute-bound in prefill);
//! * **attention FLOPs** — score and value matmuls: `4 × h × head_dim ×
//!   context` per token (the quadratic term that dominates long contexts,
//!   Figure 13);
//! * **KV reads** — each new token's attention streams the KV cache of its
//!   context (memory-bound in decode);
//! * **KV writes** — each new token appends one KV entry;
//! * **logit FLOPs** — the LM head for tokens that emit a distribution.
//!
//! Weight streaming is *per iteration*, not per chunk, so it is exposed
//! separately ([`ModelConfig::active_weight_bytes`]) and added once by the
//! execution model.

use crate::config::ModelConfig;
use std::iter::Sum;
use std::ops::Add;

/// Queries per flash-attention tile: the KV cache is streamed from HBM
/// once per tile of this many query tokens.
pub const QUERY_TILE: u64 = 128;

/// Resource cost of processing one chunk (or a whole batch, by summation).
///
/// # Examples
///
/// ```
/// use sp_model::presets;
///
/// let m = presets::llama_70b();
/// let prefill = m.chunk_cost(4096, 0, 1);
/// let decode = m.chunk_cost(1, 4096, 1);
/// assert!(prefill.total_flops() > 1000.0 * decode.total_flops());
/// assert!(decode.kv_read_bytes > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepCost {
    /// GEMM FLOPs in QKV, O, and MLP projections.
    pub linear_flops: f64,
    /// Attention score/value FLOPs (grows with context).
    pub attn_flops: f64,
    /// LM-head FLOPs for logit-emitting tokens.
    pub logit_flops: f64,
    /// KV-cache bytes read by attention.
    pub kv_read_bytes: u64,
    /// KV-cache bytes written for the new tokens.
    pub kv_write_bytes: u64,
}

impl StepCost {
    /// All FLOPs in the chunk.
    pub fn total_flops(&self) -> f64 {
        self.linear_flops + self.attn_flops + self.logit_flops
    }

    /// All KV-cache HBM traffic in the chunk.
    pub fn total_kv_bytes(&self) -> u64 {
        self.kv_read_bytes + self.kv_write_bytes
    }
}

impl Add for StepCost {
    type Output = StepCost;
    fn add(self, rhs: StepCost) -> StepCost {
        StepCost {
            linear_flops: self.linear_flops + rhs.linear_flops,
            attn_flops: self.attn_flops + rhs.attn_flops,
            logit_flops: self.logit_flops + rhs.logit_flops,
            kv_read_bytes: self.kv_read_bytes + rhs.kv_read_bytes,
            kv_write_bytes: self.kv_write_bytes + rhs.kv_write_bytes,
        }
    }
}

impl Sum for StepCost {
    fn sum<I: Iterator<Item = StepCost>>(iter: I) -> StepCost {
        iter.fold(StepCost::default(), Add::add)
    }
}

impl ModelConfig {
    /// Active linear-layer parameters per token across all layers
    /// (excludes embeddings / LM head).
    pub fn linear_params_active(&self) -> u64 {
        u64::from(self.num_layers)
            * (self.attn_params_per_layer() + self.mlp_params_per_layer_active())
    }

    /// Cost of processing `new_tokens` tokens of one request whose KV cache
    /// already holds `past` tokens, emitting logits for `logit_tokens` of
    /// them (1 for the final prefill chunk and for every decode step, 0 for
    /// intermediate chunked-prefill chunks).
    ///
    /// # Panics
    ///
    /// Panics if `logit_tokens > new_tokens`.
    pub fn chunk_cost(&self, new_tokens: u64, past: u64, logit_tokens: u64) -> StepCost {
        assert!(logit_tokens <= new_tokens, "cannot emit logits for more tokens than processed");
        if new_tokens == 0 {
            return StepCost::default();
        }
        let n = new_tokens as f64;
        let linear_flops = 2.0 * self.linear_params_active() as f64 * n;

        // Token i (1-based) attends to `past + i` positions; summing gives
        // n·past + n(n+1)/2 attended positions in total.
        let attended = n * past as f64 + n * (n + 1.0) / 2.0;
        let attn_flops = 4.0
            * f64::from(self.q_heads)
            * f64::from(self.head_dim)
            * attended
            * f64::from(self.num_layers);

        let logit_flops =
            2.0 * f64::from(self.hidden_size) * f64::from(self.vocab_size) * logit_tokens as f64;

        // Flash-attention streams the KV cache once per query *tile*, not
        // per query: a decode step (1 query) re-reads its whole context,
        // while a prefill chunk amortizes the read across up to
        // QUERY_TILE queries — which is why prefill is compute-bound and
        // decode memory-bound.
        let tile = (new_tokens.min(QUERY_TILE)) as f64;
        let kv_read_bytes = (attended * self.kv_bytes_per_token() as f64 / tile) as u64;
        let kv_write_bytes = new_tokens * self.kv_bytes_per_token();

        StepCost { linear_flops, attn_flops, logit_flops, kv_read_bytes, kv_write_bytes }
    }

    /// Cost of a full un-chunked prefill of `prompt_tokens` (emits one
    /// logit for the first output token).
    pub fn prefill_cost(&self, prompt_tokens: u64) -> StepCost {
        self.chunk_cost(prompt_tokens, 0, 1)
    }

    /// Weight bytes actually streamed from HBM in one iteration processing
    /// `batch_tokens` tokens.
    ///
    /// Dense models stream all weights once per iteration. MoE models only
    /// touch the experts their tokens route to: with `k` of `E` experts
    /// active per token, a batch of `t` tokens touches at most
    /// `min(E, t·k)` routed experts. This is why MoE decode at batch size 1
    /// is so much faster than the total parameter count suggests.
    pub fn streamed_weight_bytes(&self, batch_tokens: u64) -> u64 {
        let prec = self.weight_precision.bytes();
        match self.moe {
            None => self.total_params() * prec,
            Some(moe) => {
                let routed_per_layer = u64::from(moe.num_experts)
                    * 3
                    * u64::from(self.hidden_size)
                    * u64::from(moe.expert_intermediate);
                let routed_total = u64::from(self.num_layers) * routed_per_layer;
                let non_routed = self.total_params() - routed_total;
                let touched =
                    (batch_tokens * u64::from(moe.active_experts)).min(u64::from(moe.num_experts));
                let streamed_routed = routed_total * touched / u64::from(moe.num_experts);
                (non_routed + streamed_routed) * prec
            }
        }
    }

    /// Cost of one decode step at context length `context` (emits one
    /// logit).
    pub fn decode_cost(&self, context: u64) -> StepCost {
        self.chunk_cost(1, context, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    #[test]
    fn empty_chunk_is_free() {
        let m = presets::llama_70b();
        assert_eq!(m.chunk_cost(0, 100, 0), StepCost::default());
    }

    #[test]
    fn prefill_flops_near_2_n_params() {
        // Classic estimate: forward FLOPs ≈ 2 × params × tokens for short
        // contexts (attention negligible).
        let m = presets::llama_70b();
        let n = 128u64;
        let cost = m.prefill_cost(n);
        let estimate = 2.0 * m.active_params() as f64 * n as f64;
        let ratio = cost.total_flops() / estimate;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn chunked_prefill_linear_flops_sum_to_whole() {
        let m = presets::qwen_32b();
        let whole = m.prefill_cost(4096);
        let a = m.chunk_cost(2048, 0, 0);
        let b = m.chunk_cost(2048, 2048, 1);
        let sum = a + b;
        assert!((sum.linear_flops - whole.linear_flops).abs() < 1.0);
        assert!((sum.attn_flops - whole.attn_flops).abs() / whole.attn_flops < 1e-12);
        assert_eq!(sum.kv_write_bytes, whole.kv_write_bytes);
        assert_eq!(sum.logit_flops, whole.logit_flops);
    }

    #[test]
    fn decode_kv_reads_grow_with_context() {
        let m = presets::llama_70b();
        let short = m.decode_cost(1_000);
        let long = m.decode_cost(100_000);
        assert!(long.kv_read_bytes > 50 * short.kv_read_bytes);
    }

    #[test]
    fn moe_linear_flops_use_active_params_only() {
        let m = presets::qwen_30b_a3b();
        let dense_equivalent = 2.0 * m.linear_params_active() as f64;
        let cost = m.chunk_cost(1, 0, 0);
        assert!((cost.linear_flops - dense_equivalent).abs() < 1.0);
        // Sanity: far below what total params would give.
        let total_linear =
            u64::from(m.num_layers) * (m.attn_params_per_layer() + m.mlp_params_per_layer_total());
        assert!(cost.linear_flops < 0.2 * 2.0 * total_linear as f64);
    }

    #[test]
    fn step_cost_sums() {
        let m = presets::qwen_32b();
        let parts: StepCost = (0..4).map(|i| m.chunk_cost(10, i * 10, 0)).sum();
        let whole = m.chunk_cost(40, 0, 0);
        assert!((parts.linear_flops - whole.linear_flops).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "logits")]
    fn logit_tokens_bounded_by_new_tokens() {
        let _ = presets::qwen_32b().chunk_cost(1, 0, 2);
    }

    #[test]
    fn dense_streams_all_weights_regardless_of_batch() {
        let m = presets::llama_70b();
        assert_eq!(m.streamed_weight_bytes(1), m.weight_bytes());
        assert_eq!(m.streamed_weight_bytes(100_000), m.weight_bytes());
    }

    #[test]
    fn moe_small_batch_streams_few_experts() {
        let m = presets::qwen_30b_a3b(); // 128 experts, top-8
        let one = m.streamed_weight_bytes(1);
        let big = m.streamed_weight_bytes(10_000);
        assert_eq!(big, m.weight_bytes());
        // One token touches 8 of 128 experts: far less than total.
        assert!(one < m.weight_bytes() / 3, "one-token stream {one} vs total {}", m.weight_bytes());
        assert!(one >= m.active_weight_bytes() / 2);
    }

    #[test]
    fn moe_streamed_bytes_monotone_in_batch() {
        let m = presets::llama_17b_16e();
        let mut prev = 0;
        for t in [1u64, 2, 4, 8, 16, 32, 1000] {
            let s = m.streamed_weight_bytes(t);
            assert!(s >= prev);
            prev = s;
        }
        assert_eq!(prev, m.weight_bytes());
    }

    proptest! {
        #[test]
        fn chunk_cost_additive_in_sequence(
            n1 in 1u64..2000, n2 in 1u64..2000, past in 0u64..10_000,
        ) {
            // Processing n1 then n2 tokens must cost the same attention
            // FLOPs as processing n1+n2 at once.
            let m = presets::llama_70b();
            let split = m.chunk_cost(n1, past, 0) + m.chunk_cost(n2, past + n1, 0);
            let whole = m.chunk_cost(n1 + n2, past, 0);
            prop_assert!((split.attn_flops - whole.attn_flops).abs()
                / whole.attn_flops.max(1.0) < 1e-9);
            prop_assert!((split.linear_flops - whole.linear_flops).abs()
                / whole.linear_flops.max(1.0) < 1e-9);
            prop_assert_eq!(split.kv_write_bytes, whole.kv_write_bytes);
        }

        #[test]
        fn costs_monotone_in_tokens(
            n in 1u64..5000, extra in 1u64..5000, past in 0u64..100_000,
        ) {
            let m = presets::qwen_32b();
            let small = m.chunk_cost(n, past, 0);
            let large = m.chunk_cost(n + extra, past, 0);
            prop_assert!(large.total_flops() > small.total_flops());
            prop_assert!(large.kv_read_bytes >= small.kv_read_bytes);
            prop_assert!(large.kv_write_bytes > small.kv_write_bytes);
        }
    }
}
