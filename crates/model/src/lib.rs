//! Transformer model descriptors and resource accounting.
//!
//! The simulator never executes real weights — it only needs to know, for a
//! given architecture, *how many* floating-point operations and HBM bytes
//! each prefill/decode step costs, and how large the weights and KV cache
//! are. All of that is derivable from the architecture hyper-parameters the
//! paper publishes in Table 4, which this crate encodes:
//!
//! | Model | Params | Layers | Hidden | Q heads | KV heads |
//! |---|---|---|---|---|---|
//! | Llama-70B | 70B | 80 | 8192 | 64 | 8 |
//! | Qwen-32B | 32B | 64 | 5120 | 64 | 8 |
//! | Llama-17B-16E | 109B/17B | 48 | 5120 | 40 | 8 |
//! | Qwen-30B-A3B | 30B/3B | 48 | 2048 | 32 | 4 |
//!
//! * [`config::ModelConfig`] — hyper-parameters, incl. GQA and MoE shapes.
//! * [`config::Precision`] — FP8/FP16 weight and KV-cache data types.
//! * [`accounting`] — FLOPs and bytes per prefill/decode step.
//! * [`presets`] — the four evaluation models of Table 4.
//!
//! # Examples
//!
//! ```
//! use sp_model::presets;
//!
//! let llama = presets::llama_70b();
//! let params = llama.total_params();
//! assert!((68e9..73e9).contains(&(params as f64)));
//! ```

pub mod accounting;
pub mod config;
pub mod presets;

pub use accounting::StepCost;
pub use config::{ModelConfig, MoeConfig, Precision};
