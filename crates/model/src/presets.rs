//! The four evaluation models of Table 4.

use crate::config::{ModelConfig, MoeConfig, Precision};

/// Llama-3.3-70B-Instruct (FP8): the paper's primary dense model.
///
/// 80 layers, hidden 8192, 64 Q / 8 KV heads — 70B parameters.
pub fn llama_70b() -> ModelConfig {
    ModelConfig {
        name: "Llama-70B".into(),
        num_layers: 80,
        hidden_size: 8192,
        q_heads: 64,
        kv_heads: 8,
        head_dim: 128,
        intermediate_size: 28672,
        vocab_size: 128_256,
        weight_precision: Precision::Fp8,
        kv_precision: Precision::Fp16,
        moe: None,
    }
}

/// Qwen3-32B (FP8): the smaller dense model.
///
/// 64 layers, hidden 5120, 64 Q / 8 KV heads — 32B parameters.
pub fn qwen_32b() -> ModelConfig {
    ModelConfig {
        name: "Qwen-32B".into(),
        num_layers: 64,
        hidden_size: 5120,
        q_heads: 64,
        kv_heads: 8,
        head_dim: 128,
        intermediate_size: 25_600,
        vocab_size: 151_936,
        weight_precision: Precision::Fp8,
        kv_precision: Precision::Fp16,
        moe: None,
    }
}

/// Llama-4-Scout-17B-16E (FP8): sparse model, 109B total / 17B active.
///
/// 48 layers, hidden 5120, 40 Q / 8 KV heads, 16 routed experts (top-1)
/// plus a shared expert. §4.6 deploys it as (SP=4, TP=2) because the 109 GB
/// footprint barely fits one 141 GB GPU.
pub fn llama_17b_16e() -> ModelConfig {
    ModelConfig {
        name: "Llama-17B-16E".into(),
        num_layers: 48,
        hidden_size: 5120,
        q_heads: 40,
        kv_heads: 8,
        head_dim: 128,
        intermediate_size: 0, // MoE layers only
        vocab_size: 202_048,
        weight_precision: Precision::Fp8,
        kv_precision: Precision::Fp16,
        moe: Some(MoeConfig {
            num_experts: 16,
            active_experts: 1,
            expert_intermediate: 8192,
            shared_intermediate: 8192,
        }),
    }
}

/// Qwen3-30B-A3B (FP8): sparse model, 30B total / 3B active.
///
/// 48 layers, hidden 2048, 32 Q / 4 KV heads, 128 experts (top-8). With
/// only 4 KV heads it cannot scale past 4 GPUs without the paper's KV-cache
/// replication (§3.2.1).
pub fn qwen_30b_a3b() -> ModelConfig {
    ModelConfig {
        name: "Qwen-30B-A3B".into(),
        num_layers: 48,
        hidden_size: 2048,
        q_heads: 32,
        kv_heads: 4,
        head_dim: 128,
        intermediate_size: 0, // MoE layers only
        vocab_size: 151_936,
        weight_precision: Precision::Fp8,
        kv_precision: Precision::Fp16,
        moe: Some(MoeConfig {
            num_experts: 128,
            active_experts: 8,
            expert_intermediate: 768,
            shared_intermediate: 0,
        }),
    }
}

/// Llama-3.1-8B-Instruct (FP8): a small dense model for hardware- and
/// scale-sensitivity studies (not part of Table 4).
pub fn llama_8b() -> ModelConfig {
    ModelConfig {
        name: "Llama-8B".into(),
        num_layers: 32,
        hidden_size: 4096,
        q_heads: 32,
        kv_heads: 8,
        head_dim: 128,
        intermediate_size: 14_336,
        vocab_size: 128_256,
        weight_precision: Precision::Fp8,
        kv_precision: Precision::Fp16,
        moe: None,
    }
}

/// All four Table 4 models, ordered from larger to smaller as in Figure 17.
pub fn all_table4() -> Vec<ModelConfig> {
    vec![llama_70b(), qwen_32b(), llama_17b_16e(), qwen_30b_a3b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for m in all_table4().into_iter().chain([llama_8b()]) {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn llama_8b_param_count() {
        let p = llama_8b().total_params() as f64;
        assert!((7.5e9..9e9).contains(&p), "Llama-8B params {p:.3e}");
    }

    #[test]
    fn llama_70b_param_count() {
        let p = llama_70b().total_params() as f64;
        assert!((68e9..73e9).contains(&p), "Llama-70B params {p:.3e}");
    }

    #[test]
    fn qwen_32b_param_count() {
        let p = qwen_32b().total_params() as f64;
        assert!((31e9..34e9).contains(&p), "Qwen-32B params {p:.3e}");
    }

    #[test]
    fn llama_17b_16e_total_and_active() {
        let m = llama_17b_16e();
        let total = m.total_params() as f64;
        let active = m.active_params() as f64;
        assert!((100e9..115e9).contains(&total), "Scout total {total:.3e}");
        assert!((15e9..19e9).contains(&active), "Scout active {active:.3e}");
    }

    #[test]
    fn qwen_30b_a3b_total_and_active() {
        let m = qwen_30b_a3b();
        let total = m.total_params() as f64;
        let active = m.active_params() as f64;
        assert!((28e9..33e9).contains(&total), "A3B total {total:.3e}");
        assert!((2.5e9..4.5e9).contains(&active), "A3B active {active:.3e}");
    }

    #[test]
    fn scout_fp8_footprint_near_109_gb() {
        // §3.2.2: "Llama-17B-16E (FP8) has 109 GB memory footprint".
        let gb = llama_17b_16e().weight_bytes() as f64 / 1e9;
        assert!((100.0..115.0).contains(&gb), "Scout FP8 footprint {gb:.1} GB");
    }

    #[test]
    fn table4_ordering_is_large_to_small_active() {
        let models = all_table4();
        assert_eq!(models[0].name, "Llama-70B");
        assert_eq!(models[3].name, "Qwen-30B-A3B");
        assert!(models[0].active_params() > models[3].active_params());
    }
}
