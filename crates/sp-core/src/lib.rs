//! Shared scoped fan-out executor for the workspace.
//!
//! There is exactly one threading code path in the simulator:
//! [`map_with`] (and its [`map`] convenience wrapper, which sizes itself
//! via [`default_threads`] / the `SP_THREADS` override). The horizon
//! windows in `ClusterSim` and the sweep harness in `sp-bench` both fan
//! out through it.
//!
//! Two properties matter more than raw speed here:
//!
//! * **Order determinism.** Output slot `i` always holds `f(&items[i])`,
//!   no matter how indices were interleaved across threads, so callers
//!   that demand byte-identical results at any thread count can use the
//!   executor freely.
//! * **Re-entrancy.** A task that itself calls [`map_with`] (a
//!   `ClusterSim` nested as a fleet node inside another `ClusterSim`)
//!   degrades to an inline sequential loop instead of deadlocking on the
//!   pool.
//!
//! The executor keeps a single lazily-grown, process-wide pool of parked
//! worker threads; fan-outs are typically sub-millisecond windows, so
//! spawning per call would dominate the work. Workers live for the
//! process lifetime (they are parked on a condvar when idle).

pub mod profile;

use std::any::Any;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, TryLockError};
use std::thread;

/// Hard cap on pool workers, regardless of what `SP_THREADS` asks for.
const MAX_WORKERS: usize = 64;

/// The default fan-out width: the `SP_THREADS` environment variable if
/// it parses as a positive integer, otherwise the machine's available
/// parallelism (and `1` if even that is unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every element of `items` using [`default_threads`]
/// worker threads, returning results in input order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(default_threads(), items, f)
}

/// Applies `f` to every element of `items` across at most `threads`
/// concurrent claimers (the calling thread is one of them), returning
/// results in input order.
///
/// Runs inline — same results, one thread — when `threads <= 1`, when
/// called from inside a pool worker (re-entrant fan-out), or when
/// another fan-out already occupies the pool.
///
/// # Panics
///
/// If `f` panics for some element, the first such payload is re-raised
/// on the calling thread once every claimed element has finished.
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::new();
    map_into(threads, items, f, &mut out);
    out
}

/// [`map_with`] into a caller-owned buffer: `out` is cleared and filled
/// with `f(&items[i])` in input order, reusing its existing capacity.
/// Hot callers (the `ClusterSim` horizon windows fan out once per
/// window) keep one buffer alive across calls so the steady state
/// allocates nothing.
///
/// # Panics
///
/// If `f` panics for some element, the first such payload is re-raised
/// on the calling thread once every claimed element has finished; `out`
/// is left empty (already-written results leak rather than risk a
/// double drop — a fan-out panic is fatal to the run anyway).
pub fn map_into<T, R, F>(threads: usize, items: &[T], f: F, out: &mut Vec<R>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    out.clear();
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = threads.min(n).min(MAX_WORKERS + 1);
    if threads <= 1 || IN_WORKER.with(|w| w.get()) {
        out.extend(items.iter().map(f));
        return;
    }
    let pool = pool();
    let _submit = match pool.submit.try_lock() {
        Ok(g) => g,
        // A poisoned submit lock just means an earlier fan-out panicked;
        // the pool itself is healthy, so keep using it.
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        // Another fan-out is mid-flight (a sibling call from a different
        // thread): run inline rather than interleave two jobs.
        Err(TryLockError::WouldBlock) => {
            out.extend(items.iter().map(f));
            return;
        }
    };
    pool.ensure_workers(threads - 1);

    // Output slots in `out`'s spare capacity, each written exactly once
    // by whichever participant claims that index; the length is only
    // raised once every slot is initialized.
    out.reserve(n);
    let out_ptr = SendPtr(out.spare_capacity_mut().as_mut_ptr());
    let task = move |i: usize| {
        // Rebind the wrapper so edition-2021 precise capture takes the
        // `Send + Sync` wrapper, not the bare raw pointer inside it.
        #[allow(clippy::redundant_locals)]
        let out_ptr = out_ptr;
        let r = f(&items[i]);
        // SAFETY: each index in 0..n is claimed exactly once (the shared
        // cursor hands them out), so this write is unaliased; the
        // coordinator does not read the slots until `done == n`.
        unsafe { (out_ptr.0.add(i)).write(MaybeUninit::new(r)) };
    };
    let task_obj: &(dyn Fn(usize) + Sync) = &task;
    // SAFETY: the job is fully retired (every participant has left
    // `run_job` and decremented `in_flight`) before this function
    // returns, so the erased borrow never outlives `task`.
    let task_ptr: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(task_obj as *const (dyn Fn(usize) + Sync + '_)) };
    let job = Job {
        task: task_ptr,
        n,
        cursor: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panic: Mutex::new(None),
    };

    {
        let mut st = lock(&pool.state);
        debug_assert_eq!(st.in_flight, 0, "previous job not fully retired");
        st.epoch = st.epoch.wrapping_add(1);
        st.job = Some(JobPtr(&job));
        st.slots = threads - 1;
        pool.work_cv.notify_all();
    }
    // The coordinator is a claimer too — on a saturated machine it does
    // most of the work itself.
    run_job(&job);
    // Every index is claimed; spin out the claimed-but-unfinished tail.
    while job.done.load(Ordering::Acquire) < n {
        thread::yield_now();
    }
    {
        let mut st = lock(&pool.state);
        st.job = None;
        st.slots = 0;
        // Workers may still hold a pointer to `job` (they copied it when
        // joining); wait until every one of them has left before the
        // stack frame — and `task` — can be dropped.
        while st.in_flight > 0 {
            st = pool.idle_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    if let Some(payload) = lock(&job.panic).take() {
        // Leak the slots that were written (len stays 0) rather than
        // guess which ones are initialized; a fan-out panic is fatal to
        // the run anyway.
        resume_unwind(payload);
    }
    // SAFETY: `done == n` with Release increments paired by the Acquire
    // load above, so every slot write happens-before this point, and
    // each of the n slots was written exactly once.
    unsafe { out.set_len(n) };
}

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A published fan-out. Participants claim indices `0..n` from `cursor`,
/// run `task(i)`, and bump `done` once per finished index.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    cursor: AtomicUsize,
    done: AtomicUsize,
    /// First panic payload raised by `task`, re-raised by the coordinator.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

#[derive(Clone, Copy)]
struct JobPtr(*const Job);
// SAFETY: the coordinator keeps the pointee alive until `in_flight`
// drops to zero, and `Job` only exposes Sync interior (atomics + mutex).
unsafe impl Send for JobPtr {}

struct SendPtr<R>(*mut MaybeUninit<R>);
// Manual impls: the derive would demand `R: Copy` for a plain pointer.
impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}
// SAFETY: distinct participants write disjoint slots (see `map_with`).
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

struct PoolState {
    /// Bumped once per published job so parked workers can tell a fresh
    /// job from the one they already worked on.
    epoch: u64,
    job: Option<JobPtr>,
    /// Remaining worker claim slots for the current job; bounds actual
    /// parallelism to what the caller asked for even when the pool has
    /// more parked workers.
    slots: usize,
    /// Workers currently inside `run_job` for the current (or just
    /// retired) job.
    in_flight: usize,
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    /// Serializes top-level fan-outs; `try_lock` failure means another
    /// one is mid-flight and the caller should run inline.
    submit: Mutex<()>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { epoch: 0, job: None, slots: 0, in_flight: 0, workers: 0 }),
        work_cv: Condvar::new(),
        idle_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

impl Pool {
    /// Grows the pool to at least `target` parked workers (capped at
    /// [`MAX_WORKERS`]); workers are spawned once and live forever.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(MAX_WORKERS);
        let mut st = lock(&self.state);
        while st.workers < target {
            st.workers += 1;
            let name = format!("sp-core-{}", st.workers);
            thread::Builder::new()
                .name(name)
                .spawn(move || self.worker_loop())
                .expect("spawning sp-core pool worker");
        }
    }

    fn worker_loop(&'static self) {
        IN_WORKER.with(|w| w.set(true));
        let mut seen = 0u64;
        loop {
            let job_ptr = {
                let mut st = lock(&self.state);
                loop {
                    if st.epoch != seen {
                        seen = st.epoch;
                        if st.slots > 0 {
                            if let Some(j) = st.job {
                                st.slots -= 1;
                                st.in_flight += 1;
                                break j;
                            }
                        }
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            // SAFETY: `in_flight` was incremented under the lock while
            // the job was still published, so the coordinator will not
            // retire the pointee until this participant decrements it.
            run_job(unsafe { &*job_ptr.0 });
            let mut st = lock(&self.state);
            st.in_flight -= 1;
            if st.in_flight == 0 {
                self.idle_cv.notify_all();
            }
        }
    }
}

/// Claims indices from the job's shared cursor until exhausted. Panics
/// from the task are captured (first wins) and the index still counts as
/// done, so the coordinator's completion spin always terminates.
fn run_job(job: &Job) {
    // SAFETY: see the coordinator — the closure outlives the job.
    let task = unsafe { &*job.task };
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            let mut first = lock(&job.panic);
            if first.is_none() {
                *first = Some(payload);
            }
        }
        job.done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_with_preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let got = map_with(threads, &items, |&x| x * x);
            assert_eq!(got, expect, "order broke at {threads} threads");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_with(8, &[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn nested_fan_out_runs_inline_and_stays_correct() {
        let outer: Vec<u64> = (0..16).collect();
        let got = map_with(4, &outer, |&x| {
            let inner: Vec<u64> = (0..8).collect();
            map_with(4, &inner, |&y| x * 100 + y).iter().sum::<u64>()
        });
        let expect: Vec<u64> = outer.iter().map(|&x| (0..8).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let items: Vec<u32> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map_with(4, &items, |&x| {
                assert!(x != 40, "boom at 40");
                x
            })
        }));
        assert!(caught.is_err(), "panic in task must reach the caller");
        // The pool must still be usable after a panicked job.
        let got = map_with(4, &items, |&x| x + 1);
        assert_eq!(got, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let seq = map_with(1, &items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        for threads in [2, 8] {
            let par = map_with(threads, &items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn map_into_reuses_the_callers_buffer() {
        let items: Vec<u64> = (0..300).collect();
        let mut out: Vec<u64> = Vec::new();
        map_into(8, &items, |&x| x + 1, &mut out);
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(out, expect);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        // Refilling an equal-or-smaller fan-out must not reallocate.
        for threads in [1, 2, 8] {
            map_into(threads, &items, |&x| x * 2, &mut out);
            assert_eq!(out.capacity(), cap, "buffer reallocated at {threads} threads");
            assert_eq!(out.as_ptr(), ptr, "buffer moved at {threads} threads");
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        map_into(4, &items[..10], |&x| x, &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn sp_threads_env_overrides_default() {
        std::env::set_var("SP_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("SP_THREADS", "0");
        assert_eq!(default_threads(), 1, "zero clamps to one");
        std::env::remove_var("SP_THREADS");
        assert!(default_threads() >= 1);
    }
}
