//! Opt-in per-phase wall-clock profiling (`SP_PROFILE=1`).
//!
//! The simulator's hot loop has a handful of broad phases — batch
//! build, iteration pricing, calendar upkeep, window merge, admission
//! scans, and shape-stable window detection — and knowing
//! where wall time goes is the first question of every perf PR. Setting
//! `SP_PROFILE=1` makes the instrumented call sites accumulate
//! wall-clock nanoseconds per phase into process-wide atomics;
//! `sp_bench::probes::print_profile` renders the breakdown at the end
//! of a run. When the variable is unset (the default), every probe is a
//! single cached-boolean branch — nothing is timed and nothing is
//! stored, so the instrumentation stays in release builds.
//!
//! Timers nest naively: a phase timed inside another phase counts
//! toward both (pricing runs inside the window-stepping wall, for
//! example), so the columns are a breakdown of *where* time is spent,
//! not a partition that sums to the total.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The instrumented phases of the simulation hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `Engine::build_batch`: decode scan + chunked-prefill packing.
    BatchBuild,
    /// `Engine::price_iteration`: plan evaluation / memo traffic.
    Pricing,
    /// `ClusterSim` calendar upkeep: reschedules and settles.
    Calendar,
    /// Horizon-window merge: outcome folds, retires, republish.
    Merge,
    /// `Engine::admit`: wait-queue candidate scans + KV reservation.
    Admission,
    /// `Engine::step_run` shape-stable window detection: composition
    /// scan + admission-gate validity check.
    WindowDetect,
}

const PHASES: usize = 6;
const NAMES: [&str; PHASES] =
    ["batch build", "pricing", "calendar", "merge", "admission", "window detect"];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static NANOS: [AtomicU64; PHASES] = [ZERO; PHASES];
static CALLS: [AtomicU64; PHASES] = [ZERO; PHASES];

static ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether profiling is on (`SP_PROFILE` set to anything but `0` or
/// empty). Cached on first call.
pub fn enabled() -> bool {
    *ENABLED.get_or_init(|| {
        std::env::var("SP_PROFILE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// A running phase timer; accumulates on drop. Only ever `Some` when
/// [`enabled`] — bind it to hold a scope open:
/// `let _t = profile::start(Phase::Pricing);`.
pub struct Timer {
    phase: Phase,
    start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        let idx = self.phase as usize;
        let nanos = self.start.elapsed().as_nanos() as u64;
        NANOS[idx].fetch_add(nanos, Ordering::Relaxed);
        CALLS[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// Starts timing `phase`, or returns `None` (a single branch) when
/// profiling is off.
#[inline]
pub fn start(phase: Phase) -> Option<Timer> {
    if enabled() {
        Some(Timer { phase, start: Instant::now() })
    } else {
        None
    }
}

/// Snapshot of `(phase name, accumulated seconds, call count)` per
/// phase, in declaration order.
pub fn snapshot() -> Vec<(&'static str, f64, u64)> {
    (0..PHASES)
        .map(|i| {
            (
                NAMES[i],
                NANOS[i].load(Ordering::Relaxed) as f64 * 1e-9,
                CALLS[i].load(Ordering::Relaxed),
            )
        })
        .collect()
}

/// Zeroes the accumulators (e.g. between bench scenarios).
pub fn reset() {
    for i in 0..PHASES {
        NANOS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_all_phases_and_reset_zeroes() {
        reset();
        let snap = snapshot();
        assert_eq!(snap.len(), 6);
        assert!(snap.iter().all(|&(_, secs, calls)| secs == 0.0 && calls == 0));
        // Accumulate directly (the env-gated `start` may be off here).
        let t = Timer { phase: Phase::Pricing, start: Instant::now() };
        drop(t);
        let snap = snapshot();
        assert_eq!(snap[1].0, "pricing");
        assert_eq!(snap[1].2, 1);
        reset();
        assert!(snapshot().iter().all(|&(_, _, calls)| calls == 0));
    }
}
