//! Speculative-decoding presets.
//!
//! The mechanism lives in the engine ([`sp_engine::SpecDecode`]): a draft
//! source proposes `k` tokens, the target model verifies them in one
//! forward pass, and a geometric prefix is accepted. This module provides
//! the presets used in the paper's production evaluation and helpers for
//! reasoning about expected speedups.

use sp_engine::SpecDecode;

/// SuffixDecoding-style speculation (Oliaro et al., 2025): long drafts
/// from a suffix tree of prior generations; high acceptance on the
/// repetitive agentic/code traffic of §4.5.
pub fn suffix_decoding() -> SpecDecode {
    SpecDecode::new(7, 0.66)
}

/// Conservative n-gram speculation, the "best available" fallback enabled
/// for baseline frameworks in Figure 16.
pub fn ngram() -> SpecDecode {
    SpecDecode::new(3, 0.5)
}

/// Expected decode-step speedup of `sd` assuming decode is memory-bound
/// (verification of `k+1` tokens costs about one un-speculated step).
pub fn ideal_speedup(sd: &SpecDecode) -> f64 {
    sd.expected_emitted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Deployment, DeploymentKind};
    use sp_cluster::NodeSpec;
    use sp_model::presets;
    use sp_workload::synthetic;

    #[test]
    fn expected_emitted_formula() {
        let sd = SpecDecode::new(3, 0.5);
        // 1 + 0.5 + 0.25 + 0.125 = 1.875
        assert!((sd.expected_emitted() - 1.875).abs() < 1e-12);
    }

    #[test]
    fn suffix_decoding_beats_ngram() {
        assert!(ideal_speedup(&suffix_decoding()) > ideal_speedup(&ngram()));
        assert!(ideal_speedup(&suffix_decoding()) > 2.0);
    }

    #[test]
    fn spec_decode_cuts_decode_iterations() {
        let node = NodeSpec::p5en_48xlarge();
        let trace = synthetic::single(1024, 200);
        let mut plain = Deployment::builder(node, presets::llama_70b())
            .kind(DeploymentKind::TensorParallel)
            .build()
            .unwrap();
        let mut spec = Deployment::builder(node, presets::llama_70b())
            .kind(DeploymentKind::TensorParallel)
            .spec_decode(suffix_decoding())
            .build()
            .unwrap();
        let plain_report = plain.run(&trace);
        let spec_report = spec.run(&trace);
        assert!(
            (spec_report.iterations() as f64) < plain_report.iterations() as f64 / 1.8,
            "spec {} vs plain {} iterations",
            spec_report.iterations(),
            plain_report.iterations()
        );
        // Same client-visible tokens.
        assert_eq!(spec_report.metrics().total_tokens(), plain_report.metrics().total_tokens());
    }

    #[test]
    fn spec_decode_improves_completion_time() {
        let node = NodeSpec::p5en_48xlarge();
        let trace = synthetic::single(1024, 250);
        let run = |sd: Option<SpecDecode>| {
            let mut b = Deployment::builder(node, presets::llama_70b()).kind(DeploymentKind::Shift);
            if let Some(sd) = sd {
                b = b.spec_decode(sd);
            }
            let mut dep = b.build().unwrap();
            let mut r = dep.run(&trace);
            r.metrics_mut().completion().median().unwrap()
        };
        let plain = run(None);
        let fast = run(Some(suffix_decoding()));
        assert!(fast < 0.7 * plain, "spec completion {fast:.3}s vs plain {plain:.3}s");
    }
}
