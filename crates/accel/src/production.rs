//! The §4.5 production composition and Figure 16 baseline profiles.

use crate::specdec;
use crate::swiftkv::SwiftKv;
use shift_core::{Deployment, DeploymentError, DeploymentKind};
use sp_cluster::NodeSpec;
use sp_engine::SpecDecode;
use sp_metrics::Dur;
use sp_model::ModelConfig;
use sp_parallel::EngineOverhead;

/// A composed production deployment: Shift Parallelism plus optional
/// SwiftKV and speculative decoding.
///
/// # Examples
///
/// ```
/// use sp_accel::ProductionStack;
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
///
/// let dep = ProductionStack::arctic_like()
///     .deploy(NodeSpec::p5en_48xlarge(), presets::llama_70b());
/// assert!(dep.is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductionStack {
    /// Parallelism strategy (default: Shift).
    pub kind: DeploymentKind,
    /// SwiftKV transform, if enabled.
    pub swiftkv: Option<SwiftKv>,
    /// Speculative decoding, if enabled.
    pub spec_decode: Option<SpecDecode>,
    /// Engine CPU overhead profile.
    pub overhead: EngineOverhead,
}

impl ProductionStack {
    /// Plain Shift Parallelism, no extra accelerations.
    pub fn shift_only() -> ProductionStack {
        ProductionStack {
            kind: DeploymentKind::Shift,
            swiftkv: None,
            spec_decode: None,
            overhead: EngineOverhead::default(),
        }
    }

    /// The paper's production stack (ArcticInference): Shift Parallelism +
    /// SwiftKV + SuffixDecoding-style speculation.
    pub fn arctic_like() -> ProductionStack {
        ProductionStack {
            kind: DeploymentKind::Shift,
            swiftkv: Some(SwiftKv::default()),
            spec_decode: Some(specdec::suffix_decoding()),
            overhead: EngineOverhead::default(),
        }
    }

    /// Adds SwiftKV.
    pub fn with_swiftkv(mut self, sk: SwiftKv) -> ProductionStack {
        self.swiftkv = Some(sk);
        self
    }

    /// Adds speculative decoding.
    pub fn with_spec_decode(mut self, sd: SpecDecode) -> ProductionStack {
        self.spec_decode = Some(sd);
        self
    }

    /// Builds the deployment on `node` for `model`.
    ///
    /// # Errors
    ///
    /// Propagates [`DeploymentError`] from the underlying builder.
    pub fn deploy(
        &self,
        node: NodeSpec,
        model: ModelConfig,
    ) -> Result<Deployment, DeploymentError> {
        let mut b = Deployment::builder(node, model)
            .kind(self.kind)
            .overhead(self.overhead)
            .throughput_bin(Dur::from_secs(1.0));
        if let Some(sk) = self.swiftkv {
            b = b.prefill_flops_scale(sk.prefill_flops_scale());
        }
        if let Some(sd) = self.spec_decode {
            b = b.spec_decode(sd);
        }
        b.build()
    }
}

/// Engine-overhead profiles standing in for the frameworks Figure 16
/// compares "out-of-the-box": the forward-pass model is identical (same
/// GPUs, same math), so frameworks differ by scheduler overhead and which
/// speculation they ship.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkProfile {
    /// Framework name as in Figure 16.
    pub name: &'static str,
    /// Per-iteration CPU overhead.
    pub overhead: EngineOverhead,
    /// The best speculation the framework enables by default.
    pub spec_decode: Option<SpecDecode>,
}

impl FrameworkProfile {
    /// vLLM v0.9-like profile.
    pub fn vllm() -> FrameworkProfile {
        FrameworkProfile {
            name: "vLLM",
            overhead: EngineOverhead::vllm_like(),
            spec_decode: Some(specdec::ngram()),
        }
    }

    /// SGLang v0.4-like profile: leaner scheduler.
    pub fn sglang() -> FrameworkProfile {
        FrameworkProfile {
            name: "SGLang",
            overhead: EngineOverhead {
                base: Dur::from_millis(1.8),
                per_seq: Dur::from_micros(8.0),
            },
            spec_decode: Some(specdec::ngram()),
        }
    }

    /// TensorRT-LLM v0.18-like profile: compiled runtime, lowest overhead,
    /// draft-model speculation.
    pub fn trt_llm() -> FrameworkProfile {
        FrameworkProfile {
            name: "TRT-LLM",
            overhead: EngineOverhead {
                base: Dur::from_millis(1.2),
                per_seq: Dur::from_micros(6.0),
            },
            spec_decode: Some(SpecDecode::new(4, 0.55)),
        }
    }

    /// Deploys this framework profile with a given parallelism kind.
    ///
    /// # Errors
    ///
    /// Propagates [`DeploymentError`] from the underlying builder.
    pub fn deploy(
        &self,
        node: NodeSpec,
        model: ModelConfig,
        kind: DeploymentKind,
    ) -> Result<Deployment, DeploymentError> {
        let mut b = Deployment::builder(node, model).kind(kind).overhead(self.overhead);
        if let Some(sd) = self.spec_decode {
            b = b.spec_decode(sd);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;
    use sp_workload::{bursty::BurstyConfig, synthetic};

    fn node() -> NodeSpec {
        NodeSpec::p5en_48xlarge()
    }

    #[test]
    fn compounding_reduces_completion_time() {
        // Figure 16: each added optimization strictly improves completion
        // time on interactive traffic.
        let trace = synthetic::single(8192, 250);
        let run = |stack: ProductionStack| {
            let mut dep = stack.deploy(node(), presets::llama_70b()).unwrap();
            let mut r = dep.run(&trace);
            r.metrics_mut().completion().median().unwrap()
        };
        let shift = run(ProductionStack::shift_only());
        let with_swift = run(ProductionStack::shift_only().with_swiftkv(SwiftKv::default()));
        let full = run(ProductionStack::arctic_like());
        assert!(with_swift < shift, "{with_swift} !< {shift}");
        assert!(full < with_swift, "{full} !< {with_swift}");
        // Headline shape: several-fold faster than plain shift.
        assert!(full < 0.55 * shift, "full stack {full:.3}s vs shift {shift:.3}s");
    }

    #[test]
    fn production_stack_beats_baseline_frameworks_on_completion() {
        // Figure 16's claim: lowest completion time *and* at-least-par
        // throughput in one deployment.
        let trace = BurstyConfig {
            duration: sp_metrics::Dur::from_secs(60.0),
            bursts: 1,
            burst_size: 60,
            ..BurstyConfig::default()
        }
        .generate();
        let model = presets::llama_70b;

        let mut ours = ProductionStack::arctic_like().deploy(node(), model()).unwrap();
        let mut ours_report = ours.run(&trace);
        let ours_completion = ours_report.metrics_mut().completion().median().unwrap();
        let ours_tput = ours_report.combined_throughput();

        for profile in [FrameworkProfile::vllm(), FrameworkProfile::sglang()] {
            // Latency-optimized baseline: TP.
            let mut tp = profile.deploy(node(), model(), DeploymentKind::TensorParallel).unwrap();
            let mut tp_report = tp.run(&trace);
            let tp_completion = tp_report.metrics_mut().completion().median().unwrap();
            assert!(
                ours_completion < tp_completion,
                "{}-TP completion {tp_completion:.2}s vs ours {ours_completion:.2}s",
                profile.name
            );
            // Throughput-optimized baseline: DP.
            let mut dp = profile.deploy(node(), model(), DeploymentKind::DataParallel).unwrap();
            let dp_report = dp.run(&trace);
            assert!(
                ours_tput > 0.9 * dp_report.combined_throughput(),
                "{}-DP throughput {:.0} vs ours {:.0}",
                profile.name,
                dp_report.combined_throughput(),
                ours_tput
            );
        }
    }

    #[test]
    fn framework_profiles_differ_in_overhead() {
        assert!(
            FrameworkProfile::trt_llm().overhead.base < FrameworkProfile::sglang().overhead.base
        );
        assert!(FrameworkProfile::sglang().overhead.base < FrameworkProfile::vllm().overhead.base);
    }
}
