//! SwiftKV prefill-compute reduction.
//!
//! SwiftKV (Qiao et al., 2025) transforms the model so the KV cache of the
//! later layers is computed from an earlier layer's hidden state
//! ("SingleInputKV"): prompt tokens skip the remaining layers' attention
//! and MLP compute. With the standard 50% layer cut this removes roughly
//! half of the prefill GEMM work while leaving decode untouched.

/// SwiftKV configuration: the fraction of layers whose prefill compute is
/// skipped.
///
/// # Examples
///
/// ```
/// use sp_accel::SwiftKv;
///
/// let sk = SwiftKv::new(0.5);
/// assert_eq!(sk.prefill_flops_scale(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwiftKv {
    skip_fraction: f64,
}

impl SwiftKv {
    /// Creates a SwiftKV transform skipping `skip_fraction` of prefill
    /// layer compute.
    ///
    /// # Panics
    ///
    /// Panics if `skip_fraction` is not in `[0, 1)`.
    pub fn new(skip_fraction: f64) -> SwiftKv {
        assert!(
            (0.0..1.0).contains(&skip_fraction),
            "skip fraction must be in [0, 1), got {skip_fraction}"
        );
        SwiftKv { skip_fraction }
    }

    /// Fraction of prefill layer compute skipped.
    pub fn skip_fraction(&self) -> f64 {
        self.skip_fraction
    }

    /// Multiplier on prefill linear FLOPs (the
    /// [`shift_core::DeploymentBuilder::prefill_flops_scale`] input).
    pub fn prefill_flops_scale(&self) -> f64 {
        1.0 - self.skip_fraction
    }
}

impl Default for SwiftKv {
    /// The published 50%-cut SwiftKV.
    fn default() -> SwiftKv {
        SwiftKv::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Deployment, DeploymentKind};
    use sp_cluster::NodeSpec;
    use sp_model::presets;
    use sp_workload::synthetic;

    #[test]
    fn default_halves_prefill_compute() {
        assert_eq!(SwiftKv::default().prefill_flops_scale(), 0.5);
    }

    #[test]
    #[should_panic(expected = "skip fraction")]
    fn full_skip_rejected() {
        let _ = SwiftKv::new(1.0);
    }

    #[test]
    fn swiftkv_reduces_ttft_not_tpot() {
        let node = NodeSpec::p5en_48xlarge();
        let build = |scale: f64| {
            Deployment::builder(node, presets::llama_70b())
                .kind(DeploymentKind::Shift)
                .prefill_flops_scale(scale)
                .build()
                .unwrap()
        };
        let trace = synthetic::single(16_384, 64);
        let mut plain = build(1.0).run(&trace);
        let mut swift = build(SwiftKv::default().prefill_flops_scale()).run(&trace);
        let ttft_plain = plain.metrics_mut().ttft().median().unwrap();
        let ttft_swift = swift.metrics_mut().ttft().median().unwrap();
        assert!(
            ttft_swift < 0.8 * ttft_plain,
            "SwiftKV TTFT {ttft_swift:.4}s vs plain {ttft_plain:.4}s"
        );
        let tpot_plain = plain.metrics_mut().tpot().median().unwrap();
        let tpot_swift = swift.metrics_mut().tpot().median().unwrap();
        assert!((tpot_swift / tpot_plain - 1.0).abs() < 0.05, "decode should be untouched");
    }
}
