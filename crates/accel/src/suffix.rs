//! SuffixDecoding (Oliaro et al., 2025): model-free speculative drafts
//! from a suffix trie over previously generated text.
//!
//! The engine consumes speculation as a `(draft_len, acceptance)` pair
//! ([`sp_engine::SpecDecode`]); this module supplies the *mechanism*
//! behind those numbers: a trie of observed token suffixes that proposes
//! the historical continuation of the current context's longest matching
//! suffix, plus an empirical harness that measures the acceptance such
//! drafts would achieve on a token stream — grounding the preset used in
//! the Figure 16 composition.

use sp_engine::SpecDecode;
use std::collections::HashMap;

/// A bounded-depth suffix trie over token streams.
///
/// # Examples
///
/// ```
/// use sp_accel::suffix::SuffixTree;
///
/// let mut tree = SuffixTree::new(4);
/// tree.observe(&[1, 2, 3, 4, 5]);
/// // After seeing "…2 3", history continued with 4, 5.
/// assert_eq!(tree.draft(&[9, 2, 3], 2), vec![4, 5]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SuffixTree {
    max_depth: usize,
    root: Node,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<u32, Node>,
    /// Most frequent next token after this path, with its count.
    best_next: Option<(u32, u32)>,
    next_counts: HashMap<u32, u32>,
}

impl Node {
    fn record_next(&mut self, token: u32) {
        let c = self.next_counts.entry(token).or_insert(0);
        *c += 1;
        let c = *c;
        if self.best_next.is_none_or(|(_, best)| c >= best) {
            self.best_next = Some((token, c));
        }
    }
}

impl SuffixTree {
    /// Creates a trie that indexes suffixes up to `max_depth` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero.
    pub fn new(max_depth: usize) -> SuffixTree {
        assert!(max_depth > 0, "suffix depth must be positive");
        SuffixTree { max_depth, root: Node::default() }
    }

    /// Indexes every suffix of `stream` (bounded by the depth) together
    /// with its observed continuation.
    pub fn observe(&mut self, stream: &[u32]) {
        for next_pos in 1..stream.len() {
            let next = stream[next_pos];
            let start = next_pos.saturating_sub(self.max_depth);
            // Walk the suffix ending at next_pos-1 backwards into the trie:
            // path = reversed context, so lookup is a simple walk.
            let mut node = &mut self.root;
            node.record_next(next);
            for &tok in stream[start..next_pos].iter().rev() {
                node = node.children.entry(tok).or_default();
                node.record_next(next);
            }
        }
    }

    /// Drafts up to `k` tokens continuing `context`, by repeatedly taking
    /// the most frequent historical next-token of the longest matching
    /// suffix. Returns fewer than `k` tokens when history runs dry.
    pub fn draft(&self, context: &[u32], k: usize) -> Vec<u32> {
        let mut ctx: Vec<u32> = context.to_vec();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            match self.predict_next(&ctx) {
                Some(tok) => {
                    out.push(tok);
                    ctx.push(tok);
                }
                None => break,
            }
        }
        out
    }

    /// The most frequent next token after the longest indexed suffix of
    /// `context`, or `None` if even the empty suffix has no statistics.
    pub fn predict_next(&self, context: &[u32]) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.best_next;
        for &tok in context.iter().rev().take(self.max_depth) {
            match node.children.get(&tok) {
                Some(child) => {
                    node = child;
                    if child.best_next.is_some() {
                        best = child.best_next;
                    }
                }
                None => break,
            }
        }
        best.map(|(tok, _)| tok)
    }
}

/// Result of replaying speculative decoding over a token stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceReport {
    /// Verification steps taken.
    pub steps: u64,
    /// Tokens emitted (always ≥ steps: 1 guaranteed + accepted drafts).
    pub emitted: u64,
    /// Per-draft-token acceptance probability estimate.
    pub acceptance: f64,
}

impl AcceptanceReport {
    /// Mean tokens per verification step.
    pub fn speedup(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.emitted as f64 / self.steps as f64
        }
    }

    /// An engine [`SpecDecode`] calibrated from this measurement.
    pub fn to_spec_decode(&self, draft_len: u32) -> SpecDecode {
        SpecDecode::new(draft_len, self.acceptance.clamp(0.0, 0.99))
    }
}

/// Replays greedy speculative decoding of `target` with drafts of length
/// `k` from `tree` (already trained on prior streams), measuring how many
/// draft tokens the target accepts.
pub fn measure_acceptance(tree: &SuffixTree, target: &[u32], k: usize) -> AcceptanceReport {
    let mut pos = 1usize; // context = target[..pos]
    let mut steps = 0u64;
    let mut emitted = 0u64;
    let mut drafted = 0u64;
    let mut accepted = 0u64;
    while pos < target.len() {
        steps += 1;
        let draft = tree.draft(&target[..pos], k);
        let mut ok = 0usize;
        for (i, &d) in draft.iter().enumerate() {
            if pos + i < target.len() && target[pos + i] == d {
                ok += 1;
            } else {
                break;
            }
        }
        drafted += draft.len() as u64;
        accepted += ok as u64;
        // Accepted prefix + the one token verification always yields.
        let advance = (ok + 1).min(target.len() - pos);
        emitted += advance as u64;
        pos += advance;
    }
    AcceptanceReport {
        steps,
        emitted,
        acceptance: if drafted == 0 { 0.0 } else { accepted as f64 / drafted as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// An agentic-style stream: long repeated spans (code blocks the agent
    /// re-emits with small edits, shared across the session's turns)
    /// separated by fresh tokens.
    fn agentic_stream(rng: &mut StdRng, motif: &[u32], len: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            if rng.gen_bool(0.8) {
                out.extend_from_slice(motif);
            } else {
                out.extend((0..16).map(|_| rng.gen_range(0..500u32)));
            }
        }
        out.truncate(len);
        out
    }

    fn session_motif(rng: &mut StdRng) -> Vec<u32> {
        (0..64).map(|_| rng.gen_range(0..500)).collect()
    }

    #[test]
    fn draft_reproduces_observed_continuations() {
        let mut tree = SuffixTree::new(8);
        tree.observe(&[10, 11, 12, 13, 14, 15]);
        assert_eq!(tree.draft(&[10, 11, 12], 3), vec![13, 14, 15]);
        // Longest-suffix match beats shorter ones: after [99, 12] the
        // continuation of "…12" still applies.
        assert_eq!(tree.draft(&[99, 12], 1), vec![13]);
    }

    #[test]
    fn frequency_breaks_ties() {
        let mut tree = SuffixTree::new(4);
        tree.observe(&[1, 2]);
        tree.observe(&[1, 3]);
        tree.observe(&[1, 3]);
        assert_eq!(tree.predict_next(&[1]), Some(3));
    }

    #[test]
    fn empty_history_drafts_nothing() {
        let tree = SuffixTree::new(4);
        assert!(tree.draft(&[1, 2, 3], 4).is_empty());
    }

    #[test]
    fn repetitive_streams_yield_high_acceptance() {
        // The paper's workloads (agentic code) are exactly this shape —
        // grounding the suffix_decoding() preset's ~0.66 acceptance.
        let mut rng = StdRng::seed_from_u64(3);
        let motif = session_motif(&mut rng);
        let history = agentic_stream(&mut rng, &motif, 4000);
        let target = agentic_stream(&mut rng, &motif, 2000);
        let mut tree = SuffixTree::new(12);
        tree.observe(&history);
        let report = measure_acceptance(&tree, &target, 7);
        assert!(report.acceptance > 0.5, "agentic acceptance {:.2} too low", report.acceptance);
        assert!(report.speedup() > 2.0, "speedup {:.2}", report.speedup());
    }

    #[test]
    fn random_streams_yield_low_acceptance() {
        let mut rng = StdRng::seed_from_u64(4);
        let history: Vec<u32> = (0..4000).map(|_| rng.gen_range(0..50_000)).collect();
        let target: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..50_000)).collect();
        let mut tree = SuffixTree::new(12);
        tree.observe(&history);
        let report = measure_acceptance(&tree, &target, 7);
        assert!(report.acceptance < 0.05, "random acceptance {:.3}", report.acceptance);
        assert!(report.speedup() < 1.2);
    }

    #[test]
    fn measured_acceptance_calibrates_spec_decode() {
        let mut rng = StdRng::seed_from_u64(5);
        let motif = session_motif(&mut rng);
        let history = agentic_stream(&mut rng, &motif, 4000);
        let target = agentic_stream(&mut rng, &motif, 1000);
        let mut tree = SuffixTree::new(12);
        tree.observe(&history);
        let report = measure_acceptance(&tree, &target, 7);
        let sd = report.to_spec_decode(7);
        // The geometric model is a *conservative* summary of bursty
        // acceptance: real agentic streams accept in all-or-nothing runs
        // (whole code blocks), so the empirical speedup can exceed the
        // geometric expectation — but both must be >1 and within a small
        // constant of each other.
        let ratio = sd.expected_emitted() / report.speedup();
        assert!(sd.expected_emitted() > 1.3);
        assert!(report.speedup() > 1.3);
        assert!((0.25..2.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn emitted_tokens_cover_the_whole_target() {
        let mut tree = SuffixTree::new(4);
        tree.observe(&[1, 2, 3]);
        let target = vec![5, 6, 7, 8];
        let report = measure_acceptance(&tree, &target, 4);
        assert_eq!(report.emitted, (target.len() - 1) as u64);
    }
}
