//! Production acceleration techniques composed with Shift Parallelism.
//!
//! §4.5 of the paper: "running efficiently in production is not only about
//! parallelism" — the deployed system composes Shift Parallelism with
//! **SwiftKV** (prefill-compute reduction via knowledge-preserving model
//! transformation) and **speculative decoding** (SuffixDecoding-style
//! draft/verify). Figure 16 shows the compounding effect against
//! latency- and throughput-optimized configurations of other frameworks.
//!
//! * [`swiftkv::SwiftKv`] — prefill FLOPs reduction model.
//! * [`specdec`] — speculative-decoding presets and expectation math.
//! * [`production::ProductionStack`] — composes both onto any
//!   [`shift_core::Deployment`].
//! * [`production::FrameworkProfile`] — engine-overhead profiles standing
//!   in for the out-of-the-box frameworks Figure 16 compares against.
//!
//! # Examples
//!
//! ```
//! use sp_accel::{ProductionStack, SwiftKv};
//! use sp_cluster::NodeSpec;
//! use sp_model::presets;
//! use sp_workload::synthetic;
//!
//! let stack = ProductionStack::arctic_like();
//! let mut dep = stack.deploy(NodeSpec::p5en_48xlarge(), presets::llama_70b()).unwrap();
//! let report = dep.run(&synthetic::single(4096, 64));
//! assert_eq!(report.records().len(), 1);
//! # let _ = SwiftKv::default();
//! ```

pub mod production;
pub mod specdec;
pub mod suffix;
pub mod swiftkv;

pub use production::{FrameworkProfile, ProductionStack};
pub use specdec::suffix_decoding;
pub use suffix::SuffixTree;
pub use swiftkv::SwiftKv;
