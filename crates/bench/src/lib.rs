//! Benchmark harnesses regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure (see
//! `DESIGN.md` for the full index and `EXPERIMENTS.md` for recorded
//! outputs):
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig12_tradeoff
//! ```
//!
//! This library hosts the shared harness: standard deployments, latency /
//! throughput probes, and text-table rendering.

pub mod harness;
pub mod probes;

pub use harness::{parallel_sweep, run_kind, standard_kinds, summarize, RunSummary};
pub use probes::{min_latency_probe, peak_throughput_probe, LatencyProbe};
