//! Latency and throughput probes (§4.3.1 methodology).

use crate::harness::{node, run_kind};
use shift_core::DeploymentKind;
use sp_model::ModelConfig;
use sp_workload::synthetic;

/// Result of a minimum-latency probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProbe {
    /// TTFT of a lone request, milliseconds.
    pub ttft_ms: f64,
    /// TPOT of a lone request, milliseconds.
    pub tpot_ms: f64,
    /// End-to-end completion time, seconds.
    pub completion_s: f64,
}

/// Measures minimum latency: a single request processed alone
/// ("we process requests sequentially, a single request at a time").
pub fn min_latency_probe(
    kind: DeploymentKind,
    model: &ModelConfig,
    input: u32,
    output: u32,
) -> LatencyProbe {
    let mut report = run_kind(kind, model, &synthetic::single(input, output));
    let m = report.metrics_mut();
    LatencyProbe {
        ttft_ms: m.ttft().median().unwrap_or(0.0) * 1e3,
        tpot_ms: m.tpot().median().unwrap_or(0.0) * 1e3,
        completion_s: m.completion().median().unwrap_or(0.0),
    }
}

/// Measures peak combined throughput: a saturating batch submitted at
/// once ("we send a batch of requests (thousands) and provide sufficient
/// concurrency"). `count` defaults (when 0) to whatever keeps roughly
/// 2M prompt tokens in flight.
pub fn peak_throughput_probe(
    kind: DeploymentKind,
    model: &ModelConfig,
    input: u32,
    output: u32,
    count: usize,
) -> f64 {
    let count = if count == 0 { (2_000_000 / input as usize).clamp(8, 4_000) } else { count };
    let report = run_kind(kind, model, &synthetic::uniform_batch(count, input, output));
    report.combined_throughput()
}

/// Probes the throughput of the deployment on `node()` — convenience
/// reexport of the node used by all probes.
pub fn probe_node() -> sp_cluster::NodeSpec {
    node()
}

/// Prints the per-phase wall breakdown accumulated by
/// [`sp_core::profile`] (batch build / pricing / calendar / merge /
/// admission / window detect) when
/// `SP_PROFILE=1`; no-op — and no output — otherwise. Benches call this
/// at the end of a run so future perf work can see where time goes
/// without external tooling.
pub fn print_profile() {
    if !sp_core::profile::enabled() {
        return;
    }
    eprintln!("SP_PROFILE phase breakdown (wall seconds; phases nest, columns overlap):");
    for (name, secs, calls) in sp_core::profile::snapshot() {
        let per_call_us = if calls > 0 { secs * 1e6 / calls as f64 } else { 0.0 };
        eprintln!("  {name:<12} {secs:>9.3}s  {calls:>12} calls  {per_call_us:>8.2} us/call");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;

    #[test]
    fn figure12_shape_llama() {
        // The headline tradeoff (Figure 12a, Llama-70B):
        //   TTFT: Shift < TP < DP
        //   TPOT: Shift ≈ TP < SP, DP
        //   Peak throughput: DP > Shift > TP
        let m = presets::llama_70b();
        let shift = min_latency_probe(DeploymentKind::Shift, &m, 4096, 250);
        let tp = min_latency_probe(DeploymentKind::TensorParallel, &m, 4096, 250);
        let dp = min_latency_probe(DeploymentKind::DataParallel, &m, 4096, 250);
        let sp = min_latency_probe(DeploymentKind::SequenceParallel, &m, 4096, 250);

        assert!(shift.ttft_ms < tp.ttft_ms, "shift {shift:?} vs tp {tp:?}");
        assert!(tp.ttft_ms < dp.ttft_ms);
        assert!(shift.tpot_ms <= tp.tpot_ms * 1.05);
        assert!(sp.tpot_ms > 1.5 * tp.tpot_ms, "SP TPOT should be worst");
        assert!(dp.tpot_ms > 1.4 * tp.tpot_ms);

        let tput_tp = peak_throughput_probe(DeploymentKind::TensorParallel, &m, 4096, 250, 0);
        let tput_dp = peak_throughput_probe(DeploymentKind::DataParallel, &m, 4096, 250, 0);
        let tput_shift = peak_throughput_probe(DeploymentKind::Shift, &m, 4096, 250, 0);
        assert!(tput_dp > tput_shift, "DP {tput_dp:.0} vs Shift {tput_shift:.0}");
        assert!(
            tput_shift > 1.2 * tput_tp,
            "Shift {tput_shift:.0} should beat TP {tput_tp:.0} substantially (paper: ~1.5x)"
        );
    }

    #[test]
    fn tpot_magnitude_matches_paper() {
        // Figure 12: best TPOT 9.34 ms (Llama-70B), 8.68 ms (Qwen-32B).
        let l = min_latency_probe(DeploymentKind::Shift, &presets::llama_70b(), 4096, 250);
        assert!((4.0..16.0).contains(&l.tpot_ms), "Llama TPOT {:.1}ms", l.tpot_ms);
        let q = min_latency_probe(DeploymentKind::Shift, &presets::qwen_32b(), 4096, 250);
        assert!((3.0..14.0).contains(&q.tpot_ms), "Qwen TPOT {:.1}ms", q.tpot_ms);
        assert!(q.tpot_ms < l.tpot_ms, "smaller model decodes faster");
    }
}
