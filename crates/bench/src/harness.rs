//! Shared benchmark harness: deployments, summaries, table rendering.

use shift_core::{Deployment, DeploymentKind};
use sp_cluster::NodeSpec;
use sp_engine::EngineReport;
use sp_model::ModelConfig;
use sp_workload::Trace;

/// The evaluation node (8×H200, NVSwitch).
pub fn node() -> NodeSpec {
    NodeSpec::p5en_48xlarge()
}

/// The four deployments every comparison figure uses, in plot order.
pub fn standard_kinds() -> Vec<(&'static str, DeploymentKind)> {
    vec![
        ("TP", DeploymentKind::TensorParallel),
        ("DP", DeploymentKind::DataParallel),
        ("SP", DeploymentKind::SequenceParallel),
        ("Shift", DeploymentKind::Shift),
    ]
}

/// Builds a deployment of `kind` and runs `trace` through it.
///
/// # Panics
///
/// Panics if the deployment cannot be built (evaluation configurations
/// are all known-good).
pub fn run_kind(kind: DeploymentKind, model: &ModelConfig, trace: &Trace) -> EngineReport {
    let mut dep = Deployment::builder(node(), model.clone())
        .kind(kind)
        .build()
        .unwrap_or_else(|e| panic!("cannot deploy {kind:?} for {}: {e}", model.name));
    dep.run(trace)
}

/// One row of a comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Label (deployment name).
    pub name: String,
    /// Median time-to-first-token, milliseconds.
    pub median_ttft_ms: f64,
    /// 99th-percentile TTFT, milliseconds.
    pub p99_ttft_ms: f64,
    /// Median time-per-output-token, milliseconds.
    pub median_tpot_ms: f64,
    /// Median completion time, seconds.
    pub median_completion_s: f64,
    /// 99th-percentile completion time, seconds.
    pub p99_completion_s: f64,
    /// Peak combined throughput, tokens/second.
    pub peak_throughput: f64,
    /// Mean combined throughput over the run, tokens/second.
    pub mean_throughput: f64,
    /// Completed requests.
    pub completed: u64,
}

/// Summarizes a report into a table row.
pub fn summarize(name: &str, report: &mut EngineReport) -> RunSummary {
    let completed = report.records().len() as u64;
    let peak = report.metrics().peak_throughput();
    let mean = report.combined_throughput();
    let m = report.metrics_mut();
    RunSummary {
        name: name.to_string(),
        median_ttft_ms: m.ttft().median().unwrap_or(0.0) * 1e3,
        p99_ttft_ms: m.ttft().p99().unwrap_or(0.0) * 1e3,
        median_tpot_ms: m.tpot().median().unwrap_or(0.0) * 1e3,
        median_completion_s: m.completion().median().unwrap_or(0.0),
        p99_completion_s: m.completion().p99().unwrap_or(0.0),
        peak_throughput: peak,
        mean_throughput: mean,
        completed,
    }
}

/// Runs `f` over every sweep point concurrently on the shared
/// [`sp_core`] executor and returns the results in point order.
///
/// Figure sweeps are embarrassingly parallel: each point is an
/// independent full simulation, so fanning them out across cores cuts a
/// sweep's wall-clock to roughly its slowest point. Results come back in
/// input order regardless of completion order, so tables render
/// identically to a sequential sweep. The fan-out width follows
/// [`sp_core::default_threads`] (`SP_THREADS` or the machine's
/// available parallelism) — the one threading code path the whole
/// workspace shares.
///
/// # Panics
///
/// Panics if a sweep task panics (the panic payload is propagated).
pub fn parallel_sweep<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    sp_core::map(points, f)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", render(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", render(row));
    }
}

/// Renders the standard summary columns for a set of runs.
pub fn print_summaries(title: &str, summaries: &[RunSummary]) {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.0}", s.median_ttft_ms),
                format!("{:.0}", s.p99_ttft_ms),
                format!("{:.1}", s.median_tpot_ms),
                format!("{:.2}", s.median_completion_s),
                format!("{:.2}", s.p99_completion_s),
                format!("{:.0}", s.peak_throughput),
                format!("{:.0}", s.mean_throughput),
                format!("{}", s.completed),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "system",
            "TTFT p50(ms)",
            "TTFT p99(ms)",
            "TPOT p50(ms)",
            "compl p50(s)",
            "compl p99(s)",
            "peak tok/s",
            "mean tok/s",
            "done",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;
    use sp_workload::synthetic;

    #[test]
    fn standard_kinds_are_four() {
        assert_eq!(standard_kinds().len(), 4);
    }

    #[test]
    fn summarize_extracts_metrics() {
        let model = presets::qwen_32b();
        let mut report =
            run_kind(DeploymentKind::TensorParallel, &model, &synthetic::single(1024, 8));
        let s = summarize("TP", &mut report);
        assert_eq!(s.completed, 1);
        assert!(s.median_ttft_ms > 0.0);
        assert!(s.peak_throughput > 0.0);
    }

    #[test]
    fn parallel_sweep_preserves_point_order() {
        let points: Vec<u64> = (0..32).collect();
        let results = parallel_sweep(&points, |&p| p * p);
        assert_eq!(results, points.iter().map(|p| p * p).collect::<Vec<_>>());
        assert!(parallel_sweep::<u64, u64, _>(&[], |&p| p).is_empty());
    }

    #[test]
    fn print_helpers_do_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "22".into()]]);
        let model = presets::qwen_32b();
        let mut report =
            run_kind(DeploymentKind::Shift, &model, &synthetic::uniform_batch(2, 256, 4));
        print_summaries("s", &[summarize("Shift", &mut report)]);
    }
}
