//! Figure 9 + 11a: the Azure LLM Code trace replay on Llama-70B.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig9_azure
//! ```

use sp_bench::harness::{print_summaries, print_table, run_kind, standard_kinds, summarize};
use sp_model::presets;
use sp_workload::azure::AzureCodeConfig;

fn main() {
    let model = presets::llama_70b();
    let trace = AzureCodeConfig::default().generate();
    println!(
        "Azure-code-like trace: {} requests / 15 min, mean input {:.0}, mean output {:.0}",
        trace.len(),
        trace.total_input_tokens() as f64 / trace.len() as f64,
        trace.total_output_tokens() as f64 / trace.len() as f64,
    );

    let mut summaries = Vec::new();
    for (name, kind) in standard_kinds() {
        let mut report = run_kind(kind, &model, &trace);

        // Figure 9: per-request series, decimated to every 100th request
        // in arrival order.
        if name == "Shift" || name == "TP" {
            let mut records = report.records().to_vec();
            records.sort_by_key(|r| r.request_id);
            let rows: Vec<Vec<String>> = records
                .iter()
                .step_by(100)
                .map(|r| {
                    vec![
                        r.request_id.to_string(),
                        format!("{:.0}", r.ttft().as_millis()),
                        format!("{:.0}", r.tpot().as_millis()),
                        format!("{:.2}", r.completion_time().as_secs()),
                    ]
                })
                .collect();
            print_table(
                &format!("Figure 9 — {name}: per-request series (every 100th request)"),
                &["req", "TTFT(ms)", "TPOT(ms)", "completion(s)"],
                &rows,
            );
        }
        summaries.push(summarize(name, &mut report));
    }
    print_summaries("Figure 11a — Azure trace latency statistics", &summaries);
    println!(
        "\nExpected shape (Figure 9/11a): bursts inflate TTFT for TP the most; Shift\n\
         obtains the lowest TTFT, TPOT and completion time at p50 and p99."
    );
}
