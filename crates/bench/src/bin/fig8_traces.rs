//! Figures 2 and 8: the workload traces' shapes (size distributions and
//! arrival patterns).
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig8_traces
//! ```

use sp_bench::harness::print_table;
use sp_metrics::{Dur, Quantiles};
use sp_workload::azure::AzureCodeConfig;
use sp_workload::bursty::BurstyConfig;
use sp_workload::mooncake::MooncakeConfig;
use sp_workload::Trace;

fn describe(name: &str, trace: &Trace) {
    let mut input: Quantiles =
        trace.requests().iter().map(|r| f64::from(r.input_tokens)).collect();
    let mut output: Quantiles =
        trace.requests().iter().map(|r| f64::from(r.output_tokens)).collect();
    let mut rows = Vec::new();
    for p in [0.1, 0.5, 0.9, 0.99] {
        rows.push(vec![
            format!("p{:.0}", p * 100.0),
            format!("{:.0}", input.quantile(p).unwrap()),
            format!("{:.0}", output.quantile(p).unwrap()),
        ]);
    }
    print_table(
        &format!("Figure 8 — {name}: token distributions ({} requests)", trace.len()),
        &["quantile", "input", "output"],
        &rows,
    );

    let hist = trace.arrival_histogram(Dur::from_secs(30.0));
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(t, c)| vec![format!("{:.0}", t.as_secs()), format!("{c}"), "#".repeat(c / 10)])
        .collect();
    print_table(
        &format!("Figure 8 — {name}: arrivals per 30s"),
        &["t(s)", "req", ""],
        &rows,
    );
}

fn main() {
    describe("bursty synthetic (Fig. 2/7)", &BurstyConfig::default().generate());
    describe("Azure LLM Code (Fig. 8a)", &AzureCodeConfig::default().generate());
    describe("Mooncake conversation (Fig. 8b)", &MooncakeConfig::default().generate());
    println!(
        "\nExpected shapes: Azure = bursty arrivals, long inputs, short outputs;\n\
         Mooncake = steady ~9 req / 3 s, medium inputs, long outputs."
    );
}
