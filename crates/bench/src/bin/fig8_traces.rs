//! Figures 2 and 8: the workload traces' shapes (size distributions and
//! arrival patterns).
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig8_traces
//! ```

use shift_core::{Deployment, DeploymentKind, Fleet, RoutingKind};
use sp_bench::harness::{node, print_table};
use sp_metrics::{Dur, Quantiles};
use sp_model::presets;
use sp_workload::azure::AzureCodeConfig;
use sp_workload::bursty::BurstyConfig;
use sp_workload::mooncake::MooncakeConfig;
use sp_workload::Trace;

fn describe(name: &str, trace: &Trace) {
    let mut input: Quantiles = trace.requests().iter().map(|r| f64::from(r.input_tokens)).collect();
    let mut output: Quantiles =
        trace.requests().iter().map(|r| f64::from(r.output_tokens)).collect();
    let mut rows = Vec::new();
    for p in [0.1, 0.5, 0.9, 0.99] {
        rows.push(vec![
            format!("p{:.0}", p * 100.0),
            format!("{:.0}", input.quantile(p).unwrap()),
            format!("{:.0}", output.quantile(p).unwrap()),
        ]);
    }
    print_table(
        &format!("Figure 8 — {name}: token distributions ({} requests)", trace.len()),
        &["quantile", "input", "output"],
        &rows,
    );

    let hist = trace.arrival_histogram(Dur::from_secs(30.0));
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(t, c)| vec![format!("{:.0}", t.as_secs()), format!("{c}"), "#".repeat(c / 10)])
        .collect();
    print_table(&format!("Figure 8 — {name}: arrivals per 30s"), &["t(s)", "req", ""], &rows);
}

/// How much routing policy matters on a bursty trace: p99 TTFT across a
/// 2-node fleet for each online policy, plus the offline static split
/// the online router replaced.
fn routing_comparison(trace: &Trace) {
    let make_fleet = || {
        Fleet::new(2, || {
            Deployment::builder(node(), presets::qwen_32b()).kind(DeploymentKind::Shift)
        })
        .expect("known-good fleet")
    };

    let mut rows = Vec::new();
    for kind in
        [RoutingKind::JoinShortestOutstanding, RoutingKind::RoundRobin, RoutingKind::StaticSplit]
    {
        let mut report = make_fleet().routing(kind).run(trace);
        let to_node0 = report.routing_decisions().iter().filter(|d| d.replica == 0).count();
        let total = report.routing_decisions().len().max(1);
        let m = report.metrics_mut();
        rows.push(vec![
            kind.policy().name().to_string(),
            format!("{:.0}", m.ttft().median().unwrap_or(0.0) * 1e3),
            format!("{:.0}", m.ttft().p99().unwrap_or(0.0) * 1e3),
            format!("{:.1}%", 100.0 * to_node0 as f64 / total as f64),
        ]);
    }
    let mut offline = make_fleet().run_offline(trace);
    let m = offline.metrics_mut();
    rows.push(vec![
        "offline-static (baseline)".to_string(),
        format!("{:.0}", m.ttft().median().unwrap_or(0.0) * 1e3),
        format!("{:.0}", m.ttft().p99().unwrap_or(0.0) * 1e3),
        "-".to_string(),
    ]);
    print_table(
        "Online routing policies, 2-node Shift fleet on the bursty trace",
        &["router", "TTFT p50(ms)", "TTFT p99(ms)", "to node 0"],
        &rows,
    );
}

fn main() {
    let bursty = BurstyConfig::default().generate();
    describe("bursty synthetic (Fig. 2/7)", &bursty);
    routing_comparison(&bursty);
    describe("Azure LLM Code (Fig. 8a)", &AzureCodeConfig::default().generate());
    describe("Mooncake conversation (Fig. 8b)", &MooncakeConfig::default().generate());
    println!(
        "\nExpected shapes: Azure = bursty arrivals, long inputs, short outputs;\n\
         Mooncake = steady ~9 req / 3 s, medium inputs, long outputs."
    );
}
