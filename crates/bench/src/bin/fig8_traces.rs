//! Figures 2 and 8: the workload traces' shapes (size distributions and
//! arrival patterns).
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig8_traces
//! ```

use shift_core::{Deployment, DeploymentKind, Fleet, RoutingKind};
use sp_bench::harness::{node, print_table};
use sp_metrics::{ClassSlo, Dur, Quantiles};
use sp_model::presets;
use sp_workload::azure::AzureCodeConfig;
use sp_workload::bursty::BurstyConfig;
use sp_workload::mooncake::MooncakeConfig;
use sp_workload::Trace;

fn describe(name: &str, trace: &Trace) {
    let mut input: Quantiles = trace.requests().iter().map(|r| f64::from(r.input_tokens)).collect();
    let mut output: Quantiles =
        trace.requests().iter().map(|r| f64::from(r.output_tokens)).collect();
    let mut rows = Vec::new();
    for p in [0.1, 0.5, 0.9, 0.99] {
        rows.push(vec![
            format!("p{:.0}", p * 100.0),
            format!("{:.0}", input.quantile(p).unwrap()),
            format!("{:.0}", output.quantile(p).unwrap()),
        ]);
    }
    print_table(
        &format!("Figure 8 — {name}: token distributions ({} requests)", trace.len()),
        &["quantile", "input", "output"],
        &rows,
    );

    let hist = trace.arrival_histogram(Dur::from_secs(30.0));
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(t, c)| vec![format!("{:.0}", t.as_secs()), format!("{c}"), "#".repeat(c / 10)])
        .collect();
    print_table(&format!("Figure 8 — {name}: arrivals per 30s"), &["t(s)", "req", ""], &rows);
}

/// How much routing policy matters on a bursty trace: p99 TTFT and
/// per-class SLO attainment across a 2-node fleet for each online policy
/// (the deadline-aware one also enables class-SLO scheduling inside each
/// node), plus the offline static split the online router replaced.
fn routing_comparison(trace: &Trace) {
    let slo = ClassSlo::default();
    let make_fleet = |class_aware: bool| {
        Fleet::new(2, move || {
            let builder =
                Deployment::builder(node(), presets::qwen_32b()).kind(DeploymentKind::Shift);
            if class_aware {
                builder.class_slo(slo)
            } else {
                builder
            }
        })
        .expect("known-good fleet")
    };

    let mut rows = Vec::new();
    let mut push_row = |label: String, mut report: sp_engine::EngineReport, online: bool| {
        let to_node0 = report.routing_decisions().iter().filter(|d| d.replica == 0).count();
        let total = report.routing_decisions().len().max(1);
        let class = report.class_slo_report(&slo);
        let m = report.metrics_mut();
        rows.push(vec![
            label,
            format!("{:.0}", m.ttft().median().unwrap_or(0.0) * 1e3),
            format!("{:.0}", m.ttft().p99().unwrap_or(0.0) * 1e3),
            format!("{:.0}%", class.interactive.attainment() * 100.0),
            format!("{:.0}%", class.batch.attainment() * 100.0),
            if online {
                format!("{:.1}%", 100.0 * to_node0 as f64 / total as f64)
            } else {
                "-".to_string()
            },
        ]);
    };
    for kind in
        [RoutingKind::JoinShortestOutstanding, RoutingKind::RoundRobin, RoutingKind::StaticSplit]
    {
        let report = make_fleet(false).routing(kind).run(trace);
        push_row(kind.policy().name().to_string(), report, true);
    }
    let aware = make_fleet(true).routing(RoutingKind::EarliestDeadlineFeasible(slo)).run(trace);
    let activity = format!(
        "earliest-deadline-feasible (+class-SLO engines: {} sheds, {} deferrals)",
        aware.batch_sheds(),
        aware.batch_deferrals()
    );
    push_row(activity, aware, true);
    let offline = make_fleet(false).run_offline(trace);
    push_row("offline-static (baseline)".to_string(), offline, false);
    print_table(
        "Online routing policies, 2-node Shift fleet on the bursty trace",
        &["router", "TTFT p50(ms)", "TTFT p99(ms)", "Int SLO", "Batch SLO", "to node 0"],
        &rows,
    );
}

fn main() {
    let bursty = BurstyConfig::default().generate();
    describe("bursty synthetic (Fig. 2/7)", &bursty);
    routing_comparison(&bursty);
    describe("Azure LLM Code (Fig. 8a)", &AzureCodeConfig::default().generate());
    describe("Mooncake conversation (Fig. 8b)", &MooncakeConfig::default().generate());
    println!(
        "\nExpected shapes: Azure = bursty arrivals, long inputs, short outputs;\n\
         Mooncake = steady ~9 req / 3 s, medium inputs, long outputs."
    );
}
