//! Hardware sensitivity — artifact appendix A.3.2: "Optimal
//! configurations, and hence the results may look different on another
//! type of multi-GPU node, yet the conclusion should be the same."
//!
//! Re-runs the Figure 12 probes on H200+NVSwitch (the paper's node),
//! H100+NVSwitch, A100+NVSwitch, and H200+PCIe, checking that the
//! qualitative orderings survive.
//!
//! ```text
//! cargo run --release -p sp-bench --bin sensitivity_hw
//! ```

use shift_core::{Deployment, DeploymentKind};
use sp_bench::harness::print_table;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_model::presets;
use sp_workload::synthetic;

fn probe(node: NodeSpec, kind: DeploymentKind) -> (f64, f64, f64) {
    let model = presets::llama_70b();
    let mut dep = Deployment::builder(node, model.clone()).kind(kind).build().unwrap();
    let mut lat = dep.run(&synthetic::single(4096, 250));
    let ttft = lat.metrics_mut().ttft().median().unwrap() * 1e3;
    let tpot = lat.metrics_mut().tpot().median().unwrap() * 1e3;
    let mut dep = Deployment::builder(node, model).kind(kind).build().unwrap();
    let tput = dep.run(&synthetic::uniform_batch(400, 4096, 250)).combined_throughput();
    (ttft, tpot, tput)
}

fn main() {
    let nodes = [
        ("8xH200 + NVSwitch", NodeSpec::p5en_48xlarge()),
        ("8xH100 + NVSwitch", NodeSpec::new(GpuSpec::h100(), 8, InterconnectSpec::nvswitch())),
        ("8xA100 + NVSwitch", NodeSpec::new(GpuSpec::a100(), 8, InterconnectSpec::nvswitch())),
        ("8xH200 + PCIe", NodeSpec::new(GpuSpec::h200(), 8, InterconnectSpec::pcie_gen5())),
        // Pathological: running the node's parallelism over an inter-node
        // fabric — why the paper deploys within one NVSwitch node.
        (
            "8xH200 + EFA (cross-node)",
            NodeSpec::new(GpuSpec::h200(), 8, InterconnectSpec::efa_internode()),
        ),
    ];

    for (node_name, node) in nodes {
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for (name, kind) in [
            ("TP", DeploymentKind::TensorParallel),
            ("DP", DeploymentKind::DataParallel),
            ("Shift", DeploymentKind::Shift),
        ] {
            let (ttft, tpot, tput) = probe(node, kind);
            vals.push((name, ttft, tpot, tput));
            rows.push(vec![
                name.to_string(),
                format!("{ttft:.0}"),
                format!("{tpot:.2}"),
                format!("{tput:.0}"),
            ]);
        }
        print_table(
            &format!("Sensitivity — {node_name}, Llama-70B 4k/250"),
            &["system", "min TTFT (ms)", "min TPOT (ms)", "peak tok/s"],
            &rows,
        );
        // The conclusion that must survive hardware changes:
        let tp = vals[0];
        let dp = vals[1];
        let shift = vals[2];
        let conclusion_holds = shift.1 <= tp.1 * 1.01 // TTFT: Shift <= TP
            && shift.2 <= tp.2 * 1.05 // TPOT: Shift ~ TP
            && shift.3 > tp.3 // throughput: Shift > TP
            && dp.1 > shift.1; // DP responds slowest
        println!(
            "conclusion (Shift dominates TP, DP slowest response): {}",
            if conclusion_holds { "HOLDS" } else { "VIOLATED" }
        );
    }
}
