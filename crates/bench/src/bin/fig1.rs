//! Figure 1: response speed (#input tokens / TTFT), generation rate
//! (1 / TPOT), and combined throughput in low vs. high traffic.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig1
//! ```

use sp_bench::harness::{print_table, standard_kinds};
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;

fn main() {
    let model = presets::llama_70b();
    let (input, output) = (4096u32, 250u32);

    let mut rows = Vec::new();
    for (name, kind) in standard_kinds() {
        let lat = min_latency_probe(kind, &model, input, output);
        let tput = peak_throughput_probe(kind, &model, input, output, 0);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", f64::from(input) / (lat.ttft_ms / 1e3)),
            format!("{:.0}", 1e3 / lat.tpot_ms),
            format!("{:.0}", tput),
        ]);
    }
    print_table(
        "Figure 1 — Llama-70B, 4k/250",
        &["system", "response speed (in-tok/s)", "gen rate (tok/s)", "high-traffic tok/s"],
        &rows,
    );
    println!(
        "\nExpected shape: Shift ~1.5x higher throughput than TP in high traffic,\n\
         ~1.5x faster response than TP and ~2x faster generation than DP in low\n\
         traffic, while losing only ~17% throughput to DP."
    );
}
