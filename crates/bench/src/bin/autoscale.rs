//! Autoscaling cost/latency trade-off on the bursty agentic trace:
//! replica-seconds spent vs interactive p99 TTFT, fixed fleets of every
//! size between the valley floor and the burst peak against the
//! load-band autoscaler (scale-out on the smoothed load signal after a
//! cold-start delay, drain-then-retire in the valleys).
//!
//! ```text
//! cargo run --release -p sp-bench --bin autoscale
//! ```
//!
//! The autoscaled row should land near the peak-sized fleet on
//! interactive p99 TTFT and SLO attainment while billing replica-seconds
//! much closer to the floor-sized fleet — the same claim
//! `tests/autoscale.rs` pins with hard thresholds.

use sp_bench::harness::print_table;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_engine::{
    AdmissionMode, AutoscaleConfig, Autoscaler, ClusterSim, Engine, EngineConfig, EngineReport,
    LoadBandPolicy, QueuePolicy, RoutingKind,
};
use sp_metrics::{ClassSlo, Dur, Quantiles, RequestClass};
use sp_model::presets;
use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
use sp_workload::bursty::BurstyConfig;
use sp_workload::{Request, Trace};

const KV_TOKENS: u64 = 60_000;
const PEAK_REPLICAS: usize = 4;
const MIN_REPLICAS: usize = 2;

fn engine() -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: KV_TOKENS,
            class_slo: Some(ClassSlo::default()),
            queue_policy: QueuePolicy::InteractiveFirst,
            admission: AdmissionMode::PreemptRestart,
            ..EngineConfig::default()
        },
    )
}

/// Steady interactive stream with two agentic batch bursts and long
/// valleys between them — the trace `tests/autoscale.rs` gates on.
fn bursty_trace() -> Trace {
    let trace = BurstyConfig {
        duration: Dur::from_secs(240.0),
        base_rate: 2.0,
        bursts: 2,
        burst_size: 60,
        ..BurstyConfig::default()
    }
    .generate();
    let fits: Vec<Request> =
        trace.requests().iter().copied().filter(|r| r.total_tokens() <= KV_TOKENS).collect();
    Trace::with_ids(fits)
}

fn interactive_p99_ttft(report: &EngineReport) -> f64 {
    let mut q = Quantiles::new();
    for r in report.records().iter().filter(|r| r.class == RequestClass::Interactive) {
        q.record(r.ttft().as_secs());
    }
    q.quantile(0.99).unwrap_or(f64::NAN)
}

fn row(name: &str, report: &EngineReport, slo: &ClassSlo) -> Vec<String> {
    let tl = report.fleet_timeline();
    let rs = tl.replica_seconds(report.makespan());
    vec![
        name.to_string(),
        format!("{rs:.0}"),
        format!("{}", tl.peak_provisioned()),
        format!("{:.1}%", 100.0 * report.class_slo_report(slo).interactive.attainment()),
        format!("{:.3}", interactive_p99_ttft(report)),
        format!("{:.1}", report.makespan().as_secs()),
    ]
}

fn main() {
    let trace = bursty_trace();
    let slo = ClassSlo::default();
    let routing = || RoutingKind::EarliestDeadlineFeasible(slo).policy();
    let mut rows = Vec::new();

    for n in MIN_REPLICAS..=PEAK_REPLICAS {
        let mut sim = ClusterSim::new((0..n).map(|_| engine()).collect(), routing());
        let report = sim.run(&trace);
        rows.push(row(&format!("fixed x{n}"), &report, &slo));
    }

    let scaler = Autoscaler::new(
        AutoscaleConfig {
            cold_start: Dur::from_secs(5.0),
            min_replicas: MIN_REPLICAS,
            max_replicas: PEAK_REPLICAS,
        },
        Box::new(LoadBandPolicy::new(2_000.0, 800.0).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
        |_| engine(),
    );
    let mut sim = ClusterSim::new((0..MIN_REPLICAS).map(|_| engine()).collect(), routing())
        .with_autoscaler(scaler);
    let report = sim.run(&trace);
    let events = report.fleet_timeline().events().len();
    rows.push(row(&format!("autoscaled {MIN_REPLICAS}..{PEAK_REPLICAS}"), &report, &slo));

    print_table(
        "Replica-seconds vs interactive latency — bursty agentic trace, Qwen-32B on 1x H200, \
         EDF routing",
        &["fleet", "replica-s", "peak", "int SLO att", "int p99 TTFT (s)", "makespan (s)"],
        &rows,
    );
    println!(
        "\nautoscaler lifecycle events: {events} (spawn/ready/drain/retire; cold start 5s, \
         load band 2000/800 tokens)\n\
         Expected shape: the autoscaled fleet tracks the peak fleet's p99 TTFT and attainment\n\
         while billing replica-seconds near the floor fleet — paying for the burst peak only\n\
         while a burst is actually in flight."
    );
}
