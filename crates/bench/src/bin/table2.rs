//! Table 2: per-GPU computational complexity of TP vs. SP, evaluated
//! numerically from the closed forms in `sp_parallel::complexity`.
//!
//! ```text
//! cargo run --release -p sp-bench --bin table2
//! ```

use sp_bench::harness::print_table;
use sp_model::presets;
use sp_parallel::complexity::{sp_complexity, tp_complexity};

fn main() {
    let model = presets::llama_70b();
    let n = 8192;

    let mut rows = Vec::new();
    for degree in [2usize, 4, 8] {
        let tp = tp_complexity(&model, n, degree);
        let sp = sp_complexity(&model, n, degree);
        rows.push(vec![
            format!("TP={degree}"),
            format!("{:.1}", tp.memory_bytes / 1e9),
            format!("{:.1}", tp.compute_flops / 1e12),
            format!("{:.2}", tp.comm_bytes / 1e9),
            format!("{:.2e}", tp.comm_to_compute()),
        ]);
        rows.push(vec![
            format!("SP={degree}"),
            format!("{:.1}", sp.memory_bytes / 1e9),
            format!("{:.1}", sp.compute_flops / 1e12),
            format!("{:.2}", sp.comm_bytes / 1e9),
            format!("{:.2e}", sp.comm_to_compute()),
        ]);
    }
    print_table(
        "Table 2 — per-GPU complexity, Llama-70B, n = 8192",
        &["config", "memory (GB)", "compute (TFLOP)", "comm (GB)", "comm/compute"],
        &rows,
    );
    println!(
        "\nShape check: TP memory and compute shrink with degree but communication\n\
         does not (comm/compute grows ∝ TP); SP communication shrinks with degree\n\
         (comm/compute constant) at the price of replicated memory."
    );
}
