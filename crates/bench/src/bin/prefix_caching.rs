//! Prefix-caching study: multi-turn agent sessions (§2.1's closed-loop
//! coding agent) with and without automatic prefix caching, across
//! deployments.
//!
//! Prefix caching removes most of the *prefill* work of warm turns — it
//! shifts the workload decode-ward, which interacts with the shift
//! policy: fewer big batches, more small ones, more time in the TP
//! configuration.
//!
//! ```text
//! cargo run --release -p sp-bench --bin prefix_caching
//! ```

use shift_core::{Deployment, DeploymentKind};
use sp_bench::harness::{node, print_table};
use sp_model::presets;
use sp_workload::multiturn::MultiTurnConfig;

fn main() {
    let trace = MultiTurnConfig::default().generate();
    println!(
        "Multi-turn workload: {} sessions x {} turns = {} requests, contexts up to {} tokens",
        8,
        10,
        trace.len(),
        trace.requests().iter().map(|r| r.input_tokens).max().unwrap()
    );

    let mut rows = Vec::new();
    for (name, kind) in [("TP", DeploymentKind::TensorParallel), ("Shift", DeploymentKind::Shift)] {
        for caching in [false, true] {
            let mut dep = Deployment::builder(node(), presets::llama_70b())
                .kind(kind)
                .prefix_caching(caching)
                .build()
                .unwrap();
            let mut report = dep.run(&trace);
            let shift_stats =
                dep.shift_stats().map(|(b, s, _)| format!("{b}/{s}")).unwrap_or_else(|| "-".into());
            rows.push(vec![
                format!("{name}{}", if caching { " + APC" } else { "" }),
                format!("{:.0}", report.metrics_mut().ttft().median().unwrap() * 1e3),
                format!("{:.0}", report.metrics_mut().ttft().p99().unwrap() * 1e3),
                format!("{:.2}", report.metrics_mut().completion().median().unwrap()),
                format!("{}", report.iterations()),
                shift_stats,
            ]);
        }
    }
    print_table(
        "Prefix caching on multi-turn agent sessions (Llama-70B)",
        &["system", "TTFT p50(ms)", "TTFT p99(ms)", "compl p50(s)", "iterations", "base/shift it"],
        &rows,
    );
    println!(
        "\nExpected: APC slashes warm-turn TTFT (only the fresh tail prefills) for\n\
         both systems; under Shift the cached turns run mostly in the TP config\n\
         (small batches), showing the policy adapting to the workload change."
    );
}
