//! Design-choice ablations (simulated outcomes):
//!
//! 1. **Shift threshold sweep** — Algorithm 2's switching point.
//! 2. **Weight strategy** (§3.3.2) — separate models vs. on-the-fly
//!    slicing: memory cost vs. per-shift-iteration GEMM penalty.
//! 3. **SP load-balance padding** (§3.2.1) — the cost of tiny decode
//!    batches under SP.
//! 4. **KV admission mode** — conservative full reservation vs. vLLM-style
//!    recompute preemption under cache pressure.
//! 5. **Chunked-prefill cap** (Sarathi-style) — bounding the worst decode
//!    stall.
//!
//! ```text
//! cargo run --release -p sp-bench --bin ablations
//! ```

use shift_core::{Deployment, DeploymentKind, ShiftWeightPlan, WeightStrategy};
use sp_bench::harness::{node, print_table};
use sp_metrics::Dur;
use sp_model::presets;
use sp_parallel::{BatchWork, ExecutionModel, MemoryPlan, ParallelConfig};
use sp_workload::bursty::BurstyConfig;

fn threshold_sweep() {
    let model = presets::llama_70b();
    let trace = BurstyConfig {
        duration: Dur::from_secs(120.0),
        bursts: 1,
        burst_size: 100,
        ..BurstyConfig::default()
    }
    .generate();
    let base = ParallelConfig::sequence(8);

    let mut rows = Vec::new();
    for threshold in [0u64, 64, 256, 1024, 8192, u64::MAX / 2] {
        let mut dep = Deployment::builder(node(), model.clone())
            .kind(DeploymentKind::ShiftWithBase { base, threshold })
            .build()
            .unwrap();
        let mut report = dep.run(&trace);
        let (base_iters, shift_iters, switches) = dep.shift_stats().unwrap();
        rows.push(vec![
            if threshold > 1 << 60 { "inf".into() } else { threshold.to_string() },
            format!("{:.0}", report.metrics_mut().ttft().median().unwrap() * 1e3),
            format!("{:.1}", report.metrics_mut().tpot().median().unwrap() * 1e3),
            format!("{:.2}", report.metrics_mut().completion().median().unwrap()),
            base_iters.to_string(),
            shift_iters.to_string(),
            switches.to_string(),
        ]);
    }
    print_table(
        "Ablation 1 — shift threshold sweep (Llama-70B, bursty trace)",
        &[
            "threshold",
            "TTFT p50(ms)",
            "TPOT p50(ms)",
            "compl p50(s)",
            "base it",
            "shift it",
            "switches",
        ],
        &rows,
    );
    println!(
        "threshold 0 = always base (pure SP, bad TPOT); inf = never base (pure TP,\n\
         slow prefill). The default (256) takes the best of both."
    );
}

fn weight_strategy() {
    let mut rows = Vec::new();
    for model in [presets::llama_70b(), presets::qwen_32b()] {
        let base = Deployment::auto_base(&node(), &model, 0.9).unwrap();
        for strategy in [WeightStrategy::SeparateModels, WeightStrategy::OnTheFlySlicing] {
            let plan = ShiftWeightPlan::new(&model, base, strategy);
            let mem = MemoryPlan::plan_with_extra(
                &node(),
                &model,
                &base,
                plan.shift_extra_bytes_per_gpu(),
                0.9,
            )
            .unwrap();
            // Slicing's FP8-transpose penalty applied to a shift-mode
            // decode iteration:
            let exec = ExecutionModel::new(node(), model.clone());
            let decode = BatchWork::uniform_decode(8, 4096);
            let it = exec.iteration(&base.shift_config(), &decode);
            let gemm_ms = it.gemm.as_millis() * plan.shift_gemm_penalty();
            rows.push(vec![
                model.name.clone(),
                format!("{strategy:?}"),
                format!("{:.1}", plan.total_bytes_per_gpu() as f64 / 1e9),
                format!("{:.1}%", plan.overhead_fraction() * 100.0),
                format!("{}", mem.kv_capacity_tokens),
                format!("{gemm_ms:.2}"),
            ]);
        }
    }
    print_table(
        "Ablation 2 — weight strategy (§3.3.2)",
        &["model", "strategy", "w/GPU (GB)", "mem ovh", "KV cap (tok)", "shift GEMM (ms)"],
        &rows,
    );
    println!(
        "Separate models buy back the slicing penalty for 1/SP extra memory —\n\
         the paper's chosen tradeoff."
    );
}

fn padding_cost() {
    let model = presets::llama_70b();
    let exec = ExecutionModel::new(node(), model);
    let mut rows = Vec::new();
    for batch_size in [1usize, 7, 8, 9, 64, 256] {
        let batch = BatchWork::uniform_decode(batch_size, 2048);
        let sp = exec.iteration(&ParallelConfig::sequence(8), &batch).total();
        let tp = exec.iteration(&ParallelConfig::tensor(8), &batch).total();
        let padded = (batch_size as u64).div_ceil(8) * 8;
        rows.push(vec![
            batch_size.to_string(),
            padded.to_string(),
            format!("{:.0}%", (padded as f64 / batch_size as f64 - 1.0) * 100.0),
            format!("{:.2}", sp.as_millis()),
            format!("{:.2}", tp.as_millis()),
        ]);
    }
    print_table(
        "Ablation 3 — SP decode padding (§3.2.1), decode at ctx 2048",
        &["batch", "padded to", "waste", "SP iter (ms)", "TP iter (ms)"],
        &rows,
    );
    println!(
        "Small decode batches pad up to the SP degree (batch 9 -> 16, 78% waste):\n\
         exactly why the shift config handles low-traffic decode."
    );
}

fn admission_mode() {
    // A KV-starved Mooncake-like slice: does recompute preemption beat
    // conservative full reservation?
    use sp_engine::AdmissionMode;
    // Llama-70B with FP16 KV is the cache-hungry case (§4.2.2: "the Llama
    // model did not sustain the traffic and context size").
    let model = presets::llama_70b();
    let trace = sp_workload::mooncake::MooncakeConfig {
        duration: Dur::from_secs(240.0),
        ..sp_workload::mooncake::MooncakeConfig::default()
    }
    .generate();

    let mut rows = Vec::new();
    for (name, mode) in [
        ("reserve-full", AdmissionMode::ReserveFull),
        ("preempt-restart", AdmissionMode::PreemptRestart),
    ] {
        let mut dep = Deployment::builder(node(), model.clone())
            .kind(DeploymentKind::Shift)
            .admission(mode)
            .build()
            .unwrap();
        let mut report = dep.run(&trace);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", report.metrics_mut().ttft().median().unwrap()),
            format!("{:.2}", report.metrics_mut().completion().median().unwrap()),
            format!("{:.0}", report.combined_throughput()),
            format!("{:.2}", report.peak_kv_utilization()),
            report.preemptions().to_string(),
        ]);
    }
    print_table(
        "Ablation 4 — KV admission mode (Llama-70B FP16-KV, Mooncake slice)",
        &["mode", "TTFT p50(s)", "compl p50(s)", "tok/s", "peak KV", "preempts"],
        &rows,
    );
    println!(
        "reserve-full guarantees no mid-flight eviction; preempt-restart packs the\n\
         cache tighter at the cost of recompute work when pressure spikes."
    );
}

fn prefill_cap() {
    // Sarathi-style interference bound: cap prefill tokens per iteration
    // and watch the worst decode stall shrink while throughput dips.
    let model = presets::llama_70b();
    let trace = sp_workload::mixed::ProductionMixConfig::default().generate();
    let mut rows = Vec::new();
    for cap in [None, Some(4096u64), Some(2048), Some(1024), Some(512)] {
        let mut builder = Deployment::builder(node(), model.clone()).kind(DeploymentKind::Shift);
        if let Some(c) = cap {
            builder = builder.max_prefill_tokens(c);
        }
        let mut dep = builder.build().unwrap();
        let mut report = dep.run(&trace);
        rows.push(vec![
            cap.map_or("none".into(), |c| c.to_string()),
            format!("{:.0}", report.max_iteration_time().as_millis()),
            format!("{:.1}", report.metrics_mut().tpot().p99().unwrap() * 1e3),
            format!("{:.0}", report.combined_throughput()),
        ]);
    }
    print_table(
        "Ablation 5 — chunked-prefill cap (Sarathi-style), Llama-70B, production mix",
        &["prefill cap", "max stall (ms)", "TPOT p99 (ms)", "tok/s"],
        &rows,
    );
    println!(
        "Tighter caps bound the worst decode stall (and the TPOT tail) at a modest\n\
         throughput cost — orthogonal to, and composable with, the shift policy."
    );
}

fn main() {
    threshold_sweep();
    weight_strategy();
    padding_cost();
    admission_mode();
    prefill_cap();
}
