//! Figure 14: request completion time vs. arrival rate (8k input,
//! 250 output). TP and DP cross over; Shift stays lowest everywhere.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig14_arrival
//! ```

use sp_bench::harness::{print_table, run_kind, standard_kinds};
use sp_model::presets;
use sp_workload::synthetic;

fn main() {
    let model = presets::llama_70b();
    let rates = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let requests = 150;

    let mut rows = Vec::new();
    for &rate in &rates {
        let trace = synthetic::poisson(requests, rate, 8192, 250, 14);
        let mut row = vec![format!("{rate}")];
        for (_, kind) in standard_kinds() {
            let mut report = run_kind(kind, &model, &trace);
            let completion = report.metrics_mut().completion().median().unwrap();
            row.push(format!("{completion:.2}"));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14 — median completion time (s) vs arrival rate (req/s), Llama-70B, 8k/250",
        &["req/s", "TP", "DP", "SP", "Shift"],
        &rows,
    );
    println!(
        "\nExpected shape: TP wins at low rates, DP at high rates (curves cross);\n\
         Shift is lowest (or tied) at every rate."
    );
}
