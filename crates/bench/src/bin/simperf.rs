//! Simulator self-benchmark: how fast does the simulator itself run?
//!
//! Measures wall-clock scheduling events per second and peak RSS of the
//! event-calendar cluster loop ([`ClusterSim`]) on bursty traces at 1, 4,
//! 16, and 64 replicas, plus the calendar's speedup over the
//! pre-calendar linear-rescan loop (`ReferenceClusterSim`, kept as an
//! executable specification). Results land in `BENCH_simperf.json`.
//!
//! ```text
//! cargo run --release -p sp-bench --bin simperf [-- --smoke] [-- --baseline ci/simperf_baseline.json]
//! ```
//!
//! * `--smoke` — small traces and replica counts (the CI gate).
//! * `--baseline <path>` — compare events/sec against a committed
//!   baseline JSON and exit non-zero on a >30% regression in any
//!   scenario present in both runs.
//!
//! The replica sweep fans out across cores via
//! [`sp_bench::harness::parallel_sweep`]; the headline
//! calendar-vs-reference pair runs sequentially afterwards so the
//! speedup ratio is measured without CPU contention.

use sp_bench::harness::parallel_sweep;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_engine::{ClusterSim, Engine, EngineConfig, ReferenceClusterSim, RoutingKind};
use sp_metrics::{ClassSlo, Dur};
use sp_model::presets;
use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
use sp_workload::bursty::BurstyConfig;
use sp_workload::{sizes::LengthDist, Trace};
use std::time::Instant;

/// Sweep scenarios run unconstrained engines (ample KV).
const DEFAULT_KV: u64 = 1_000_000;
/// The headline pair runs KV-bound engines: few sequences fit at once,
/// so bursts pile into deep waiting queues — the backlog regime where
/// the pre-index admission scan went quadratic.
const BOUND_KV: u64 = 24_576;

/// One measured scenario.
struct Scenario {
    name: String,
    replicas: usize,
    requests: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_rss_kb: u64,
}

fn engines(n: usize, slo: Option<ClassSlo>, kv_capacity: u64, reference_mode: bool) -> Vec<Engine> {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    (0..n)
        .map(|_| {
            let config = EngineConfig {
                class_slo: slo,
                kv_capacity_tokens: kv_capacity,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                config,
            );
            engine.set_reference_mode(reference_mode);
            engine
        })
        .collect()
}

/// A bursty trace whose offered load scales with the replica count, so
/// per-replica utilization stays comparable across the sweep.
/// `burst_depth` is the per-replica burst size — the headline scenario
/// raises it so engines carry deep waiting queues through each burst,
/// the regime where admission cost matters.
fn bursty_trace(replicas: usize, smoke: bool, burst_depth: usize) -> Trace {
    let r = replicas as f64;
    let (duration, base_rate, bursts) =
        if smoke { (30.0, 0.4 * r, 1) } else { (120.0, 0.5 * r, 2) };
    BurstyConfig {
        duration: Dur::from_secs(duration),
        base_rate,
        bursts,
        burst_size: burst_depth * replicas,
        burst_window: Dur::from_secs(5.0),
        base_input: LengthDist::LogNormal { median: 450.0, sigma: 0.6 },
        base_output: LengthDist::LogNormal { median: 120.0, sigma: 0.5 },
        burst_input: LengthDist::LogNormal { median: 2000.0, sigma: 0.8 },
        burst_output: LengthDist::LogNormal { median: 150.0, sigma: 0.5 },
        seed: 0x51_3E_9F,
    }
    .generate()
}

/// Process-wide peak resident set size in kB, from `/proc/self/status`
/// (`VmHWM`). Zero on platforms without procfs — the field is
/// best-effort and monotonic over the process lifetime.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Runs `trace` through a calendar-driven cluster of `replicas` engines
/// and measures events/sec (events = engine scheduling iterations).
fn measure_calendar(
    name: &str,
    replicas: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
) -> Scenario {
    let mut sim = ClusterSim::new(
        engines(replicas, slo, kv_capacity, false),
        RoutingKind::default().policy(),
    );
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    assert_eq!(
        report.records().len() + report.rejected().len(),
        trace.len(),
        "every request must complete or be rejected"
    );
    Scenario {
        name: name.to_string(),
        replicas,
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Same measurement through the naive loop this PR replaced: the
/// linear-rescan cluster dispatch (`ReferenceClusterSim`) over engines
/// running the pre-index linear admission scan. Scheduling decisions
/// are identical to the calendar path — only the cost model differs.
fn measure_reference(
    name: &str,
    replicas: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
) -> Scenario {
    let mut sim = ReferenceClusterSim::new(
        engines(replicas, slo, kv_capacity, true),
        RoutingKind::default().policy(),
    );
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    Scenario {
        name: name.to_string(),
        replicas,
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn render_json(mode: &str, scenarios: &[Scenario], speedup: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"simperf\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(
        "  \"events\": \"engine scheduling iterations across all replicas\",\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"replicas\": {}, \"requests\": {}, \"events\": {}, \
             \"wall_s\": {:.4}, \"events_per_sec\": {:.0}, \"peak_rss_kb\": {}}}{}\n",
            s.name,
            s.replicas,
            s.requests,
            s.events,
            s.wall_s,
            s.events_per_sec,
            s.peak_rss_kb,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"speedup_vs_reference\": {speedup:.2},\n"));
    out.push_str(&format!("  \"peak_rss_kb\": {}\n}}\n", peak_rss_kb()));
    out
}

/// Pulls `(name, events_per_sec)` pairs back out of a baseline JSON
/// written by [`render_json`] — field-order-dependent by construction,
/// which is fine for a file this binary itself produces.
fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = rest[..name_end].to_string();
        let Some(eps_at) = line.find("\"events_per_sec\": ") else { continue };
        let eps_str: String = line[eps_at + 18..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(eps) = eps_str.parse::<f64>() {
            out.push((name, eps));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let mode = if smoke { "smoke" } else { "full" };

    // Replica sweep, one scoped thread per point. Wall-clock per point is
    // measured inside the point's own thread; the sweep points only
    // feed the events/sec curve, so cross-point CPU contention is an
    // acceptable trade for a much shorter bench.
    let replica_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16, 64] };
    let mut scenarios = parallel_sweep(replica_counts, |&r| {
        let trace = bursty_trace(r, smoke, if smoke { 8 } else { 20 });
        measure_calendar(&format!("calendar_r{r}"), r, None, DEFAULT_KV, &trace)
    });

    // Headline pair: the optimized stack (event calendar + indexed EDF
    // admission + allocation-free batch build) versus the naive loop it
    // replaced (linear-rescan dispatch + linear admission scan), on a
    // deep-burst SLO trace at the largest sweep point, measured
    // back-to-back on a quiet process. The measured ratio is a lower
    // bound on the true win: the pre-PR code also paid O(W) queue
    // removals and a fresh allocation per batch build, which the
    // reference path does not reproduce.
    let headline_r = *replica_counts.last().expect("sweep is non-empty");
    let slo = Some(ClassSlo::default());
    let trace = bursty_trace(headline_r, smoke, if smoke { 40 } else { 300 });
    let cal = measure_calendar(
        &format!("calendar_headline_r{headline_r}"),
        headline_r,
        slo,
        BOUND_KV,
        &trace,
    );
    let reference =
        measure_reference(&format!("reference_r{headline_r}"), headline_r, slo, BOUND_KV, &trace);
    assert_eq!(cal.events, reference.events, "loops must execute identical event counts");
    let speedup = cal.events_per_sec / reference.events_per_sec.max(1e-9);
    scenarios.push(cal);
    scenarios.push(reference);

    let json = render_json(mode, &scenarios, speedup);
    std::fs::write("BENCH_simperf.json", &json).expect("write BENCH_simperf.json");
    println!("{json}");
    println!(
        "calendar vs linear-rescan reference at {headline_r} replicas: {speedup:.2}x events/sec"
    );

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for (name, base_eps) in parse_baseline(&baseline) {
            let Some(now) = scenarios.iter().find(|s| s.name == name) else { continue };
            let floor = 0.70 * base_eps;
            let verdict = if now.events_per_sec < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "baseline check {name}: {:.0} events/s vs floor {:.0} ({:.0} committed) — {verdict}",
                now.events_per_sec, floor, base_eps
            );
        }
        if failed {
            eprintln!("simperf: events/sec regressed >30% vs {path}");
            std::process::exit(1);
        }
    }
}
