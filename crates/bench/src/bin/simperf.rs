//! Simulator self-benchmark: how fast does the simulator itself run?
//!
//! Measures wall-clock scheduling events per second and peak RSS of the
//! event-calendar cluster loop ([`ClusterSim`]) on bursty traces at 1, 4,
//! 16, and 64 replicas, plus the calendar's speedup over the
//! pre-calendar linear-rescan loop (`ReferenceClusterSim`, kept as an
//! executable specification). Results land in `BENCH_simperf.json`.
//!
//! ```text
//! cargo run --release -p sp-bench --bin simperf [-- --smoke] [-- --baseline ci/simperf_baseline.json]
//! ```
//!
//! * `--smoke` — small traces and replica counts (the CI gate). Smoke
//!   scenarios run one warmup iteration then best-of-3, so the gated
//!   numbers reflect a warm process rather than whichever cold-start
//!   hiccup the CI runner happened to have.
//! * `--baseline <path>` — compare events/sec against a committed
//!   baseline JSON and exit non-zero on a >30% regression in any
//!   scenario present in both runs.
//!
//! Besides the calendar sweep and the calendar-vs-reference headline
//! pair, the bench measures `pricing_evals_per_sec`: a multi-config
//! `ShiftPolicy` cluster on 8-GPU nodes priced through compiled
//! [`ExecPlan`]s plus the engine's decode-shape memo, against the same
//! cluster forced onto the direct `try_iteration` fold
//! (`Engine::set_direct_pricing`). Both runs share the calendar
//! scheduler, so the ratio isolates the pricing layer.
//!
//! The replica sweep fans out across cores via
//! [`sp_bench::harness::parallel_sweep`]; the headline and pricing
//! pairs run sequentially afterwards so their ratios are measured
//! without CPU contention.
//!
//! The `parallel_r64_t{1,2,8}` scenarios measure the horizon-parallel
//! cluster engine at explicit fan-out widths on the 64-replica
//! deep-burst fleet; every scenario line records the `threads` it ran
//! at, and `parallel_scaling_t8` reports the t8/t1 events/sec ratio.
//! The JSON also records `available_parallelism` — the host core
//! count — and the baseline gate skips `parallel_r64_t8` on
//! single-core hosts, where thread fan-out cannot win by construction.
//!
//! The `fastforward_r64` pair measures the decode fast-forward path:
//! the decode-heavy 64-replica shift cluster with steady-state
//! macro-stepping live versus the same fleet forced onto the
//! per-iteration loop (`Engine::set_fast_forward(false)`). Reports are
//! byte-identical across the pair (pinned by the fast-forward property
//! suite); event counts are asserted equal here, and in smoke mode the
//! measured speedup is hard-gated at >=3x.
//!
//! The `steadyshape_r64` pair measures the generalized shape-stable
//! fast-forward — mixed prefill+decode windows plus the KV-blocked
//! admission gate — on a KV-bound trace whose prefills chunk across
//! several iterations, against the same fleet forced per-iteration. In
//! smoke mode the measured speedup is hard-gated at >=2x.

use shift_core::ShiftPolicy;
use sp_bench::harness::parallel_sweep;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_engine::{
    AutoscaleConfig, Autoscaler, ClusterSim, Engine, EngineConfig, FaultPlan, LoadBandPolicy,
    ReferenceClusterSim, RetryPolicy, RoutingKind,
};
use sp_metrics::{ClassSlo, Dur};
use sp_model::presets;
use sp_parallel::{BatchWork, ChunkWork, ExecPlan, ExecutionModel, ParallelConfig, StaticPolicy};
use sp_workload::bursty::BurstyConfig;
use sp_workload::{sizes::LengthDist, Trace};
use std::time::Instant;

/// Sweep scenarios run unconstrained engines (ample KV).
const DEFAULT_KV: u64 = 1_000_000;
/// The headline pair runs KV-bound engines: few sequences fit at once,
/// so bursts pile into deep waiting queues — the backlog regime where
/// the pre-index admission scan went quadratic.
const BOUND_KV: u64 = 24_576;

/// One measured scenario.
struct Scenario {
    name: String,
    replicas: usize,
    /// Horizon-parallel fan-out width the simulation ran at (1 for the
    /// sequential reference and the non-cluster scenarios).
    threads: usize,
    requests: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_rss_kb: u64,
}

fn engines(n: usize, slo: Option<ClassSlo>, kv_capacity: u64, reference_mode: bool) -> Vec<Engine> {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    (0..n)
        .map(|_| {
            let config = EngineConfig {
                class_slo: slo,
                kv_capacity_tokens: kv_capacity,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                config,
            );
            engine.set_reference_mode(reference_mode);
            engine
        })
        .collect()
}

/// Engines for the pricing pair: 8-GPU paper nodes running the
/// two-config Shift policy, so every scheduling iteration prices both
/// the base and the shifted layout. `memo` enables the decode-shape
/// step memo; `direct` forces pricing back onto the `try_iteration`
/// fold while keeping the calendar scheduler, isolating pricing cost.
fn pricing_engines(n: usize, memo: Option<u64>, direct: bool) -> Vec<Engine> {
    let node = NodeSpec::p5en_48xlarge();
    (0..n)
        .map(|_| {
            let config = EngineConfig {
                kv_capacity_tokens: DEFAULT_KV,
                decode_memo_tokens: memo,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(ShiftPolicy::with_default_threshold(ParallelConfig::new(4, 2))),
                config,
            );
            engine.set_direct_pricing(direct);
            engine
        })
        .collect()
}

/// Engines for the fast-forward pair: the decode-heavy shift cluster
/// with the decode-shape memo on (the `cluster_memo` configuration),
/// with the steady-state decode fast-forward either live (the engine
/// default) or disabled so every decode iteration walks the
/// per-iteration scheduler. Both sides share the calendar and the
/// pricing stack, so the ratio isolates macro-stepping.
fn fastforward_engines(n: usize, fast_forward: bool) -> Vec<Engine> {
    let mut engines = pricing_engines(n, Some(8192), false);
    for e in &mut engines {
        e.set_fast_forward(fast_forward);
    }
    engines
}

/// A bursty trace whose offered load scales with the replica count, so
/// per-replica utilization stays comparable across the sweep.
/// `burst_depth` is the per-replica burst size — the headline scenario
/// raises it so engines carry deep waiting queues through each burst,
/// the regime where admission cost matters.
fn bursty_trace(replicas: usize, smoke: bool, burst_depth: usize) -> Trace {
    let r = replicas as f64;
    let (duration, base_rate, bursts) =
        if smoke { (30.0, 0.4 * r, 1) } else { (120.0, 0.5 * r, 2) };
    BurstyConfig {
        duration: Dur::from_secs(duration),
        base_rate,
        bursts,
        burst_size: burst_depth * replicas,
        burst_window: Dur::from_secs(5.0),
        base_input: LengthDist::LogNormal { median: 450.0, sigma: 0.6 },
        base_output: LengthDist::LogNormal { median: 120.0, sigma: 0.5 },
        burst_input: LengthDist::LogNormal { median: 2000.0, sigma: 0.8 },
        burst_output: LengthDist::LogNormal { median: 150.0, sigma: 0.5 },
        seed: 0x51_3E_9F,
    }
    .generate()
}

/// A decode-heavy trace for the pricing pair: one deep synchronized
/// burst of short prompts with long, low-variance generations, on top
/// of a trickle of interactive traffic. After the burst prefills drain,
/// every replica settles into a long plateau of pure-decode iterations
/// over ~200 sequences — the regime where the direct per-chunk cost
/// fold dominates wall time and the compiled plans plus the
/// decode-shape memo pay off.
fn decode_heavy_trace(replicas: usize, smoke: bool) -> Trace {
    let r = replicas as f64;
    let (duration, burst_depth, out_median) =
        if smoke { (15.0, 120, 800.0) } else { (20.0, 240, 1500.0) };
    BurstyConfig {
        duration: Dur::from_secs(duration),
        base_rate: 0.5 * r,
        bursts: 1,
        burst_size: burst_depth * replicas,
        burst_window: Dur::from_secs(2.0),
        base_input: LengthDist::LogNormal { median: 150.0, sigma: 0.4 },
        base_output: LengthDist::LogNormal { median: 400.0, sigma: 0.4 },
        burst_input: LengthDist::LogNormal { median: 200.0, sigma: 0.3 },
        burst_output: LengthDist::LogNormal { median: out_median, sigma: 0.25 },
        seed: 0xDE_C0_DE,
    }
    .generate()
}

/// The steady-state trace for the fast-forward pair: one compressed
/// burst of long, low-variance generations and almost no trailing
/// traffic, so nearly all decode work happens in the unbounded drain
/// window after arrivals stop. Every cluster-wide arrival cuts a
/// horizon window across all replicas (bounding any decode run at the
/// arrival instant), so the burst-then-drain shape is the regime the
/// fast-forward path targets: long uninterrupted decode plateaus whose
/// run length is set by sequence finishes, not by window edges.
fn fastforward_trace(replicas: usize, smoke: bool) -> Trace {
    let r = replicas as f64;
    let (burst_depth, out_median) = if smoke { (48, 1500.0) } else { (64, 5000.0) };
    BurstyConfig {
        duration: Dur::from_secs(2.0),
        base_rate: 0.05 * r,
        bursts: 1,
        burst_size: burst_depth * replicas,
        burst_window: Dur::from_secs(0.25),
        base_input: LengthDist::LogNormal { median: 150.0, sigma: 0.4 },
        base_output: LengthDist::LogNormal { median: 400.0, sigma: 0.4 },
        burst_input: LengthDist::LogNormal { median: 200.0, sigma: 0.3 },
        burst_output: LengthDist::LogNormal { median: out_median, sigma: 0.1 },
        seed: 0xDE_C0_DE,
    }
    .generate()
}

/// Trace for the shape-stable-window pair: a KV-bound steady state
/// threaded with chunked prefills. Inputs run ~3x the engines' token
/// budget, so each admission prefills across several iterations — the
/// mixed prefill+decode windows this path macro-steps — while long,
/// low-variance outputs hold the decode plateau between arrivals and
/// the bounded KV keeps a deep blocked wait queue parked on the
/// admission gate instead of being rescanned every iteration.
fn steadyshape_trace(replicas: usize, smoke: bool) -> Trace {
    let r = replicas as f64;
    let (duration, burst_depth, out_median) =
        if smoke { (2.0, 6, 400.0) } else { (8.0, 24, 700.0) };
    BurstyConfig {
        duration: Dur::from_secs(duration),
        base_rate: 0.2 * r,
        bursts: 1,
        burst_size: burst_depth * replicas,
        burst_window: Dur::from_secs(0.5),
        base_input: LengthDist::LogNormal { median: 5000.0, sigma: 0.3 },
        base_output: LengthDist::LogNormal { median: out_median, sigma: 0.2 },
        burst_input: LengthDist::LogNormal { median: 6000.0, sigma: 0.3 },
        burst_output: LengthDist::LogNormal { median: out_median, sigma: 0.2 },
        seed: 0x5A_FE_5A,
    }
    .generate()
}

/// Engines for the shape-stable pair: single-GPU DP replicas with a
/// small token budget (so the trace's inputs chunk across iterations),
/// bounded KV (so the admission gate engages), and SLO classes (so the
/// gate's EDF expiry bound is live), with the shape-stable fast-forward
/// either on (the default) or forced off.
fn steadyshape_engines(n: usize, fast_forward: bool) -> Vec<Engine> {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    (0..n)
        .map(|_| {
            let config = EngineConfig {
                class_slo: Some(ClassSlo::default()),
                kv_capacity_tokens: BOUND_KV,
                max_batched_tokens: 2048,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                config,
            );
            engine.set_fast_forward(fast_forward);
            engine
        })
        .collect()
}

/// One warmup run then best-of-`runs`. Smoke mode gates absolute
/// events/sec against a committed baseline, and single cold-start runs
/// on shared CI runners were flaky enough to trip the 30% floor; the
/// warmup pays one-time costs (page faults, frequency ramp) and the max
/// keeps the least-contended repeat. `runs == 1` measures once, cold —
/// full mode keeps the old behavior.
fn best_of(runs: usize, mut measure: impl FnMut() -> Scenario) -> Scenario {
    if runs <= 1 {
        return measure();
    }
    let _warmup = measure();
    (0..runs)
        .map(|_| measure())
        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
        .expect("runs >= 1")
}

/// Peak resident set size in kB since the last [`reset_peak_rss`],
/// from `/proc/self/status` (`VmHWM`). Zero on platforms without
/// procfs — the field is best-effort.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Resets the kernel's peak-RSS watermark to the current RSS by writing
/// `5` to `/proc/self/clear_refs`, so each scenario's `peak_rss_kb`
/// reports its own high-water mark instead of a process-lifetime
/// monotone max (which made every row after the largest scenario repeat
/// one shared number). Best-effort: on platforms without the file the
/// watermark stays monotone, as before.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Runs `trace` through a calendar-driven cluster of `replicas` engines
/// and measures events/sec (events = engine scheduling iterations).
fn measure_calendar(
    name: &str,
    replicas: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
) -> Scenario {
    let mut sim = ClusterSim::new(
        engines(replicas, slo, kv_capacity, false),
        RoutingKind::default().policy(),
    );
    reset_peak_rss();
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    assert_eq!(
        report.records().len() + report.rejected().len(),
        trace.len(),
        "every request must complete or be rejected"
    );
    Scenario {
        name: name.to_string(),
        replicas,
        threads: sim.threads(),
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Calendar measurement with the load-band autoscaler in the loop: the
/// fleet starts at one replica and grows toward `peak` on the load
/// signal, so every dispatch pays the `pre_dispatch` lifecycle sweep
/// and the calendar absorbs generation-tagged spawn/retire churn. The
/// gated events/sec number keeps the autoscaling overhead on the
/// regression radar alongside the plain calendar scenarios.
fn measure_autoscaled(
    name: &str,
    peak: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
) -> Scenario {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let spawn = move |_: usize| {
        Engine::new(
            ExecutionModel::new(node, presets::qwen_32b()),
            Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
            EngineConfig { class_slo: slo, kv_capacity_tokens: kv_capacity, ..Default::default() },
        )
    };
    let scaler = Autoscaler::new(
        AutoscaleConfig { cold_start: Dur::from_secs(2.0), min_replicas: 1, max_replicas: peak },
        Box::new(LoadBandPolicy::new(600.0, 80.0).smoothing(0.7).cooldown(Dur::from_secs(1.0))),
        spawn,
    );
    let mut sim =
        ClusterSim::new(engines(1, slo, kv_capacity, false), RoutingKind::default().policy())
            .with_autoscaler(scaler);
    reset_peak_rss();
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    assert_eq!(
        report.records().len() + report.rejected().len(),
        trace.len(),
        "every request must complete or be rejected"
    );
    assert!(
        report.fleet_timeline().peak_provisioned() > 1,
        "autoscale scenario must actually exercise replica churn"
    );
    Scenario {
        name: name.to_string(),
        replicas: peak,
        threads: sim.threads(),
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Same measurement through the naive loop this PR replaced: the
/// linear-rescan cluster dispatch (`ReferenceClusterSim`) over engines
/// running the pre-index linear admission scan. Scheduling decisions
/// are identical to the calendar path — only the cost model differs.
fn measure_reference(
    name: &str,
    replicas: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
) -> Scenario {
    let mut sim = ReferenceClusterSim::new(
        engines(replicas, slo, kv_capacity, true),
        RoutingKind::default().policy(),
    );
    reset_peak_rss();
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    Scenario {
        name: name.to_string(),
        replicas,
        threads: 1,
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Every power-of-two `(sp, tp)` layout that fits an 8-GPU node and
/// shards the model — the candidate set a cost-driven shift deployment
/// prices when picking its base/shift pair. `compile` already rejects
/// exactly what `try_iteration` rejects, so the surviving plans and the
/// direct path price the same configurations.
fn shift_candidate_plans(exec: &ExecutionModel) -> Vec<ExecPlan> {
    let mut plans = Vec::new();
    for sp_pow in 0..4u32 {
        for tp_pow in 0..4u32 {
            let (sp, tp) = (1usize << sp_pow, 1usize << tp_pow);
            if sp * tp <= 8 {
                if let Ok(plan) = exec.compile(&ParallelConfig::new(sp, tp)) {
                    plans.push(plan);
                }
            }
        }
    }
    plans
}

/// A fixed window of decode-dominant batches echoing the decode-heavy
/// cluster scenario's plateau: 64–256 decode chunks at varied context
/// lengths, with a chunked-prefill rider in every 8th batch so the
/// prefill-linear-scale split stays on the measured path. The window is
/// pregenerated and cycled, keeping batch construction out of the
/// timed pricing loops.
fn pricing_batch_window() -> Vec<BatchWork> {
    (0..256usize)
        .map(|i| {
            let depth = 64 + (i * 37) % 193;
            let mut chunks: Vec<ChunkWork> = (0..depth)
                .map(|s| ChunkWork::decode(300 + ((i * 13 + s * 29) % 1500) as u64))
                .collect();
            if i % 8 == 0 {
                chunks.push(ChunkWork::prefill(512, 512 * (i % 4) as u64, i % 16 == 0));
            }
            BatchWork::new(chunks)
        })
        .collect()
}

/// Calendar measurement with fault injection in the loop: a seeded
/// Poisson crash schedule plus the crash-deficit autoscaler respawning
/// lost replicas, so every event passes through the fault-timer
/// interleaving (`peek_timer`, salvage, retry redelivery) instead of the
/// fault-free fast path. Gated like the other calendar scenarios to keep
/// the chaos machinery's overhead on the regression radar.
fn measure_chaos(
    name: &str,
    peak: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
    horizon: Dur,
) -> Scenario {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let spawn = move |_: usize| {
        Engine::new(
            ExecutionModel::new(node, presets::qwen_32b()),
            Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
            EngineConfig { class_slo: slo, kv_capacity_tokens: kv_capacity, ..Default::default() },
        )
    };
    let scaler = Autoscaler::new(
        AutoscaleConfig { cold_start: Dur::from_secs(2.0), min_replicas: 1, max_replicas: peak },
        Box::new(LoadBandPolicy::new(600.0, 80.0).smoothing(0.7).cooldown(Dur::from_secs(1.0))),
        spawn,
    );
    // MTTF of a quarter horizon: a handful of crashes per run, each
    // exercising salvage, backoff redelivery, and deficit respawn.
    let plan = FaultPlan::crashes_poisson(0xC4A5, horizon * 0.25, horizon, peak);
    let retry = RetryPolicy { max_retries: 3, base_backoff: Dur::from_secs(0.25) };
    let mut sim =
        ClusterSim::new(engines(1, slo, kv_capacity, false), RoutingKind::default().policy())
            .with_autoscaler(scaler)
            .with_faults(plan, retry);
    reset_peak_rss();
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    assert_eq!(
        report.records().len() + report.rejected().len() + report.failed().len(),
        trace.len(),
        "every request must complete, be rejected, or fail terminally"
    );
    assert!(report.fleet_timeline().crash_count() > 0, "chaos scenario must actually crash");
    Scenario {
        name: name.to_string(),
        replicas: peak,
        threads: sim.threads(),
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Calendar measurement at an explicit horizon-parallel fan-out width.
/// The `parallel_r*_t*` scenarios run the same replica fleet and trace
/// at widths 1, 2, and 8, so the JSON carries an events/sec column per
/// thread count and the t8 point can be gated in CI. Reports are
/// byte-identical across widths by construction (the horizon-parallel
/// property suite pins this); only wall-clock differs.
fn measure_parallel(
    name: &str,
    replicas: usize,
    threads: usize,
    slo: Option<ClassSlo>,
    kv_capacity: u64,
    trace: &Trace,
) -> Scenario {
    let mut sim = ClusterSim::new(
        engines(replicas, slo, kv_capacity, false),
        RoutingKind::default().policy(),
    )
    .with_threads(threads);
    reset_peak_rss();
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    assert_eq!(
        report.records().len() + report.rejected().len(),
        trace.len(),
        "every request must complete or be rejected"
    );
    Scenario {
        name: name.to_string(),
        replicas,
        threads,
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Pricing-layer throughput: every candidate shift layout priced over a
/// stream of realistic batches. For these scenarios an *event is one
/// config evaluation* (batches × configurations), not a scheduling
/// iteration. `compiled` prices through one `price_all` pass — one
/// config-independent batch fold shared across all plans; the direct
/// side re-folds the whole batch per config via `try_iteration`, which
/// is exactly what policy pricing and `Engine::new` did before plans.
fn measure_pricing_evals(
    name: &str,
    replicas: usize,
    smoke: bool,
    exec: &ExecutionModel,
    compiled: bool,
) -> Scenario {
    let window = pricing_batch_window();
    let plans = shift_candidate_plans(exec);
    let configs: Vec<ParallelConfig> = plans.iter().map(|p| p.config()).collect();
    let rounds = if smoke { 300 * replicas } else { 1500 * replicas };
    let mut evals = 0u64;
    reset_peak_rss();
    let start = Instant::now();
    for r in 0..rounds {
        let batch = &window[r % window.len()];
        if compiled {
            let priced = exec.price_all(&plans, batch);
            evals += priced.len() as u64;
            std::hint::black_box(&priced);
        } else {
            for c in &configs {
                std::hint::black_box(exec.iteration(c, batch).total());
            }
            evals += configs.len() as u64;
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    Scenario {
        name: name.to_string(),
        replicas,
        threads: 1,
        requests: rounds,
        events: evals,
        wall_s,
        events_per_sec: evals as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Runs `trace` through a calendar-driven cluster built from the given
/// engines. Used by the cluster-level memo pair, where the two runs
/// differ only in how iterations are priced — scheduling decisions may
/// diverge across the pair (the memo quantizes decode durations), so no
/// event-count equality is asserted; each run's events/sec stands on
/// its own wall.
fn measure_with_engines(
    name: &str,
    replicas: usize,
    engines: Vec<Engine>,
    trace: &Trace,
) -> Scenario {
    let mut sim = ClusterSim::new(engines, RoutingKind::default().policy());
    reset_peak_rss();
    let start = Instant::now();
    let report = sim.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.iterations();
    Scenario {
        name: name.to_string(),
        replicas,
        threads: sim.threads(),
        requests: trace.len(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Host core count as reported by the standard library; 1 when the
/// query fails. Recorded per run so baseline numbers carry the
/// parallelism they were measured at, and consulted by the baseline
/// gate to skip thread-scaling floors on single-core hosts.
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn render_json(
    mode: &str,
    scenarios: &[Scenario],
    speedup: f64,
    pricing: (f64, f64),
    parallel_scaling_t8: f64,
    fastforward_speedup: f64,
    steadyshape_speedup: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"simperf\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"available_parallelism\": {},\n", available_parallelism()));
    out.push_str(
        "  \"events\": \"engine scheduling iterations across all replicas\",\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"replicas\": {}, \"threads\": {}, \"requests\": {}, \
             \"events\": {}, \"wall_s\": {:.4}, \"events_per_sec\": {:.0}, \
             \"peak_rss_kb\": {}}}{}\n",
            s.name,
            s.replicas,
            s.threads,
            s.requests,
            s.events,
            s.wall_s,
            s.events_per_sec,
            s.peak_rss_kb,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"speedup_vs_reference\": {speedup:.2},\n"));
    out.push_str(&format!("  \"parallel_scaling_t8\": {parallel_scaling_t8:.2},\n"));
    out.push_str(&format!("  \"fastforward_speedup\": {fastforward_speedup:.2},\n"));
    out.push_str(&format!("  \"steadyshape_speedup\": {steadyshape_speedup:.2},\n"));
    out.push_str(&format!("  \"pricing_evals_per_sec\": {:.0},\n", pricing.0));
    out.push_str(&format!("  \"pricing_speedup_vs_direct\": {:.2},\n", pricing.1));
    let peak = scenarios.iter().map(|s| s.peak_rss_kb).max().unwrap_or(0).max(peak_rss_kb());
    out.push_str(&format!("  \"peak_rss_kb\": {peak}\n}}\n"));
    out
}

/// Pulls `(name, events_per_sec)` pairs back out of a baseline JSON
/// written by [`render_json`] — field-order-dependent by construction,
/// which is fine for a file this binary itself produces.
fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = rest[..name_end].to_string();
        let Some(eps_at) = line.find("\"events_per_sec\": ") else { continue };
        let eps_str: String = line[eps_at + 18..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(eps) = eps_str.parse::<f64>() {
            out.push((name, eps));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let mode = if smoke { "smoke" } else { "full" };

    // Replica sweep, one scoped thread per point. Wall-clock per point is
    // measured inside the point's own thread; the sweep points only
    // feed the events/sec curve, so cross-point CPU contention is an
    // acceptable trade for a much shorter bench.
    let replica_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16, 64] };
    let runs = if smoke { 3 } else { 1 };
    let mut scenarios = parallel_sweep(replica_counts, |&r| {
        let trace = bursty_trace(r, smoke, if smoke { 8 } else { 20 });
        // The single-replica point finishes in a few milliseconds; a
        // cold full-mode sample is dominated by first-touch page faults
        // and frequency ramp, so warm it like smoke mode does. The
        // larger points stay cold in full mode (one run each).
        let point_runs = if r == 1 { runs.max(3) } else { runs };
        best_of(point_runs, || {
            measure_calendar(&format!("calendar_r{r}"), r, None, DEFAULT_KV, &trace)
        })
    });

    // Headline pair: the optimized stack (event calendar + indexed EDF
    // admission + allocation-free batch build) versus the naive loop it
    // replaced (linear-rescan dispatch + linear admission scan), on a
    // deep-burst SLO trace at the largest sweep point, measured
    // back-to-back on a quiet process. The measured ratio is a lower
    // bound on the true win: the pre-PR code also paid O(W) queue
    // removals and a fresh allocation per batch build, which the
    // reference path does not reproduce.
    let headline_r = *replica_counts.last().expect("sweep is non-empty");
    let slo = Some(ClassSlo::default());
    let trace = bursty_trace(headline_r, smoke, if smoke { 40 } else { 300 });
    let cal = best_of(runs, || {
        measure_calendar(
            &format!("calendar_headline_r{headline_r}"),
            headline_r,
            slo,
            BOUND_KV,
            &trace,
        )
    });
    let reference = best_of(runs, || {
        measure_reference(&format!("reference_r{headline_r}"), headline_r, slo, BOUND_KV, &trace)
    });
    assert_eq!(cal.events, reference.events, "loops must execute identical event counts");
    let speedup = cal.events_per_sec / reference.events_per_sec.max(1e-9);
    scenarios.push(cal);
    scenarios.push(reference);

    // Autoscaled calendar: the same deep-burst SLO trace driven through
    // a fleet that starts at one replica and scales toward the headline
    // replica count on the load signal. Gated like the other calendar
    // scenarios so the per-dispatch lifecycle sweep and the
    // generation-tagged calendar churn stay on the regression radar.
    scenarios.push(best_of(runs, || {
        measure_autoscaled(&format!("autoscale_r{headline_r}"), headline_r, slo, BOUND_KV, &trace)
    }));

    // Chaos calendar: the same autoscaled fleet under a seeded Poisson
    // crash schedule, so the fault-timer interleaving (salvage, backoff
    // redelivery, deficit respawn) is measured and gated rather than
    // only tested.
    let chaos_horizon = Dur::from_secs(if smoke { 30.0 } else { 120.0 });
    scenarios.push(best_of(runs, || {
        measure_chaos(
            &format!("chaos_r{headline_r}"),
            headline_r,
            slo,
            BOUND_KV,
            &trace,
            chaos_horizon,
        )
    }));

    // Thread-scaling sweep: the 64-replica deep-burst headline fleet
    // stepped through the horizon-parallel engine at explicit fan-out
    // widths. All three widths produce byte-identical reports (pinned
    // by the property suite and the CI determinism job); the ratio
    // t8/t1 is the wall-clock payoff of parallel replica stepping on
    // this machine. Runs sequentially after the sweep so each width is
    // measured without cross-scenario CPU contention.
    let par_r = 64;
    let par_trace = bursty_trace(par_r, smoke, if smoke { 8 } else { 20 });
    let mut t1_eps = 0.0f64;
    let mut t8_eps = 0.0f64;
    for &t in &[1usize, 2, 8] {
        let s = best_of(runs, || {
            measure_parallel(
                &format!("parallel_r{par_r}_t{t}"),
                par_r,
                t,
                None,
                DEFAULT_KV,
                &par_trace,
            )
        });
        if t == 1 {
            t1_eps = s.events_per_sec;
        }
        if t == 8 {
            t8_eps = s.events_per_sec;
        }
        scenarios.push(s);
    }
    let parallel_scaling = t8_eps / t1_eps.max(1e-9);

    // Pricing pair: one-pass `price_all` over compiled plans vs the
    // per-config `try_iteration` re-fold, over the same batch stream
    // and candidate-layout sweep, back-to-back on a quiet process. For
    // these two scenarios an event is one config evaluation, so both
    // sides execute identical event counts by construction.
    let pricing_r = headline_r;
    let pricing_exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::qwen_32b());
    let compiled = best_of(runs, || {
        measure_pricing_evals(
            &format!("pricing_shift_r{pricing_r}"),
            pricing_r,
            smoke,
            &pricing_exec,
            true,
        )
    });
    let direct = best_of(runs, || {
        measure_pricing_evals(
            &format!("pricing_direct_r{pricing_r}"),
            pricing_r,
            smoke,
            &pricing_exec,
            false,
        )
    });
    assert_eq!(compiled.events, direct.events, "both paths price every (batch, config) pair");
    let pricing_eps = compiled.events_per_sec;
    let pricing_speedup = compiled.events_per_sec / direct.events_per_sec.max(1e-9);
    scenarios.push(compiled);
    scenarios.push(direct);

    // Cluster-level memo pair (informational): the same calendar
    // scheduler end to end on a decode-heavy shift-policy cluster, with
    // pricing either through plans + the decode-shape memo or forced
    // onto the direct fold. Bounds how much of a full simulation run
    // the pricing layer is worth.
    let cluster_trace = decode_heavy_trace(pricing_r, smoke);
    let memo = best_of(runs, || {
        measure_with_engines(
            &format!("cluster_memo_r{pricing_r}"),
            pricing_r,
            pricing_engines(pricing_r, Some(8192), false),
            &cluster_trace,
        )
    });
    let direct_cluster = best_of(runs, || {
        measure_with_engines(
            &format!("cluster_directprice_r{pricing_r}"),
            pricing_r,
            pricing_engines(pricing_r, None, true),
            &cluster_trace,
        )
    });
    scenarios.push(memo);
    scenarios.push(direct_cluster);

    // Fast-forward pair: the decode-heavy shift cluster macro-stepped
    // through steady-state decode runs versus the same fleet forced
    // onto the per-iteration loop. Reports are byte-identical across
    // the pair (the fast-forward property suite pins this), and the
    // event counts are asserted equal here, so the events/sec ratio is
    // pure scheduler wall time. Gated at >=3x in smoke so the fast
    // path cannot silently stop engaging.
    let ff_r = 64;
    let ff_trace = fastforward_trace(ff_r, smoke);
    let ff = best_of(runs, || {
        measure_with_engines(
            &format!("fastforward_r{ff_r}"),
            ff_r,
            fastforward_engines(ff_r, true),
            &ff_trace,
        )
    });
    let periter = best_of(runs, || {
        measure_with_engines(
            &format!("fastforward_periter_r{ff_r}"),
            ff_r,
            fastforward_engines(ff_r, false),
            &ff_trace,
        )
    });
    assert_eq!(
        ff.events, periter.events,
        "fast-forward and per-iteration loops must execute identical event counts"
    );
    let fastforward_speedup = ff.events_per_sec / periter.events_per_sec.max(1e-9);
    if smoke {
        assert!(
            fastforward_speedup >= 3.0,
            "decode fast-forward must hold >=3x over the per-iteration loop in smoke \
             (got {fastforward_speedup:.2}x)"
        );
    }
    scenarios.push(ff);
    scenarios.push(periter);

    // Shape-stable window pair: the same engines with the generalized
    // fast-forward (mixed prefill+decode windows plus the KV-blocked
    // admission gate) against the forced per-iteration loop, on a
    // KV-bound trace whose prefills chunk across iterations. Reports
    // are byte-identical across the pair (pinned by the fast-forward
    // property suite); event counts are asserted equal here, and smoke
    // hard-gates the ratio so the generalized path cannot silently
    // stop engaging.
    let ss_r = 64;
    let ss_trace = steadyshape_trace(ss_r, smoke);
    let ss = best_of(runs, || {
        measure_with_engines(
            &format!("steadyshape_r{ss_r}"),
            ss_r,
            steadyshape_engines(ss_r, true),
            &ss_trace,
        )
    });
    let ss_periter = best_of(runs, || {
        measure_with_engines(
            &format!("steadyshape_periter_r{ss_r}"),
            ss_r,
            steadyshape_engines(ss_r, false),
            &ss_trace,
        )
    });
    assert_eq!(
        ss.events, ss_periter.events,
        "shape-stable and per-iteration loops must execute identical event counts"
    );
    let steadyshape_speedup = ss.events_per_sec / ss_periter.events_per_sec.max(1e-9);
    if smoke {
        assert!(
            steadyshape_speedup >= 2.0,
            "shape-stable windows must hold >=2x over the per-iteration loop in smoke \
             (got {steadyshape_speedup:.2}x)"
        );
    }
    scenarios.push(ss);
    scenarios.push(ss_periter);

    let json = render_json(
        mode,
        &scenarios,
        speedup,
        (pricing_eps, pricing_speedup),
        parallel_scaling,
        fastforward_speedup,
        steadyshape_speedup,
    );
    std::fs::write("BENCH_simperf.json", &json).expect("write BENCH_simperf.json");
    println!("{json}");
    println!(
        "calendar vs linear-rescan reference at {headline_r} replicas: {speedup:.2}x events/sec"
    );
    println!(
        "horizon-parallel stepping at {par_r} replicas: {parallel_scaling:.2}x events/sec at 8 threads vs 1"
    );
    println!(
        "compiled pricing vs direct try_iteration re-folds: {pricing_speedup:.2}x config evals/sec"
    );
    println!(
        "decode fast-forward at {ff_r} replicas: {fastforward_speedup:.2}x events/sec vs the per-iteration loop"
    );
    println!(
        "shape-stable windows at {ss_r} replicas: {steadyshape_speedup:.2}x events/sec vs the per-iteration loop"
    );
    sp_bench::probes::print_profile();

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let cores = available_parallelism();
        let mut failed = false;
        for (name, base_eps) in parse_baseline(&baseline) {
            if name == "parallel_r64_t8" && cores < 2 {
                println!(
                    "baseline check {name}: skipped (single-core host, \
                     available_parallelism = {cores})"
                );
                continue;
            }
            let Some(now) = scenarios.iter().find(|s| s.name == name) else { continue };
            let floor = 0.70 * base_eps;
            let verdict = if now.events_per_sec < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "baseline check {name}: {:.0} events/s vs floor {:.0} ({:.0} committed) — {verdict}",
                now.events_per_sec, floor, base_eps
            );
        }
        if failed {
            eprintln!("simperf: events/sec regressed >30% vs {path}");
            std::process::exit(1);
        }
    }
}
