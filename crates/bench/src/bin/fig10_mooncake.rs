//! Figure 10 + 11b: the Mooncake conversation trace on Qwen-32B with
//! FP8 KV cache.
//!
//! The heavier conversation workload saturates the KV cache of TP and DP
//! deployments, producing unbounded queueing; SP and Shift sustain it.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig10_mooncake
//! ```

use sp_bench::harness::{print_summaries, print_table, run_kind, standard_kinds, summarize};
use sp_model::{presets, Precision};
use sp_workload::mooncake::MooncakeConfig;

fn main() {
    // §4.2.2: "we turned on FP8 KV cache data type (originally FP16) for
    // increasing the KV cache capacity".
    let mut model = presets::qwen_32b();
    model.kv_precision = Precision::Fp8;

    let trace = MooncakeConfig::default().generate();
    println!(
        "Mooncake-like trace: {} requests / 15 min ({} groups of 9 every 3s), \
         mean input {:.0}, mean output {:.0}",
        trace.len(),
        trace.len() / 9,
        trace.total_input_tokens() as f64 / trace.len() as f64,
        trace.total_output_tokens() as f64 / trace.len() as f64,
    );

    let mut summaries = Vec::new();
    let mut wait_rows = Vec::new();
    for (name, kind) in standard_kinds() {
        let mut report = run_kind(kind, &model, &trace);

        // Queue growth indicator: TTFT of successive request quintiles.
        let mut records = report.records().to_vec();
        records.sort_by_key(|r| r.request_id);
        let q = records.len() / 5;
        let mut row = vec![name.to_string()];
        for chunk in records.chunks(q.max(1)).take(5) {
            let mean_ttft =
                chunk.iter().map(|r| r.ttft().as_secs()).sum::<f64>() / chunk.len() as f64;
            row.push(format!("{mean_ttft:.1}"));
        }
        row.push(format!("{:.2}", report.peak_kv_utilization()));
        wait_rows.push(row);
        summaries.push(summarize(name, &mut report));
    }
    print_table(
        "Figure 10 — mean TTFT (s) per request quintile (queue growth) + peak KV util",
        &["system", "q1", "q2", "q3", "q4", "q5", "peak KV"],
        &wait_rows,
    );
    print_summaries("Figure 11b — Mooncake trace latency statistics", &summaries);
    println!(
        "\nExpected shape (Figure 10): TP and DP wait times grow without bound across\n\
         quintiles (KV cache saturates); SP and Shift sustain the traffic with\n\
         bounded completion times."
    );
}
