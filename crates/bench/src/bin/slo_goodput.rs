//! SLO attainment and goodput across arrival rates — the QoS framing of
//! §2.1 ("different requests subject to different quality-of-service
//! metrics") turned into a measurement: what fraction of interactive
//! requests meet a chatbot-grade SLO, and how many SLO-attaining tokens
//! per second each deployment delivers.
//!
//! ```text
//! cargo run --release -p sp-bench --bin slo_goodput
//! ```

use sp_bench::harness::{print_table, run_kind, standard_kinds};
use sp_metrics::{SloReport, SloTarget};
use sp_model::presets;
use sp_workload::synthetic;

fn main() {
    let model = presets::llama_70b();
    let target = SloTarget::interactive();
    println!(
        "SLO: TTFT <= {:.0} ms and TPOT <= {:.0} ms (chatbot-grade)",
        target.ttft.as_millis(),
        target.tpot.as_millis()
    );

    let mut rows = Vec::new();
    for rate in [1.0, 2.0, 4.0, 8.0] {
        let trace = synthetic::poisson(200, rate, 4096, 250, 21);
        let mut row = vec![format!("{rate}")];
        let mut goodput_row = vec![String::new()];
        for (_, kind) in standard_kinds() {
            let report = run_kind(kind, &model, &trace);
            let slo = SloReport::evaluate(report.records(), target);
            row.push(format!("{:.0}%", slo.attainment() * 100.0));
            goodput_row.push(format!(
                "{:.0}",
                slo.goodput(report.makespan().since(sp_metrics::SimTime::ZERO,))
            ));
        }
        rows.push(row);
        rows.push(goodput_row);
    }
    print_table(
        "SLO attainment (%) and goodput (tok/s) vs arrival rate — Llama-70B 4k/250",
        &["req/s", "TP", "DP", "SP", "Shift"],
        &rows,
    );
    println!(
        "\nExpected shape: Shift sustains high attainment to the highest rate (it\n\
         combines SP's responsiveness with TP's decode latency), so its goodput\n\
         curve dominates."
    );
}
