//! SLO attainment and goodput across arrival rates — the QoS framing of
//! §2.1 ("different requests subject to different quality-of-service
//! metrics") turned into a measurement: what fraction of interactive
//! requests meet a chatbot-grade SLO, and how many SLO-attaining tokens
//! per second each deployment delivers.
//!
//! ```text
//! cargo run --release -p sp-bench --bin slo_goodput
//! ```

use shift_core::RoutingKind;
use sp_bench::harness::{print_table, run_kind, standard_kinds};
use sp_metrics::{ClassSlo, SimTime, SloReport, SloTarget};
use sp_model::presets;
use sp_workload::bursty::BurstyConfig;
use sp_workload::synthetic;

fn main() {
    let model = presets::llama_70b();
    let target = SloTarget::interactive();
    println!(
        "SLO: TTFT <= {:.0} ms and TPOT <= {:.0} ms (chatbot-grade)",
        target.ttft.as_millis(),
        target.tpot.as_millis()
    );

    let mut rows = Vec::new();
    for rate in [1.0, 2.0, 4.0, 8.0] {
        let trace = synthetic::poisson(200, rate, 4096, 250, 21);
        let mut row = vec![format!("{rate}")];
        let mut goodput_row = vec![String::new()];
        for (_, kind) in standard_kinds() {
            let report = run_kind(kind, &model, &trace);
            let slo = SloReport::evaluate(report.records(), target);
            row.push(format!("{:.0}%", slo.attainment() * 100.0));
            goodput_row.push(format!(
                "{:.0}",
                slo.goodput(report.makespan().since(sp_metrics::SimTime::ZERO,))
            ));
        }
        rows.push(row);
        rows.push(goodput_row);
    }
    print_table(
        "SLO attainment (%) and goodput (tok/s) vs arrival rate — Llama-70B 4k/250",
        &["req/s", "TP", "DP", "SP", "Shift"],
        &rows,
    );
    println!(
        "\nExpected shape: Shift sustains high attainment to the highest rate (it\n\
         combines SP's responsiveness with TP's decode latency), so its goodput\n\
         curve dominates."
    );

    class_aware_comparison();
}

/// Per-class SLO scoring on the mixed bursty trace: class-blind JSQ
/// versus the deadline-aware stack (EarliestDeadlineFeasible routing +
/// class-SLO engines) at equal replica count, on KV-tight single-GPU
/// replicas where the burst actually contends with the interactive
/// stream. The deadline-aware stack should lift interactive attainment
/// while keeping batch goodput within a few percent — the acceptance
/// property the `tests/slo_routing.rs` integration test pins down.
fn class_aware_comparison() {
    use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
    use sp_engine::{ClusterSim, Engine, EngineConfig};
    use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};

    const KV_TOKENS: u64 = 60_000;
    let slo = ClassSlo::default();
    println!(
        "\nPer-class SLO: interactive TTFT <= {:.0} ms / TPOT <= {:.0} ms; \
         batch TTFT <= {:.0} s / TPOT <= {:.0} ms",
        slo.interactive.ttft.as_millis(),
        slo.interactive.tpot.as_millis(),
        slo.batch.ttft.as_secs(),
        slo.batch.tpot.as_millis(),
    );
    let trace = BurstyConfig::default().generate();
    let replicas = |class_slo: Option<ClassSlo>| -> Vec<Engine> {
        let gpu = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
        (0..2)
            .map(|_| {
                Engine::new(
                    ExecutionModel::new(gpu, presets::qwen_32b()),
                    Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                    EngineConfig {
                        kv_capacity_tokens: KV_TOKENS,
                        class_slo,
                        ..EngineConfig::default()
                    },
                )
            })
            .collect()
    };

    let mut rows = Vec::new();
    let runs = [
        (
            "class-blind JSQ",
            ClusterSim::new(replicas(None), RoutingKind::JoinShortestOutstanding.policy()),
        ),
        (
            "deadline-aware EDF",
            ClusterSim::new(
                replicas(Some(slo)),
                RoutingKind::EarliestDeadlineFeasible(slo).policy(),
            ),
        ),
    ];
    for (label, mut sim) in runs {
        let report = sim.run(&trace);
        let class = report.class_slo_report(&slo);
        let makespan = report.makespan().since(SimTime::ZERO);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", class.interactive.attainment() * 100.0),
            format!("{:.0}", class.interactive.goodput(makespan)),
            format!("{:.1}%", class.batch.attainment() * 100.0),
            format!("{:.0}", class.batch.goodput(makespan)),
            format!("{}", report.batch_sheds()),
            format!("{}", report.batch_deferrals()),
        ]);
    }
    print_table(
        "Class-blind vs deadline-aware, 2 single-GPU DP replicas on the bursty trace — Qwen-32B",
        &["stack", "Int SLO", "Int goodput", "Batch SLO", "Batch goodput", "sheds", "deferrals"],
        &rows,
    );
    println!(
        "\nExpected shape: the deadline-aware stack trades a sliver of batch\n\
         goodput (deferred/shed burst prefills) for a large interactive\n\
         attainment gain during bursts."
    );
}
