//! Figure 11: completion-time distributions (CDFs) for the Azure and
//! Mooncake replays.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig11_cdfs
//! ```

use sp_bench::harness::{print_table, run_kind, standard_kinds};
use sp_model::{presets, Precision};
use sp_workload::azure::AzureCodeConfig;
use sp_workload::mooncake::MooncakeConfig;
use sp_workload::Trace;

fn cdf_table(title: &str, model: &sp_model::ModelConfig, trace: &Trace) {
    let probs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
    let mut rows: Vec<Vec<String>> =
        probs.iter().map(|p| vec![format!("p{:.0}", p * 100.0)]).collect();
    for (_, kind) in standard_kinds() {
        let mut report = run_kind(kind, model, trace);
        for (i, &p) in probs.iter().enumerate() {
            let v = report.metrics_mut().completion().quantile(p).unwrap_or(f64::NAN);
            rows[i].push(format!("{v:.2}"));
        }
    }
    print_table(title, &["quantile", "TP", "DP", "SP", "Shift"], &rows);
}

fn main() {
    cdf_table(
        "Figure 11a — Azure completion-time quantiles (s), Llama-70B",
        &presets::llama_70b(),
        &AzureCodeConfig::default().generate(),
    );
    let mut qwen = presets::qwen_32b();
    qwen.kv_precision = Precision::Fp8;
    cdf_table(
        "Figure 11b — Mooncake completion-time quantiles (s), Qwen-32B (FP8 KV)",
        &qwen,
        &MooncakeConfig::default().generate(),
    );
    println!(
        "\nExpected shape: Shift Parallelism's distribution is left-most (most likely\n\
         to deliver the lowest completion time) in both traces."
    );
}
