//! Iteration-resolution timeline of a shift deployment under a burst —
//! Algorithm 2's switching, made visible.
//!
//! ```text
//! cargo run --release -p sp-bench --bin timeline
//! ```

use shift_core::{Deployment, DeploymentKind};
use sp_bench::harness::{node, print_table};
use sp_metrics::Dur;
use sp_model::presets;
use sp_parallel::ParallelConfig;
use sp_workload::bursty::BurstyConfig;

fn main() {
    let trace = BurstyConfig {
        duration: Dur::from_secs(60.0),
        bursts: 1,
        burst_size: 60,
        ..BurstyConfig::default()
    }
    .generate();

    let mut dep = Deployment::builder(node(), presets::llama_70b())
        .kind(DeploymentKind::Shift)
        .record_timeline(true)
        .build()
        .unwrap();
    let report = dep.run(&trace);
    let timeline = report.timeline().expect("timeline enabled");
    println!("{} iterations recorded", timeline.len());

    // Aggregate into 2-second windows: iterations per config, mean batch.
    let window = 2.0;
    let mut rows = Vec::new();
    let mut start = 0usize;
    let mut w = 1.0;
    while start < timeline.len() {
        let end_time = w * window;
        let slice: Vec<_> =
            timeline[start..].iter().take_while(|e| e.end.as_secs() <= end_time).collect();
        if slice.is_empty() {
            w += 1.0;
            continue;
        }
        let base_iters = slice.iter().filter(|e| e.config != ParallelConfig::tensor(8)).count();
        let shift_iters = slice.len() - base_iters;
        let mean_tokens = slice.iter().map(|e| e.tokens).sum::<u64>() as f64 / slice.len() as f64;
        let peak_kv = slice.iter().map(|e| e.kv_utilization).fold(0.0, f64::max);
        rows.push(vec![
            format!("{:.0}-{:.0}", end_time - window, end_time),
            base_iters.to_string(),
            shift_iters.to_string(),
            format!("{mean_tokens:.0}"),
            format!("{peak_kv:.2}"),
            "#".repeat((base_iters as f64 / slice.len().max(1) as f64 * 20.0) as usize),
        ]);
        start += slice.len();
        w += 1.0;
    }
    print_table(
        "Shift timeline — iterations per 2s window (Llama-70B, one burst at ~30s)",
        &["t (s)", "base(SP)", "shift(TP)", "mean batch", "peak KV", "base share"],
        &rows,
    );
    println!(
        "\nReading: quiet phases run almost entirely in the shift (TP) config (small\n\
         decode batches); during the burst the batched tokens exceed the threshold\n\
         and the base (SP) config takes over — Algorithm 2 in action."
    );
}
