//! Figure 16: the production composition — Shift Parallelism + SwiftKV +
//! speculative decoding vs. latency- and throughput-optimized baselines.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig16_production
//! ```

use shift_core::DeploymentKind;
use sp_accel::{FrameworkProfile, ProductionStack, SwiftKv};
use sp_bench::harness::{node, print_table};
use sp_model::presets;
use sp_workload::mixed::ProductionMixConfig;
use sp_workload::Trace;

fn mixed_trace() -> Trace {
    // "a mixture of ShareGPT, HumanEval and SWEBench" (§4.5 footnote).
    ProductionMixConfig::default().generate()
}

fn main() {
    let model = presets::llama_70b;
    let trace = mixed_trace();
    println!("Mixed production-like trace: {} requests", trace.len());

    let mut rows = Vec::new();
    // Multi-replica (DP) rows route online: each request is dispatched at
    // its arrival instant to the least-loaded replica. Single-engine rows
    // have nothing to route.
    let mut push = |name: &str, report: &mut sp_engine::EngineReport| {
        let router = if report.routing_decisions().is_empty() {
            "-".to_string()
        } else {
            format!("JSQ ({} decisions)", report.routing_decisions().len())
        };
        rows.push(vec![
            name.to_string(),
            router,
            format!("{:.2}", report.metrics_mut().completion().median().unwrap()),
            format!("{:.2}", report.metrics_mut().completion().p99().unwrap()),
            format!("{:.0}", report.combined_throughput()),
        ]);
    };

    // Baselines: each framework, latency- (TP) and throughput- (DP)
    // optimized, out of the box.
    for profile in
        [FrameworkProfile::vllm(), FrameworkProfile::sglang(), FrameworkProfile::trt_llm()]
    {
        // Baselines ship with their best available speculation enabled
        // (the §4.5 footnote), hence the "+spec" tag.
        for (suffix, kind) in [
            ("TP+spec (latency-opt)", DeploymentKind::TensorParallel),
            ("DP+spec (throughput-opt)", DeploymentKind::DataParallel),
        ] {
            let mut dep = profile.deploy(node(), model(), kind).unwrap();
            let mut report = dep.run(&trace);
            push(&format!("{} {suffix}", profile.name), &mut report);
        }
    }

    // Ours, compounding: Shift → +SwiftKV → +SpecDec.
    for (name, stack) in [
        ("Shift Parallelism", ProductionStack::shift_only()),
        ("+ SwiftKV", ProductionStack::shift_only().with_swiftkv(SwiftKv::default())),
        ("+ SwiftKV + SpecDec (ours)", ProductionStack::arctic_like()),
    ] {
        let mut dep = stack.deploy(node(), model()).unwrap();
        let mut report = dep.run(&trace);
        push(name, &mut report);
    }

    print_table(
        "Figure 16 — production comparison, Llama-70B",
        &["system", "router", "compl p50 (s)", "compl p99 (s)", "tok/s"],
        &rows,
    );
    println!(
        "\nExpected shape (paper: 3.4x lower completion time, 1.06x higher throughput\n\
         than the best baseline): the full stack has the lowest completion time AND\n\
         at-least-parity throughput, in a single deployment."
    );
}
