//! Determinism probe for the horizon-parallel cluster engine.
//!
//! Runs the chaos acceptance scenario (`tests/chaos.rs`) — the bursty
//! agentic trace through an autoscaled, EDF-routed fleet, once fault
//! free and once under the seeded Poisson crash schedule — at whatever
//! fan-out width `SP_THREADS` selects — plus the shape-stable-window
//! scenario (KV-bound chunked-prefill fleet, the `steadyshape` simperf
//! regime) — and serializes every observable
//! surface of the reports to the file named by the first argument:
//! routing decisions, completion records, terminal failures, rejects,
//! the fleet timeline (replica events and request-fault events), and
//! the iteration count.
//!
//! ```text
//! SP_THREADS=1 cargo run --release -p sp-bench --bin determinism -- /tmp/t1.txt
//! SP_THREADS=8 cargo run --release -p sp-bench --bin determinism -- /tmp/t8.txt
//! cmp /tmp/t1.txt /tmp/t8.txt
//! ```
//!
//! The CI determinism job diffs the outputs byte-for-byte: any
//! thread-count-dependent divergence in the windowed engine — event
//! order, tie-breaks, fault timing, autoscaler churn — shows up as a
//! `cmp` failure.

use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_engine::{
    AdmissionMode, AutoscaleConfig, Autoscaler, ClusterSim, Engine, EngineConfig, EngineReport,
    FaultPlan, LoadBandPolicy, QueuePolicy, RetryPolicy, RoutingKind,
};
use sp_metrics::{ClassSlo, Dur};
use sp_model::presets;
use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
use sp_workload::bursty::BurstyConfig;
use sp_workload::{Request, Trace};
use std::fmt::Write as _;

const KV_TOKENS: u64 = 60_000;
const PEAK_REPLICAS: usize = 4;
const MIN_REPLICAS: usize = 2;
const HORIZON_SECS: f64 = 240.0;
/// Same seed as `tests/chaos.rs` and the `chaos` bench bin.
const CRASH_SEED: u64 = 0xC4A5;

fn engine() -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: KV_TOKENS,
            class_slo: Some(ClassSlo::default()),
            queue_policy: QueuePolicy::InteractiveFirst,
            admission: AdmissionMode::PreemptRestart,
            ..EngineConfig::default()
        },
    )
}

fn bursty_trace() -> Trace {
    let trace = BurstyConfig {
        duration: Dur::from_secs(HORIZON_SECS),
        base_rate: 2.0,
        bursts: 2,
        burst_size: 60,
        ..BurstyConfig::default()
    }
    .generate();
    let fits: Vec<Request> =
        trace.requests().iter().copied().filter(|r| r.total_tokens() <= KV_TOKENS).collect();
    Trace::with_ids(fits)
}

fn run_with(plan: FaultPlan, trace: &Trace, slo: ClassSlo) -> EngineReport {
    let scaler = Autoscaler::new(
        AutoscaleConfig {
            cold_start: Dur::from_secs(5.0),
            min_replicas: MIN_REPLICAS,
            max_replicas: PEAK_REPLICAS,
        },
        Box::new(LoadBandPolicy::new(2_000.0, 800.0).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
        |_| engine(),
    );
    let retry = RetryPolicy { max_retries: 3, base_backoff: Dur::from_secs(0.25) };
    let mut sim = ClusterSim::new(
        (0..MIN_REPLICAS).map(|_| engine()).collect(),
        RoutingKind::EarliestDeadlineFeasible(slo).policy(),
    )
    .with_autoscaler(scaler)
    .with_faults(plan, retry);
    sim.run(trace)
}

/// The shape-stable-window regime (the `steadyshape` simperf pair at a
/// CI-friendly scale): KV-bound DP replicas with a token budget small
/// enough that prefills chunk across several iterations, so horizon
/// windows mix a chunked-prefill leader with steady decodes and the
/// blocked wait queue parks on the KV admission gate. Byte-comparing
/// this report across fan-out widths pins the generalized fast-forward
/// (mixed windows, gate arming/expiry, closed-form decode runs) to the
/// sequential order.
fn run_steadyshape() -> EngineReport {
    const SS_KV: u64 = 24_576;
    const SS_REPLICAS: usize = 16;
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let engines: Vec<Engine> = (0..SS_REPLICAS)
        .map(|_| {
            Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                EngineConfig {
                    kv_capacity_tokens: SS_KV,
                    max_batched_tokens: 2048,
                    class_slo: Some(ClassSlo::default()),
                    ..EngineConfig::default()
                },
            )
        })
        .collect();
    let trace = BurstyConfig {
        duration: Dur::from_secs(2.0),
        base_rate: 0.2 * SS_REPLICAS as f64,
        bursts: 1,
        burst_size: 6 * SS_REPLICAS,
        burst_window: Dur::from_secs(0.5),
        base_input: sp_workload::sizes::LengthDist::LogNormal { median: 5000.0, sigma: 0.3 },
        base_output: sp_workload::sizes::LengthDist::LogNormal { median: 400.0, sigma: 0.2 },
        burst_input: sp_workload::sizes::LengthDist::LogNormal { median: 6000.0, sigma: 0.3 },
        burst_output: sp_workload::sizes::LengthDist::LogNormal { median: 400.0, sigma: 0.2 },
        seed: 0x5A_FE_5A,
    }
    .generate();
    let mut sim = ClusterSim::new(engines, RoutingKind::default().policy());
    sim.run(&trace)
}

/// Every observable surface of a report, in a stable text form. Uses
/// `Debug` formatting throughout: the point is byte-stability across
/// thread counts within one build, not a versioned schema.
fn serialize(label: &str, report: &EngineReport, out: &mut String) {
    writeln!(out, "== {label} ==").unwrap();
    writeln!(out, "iterations: {}", report.iterations()).unwrap();
    writeln!(out, "decisions: {:?}", report.routing_decisions()).unwrap();
    writeln!(out, "records: {:?}", report.records()).unwrap();
    writeln!(out, "failed: {:?}", report.failed()).unwrap();
    writeln!(out, "rejected: {:?}", report.rejected()).unwrap();
    let tl = report.fleet_timeline();
    writeln!(out, "timeline: {:?}", tl.events()).unwrap();
    writeln!(out, "request_faults: {:?}", tl.request_faults()).unwrap();
}

fn main() {
    let path = std::env::args().nth(1).expect("usage: determinism <output-path>");
    let threads = sp_core::default_threads();
    let trace = bursty_trace();
    let slo = ClassSlo::default();

    let mut out = String::new();
    serialize("no-fault", &run_with(FaultPlan::empty(), &trace, slo), &mut out);
    let plan = FaultPlan::crashes_poisson(
        CRASH_SEED,
        Dur::from_secs(120.0),
        Dur::from_secs(HORIZON_SECS),
        PEAK_REPLICAS,
    );
    serialize("poisson-crashes", &run_with(plan, &trace, slo), &mut out);
    serialize("steadyshape", &run_steadyshape(), &mut out);

    std::fs::write(&path, &out).expect("write determinism output");
    println!("determinism: ran at {threads} thread(s), {} bytes -> {path}", out.len());
}
