//! Figure 15: end-to-end cost breakdown of a batch workload.
//!
//! Walks one saturated iteration per configuration and sequence length,
//! splitting time into GEMM, attention, communication, and engine
//! (vLLM-like) overhead — the "take away one component at a time"
//! methodology of §4.4.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig15_breakdown
//! ```

use sp_bench::harness::{node, print_table};
use sp_model::presets;
use sp_parallel::{BatchWork, ChunkWork, ExecutionModel, ParallelConfig};

fn main() {
    for model in [presets::llama_70b(), presets::qwen_32b()] {
        let exec = ExecutionModel::new(node(), model.clone());
        let mut rows = Vec::new();
        for seq_len in [2_048u64, 8_192, 32_768, 131_072] {
            // A saturated chunked-prefill iteration: an 8k chunk of a
            // request at this context depth plus a 128-wide decode ride.
            let chunk = 8_192.min(seq_len);
            let batch = BatchWork::new(
                std::iter::once(ChunkWork::prefill(chunk, seq_len - chunk, false))
                    .chain(std::iter::repeat_n(ChunkWork::decode(seq_len), 128))
                    .collect(),
            );
            for (name, config) in [
                ("TP", ParallelConfig::tensor(8)),
                ("SP", ParallelConfig::sequence(8)),
                ("DP/GPU", ParallelConfig::single()),
            ] {
                // DP: one replica gets 1/8 of the batch.
                let b = if config.degree() == 1 {
                    BatchWork::new(
                        std::iter::once(ChunkWork::prefill(chunk / 8, seq_len - chunk, false))
                            .chain(std::iter::repeat_n(ChunkWork::decode(seq_len), 16))
                            .collect(),
                    )
                } else {
                    batch.clone()
                };
                let it = exec.iteration(&config, &b);
                let total = it.total().as_millis();
                rows.push(vec![
                    format!("{}k", seq_len / 1024),
                    name.to_string(),
                    format!("{:.1}", it.gemm.as_millis()),
                    format!("{:.1}", it.attention.as_millis()),
                    format!("{:.1}", it.communication.as_millis()),
                    format!("{:.1}", it.overhead.as_millis()),
                    format!("{total:.1}"),
                    format!("{:.0}%", it.communication.as_millis() / total * 100.0),
                ]);
            }
        }
        print_table(
            &format!("Figure 15 — {} iteration cost breakdown (ms)", model.name),
            &["ctx", "config", "gemm", "attn", "comm", "vLLM ovh", "total", "comm%"],
            &rows,
        );
    }
    println!(
        "\nExpected shape: SP communication is a small fraction of TP's; attention time\n\
         dominates at long contexts; engine overhead is a visible share for the smaller\n\
         model at short contexts (§4.4)."
    );
}
