//! §5 comparison: Shift Parallelism + chunked prefill vs. disaggregated
//! prefill/decode serving on the same 8-GPU node.
//!
//! The paper argues disaggregation eliminates prefill/decode interference
//! "at the cost of dedicating additional resources to each stage" plus a
//! per-request KV transfer, while Shift + chunked prefill gets the
//! benefits with neither cost.
//!
//! ```text
//! cargo run --release -p sp-bench --bin disagg_compare
//! ```

use shift_core::{Deployment, DeploymentKind, Fleet};
use sp_bench::harness::{node, print_table, run_kind};
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_engine::disagg::{DisaggConfig, DisaggregatedServer};
use sp_model::presets;
use sp_workload::synthetic;

fn main() {
    let model = presets::llama_70b();
    let mut rows = Vec::new();

    for (scenario, trace) in [
        ("interactive (1 req)", synthetic::single(4096, 250)),
        ("steady 2 req/s", synthetic::poisson(100, 2.0, 4096, 250, 11)),
        ("saturating batch", synthetic::uniform_batch(400, 4096, 250)),
    ] {
        // Disaggregated: 2×TP2 prefill + 1×TP4 decode.
        let mut disagg =
            DisaggregatedServer::new(node(), model.clone(), DisaggConfig::half_and_half());
        let mut d = disagg.run(&trace);

        // Shift on the full node.
        let mut s = run_kind(DeploymentKind::Shift, &model, &trace);

        // Same 8 GPUs split like disagg's pools — but as two symmetric
        // Shift replicas behind the online JSQ router instead of a static
        // prefill/decode partition. Any replica serves any phase.
        let half_node = NodeSpec::new(GpuSpec::h200(), 4, InterconnectSpec::nvswitch());
        let mut fleet = Fleet::new(2, || {
            Deployment::builder(half_node, model.clone()).kind(DeploymentKind::Shift)
        })
        .expect("known-good fleet");
        let mut f = fleet.run(&trace);

        for (name, report) in
            [("disagg 4P+4D", &mut d), ("Shift (8 GPUs)", &mut s), ("Shift x2 (JSQ)", &mut f)]
        {
            let tput = report.combined_throughput();
            let m = report.metrics_mut();
            rows.push(vec![
                scenario.to_string(),
                name.to_string(),
                format!("{:.0}", m.ttft().median().unwrap() * 1e3),
                format!("{:.1}", m.tpot().median().unwrap() * 1e3),
                format!("{:.2}", m.completion().median().unwrap()),
                format!("{tput:.0}"),
            ]);
        }
    }
    print_table(
        "Disaggregated vs Shift Parallelism, Llama-70B",
        &["scenario", "system", "TTFT p50(ms)", "TPOT p50(ms)", "compl p50(s)", "tok/s"],
        &rows,
    );
    println!(
        "\nExpected shape: disaggregation pays the KV-transfer on TTFT and strands\n\
         capacity (prefill pool idle during decode-heavy phases and vice versa);\n\
         Shift matches its interference-free TPOT while using all 8 GPUs for\n\
         whichever phase dominates."
    );
}
