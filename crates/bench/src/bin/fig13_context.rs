//! Figure 13: TTFT, TPOT and peak throughput vs. input context size
//! (2k–128k input, 250 output).
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig13_context
//! ```

use sp_bench::harness::{print_table, standard_kinds};
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;

fn main() {
    let lengths: Vec<u32> = vec![2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 131_072];
    for model in [presets::llama_70b(), presets::qwen_32b()] {
        for (metric, col) in [("TTFT (ms)", 0usize), ("TPOT (ms)", 1), ("peak tok/s", 2)] {
            let mut rows = Vec::new();
            for &len in &lengths {
                let mut row = vec![format!("{}k", len / 1024)];
                for (_, kind) in standard_kinds() {
                    let cell = match col {
                        0 => format!("{:.0}", min_latency_probe(kind, &model, len, 250).ttft_ms),
                        1 => format!("{:.2}", min_latency_probe(kind, &model, len, 250).tpot_ms),
                        _ => {
                            format!("{:.0}", peak_throughput_probe(kind, &model, len, 250, 0))
                        }
                    };
                    row.push(cell);
                }
                rows.push(row);
            }
            print_table(
                &format!("Figure 13 — {} — {metric}", model.name),
                &["input", "TP", "DP", "SP", "Shift"],
                &rows,
            );
        }
    }
    println!(
        "\nExpected shapes: Shift response up to ~7x faster than DP and ~1.5x than TP;\n\
         TPOT grows with context (KV reads); throughput collapses at long context\n\
         (attention-dominated, §4.4)."
    );
}
