//! Table 3: the optimal static parallelism per traffic regime, measured —
//! the case analysis motivating Shift Parallelism's switch rule.
//!
//! ```text
//! cargo run --release -p sp-bench --bin table3
//! ```

use shift_core::DeploymentKind;
use sp_bench::harness::{print_table, run_kind};
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;
use sp_workload::synthetic;

const STATIC_KINDS: [(&str, DeploymentKind); 3] = [
    ("TP", DeploymentKind::TensorParallel),
    ("DP", DeploymentKind::DataParallel),
    ("SP", DeploymentKind::SequenceParallel),
];

fn argbest(values: &[(&'static str, f64)], lower_is_better: bool) -> String {
    let best = values
        .iter()
        .min_by(|a, b| {
            let (x, y) = if lower_is_better { (a.1, b.1) } else { (b.1, a.1) };
            x.partial_cmp(&y).unwrap()
        })
        .unwrap();
    format!("{} ({:.3})", best.0, best.1)
}

fn main() {
    let model = presets::llama_70b();

    // Low traffic: one request at a time.
    let low: Vec<(&str, _)> =
        STATIC_KINDS.iter().map(|(n, k)| (*n, min_latency_probe(*k, &model, 4096, 250))).collect();

    // High traffic: a stream near (but below) the SP/DP capacity — TP
    // saturates, the others sustain. ~8 req/s × 4.3k tokens ≈ 35k tok/s.
    let high_trace = synthetic::poisson(400, 8.0, 4096, 250, 3);
    let high: Vec<(&str, f64, f64, f64)> = STATIC_KINDS
        .iter()
        .map(|(n, k)| {
            let mut report = run_kind(*k, &model, &high_trace);
            let ttft = report.metrics_mut().ttft().median().unwrap() * 1e3;
            let tpot = report.metrics_mut().tpot().median().unwrap() * 1e3;
            let tput = peak_throughput_probe(*k, &model, 4096, 250, 0);
            (*n, ttft, tpot, tput)
        })
        .collect();

    let rows = vec![
        vec![
            "TTFT (ms)".to_string(),
            argbest(&low.iter().map(|(n, l)| (*n, l.ttft_ms)).collect::<Vec<_>>(), true),
            argbest(&high.iter().map(|&(n, t, _, _)| (n, t)).collect::<Vec<_>>(), true),
        ],
        vec![
            "TPOT (ms)".to_string(),
            argbest(&low.iter().map(|(n, l)| (*n, l.tpot_ms)).collect::<Vec<_>>(), true),
            argbest(&high.iter().map(|&(n, _, t, _)| (n, t)).collect::<Vec<_>>(), true),
        ],
        vec![
            "Throughput".to_string(),
            // In low traffic throughput is 1/completion-time (s).
            argbest(&low.iter().map(|(n, l)| (*n, l.completion_s)).collect::<Vec<_>>(), true),
            argbest(&high.iter().map(|&(n, _, _, t)| (n, t)).collect::<Vec<_>>(), false),
        ],
    ];
    print_table(
        "Table 3 — best static parallelism per regime (Llama-70B, measured)",
        &["metric", "low traffic", "high traffic"],
        &rows,
    );
    println!(
        "\nPaper's Table 3: TTFT → SP in both regimes; TPOT → TP (low) / SP (high);\n\
         throughput → SP-or-TP (low) / DP (high). Shift Parallelism covers every cell\n\
         reachable with a KV-invariant switch."
    );
}
