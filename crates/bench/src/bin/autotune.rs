//! Auto-tuning study: profile each evaluation workload, then grid-search
//! the shift deployment's knobs against it.
//!
//! ```text
//! cargo run --release -p sp-bench --bin autotune
//! ```

use shift_core::tuner::{Objective, Tuner};
use sp_bench::harness::{node, print_table};
use sp_metrics::{Dur, SloTarget};
use sp_model::presets;
use sp_workload::analysis::WorkloadProfile;
use sp_workload::azure::AzureCodeConfig;
use sp_workload::bursty::BurstyConfig;
use sp_workload::mixed::ProductionMixConfig;
use sp_workload::Trace;

fn main() {
    let workloads: Vec<(&str, Trace)> = vec![
        (
            "bursty",
            BurstyConfig {
                duration: Dur::from_secs(180.0),
                bursts: 1,
                burst_size: 120,
                ..BurstyConfig::default()
            }
            .generate(),
        ),
        (
            "azure-code",
            AzureCodeConfig { duration: Dur::from_secs(240.0), ..AzureCodeConfig::default() }
                .generate(),
        ),
        (
            "production-mix",
            ProductionMixConfig {
                duration: Dur::from_secs(120.0),
                ..ProductionMixConfig::default()
            }
            .generate(),
        ),
    ];

    // Workload profiles first.
    let rows: Vec<Vec<String>> = workloads
        .iter()
        .map(|(name, trace)| {
            let p = WorkloadProfile::measure(trace, Dur::from_secs(15.0));
            vec![
                name.to_string(),
                format!("{:?}", p.classify()),
                format!("{:.1}", p.arrival_rate),
                format!("{:.1}", p.burstiness_ratio),
                format!("{:.0}", p.mean_input),
                format!("{:.0}", p.mean_output),
                format!("{:.0}", p.demand_tokens_per_sec),
            ]
        })
        .collect();
    print_table(
        "Workload profiles",
        &["workload", "class", "req/s", "burstiness", "mean in", "mean out", "tok/s demand"],
        &rows,
    );

    // Tune Llama-70B for each workload and objective.
    let tuner = Tuner::new(node(), presets::llama_70b());
    let mut rows = Vec::new();
    for (name, trace) in &workloads {
        for (obj_name, objective) in [
            ("median completion", Objective::MedianCompletion),
            ("p99 TTFT", Objective::TailTtft),
            ("goodput", Objective::Goodput(SloTarget::interactive())),
        ] {
            match tuner.tune(trace, objective) {
                Ok(best) => rows.push(vec![
                    name.to_string(),
                    obj_name.to_string(),
                    best.base.to_string(),
                    best.threshold.to_string(),
                    best.max_prefill_tokens.map_or("none".into(), |c| c.to_string()),
                    format!("{:.3}", best.score.abs()),
                ]),
                Err(e) => rows.push(vec![
                    name.to_string(),
                    obj_name.to_string(),
                    e,
                    String::new(),
                    String::new(),
                    String::new(),
                ]),
            }
        }
    }
    print_table(
        "Tuned shift deployments (Llama-70B)",
        &["workload", "objective", "base", "threshold", "prefill cap", "|score|"],
        &rows,
    );
    println!(
        "\nThe tuner automates §3.2.2: different workloads genuinely prefer different\n\
         bases, thresholds and caps — and the defaults (auto base, threshold 256)\n\
         sit near the optimum for the paper's mixed traffic."
    );
}
