//! Fault tolerance under replica crashes: goodput and interactive p99
//! TTFT vs MTTF on the bursty agentic trace.
//!
//! ```text
//! cargo run --release -p sp-bench --bin chaos
//! ```
//!
//! Each row injects a seeded Poisson crash schedule
//! ([`FaultPlan::crashes_poisson`]) into the autoscaled fleet from the
//! `autoscale` bench: a crash destroys the victim's KV cache, salvaged
//! requests re-enter the router with exponential backoff and pay full
//! re-prefill, and the autoscaler treats the lost capacity as an
//! immediate scale-out signal (crash deficit). The claim
//! `tests/chaos.rs` pins: at MTTF ≥ 10x the mean burst length (120 s on
//! the 240 s trace), retry + deficit-driven respawn recover at least 95%
//! of the no-fault interactive SLO attainment.

use sp_bench::harness::print_table;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_engine::{
    AdmissionMode, AutoscaleConfig, Autoscaler, ClusterSim, Engine, EngineConfig, EngineReport,
    FaultPlan, LoadBandPolicy, QueuePolicy, RetryPolicy, RoutingKind,
};
use sp_metrics::{ClassSlo, Dur, Quantiles, RequestClass};
use sp_model::presets;
use sp_parallel::{ExecutionModel, ParallelConfig, StaticPolicy};
use sp_workload::bursty::BurstyConfig;
use sp_workload::{Request, Trace};

const KV_TOKENS: u64 = 60_000;
const PEAK_REPLICAS: usize = 4;
const MIN_REPLICAS: usize = 2;
const HORIZON_SECS: f64 = 240.0;
const CRASH_SEED: u64 = 0xC4A5;

fn engine() -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: KV_TOKENS,
            class_slo: Some(ClassSlo::default()),
            queue_policy: QueuePolicy::InteractiveFirst,
            admission: AdmissionMode::PreemptRestart,
            ..EngineConfig::default()
        },
    )
}

/// The bursty agentic trace shared with the `autoscale` bench and the
/// autoscale/chaos acceptance tests.
fn bursty_trace() -> Trace {
    let trace = BurstyConfig {
        duration: Dur::from_secs(HORIZON_SECS),
        base_rate: 2.0,
        bursts: 2,
        burst_size: 60,
        ..BurstyConfig::default()
    }
    .generate();
    let fits: Vec<Request> =
        trace.requests().iter().copied().filter(|r| r.total_tokens() <= KV_TOKENS).collect();
    Trace::with_ids(fits)
}

fn interactive_p99_ttft(report: &EngineReport) -> f64 {
    let mut q = Quantiles::new();
    for r in report.records().iter().filter(|r| r.class == RequestClass::Interactive) {
        q.record(r.ttft().as_secs());
    }
    q.quantile(0.99).unwrap_or(f64::NAN)
}

/// One faulted run: the autoscaled fleet under a seeded crash schedule.
fn run_with(plan: FaultPlan, trace: &Trace, slo: ClassSlo) -> EngineReport {
    let scaler = Autoscaler::new(
        AutoscaleConfig {
            cold_start: Dur::from_secs(5.0),
            min_replicas: MIN_REPLICAS,
            max_replicas: PEAK_REPLICAS,
        },
        Box::new(LoadBandPolicy::new(2_000.0, 800.0).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
        |_| engine(),
    );
    let retry = RetryPolicy { max_retries: 3, base_backoff: Dur::from_secs(0.25) };
    let mut sim = ClusterSim::new(
        (0..MIN_REPLICAS).map(|_| engine()).collect(),
        RoutingKind::EarliestDeadlineFeasible(slo).policy(),
    )
    .with_autoscaler(scaler)
    .with_faults(plan, retry);
    sim.run(trace)
}

fn row(name: &str, report: &EngineReport, slo: &ClassSlo, total: usize) -> Vec<String> {
    let tl = report.fleet_timeline();
    vec![
        name.to_string(),
        format!("{}", tl.crash_count()),
        format!("{}", report.failed().len()),
        format!("{:.1}%", 100.0 * report.records().len() as f64 / total as f64),
        format!("{:.1}%", 100.0 * report.class_slo_report(slo).interactive.attainment()),
        format!("{:.3}", interactive_p99_ttft(report)),
        if tl.recoveries() == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", tl.mean_recovery_secs())
        },
        format!("{}", tl.wasted_prefill_tokens()),
        format!("{:.0}", tl.replica_seconds(report.makespan())),
    ]
}

fn main() {
    let trace = bursty_trace();
    let slo = ClassSlo::default();
    let mut rows = Vec::new();

    let baseline = run_with(FaultPlan::empty(), &trace, slo);
    rows.push(row("no faults", &baseline, &slo, trace.len()));

    for mttf in [120.0, 60.0, 24.0] {
        let plan = FaultPlan::crashes_poisson(
            CRASH_SEED,
            Dur::from_secs(mttf),
            Dur::from_secs(HORIZON_SECS),
            PEAK_REPLICAS,
        );
        let report = run_with(plan, &trace, slo);
        rows.push(row(&format!("MTTF {mttf:.0}s"), &report, &slo, trace.len()));
    }

    print_table(
        "Goodput and interactive latency vs MTTF — bursty agentic trace, Qwen-32B on 1x H200, \
         EDF routing, autoscaled 2..4 with crash-deficit respawn, retry 3x base 0.25s",
        &[
            "scenario",
            "crashes",
            "failed",
            "goodput",
            "int SLO att",
            "int p99 TTFT (s)",
            "mean recovery (s)",
            "wasted prefill",
            "replica-s",
        ],
        &rows,
    );
    println!(
        "\nCrashes destroy the victim's KV cache: salvaged requests re-enter the router with\n\
         exponential backoff and pay full re-prefill (the wasted-prefill column), while the\n\
         autoscaler counts the lost replica as a crash deficit and respawns immediately\n\
         (cold start still applies). Expected shape: at MTTF 120 s — 10x the mean burst\n\
         length — goodput stays at 100% and interactive attainment within ~5% of the\n\
         no-fault row; shrinking MTTF degrades latency first (re-prefill + backoff land in\n\
         the tail), goodput last."
    );
}
