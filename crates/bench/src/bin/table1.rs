//! Table 1: qualitative performance tradeoffs of inference parallelisms,
//! derived from measured probes (best = ☆, worst = ×).
//!
//! ```text
//! cargo run --release -p sp-bench --bin table1
//! ```

use sp_bench::harness::{print_table, standard_kinds};
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;

fn rank(values: &[f64], lower_is_better: bool) -> Vec<&'static str> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    if !lower_is_better {
        idx.reverse();
    }
    let mut labels = vec![""; n];
    for (pos, &i) in idx.iter().enumerate() {
        labels[i] = match pos {
            0 => "* best",
            p if p == n - 1 => "x worst",
            1 => "~ very good",
            _ => "- near worst",
        };
    }
    labels
}

fn main() {
    let model = presets::llama_70b();
    let kinds = standard_kinds();

    let mut ttft = Vec::new();
    let mut tpot = Vec::new();
    let mut tput = Vec::new();
    for (_, kind) in &kinds {
        let lat = min_latency_probe(*kind, &model, 4096, 250);
        ttft.push(lat.ttft_ms);
        tpot.push(lat.tpot_ms);
        tput.push(peak_throughput_probe(*kind, &model, 4096, 250, 0));
    }

    let ttft_rank = rank(&ttft, true);
    let tpot_rank = rank(&tpot, true);
    let tput_rank = rank(&tput, false);

    let rows: Vec<Vec<String>> = kinds
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            vec![
                name.to_string(),
                format!("{} ({:.0}ms)", ttft_rank[i], ttft[i]),
                format!("{} ({:.0} tok/s)", tput_rank[i], tput[i]),
                format!("{} ({:.1}ms)", tpot_rank[i], tpot[i]),
            ]
        })
        .collect();
    print_table(
        "Table 1 — measured tradeoff grid (Llama-70B)",
        &["strategy", "TTFT (latency)", "combined throughput", "TPOT (token latency)"],
        &rows,
    );
    println!(
        "\nPaper's grid: TP = nearly-best TTFT / worst tput / best TPOT;\n\
         DP = worst TTFT / best tput / near-worst TPOT; SP = best TTFT / very good\n\
         tput / worst TPOT; Shift = best TTFT / very good tput / best TPOT."
    );
}
