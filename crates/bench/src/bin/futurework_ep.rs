//! §4.6 future work, quantified: combining SP with expert parallelism
//! (EP) for the sparse models — "there is no prior work that combines SP
//! with EP to further optimize sparse models".
//!
//! ```text
//! cargo run --release -p sp-bench --bin futurework_ep
//! ```

use sp_bench::harness::{node, print_table};
use sp_model::presets;
use sp_parallel::expert::{ExpertExecutionModel, ExpertParallelConfig};
use sp_parallel::{BatchWork, ExecutionModel, ParallelConfig};

fn main() {
    for model in [presets::qwen_30b_a3b(), presets::llama_17b_16e()] {
        let dense_walk = ExecutionModel::new(node(), model.clone());
        let ep_walk = ExpertExecutionModel::new(node(), model.clone());
        let moe = model.moe.expect("MoE model");

        let mut rows = Vec::new();
        for (scenario, batch) in [
            ("decode x1 @4k", BatchWork::uniform_decode(1, 4096)),
            ("decode x64 @4k", BatchWork::uniform_decode(64, 4096)),
            ("prefill 8k", BatchWork::single_prefill(8192)),
        ] {
            // Baseline: SP=8 with experts replicated (the paper's §4.6
            // deployment).
            let sp8 = dense_walk.iteration(&ParallelConfig::sequence(8), &batch).total();
            let mut row = vec![scenario.to_string(), format!("{:.2}", sp8.as_millis())];
            // SP×EP combinations.
            for (sp, ep) in [(4usize, 2usize), (2, 4), (1, 8)] {
                if (moe.num_experts as usize).is_multiple_of(ep) {
                    let t = ep_walk.iteration(&ExpertParallelConfig::new(sp, ep), &batch).total();
                    row.push(format!("{:.2}", t.as_millis()));
                } else {
                    row.push("n/a".into());
                }
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Future work — SP x EP iteration time (ms), {} ({} experts, top-{})",
                model.name, moe.num_experts, moe.active_experts
            ),
            &["scenario", "SP=8 (repl.)", "SP4xEP2", "SP2xEP4", "EP=8"],
            &rows,
        );
    }
    println!(
        "\nReading: EP shards the routed experts, cutting small-batch decode weight\n\
         streaming by up to the EP degree, at the price of two extra dispatch\n\
         all-to-alls per layer — so EP wins decode-heavy regimes and loses some\n\
         prefill. A shift-style SP/EP switch is the natural extension."
    );
}
