//! Figure 7 + Table 5: the bursty synthetic workload.
//!
//! Replays the Figure 2/7 traffic (steady interactive stream + four
//! high-rate bursts) through TP, DP and Shift deployments of Llama-70B,
//! printing the throughput/latency time series and the Table 5 stats.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig7_table5
//! ```

use sp_bench::harness::{print_summaries, print_table, run_kind, standard_kinds, summarize};
use sp_metrics::Dur;
use sp_model::presets;
use sp_workload::bursty::BurstyConfig;

fn main() {
    let model = presets::llama_70b();
    let trace = BurstyConfig::default().generate();
    println!(
        "Bursty trace: {} requests over {:.0}s ({} tokens total)",
        trace.len(),
        trace.span().as_secs(),
        trace.total_tokens()
    );

    // Arrival-rate panel (Figure 7 top).
    let hist = trace.arrival_histogram(Dur::from_secs(20.0));
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(t, c)| vec![format!("{:.0}", t.as_secs()), format!("{c}"), "#".repeat(*c / 8)])
        .collect();
    print_table("Figure 7 (top) — arrivals per 20s bin", &["t(s)", "req", ""], &rows);

    let mut summaries = Vec::new();
    for (name, kind) in standard_kinds() {
        let mut report = run_kind(kind, &model, &trace);

        // Throughput time series (Figure 7 bottom panel), decimated.
        if name == "Shift" {
            let series: Vec<(f64, f64)> =
                report.metrics().throughput().rates().map(|(t, r)| (t.as_secs(), r)).collect();
            let rows: Vec<Vec<String>> = series
                .chunks(30)
                .map(|c| {
                    let t = c[0].0;
                    let avg = c.iter().map(|x| x.1).sum::<f64>() / c.len() as f64;
                    vec![format!("{t:.0}"), format!("{avg:.0}")]
                })
                .collect();
            print_table(
                "Figure 7 (bottom) — Shift throughput (tok/s, 30s avg)",
                &["t(s)", "tok/s"],
                &rows,
            );
        }
        summaries.push(summarize(name, &mut report));
    }

    print_summaries("Table 5 — bursty workload statistics", &summaries);
    println!(
        "\nPaper reference (Table 5): DP median TTFT 1355ms / TPOT 83ms / peak 75.5k tok/s;\n\
         TP 3930ms / 85ms / 51.2k; Shift 148ms / 51ms / 69.1k. Expected shape: Shift has by\n\
         far the lowest TTFT, the lowest TPOT, and near-DP peak throughput."
    );
}
