//! Figure 17: peak throughput and minimum latency across all four
//! Table 4 models and input sequence lengths, including the MoE models
//! of §4.6 (Llama-17B-16E deployed as (SP=4, TP=2); Qwen-30B-A3B with
//! KV-cache replication at SP=8).
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig17_models
//! ```

use shift_core::Deployment;
use sp_bench::harness::{node, print_table, standard_kinds};
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;

fn main() {
    let lengths: Vec<u32> = vec![2_048, 8_192, 32_768, 131_072];

    for model in presets::all_table4() {
        let base = Deployment::auto_base(&node(), &model, 0.9).unwrap();
        println!(
            "\n### {} — auto base config {base} (total {:.0}B / active {:.0}B params)",
            model.name,
            model.total_params() as f64 / 1e9,
            model.active_params() as f64 / 1e9
        );

        for (metric, which) in [("peak tok/s", 0usize), ("min TTFT (ms)", 1), ("min TPOT (ms)", 2)]
        {
            let mut rows = Vec::new();
            for &len in &lengths {
                let mut row = vec![format!("{}k", len / 1024)];
                for (_, kind) in standard_kinds() {
                    let cell = match which {
                        0 => format!("{:.0}", peak_throughput_probe(kind, &model, len, 250, 0)),
                        1 => format!("{:.0}", min_latency_probe(kind, &model, len, 250).ttft_ms),
                        _ => format!("{:.2}", min_latency_probe(kind, &model, len, 250).tpot_ms),
                    };
                    row.push(cell);
                }
                rows.push(row);
            }
            print_table(
                &format!("Figure 17 — {} — {metric}", model.name),
                &["input", "TP", "DP", "SP", "Shift"],
                &rows,
            );
        }
    }
    println!(
        "\nExpected shapes: sparse (MoE) models reach higher throughput and lower\n\
         latency than dense ones; Qwen-30B-A3B peaks with DP (engine overhead\n\
         dominates parallel configs for small models, §4.4/§4.6); Shift gains up to\n\
         ~50% throughput over TP everywhere without losing latency."
    );
}
