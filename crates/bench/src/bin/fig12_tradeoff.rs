//! Figure 12: latency vs. throughput tradeoff across parallelisms.
//!
//! Methodology (§4.3.1): minimum latency from a lone request (4k input,
//! 250 output); peak throughput from a saturating batch.
//!
//! ```text
//! cargo run --release -p sp-bench --bin fig12_tradeoff
//! ```

use shift_core::DeploymentKind;
use sp_bench::harness::{print_table, standard_kinds};
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;

fn main() {
    for model in [presets::llama_70b(), presets::qwen_32b()] {
        let mut rows = Vec::new();
        let mut tp_tput = 0.0;
        let mut tp_ttft = 0.0;
        for (name, kind) in standard_kinds() {
            let lat = min_latency_probe(kind, &model, 4096, 250);
            let tput = peak_throughput_probe(kind, &model, 4096, 250, 0);
            if kind == DeploymentKind::TensorParallel {
                tp_tput = tput;
                tp_ttft = lat.ttft_ms;
            }
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", lat.ttft_ms),
                format!("{:.2}", lat.tpot_ms),
                format!("{:.2}", lat.completion_s),
                format!("{:.0}", tput),
            ]);
        }
        print_table(
            &format!("Figure 12 — {} (4k in / 250 out)", model.name),
            &["system", "min TTFT (ms)", "min TPOT (ms)", "completion (s)", "peak tok/s"],
            &rows,
        );
        let shift_lat = min_latency_probe(DeploymentKind::Shift, &model, 4096, 250);
        let shift_tput = peak_throughput_probe(DeploymentKind::Shift, &model, 4096, 250, 0);
        println!(
            "Shift vs TP: TTFT {:.2}x faster, throughput {:.2}x higher \
             (paper: ~1.5x TTFT, TP loses ~46% throughput)",
            tp_ttft / shift_lat.ttft_ms,
            shift_tput / tp_tput
        );
    }
}
