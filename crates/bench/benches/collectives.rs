//! Criterion bench: collective cost-model evaluation (the innermost hot
//! path of the iteration cost walk).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sp_cluster::collective::CollectiveKind;
use sp_cluster::{CollectiveModel, InterconnectSpec};

fn bench_collectives(c: &mut Criterion) {
    let model = CollectiveModel::new(InterconnectSpec::nvswitch());
    let mut group = c.benchmark_group("collectives");
    for kind in [
        CollectiveKind::AllReduce,
        CollectiveKind::AllToAll,
        CollectiveKind::AllGather,
        CollectiveKind::ReduceScatter,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| model.time(black_box(kind), black_box(64 << 20), black_box(8)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
