//! Criterion bench: end-to-end *simulation* speed under each deployment
//! policy (how fast the discrete-event engine itself runs — the
//! simulator's own performance, not the simulated system's).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use shift_core::{Deployment, DeploymentKind};
use sp_cluster::NodeSpec;
use sp_model::presets;
use sp_workload::synthetic;

fn bench_simulation_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    let trace = synthetic::poisson(40, 10.0, 1024, 32, 7);
    for (name, kind) in [
        ("tp", DeploymentKind::TensorParallel),
        ("dp", DeploymentKind::DataParallel),
        ("shift", DeploymentKind::Shift),
    ] {
        group.bench_function(format!("run_trace/{name}"), |b| {
            b.iter_batched(
                || {
                    Deployment::builder(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
                        .kind(kind)
                        .build()
                        .unwrap()
                },
                |mut dep| dep.run(&trace),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_speed);
criterion_main!(benches);
