//! Criterion bench: the per-iteration policy decision (must be
//! negligible — it sits on the scheduling critical path, §3.4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shift_core::ShiftPolicy;
use sp_parallel::{BatchStats, ParallelConfig, ParallelismPolicy, StaticPolicy};

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let shift = ShiftPolicy::new(ParallelConfig::new(4, 2), 256);
    let static_tp = StaticPolicy::new("TP", ParallelConfig::tensor(8));
    let small = BatchStats { total_new_tokens: 17, num_seqs: 17 };
    let large = BatchStats { total_new_tokens: 8192, num_seqs: 40 };

    group.bench_function("shift/small_batch", |b| b.iter(|| shift.choose(black_box(&small))));
    group.bench_function("shift/large_batch", |b| b.iter(|| shift.choose(black_box(&large))));
    group.bench_function("static", |b| b.iter(|| static_tp.choose(black_box(&large))));
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
