//! Criterion bench: the Algorithm 1 iteration cost walk — executed once
//! per simulated engine step, so its speed bounds simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sp_model::presets;
use sp_parallel::{BatchWork, ChunkWork, ExecutionModel, ParallelConfig};

fn bench_iteration(c: &mut Criterion) {
    let exec = ExecutionModel::new(sp_cluster::NodeSpec::p5en_48xlarge(), presets::llama_70b());
    let mut group = c.benchmark_group("iteration");

    let prefill = BatchWork::single_prefill(8192);
    let decode = BatchWork::uniform_decode(256, 4096);
    let mixed = BatchWork::new(
        std::iter::once(ChunkWork::prefill(4096, 0, false))
            .chain(std::iter::repeat_n(ChunkWork::decode(2048), 128))
            .collect(),
    );

    for (name, batch) in [("prefill", &prefill), ("decode256", &decode), ("mixed", &mixed)] {
        for config in
            [ParallelConfig::tensor(8), ParallelConfig::sequence(8), ParallelConfig::new(4, 2)]
        {
            group.bench_function(format!("{name}/{config}"), |b| {
                b.iter(|| exec.iteration(black_box(&config), black_box(batch)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
