//! Criterion bench: paged KV-cache manager operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sp_kvcache::KvCacheManager;

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvcache");

    group.bench_function("reserve_release_cycle", |b| {
        let mut kv = KvCacheManager::new(1 << 20, 16);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            assert!(kv.try_reserve(black_box(seq), black_box(4096)));
            kv.release(seq);
        })
    });

    group.bench_function("incremental_append", |b| {
        let mut kv = KvCacheManager::new(1 << 24, 16);
        kv.try_reserve(1, 16);
        b.iter(|| {
            if !kv.try_reserve(black_box(1), 1) {
                kv.release(1);
                kv.try_reserve(1, 16);
            }
        })
    });

    group.bench_function("admission_check_under_load", |b| {
        let mut kv = KvCacheManager::new(1 << 20, 16);
        for s in 0..200 {
            kv.try_reserve(s, 4096);
        }
        b.iter(|| kv.can_reserve(black_box(9999), black_box(8192)))
    });

    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
