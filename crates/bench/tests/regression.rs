//! Calibration regression pins: the headline numbers recorded in
//! EXPERIMENTS.md, asserted with generous bands so refactors that
//! accidentally change the performance model get caught, while legitimate
//! re-calibrations only require updating this file alongside
//! EXPERIMENTS.md.

use shift_core::DeploymentKind;
use sp_bench::probes::{min_latency_probe, peak_throughput_probe};
use sp_model::presets;

fn within(value: f64, expected: f64, tolerance: f64) -> bool {
    (value / expected - 1.0).abs() <= tolerance
}

#[test]
fn llama_70b_headline_latencies() {
    let m = presets::llama_70b();
    let shift = min_latency_probe(DeploymentKind::Shift, &m, 4096, 250);
    let tp = min_latency_probe(DeploymentKind::TensorParallel, &m, 4096, 250);
    let dp = min_latency_probe(DeploymentKind::DataParallel, &m, 4096, 250);

    // EXPERIMENTS.md: Shift 72 ms, TP 102 ms, DP 538 ms TTFT.
    assert!(within(shift.ttft_ms, 72.0, 0.25), "shift TTFT {}", shift.ttft_ms);
    assert!(within(tp.ttft_ms, 102.0, 0.25), "tp TTFT {}", tp.ttft_ms);
    assert!(within(dp.ttft_ms, 538.0, 0.25), "dp TTFT {}", dp.ttft_ms);

    // TPOT: Shift/TP 9.5 ms (paper 9.34), DP 22.5 ms.
    assert!(within(shift.tpot_ms, 9.5, 0.25), "shift TPOT {}", shift.tpot_ms);
    assert!(within(dp.tpot_ms, 22.5, 0.25), "dp TPOT {}", dp.tpot_ms);
}

#[test]
fn llama_70b_headline_throughputs() {
    let m = presets::llama_70b();
    let tp = peak_throughput_probe(DeploymentKind::TensorParallel, &m, 4096, 250, 0);
    let dp = peak_throughput_probe(DeploymentKind::DataParallel, &m, 4096, 250, 0);
    let shift = peak_throughput_probe(DeploymentKind::Shift, &m, 4096, 250, 0);

    // EXPERIMENTS.md: TP 33.5k, DP 43.3k, Shift 42.9k tok/s.
    assert!(within(tp, 33_500.0, 0.2), "tp tput {tp}");
    assert!(within(dp, 43_300.0, 0.2), "dp tput {dp}");
    assert!(within(shift, 42_900.0, 0.2), "shift tput {shift}");
}

#[test]
fn qwen_32b_headline_numbers() {
    let m = presets::qwen_32b();
    let shift = min_latency_probe(DeploymentKind::Shift, &m, 4096, 250);
    // EXPERIMENTS.md: 36 ms TTFT, 7.3 ms TPOT.
    assert!(within(shift.ttft_ms, 36.0, 0.25), "qwen shift TTFT {}", shift.ttft_ms);
    assert!(within(shift.tpot_ms, 7.3, 0.25), "qwen shift TPOT {}", shift.tpot_ms);
}

#[test]
fn moe_auto_bases_stay_pinned() {
    // §4.6: Scout must plan (SP=4, TP=2); A3B must plan SP=8.
    use shift_core::Deployment;
    use sp_cluster::NodeSpec;
    use sp_parallel::ParallelConfig;
    let node = NodeSpec::p5en_48xlarge();
    assert_eq!(
        Deployment::auto_base(&node, &presets::llama_17b_16e(), 0.9).unwrap(),
        ParallelConfig::new(4, 2)
    );
    assert_eq!(
        Deployment::auto_base(&node, &presets::qwen_30b_a3b(), 0.9).unwrap(),
        ParallelConfig::sequence(8)
    );
}
