//! The symbolic per-GPU complexity of Table 2.
//!
//! | | Memory | Compute | Comm. volume | Comm./Compute |
//! |---|---|---|---|---|
//! | TP | `m(n,w)/TP` | `f(n,w)/TP` | `c(n,w)` | `TP × const` |
//! | SP | `m(n,w)` | `f(n,w)/SP` | `c(n,w)/SP` | `const` |
//!
//! where `n` is sequence length and `w` the parameter count. These closed
//! forms explain *why* SP scales: its communication shrinks with the
//! parallel degree while TP's does not.

use sp_model::ModelConfig;

/// Per-GPU asymptotic resource usage of one forward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerGpuComplexity {
    /// Weight memory resident on each GPU, bytes.
    pub memory_bytes: f64,
    /// FLOPs executed by each GPU.
    pub compute_flops: f64,
    /// Activation bytes communicated per GPU.
    pub comm_bytes: f64,
}

impl PerGpuComplexity {
    /// The communication-to-compute ratio (bytes per FLOP); Table 2's last
    /// column up to a hardware constant.
    pub fn comm_to_compute(&self) -> f64 {
        self.comm_bytes / self.compute_flops
    }
}

/// Bytes of activations per token (FP16/BF16 activations even for FP8
/// weights, matching the paper's setup).
pub const ACTIVATION_BYTES: u64 = 2;

fn forward_flops(model: &ModelConfig, n: u64) -> f64 {
    2.0 * model.linear_params_active() as f64 * n as f64
}

/// Table 2, TP row: memory and compute divided by `tp`, communication not.
///
/// TP all-reduces the full `n × d` embedding twice per layer, so per-GPU
/// communication volume is `Θ(n · d · L)` regardless of the TP degree.
pub fn tp_complexity(model: &ModelConfig, n: u64, tp: usize) -> PerGpuComplexity {
    let d = f64::from(model.hidden_size);
    let layers = f64::from(model.num_layers);
    PerGpuComplexity {
        memory_bytes: model.weight_bytes() as f64 / tp as f64,
        compute_flops: forward_flops(model, n) / tp as f64,
        comm_bytes: if tp == 1 {
            0.0
        } else {
            2.0 * layers * n as f64 * d * ACTIVATION_BYTES as f64
        },
    }
}

/// Table 2, SP row: compute *and* communication divided by `sp`, but the
/// full weights replicated on every GPU.
///
/// SP's all-to-alls move each rank's `n/SP × d`-sized buffers, so per-GPU
/// communication volume is `Θ(n · d · L / SP)`.
pub fn sp_complexity(model: &ModelConfig, n: u64, sp: usize) -> PerGpuComplexity {
    let d = f64::from(model.hidden_size);
    let layers = f64::from(model.num_layers);
    PerGpuComplexity {
        memory_bytes: model.weight_bytes() as f64,
        compute_flops: forward_flops(model, n) / sp as f64,
        comm_bytes: if sp == 1 {
            0.0
        } else {
            2.0 * layers * (n as f64 / sp as f64) * d * ACTIVATION_BYTES as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp_model::presets;

    #[test]
    fn tp_divides_memory_sp_does_not() {
        let m = presets::llama_70b();
        let tp = tp_complexity(&m, 4096, 8);
        let sp = sp_complexity(&m, 4096, 8);
        assert!((tp.memory_bytes * 8.0 - m.weight_bytes() as f64).abs() < 1.0);
        assert_eq!(sp.memory_bytes, m.weight_bytes() as f64);
    }

    #[test]
    fn both_divide_compute() {
        let m = presets::qwen_32b();
        let tp = tp_complexity(&m, 4096, 8);
        let sp = sp_complexity(&m, 4096, 8);
        assert!((tp.compute_flops - sp.compute_flops).abs() < 1.0);
    }

    #[test]
    fn sp_comm_shrinks_with_degree_tp_comm_does_not() {
        let m = presets::llama_70b();
        let n = 8192;
        let tp2 = tp_complexity(&m, n, 2).comm_bytes;
        let tp8 = tp_complexity(&m, n, 8).comm_bytes;
        assert_eq!(tp2, tp8, "TP comm volume is degree-independent");
        let sp2 = sp_complexity(&m, n, 2).comm_bytes;
        let sp8 = sp_complexity(&m, n, 8).comm_bytes;
        assert!((sp2 / sp8 - 4.0).abs() < 1e-9, "SP comm scales as 1/SP");
    }

    #[test]
    fn tp_comm_to_compute_grows_linearly_with_degree() {
        // Table 2's last column: TP × const.
        let m = presets::llama_70b();
        let r2 = tp_complexity(&m, 4096, 2).comm_to_compute();
        let r8 = tp_complexity(&m, 4096, 8).comm_to_compute();
        assert!((r8 / r2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sp_comm_to_compute_is_constant_in_degree() {
        let m = presets::llama_70b();
        let r2 = sp_complexity(&m, 4096, 2).comm_to_compute();
        let r8 = sp_complexity(&m, 4096, 8).comm_to_compute();
        assert!((r2 / r8 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degree_one_has_no_communication() {
        let m = presets::qwen_32b();
        assert_eq!(tp_complexity(&m, 1024, 1).comm_bytes, 0.0);
        assert_eq!(sp_complexity(&m, 1024, 1).comm_bytes, 0.0);
    }

    proptest! {
        #[test]
        fn comm_to_compute_independent_of_n(
            n1 in 64u64..100_000, n2 in 64u64..100_000, p in 2usize..16,
        ) {
            // Both ratios are Θ(1) in sequence length: communication and
            // compute are both linear in n.
            let m = presets::llama_70b();
            let a = tp_complexity(&m, n1, p).comm_to_compute();
            let b = tp_complexity(&m, n2, p).comm_to_compute();
            prop_assert!((a / b - 1.0).abs() < 1e-9);
            let c = sp_complexity(&m, n1, p).comm_to_compute();
            let d = sp_complexity(&m, n2, p).comm_to_compute();
            prop_assert!((c / d - 1.0).abs() < 1e-9);
        }
    }
}
