//! Expert parallelism (EP) for MoE models — the §4.6 future-work
//! direction ("there is no prior work that combines SP with EP").
//!
//! EP shards the *routed experts* across GPUs instead of (or in addition
//! to) slicing every matrix: GPU `g` stores `E/EP` whole experts, tokens
//! are dispatched to their experts' owners with an all-to-all, processed,
//! and combined with a second all-to-all — two extra collectives per MoE
//! layer, in exchange for streaming only `1/EP` of the routed weights per
//! GPU.
//!
//! This module models EP and its combination with SP/TP so the future-work
//! bench (`futurework_ep`) can quantify the tradeoff the paper leaves
//! open: for small MoE models (Qwen-30B-A3B), does SP×EP beat SP with
//! replicated experts?

use crate::complexity::ACTIVATION_BYTES;
use crate::config::BatchWork;
use crate::exec::{EngineOverhead, IterationBreakdown};
use sp_cluster::{CollectiveModel, NodeSpec, Roofline};
use sp_kvcache::layout::LayoutError;
use sp_kvcache::KvShardLayout;
use sp_metrics::Dur;
use sp_model::{ModelConfig, MoeConfig};

/// An `(SP, EP)` configuration for MoE inference: attention runs under
/// Ulysses SP across all `SP × EP` GPUs (head-parallel, as usual), while
/// the routed experts are sharded `EP` ways (each expert group replicated
/// across the `SP` dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpertParallelConfig {
    sp: usize,
    ep: usize,
}

impl ExpertParallelConfig {
    /// Creates an `(SP, EP)` configuration.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(sp: usize, ep: usize) -> ExpertParallelConfig {
        assert!(sp > 0 && ep > 0, "parallel degrees must be positive");
        ExpertParallelConfig { sp, ep }
    }

    /// The SP degree.
    pub fn sp(&self) -> usize {
        self.sp
    }

    /// The EP degree.
    pub fn ep(&self) -> usize {
        self.ep
    }

    /// Total GPUs: `SP × EP`.
    pub fn degree(&self) -> usize {
        self.sp * self.ep
    }

    /// Validates that `model`'s experts divide across the EP degree.
    ///
    /// # Errors
    ///
    /// Returns a message if the model is dense or experts do not divide.
    pub fn validate_for(&self, model: &ModelConfig) -> Result<MoeConfig, String> {
        let moe = model.moe.ok_or_else(|| format!("{} is dense; EP needs experts", model.name))?;
        if !(moe.num_experts as usize).is_multiple_of(self.ep) {
            return Err(format!("{} experts do not divide across EP={}", moe.num_experts, self.ep));
        }
        Ok(moe)
    }
}

/// Times MoE iterations under `(SP, EP)`.
///
/// Differences from the dense [`crate::exec::ExecutionModel`] walk:
///
/// * routed-expert weights stream at `1/EP` per GPU (sharded), while
///   attention + shared-expert weights are replicated (SP semantics);
/// * two additional all-to-alls per layer dispatch/combine the tokens'
///   expert assignments across the EP groups;
/// * the number of *distinct experts touched* per GPU shrinks with EP,
///   which is what makes small-batch MoE decode cheap under EP.
///
/// # Examples
///
/// ```
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
/// use sp_parallel::expert::{ExpertExecutionModel, ExpertParallelConfig};
/// use sp_parallel::BatchWork;
///
/// let exec = ExpertExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::qwen_30b_a3b());
/// let cfg = ExpertParallelConfig::new(2, 4);
/// let t = exec.iteration(&cfg, &BatchWork::single_prefill(4096));
/// assert!(t.total().as_secs() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExpertExecutionModel {
    model: ModelConfig,
    overhead: EngineOverhead,
    roofline: Roofline,
    collectives: CollectiveModel,
}

impl ExpertExecutionModel {
    /// Creates a model with default engine overhead.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails validation or is dense.
    pub fn new(node: NodeSpec, model: ModelConfig) -> ExpertExecutionModel {
        model.validate().expect("invalid model config");
        assert!(model.moe.is_some(), "expert parallelism requires an MoE model");
        ExpertExecutionModel {
            roofline: Roofline::new(node.gpu),
            collectives: CollectiveModel::new(node.interconnect),
            model,
            overhead: EngineOverhead::default(),
        }
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Times one iteration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid for the model (use
    /// [`ExpertExecutionModel::try_iteration`] to handle errors).
    pub fn iteration(
        &self,
        config: &ExpertParallelConfig,
        batch: &BatchWork,
    ) -> IterationBreakdown {
        self.try_iteration(config, batch)
            .unwrap_or_else(|e| panic!("cannot run (SP={}, EP={}): {e}", config.sp, config.ep))
    }

    /// Times one iteration of `batch` under `(SP, EP)`.
    ///
    /// # Errors
    ///
    /// Returns a message if experts or KV heads cannot be distributed.
    pub fn try_iteration(
        &self,
        config: &ExpertParallelConfig,
        batch: &BatchWork,
    ) -> Result<IterationBreakdown, String> {
        let moe = config.validate_for(&self.model)?;
        let p = config.degree();
        let layout =
            KvShardLayout::for_model(&self.model, p).map_err(|e: LayoutError| e.to_string())?;
        if batch.is_empty() {
            return Ok(IterationBreakdown::default());
        }

        let sp = config.sp as u64;
        let ep = config.ep as u64;
        let n = batch.total_new_tokens();
        let n_pad = n.div_ceil(sp * ep) * (sp * ep);
        let pad_ratio = n_pad as f64 / n as f64;
        let cost = batch.step_cost(&self.model);

        // --- GEMM ---
        // Attention + shared-expert compute splits across all P GPUs (the
        // sequence is split P ways under full SP attention).
        let linear_pg = cost.linear_flops * pad_ratio / p as f64;
        let logit_pg = cost.logit_flops / p as f64;

        // Weight streaming per GPU: attention/shared/embed replicated,
        // routed experts sharded EP ways. Distinct experts touched per EP
        // shard is bounded by both the shard's expert count and the
        // tokens' routing fan-out.
        let prec = self.model.weight_precision.bytes();
        let routed_per_layer = u64::from(moe.num_experts)
            * 3
            * u64::from(self.model.hidden_size)
            * u64::from(moe.expert_intermediate);
        let routed_total = u64::from(self.model.num_layers) * routed_per_layer * prec;
        let non_routed = self.model.weight_bytes() - routed_total;
        let experts_per_shard = u64::from(moe.num_experts) / ep;
        let touched = (n_pad * u64::from(moe.active_experts) / ep).min(experts_per_shard).max(1);
        let routed_pg = routed_total / ep * touched / experts_per_shard.max(1);
        let weight_bytes_pg = non_routed + routed_pg;
        let gemm = self.roofline.kernel(linear_pg + logit_pg, weight_bytes_pg);

        // --- Attention ---
        let attn_flops_pg = cost.attn_flops / p as f64;
        let kv_frac = f64::from(layout.heads_per_gpu()) / f64::from(self.model.kv_heads);
        let kv_bytes_pg = (cost.total_kv_bytes() as f64 * kv_frac) as u64;
        let attention = self.roofline.kernel(attn_flops_pg, kv_bytes_pg);

        // --- Communication ---
        let layers = u64::from(self.model.num_layers);
        let d = u64::from(self.model.hidden_size);
        let head_dim = u64::from(self.model.head_dim);
        let act = ACTIVATION_BYTES;

        // Ulysses all-to-alls (attention), within the full P-GPU group.
        let qkv_width = u64::from(self.model.q_heads)
            + 2 * u64::from(self.model.kv_heads) * u64::from(layout.replication());
        let a2a1 = self.collectives.all_to_all((n_pad / (sp * ep)) * qkv_width * head_dim * act, p);
        let a2a2 = self
            .collectives
            .all_to_all(n_pad * u64::from(self.model.q_heads) * head_dim * act / (sp * ep), p);

        // EP dispatch + combine: each GPU sends its n/P tokens' activations
        // (×top-k copies) to expert owners within its EP group.
        let dispatch_bytes = (n_pad / (sp * ep)) * u64::from(moe.active_experts) * d * act;
        let ep_a2a = self.collectives.all_to_all(dispatch_bytes, config.ep) * 2.0;

        let ag = self.collectives.all_gather(n_pad * d * act, p);
        let communication = Dur::from_secs(
            layers as f64 * (a2a1.as_secs() + a2a2.as_secs() + ep_a2a.as_secs()) + ag.as_secs(),
        );

        let overhead = self.overhead.for_batch(batch.num_seqs(), p);
        Ok(IterationBreakdown { gemm, attention, communication, overhead })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;

    fn exec() -> ExpertExecutionModel {
        ExpertExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::qwen_30b_a3b())
    }

    #[test]
    fn ep_shards_expert_weights() {
        // Decode batch 1: EP=8 streams far fewer weight bytes per GPU than
        // SP=8 with replicated experts, so the iteration is faster.
        let e = exec();
        let decode = BatchWork::uniform_decode(1, 4096);
        let sp8 = e.iteration(&ExpertParallelConfig::new(8, 1), &decode);
        let ep8 = e.iteration(&ExpertParallelConfig::new(1, 8), &decode);
        assert!(ep8.gemm < sp8.gemm, "EP should reduce expert streaming");
    }

    #[test]
    fn ep_adds_dispatch_communication() {
        let e = exec();
        let prefill = BatchWork::single_prefill(8192);
        let sp8 = e.iteration(&ExpertParallelConfig::new(8, 1), &prefill);
        let mixed = e.iteration(&ExpertParallelConfig::new(2, 4), &prefill);
        assert!(mixed.communication > sp8.communication);
    }

    #[test]
    fn invalid_expert_split_rejected() {
        let e = exec();
        // 128 experts across EP=3 does not divide.
        let err = e
            .try_iteration(&ExpertParallelConfig::new(1, 3), &BatchWork::single_prefill(128))
            .unwrap_err();
        assert!(err.contains("divide"), "{err}");
    }

    #[test]
    #[should_panic(expected = "MoE")]
    fn dense_model_rejected() {
        let _ = ExpertExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b());
    }

    #[test]
    fn empty_batch_is_free() {
        let e = exec();
        let it = e.iteration(&ExpertParallelConfig::new(2, 4), &BatchWork::default());
        assert_eq!(it.total(), Dur::ZERO);
    }
}
