//! Deployment memory planning: weights vs KV-cache budget.
//!
//! §3.2.2's deployment rule: partition with TP only as much as needed for
//! the weights to fit with room for KV cache, then spend the remaining
//! GPUs on SP (which enlarges the aggregate KV cache). This module computes
//! the numbers behind that rule.

use crate::config::ParallelConfig;
use sp_cluster::NodeSpec;
use sp_kvcache::layout::LayoutError;
use sp_kvcache::KvShardLayout;
use sp_model::ModelConfig;

/// Fraction of GPU memory usable for weights + KV cache (the rest holds
/// activations, CUDA graphs, and allocator slack) — vLLM's
/// `gpu_memory_utilization` analogue.
pub const DEFAULT_MEM_FRACTION: f64 = 0.9;

/// The memory consequences of deploying one model under one configuration.
///
/// # Examples
///
/// ```
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
/// use sp_parallel::{MemoryPlan, ParallelConfig};
///
/// let node = NodeSpec::p5en_48xlarge();
/// let scout = presets::llama_17b_16e();
/// // §4.6: SP=8 leaves almost no KV room for the 109 GB model…
/// let sp8 = MemoryPlan::plan(&node, &scout, &ParallelConfig::sequence(8)).unwrap();
/// // …while (SP=4, TP=2) halves the per-GPU weights:
/// let mixed = MemoryPlan::plan(&node, &scout, &ParallelConfig::new(4, 2)).unwrap();
/// assert!(mixed.kv_capacity_tokens > 2 * sp8.kv_capacity_tokens);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPlan {
    /// Weight bytes resident on each GPU (`w/TP`, SP replicates).
    pub weight_bytes_per_gpu: u64,
    /// Bytes available for KV cache on each GPU after weights.
    pub kv_budget_bytes_per_gpu: u64,
    /// Group-wide KV capacity in tokens under the head-shard layout.
    pub kv_capacity_tokens: u64,
    /// False if the weights alone exceed the usable memory.
    pub fits: bool,
}

impl MemoryPlan {
    /// Plans `model` on `node` under `config` with the default memory
    /// fraction and no extra resident weights.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if KV heads cannot be distributed across
    /// `config.degree()` GPUs.
    pub fn plan(
        node: &NodeSpec,
        model: &ModelConfig,
        config: &ParallelConfig,
    ) -> Result<MemoryPlan, LayoutError> {
        MemoryPlan::plan_with_extra(node, model, config, 0, DEFAULT_MEM_FRACTION)
    }

    /// Plans with `extra_weight_bytes_per_gpu` additional resident weights
    /// (the shift model's replica, Eq. 1) and an explicit memory fraction.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if KV heads cannot be distributed.
    ///
    /// # Panics
    ///
    /// Panics if `mem_fraction` is not in `(0, 1]`.
    pub fn plan_with_extra(
        node: &NodeSpec,
        model: &ModelConfig,
        config: &ParallelConfig,
        extra_weight_bytes_per_gpu: u64,
        mem_fraction: f64,
    ) -> Result<MemoryPlan, LayoutError> {
        assert!(mem_fraction > 0.0 && mem_fraction <= 1.0, "memory fraction must be in (0, 1]");
        let layout = KvShardLayout::for_model(model, config.degree())?;
        let usable = (node.gpu.mem_bytes as f64 * mem_fraction) as u64;
        let weight_bytes_per_gpu =
            model.weight_bytes() / config.tp() as u64 + extra_weight_bytes_per_gpu;
        let fits = weight_bytes_per_gpu <= usable;
        let kv_budget = usable.saturating_sub(weight_bytes_per_gpu);
        let per_token = layout.per_gpu_kv_bytes_per_token(model).max(1);
        let kv_capacity_tokens = kv_budget / per_token;
        Ok(MemoryPlan {
            weight_bytes_per_gpu,
            kv_budget_bytes_per_gpu: kv_budget,
            kv_capacity_tokens,
            fits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp_model::presets;

    fn node() -> NodeSpec {
        NodeSpec::p5en_48xlarge()
    }

    #[test]
    fn tp_divides_weights() {
        let m = presets::llama_70b();
        let p1 = MemoryPlan::plan(&node(), &m, &ParallelConfig::tensor(8)).unwrap();
        let p2 = MemoryPlan::plan(&node(), &m, &ParallelConfig::sequence(8)).unwrap();
        assert_eq!(p1.weight_bytes_per_gpu * 8, m.weight_bytes());
        assert_eq!(p2.weight_bytes_per_gpu, m.weight_bytes());
    }

    #[test]
    fn scout_sp8_barely_fits() {
        // §4.6 i): Llama-17B-16E at SP=8 fits but leaves little KV room.
        let m = presets::llama_17b_16e();
        let plan = MemoryPlan::plan(&node(), &m, &ParallelConfig::sequence(8)).unwrap();
        assert!(plan.fits);
        let kv_gb = plan.kv_budget_bytes_per_gpu as f64 / 1e9;
        assert!(kv_gb < 30.0, "Scout SP=8 KV budget {kv_gb:.0} GB should be scarce");
    }

    #[test]
    fn mixed_config_recovers_kv_room_for_scout() {
        let m = presets::llama_17b_16e();
        let sp8 = MemoryPlan::plan(&node(), &m, &ParallelConfig::sequence(8)).unwrap();
        let mixed = MemoryPlan::plan(&node(), &m, &ParallelConfig::new(4, 2)).unwrap();
        assert!(mixed.kv_capacity_tokens > 2 * sp8.kv_capacity_tokens);
    }

    #[test]
    fn llama_70b_does_not_fit_one_gpu_at_fp16_kv_margin() {
        // 70 GB FP8 weights fit a single 141 GB H200, so DP is possible…
        let m = presets::llama_70b();
        let dp = MemoryPlan::plan(&node(), &m, &ParallelConfig::single()).unwrap();
        assert!(dp.fits);
        // …but with far less KV capacity than TP=8.
        let tp = MemoryPlan::plan(&node(), &m, &ParallelConfig::tensor(8)).unwrap();
        assert!(tp.kv_capacity_tokens > 5 * dp.kv_capacity_tokens);
    }

    #[test]
    fn extra_weights_shrink_kv() {
        let m = presets::llama_70b();
        let base = MemoryPlan::plan(&node(), &m, &ParallelConfig::sequence(8)).unwrap();
        let with_shift = MemoryPlan::plan_with_extra(
            &node(),
            &m,
            &ParallelConfig::sequence(8),
            m.weight_bytes() / 8,
            DEFAULT_MEM_FRACTION,
        )
        .unwrap();
        assert!(with_shift.kv_capacity_tokens < base.kv_capacity_tokens);
        assert!(with_shift.fits);
    }

    #[test]
    fn fp8_kv_doubles_capacity() {
        // §4.2.2: the Mooncake run flips the KV cache to FP8.
        use sp_model::Precision;
        let m = presets::qwen_32b();
        let mut m8 = m.clone();
        m8.kv_precision = Precision::Fp8;
        let c16 = MemoryPlan::plan(&node(), &m, &ParallelConfig::tensor(8)).unwrap();
        let c8 = MemoryPlan::plan(&node(), &m8, &ParallelConfig::tensor(8)).unwrap();
        let ratio = c8.kv_capacity_tokens as f64 / c16.kv_capacity_tokens as f64;
        assert!((1.9..2.1).contains(&ratio), "FP8 KV capacity ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn invalid_fraction_rejected() {
        let _ = MemoryPlan::plan_with_extra(
            &node(),
            &presets::qwen_32b(),
            &ParallelConfig::single(),
            0,
            1.5,
        );
    }

    proptest! {
        #[test]
        fn kv_capacity_decreases_with_extra_weights(
            extra_gb in 0u64..40, more_gb in 1u64..40,
        ) {
            let m = presets::qwen_32b();
            let cfg = ParallelConfig::sequence(8);
            let a = MemoryPlan::plan_with_extra(
                &node(), &m, &cfg, extra_gb << 30, DEFAULT_MEM_FRACTION).unwrap();
            let b = MemoryPlan::plan_with_extra(
                &node(), &m, &cfg, (extra_gb + more_gb) << 30, DEFAULT_MEM_FRACTION).unwrap();
            prop_assert!(b.kv_capacity_tokens <= a.kv_capacity_tokens);
        }

        #[test]
        fn more_tp_never_reduces_fit(tp_pow in 0u32..4) {
            // Increasing TP strictly shrinks per-GPU weights.
            let m = presets::llama_70b();
            let small = MemoryPlan::plan(
                &node(), &m, &ParallelConfig::tensor(1 << tp_pow)).unwrap();
            let large = MemoryPlan::plan(
                &node(), &m, &ParallelConfig::tensor(1 << (tp_pow + 1))).unwrap();
            prop_assert!(large.weight_bytes_per_gpu < small.weight_bytes_per_gpu);
        }
    }
}
