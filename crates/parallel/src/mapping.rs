//! The §3.3.1 process-to-data mapping.
//!
//! For a base configuration `(SP, TP)` on `P = SP × TP` GPUs the paper
//! defines three process groups (example for `SP = 3, TP = 2`):
//!
//! * `TP`: `[[0, 1], [2, 3], [4, 5]]` — consecutive ranks;
//! * `SP`: `[[0, 2, 4], [1, 3, 5]]` — strided ranks;
//! * `SP_TP`: `[[0, 2, 4, 1, 3, 5]]` — SP-major traversal, the order in
//!   which the *shift* model must shard its heads so the base and shift
//!   configurations agree on which GPU owns which attention head.
//!
//! [`ProcessMapping`] constructs these groups and both head assignments;
//! their equality ([`ProcessMapping::is_invariant`]) is the generalized
//! KV-cache-invariance property, proptested over all factorizations.

/// Process groups and head assignments for one `(SP, TP)` factorization.
///
/// # Examples
///
/// ```
/// use sp_parallel::ProcessMapping;
///
/// // The paper's running example: SP=3, TP=2, six heads.
/// let m = ProcessMapping::new(3, 2);
/// assert_eq!(m.sp_tp_group(), vec![0, 2, 4, 1, 3, 5]);
/// assert!(m.is_invariant(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessMapping {
    sp: usize,
    tp: usize,
}

impl ProcessMapping {
    /// Creates the mapping for a `(SP, TP)` base configuration.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(sp: usize, tp: usize) -> ProcessMapping {
        assert!(sp > 0 && tp > 0, "parallel degrees must be positive");
        ProcessMapping { sp, tp }
    }

    /// Total ranks `P = SP × TP`.
    pub fn world_size(&self) -> usize {
        self.sp * self.tp
    }

    /// The TP rank of global rank `r` (position within its TP group).
    pub fn tp_rank(&self, r: usize) -> usize {
        r % self.tp
    }

    /// The SP rank of global rank `r` (which TP group it belongs to).
    pub fn sp_rank(&self, r: usize) -> usize {
        r / self.tp
    }

    /// TP groups: `SP` groups of `TP` consecutive ranks.
    pub fn tp_groups(&self) -> Vec<Vec<usize>> {
        (0..self.sp).map(|s| (0..self.tp).map(|t| s * self.tp + t).collect()).collect()
    }

    /// SP groups: `TP` groups of `SP` ranks strided by `TP`.
    pub fn sp_groups(&self) -> Vec<Vec<usize>> {
        (0..self.tp).map(|t| (0..self.sp).map(|s| s * self.tp + t).collect()).collect()
    }

    /// The SP_TP group: all ranks in SP-major order within each TP slot —
    /// the shard order the shift model must load weights in (§3.3.2).
    pub fn sp_tp_group(&self) -> Vec<usize> {
        (0..self.tp).flat_map(|t| (0..self.sp).map(move |s| s * self.tp + t)).collect()
    }

    /// Heads owned by global rank `r` in the *base* configuration after the
    /// Ulysses all-to-all, for `heads` total attention heads.
    ///
    /// The TP column split gives TP rank `t` the head slice
    /// `[t·h/TP, (t+1)·h/TP)`; the all-to-all within the SP group then
    /// splits that slice so SP rank `s` holds its `s`-th sub-slice.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is not divisible by `SP × TP` or `r` is out of
    /// range.
    pub fn base_heads_of_rank(&self, r: usize, heads: u32) -> Vec<u32> {
        let p = self.world_size();
        assert!(r < p, "rank {r} out of range for world size {p}");
        assert_eq!(heads as usize % p, 0, "heads ({heads}) must divide evenly across {p} ranks");
        let per_tp = heads as usize / self.tp;
        let per_rank = per_tp / self.sp;
        let t = self.tp_rank(r);
        let s = self.sp_rank(r);
        let start = t * per_tp + s * per_rank;
        (start..start + per_rank).map(|h| h as u32).collect()
    }

    /// Heads owned by global rank `r` in the *shift* configuration
    /// (`TP = P`), when head chunks are dealt out in SP_TP group order as
    /// §3.3.2 prescribes.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ProcessMapping::base_heads_of_rank`].
    pub fn shift_heads_of_rank(&self, r: usize, heads: u32) -> Vec<u32> {
        let p = self.world_size();
        assert!(r < p, "rank {r} out of range for world size {p}");
        assert_eq!(heads as usize % p, 0, "heads ({heads}) must divide evenly across {p} ranks");
        let per_rank = heads as usize / p;
        let order = self.sp_tp_group();
        let position = order.iter().position(|&x| x == r).expect("rank in group");
        let start = position * per_rank;
        (start..start + per_rank).map(|h| h as u32).collect()
    }

    /// The naive (rank-order) head assignment a shift config would use
    /// *without* the §3.3.2 correction — used in tests to show the
    /// invariance genuinely breaks for mixed (SP, TP) bases.
    pub fn naive_shift_heads_of_rank(&self, r: usize, heads: u32) -> Vec<u32> {
        let p = self.world_size();
        assert!(r < p, "rank {r} out of range for world size {p}");
        let per_rank = heads as usize / p;
        let start = r * per_rank;
        (start..start + per_rank).map(|h| h as u32).collect()
    }

    /// True if the base and (corrected) shift head assignments coincide on
    /// every rank: the generalized KV-cache invariance of §3.3.1.
    pub fn is_invariant(&self, heads: u32) -> bool {
        (0..self.world_size())
            .all(|r| self.base_heads_of_rank(r, heads) == self.shift_heads_of_rank(r, heads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn paper_example_groups() {
        // §3.3.2's worked example for (SP=3, TP=2).
        let m = ProcessMapping::new(3, 2);
        assert_eq!(m.tp_groups(), vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        assert_eq!(m.sp_groups(), vec![vec![0, 2, 4], vec![1, 3, 5]]);
        assert_eq!(m.sp_tp_group(), vec![0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn paper_example_head_interleaving() {
        // With 6 heads on (SP=3, TP=2): ranks hold heads [0,3,1,4,2,5] —
        // i.e. head order across GPUs is (0, 2, 4, 1, 3, 5) as in Figure 6.
        let m = ProcessMapping::new(3, 2);
        let owners: Vec<u32> = (0..6).map(|r| m.base_heads_of_rank(r, 6)[0]).collect();
        assert_eq!(owners, vec![0, 3, 1, 4, 2, 5]);
        // Equivalently: head h lives on GPU sp_tp_group[h].
        let group = m.sp_tp_group();
        for h in 0..6u32 {
            assert_eq!(m.base_heads_of_rank(group[h as usize], 6), vec![h]);
        }
    }

    #[test]
    fn corrected_shift_is_invariant_where_naive_is_not() {
        let m = ProcessMapping::new(3, 2);
        assert!(m.is_invariant(6));
        // The naive assignment disagrees on rank 1 (holds head 3 in base).
        assert_ne!(m.naive_shift_heads_of_rank(1, 6), m.base_heads_of_rank(1, 6));
    }

    #[test]
    fn pure_tp_and_pure_sp_are_trivially_invariant() {
        assert!(ProcessMapping::new(1, 8).is_invariant(64));
        assert!(ProcessMapping::new(8, 1).is_invariant(64));
    }

    #[test]
    fn pure_configs_match_naive_ordering() {
        // Without a mixed base the SP_TP group is the identity and the
        // naive shift sharding is already correct.
        for m in [ProcessMapping::new(1, 6), ProcessMapping::new(6, 1)] {
            for r in 0..6 {
                assert_eq!(m.naive_shift_heads_of_rank(r, 12), m.shift_heads_of_rank(r, 12));
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_heads_rejected() {
        let _ = ProcessMapping::new(3, 2).base_heads_of_rank(0, 7);
    }

    proptest! {
        #[test]
        fn invariance_holds_for_all_factorizations(
            sp in 1usize..9, tp in 1usize..9, heads_mult in 1u32..5,
        ) {
            let m = ProcessMapping::new(sp, tp);
            let heads = (sp * tp) as u32 * heads_mult;
            prop_assert!(m.is_invariant(heads));
        }

        #[test]
        fn base_assignment_partitions_heads(
            sp in 1usize..7, tp in 1usize..7, heads_mult in 1u32..4,
        ) {
            let m = ProcessMapping::new(sp, tp);
            let heads = (sp * tp) as u32 * heads_mult;
            let mut seen = BTreeSet::new();
            for r in 0..m.world_size() {
                for h in m.base_heads_of_rank(r, heads) {
                    prop_assert!(seen.insert(h), "head {h} assigned twice");
                }
            }
            prop_assert_eq!(seen.len() as u32, heads);
        }

        #[test]
        fn sp_tp_group_is_a_permutation(sp in 1usize..9, tp in 1usize..9) {
            let m = ProcessMapping::new(sp, tp);
            let group = m.sp_tp_group();
            let set: BTreeSet<usize> = group.iter().copied().collect();
            prop_assert_eq!(set.len(), m.world_size());
            prop_assert_eq!(*set.iter().max().unwrap(), m.world_size() - 1);
        }

        #[test]
        fn groups_cover_all_ranks_disjointly(sp in 1usize..9, tp in 1usize..9) {
            let m = ProcessMapping::new(sp, tp);
            for groups in [m.tp_groups(), m.sp_groups()] {
                let mut seen = BTreeSet::new();
                for g in &groups {
                    for &r in g {
                        prop_assert!(seen.insert(r));
                    }
                }
                prop_assert_eq!(seen.len(), m.world_size());
            }
        }
    }
}
