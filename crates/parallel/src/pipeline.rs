//! Pipeline parallelism (PP) — the taxonomy completion.
//!
//! The paper's Table 1 covers TP, DP and SP; pipeline parallelism is the
//! other classic partitioning (layers split into stages). This module
//! models it analytically to show *why* it is not a contender for the
//! latency side of the tradeoff the paper targets:
//!
//! * **TTFT** — a single prefill crosses every stage; without
//!   microbatching there is no intra-request speedup at all, and with
//!   chunked microbatches a pipeline-fill bubble of `(S−1)` chunk-times
//!   remains.
//! * **TPOT** — each decode token traverses all `S` stages sequentially,
//!   streaming `w/S` weights per stage: total weight-stream time equals a
//!   single GPU's (DP-grade TPOT), plus `S−1` activation hops.
//! * **Throughput** — good: stages work concurrently on different
//!   microbatches/requests with only point-to-point activation traffic
//!   (DP-like throughput at `1/S` the per-GPU memory).
//!
//! PP's one genuine advantage — serving models larger than a node-worth of
//! memory — is out of the paper's scope (all Table 4 models fit).

use crate::complexity::ACTIVATION_BYTES;
use sp_cluster::{NodeSpec, Roofline};
use sp_metrics::Dur;
use sp_model::ModelConfig;

/// A pipeline-parallel deployment: `stages` sequential layer groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of pipeline stages (GPUs).
    pub stages: usize,
    /// Prefill microbatch (chunk) size in tokens.
    pub microbatch: u64,
}

impl PipelineConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero.
    pub fn new(stages: usize, microbatch: u64) -> PipelineConfig {
        assert!(stages > 0, "pipeline needs at least one stage");
        assert!(microbatch > 0, "microbatch must be positive");
        PipelineConfig { stages, microbatch }
    }
}

/// Analytical PP timing for one model on one node.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    node: NodeSpec,
    model: ModelConfig,
    roofline: Roofline,
}

impl PipelineModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails validation.
    pub fn new(node: NodeSpec, model: ModelConfig) -> PipelineModel {
        model.validate().expect("invalid model config");
        PipelineModel { roofline: Roofline::new(node.gpu), node, model }
    }

    /// Inter-stage activation hop for `tokens` tokens (point-to-point).
    fn hop(&self, tokens: u64) -> Dur {
        let bytes = tokens * u64::from(self.model.hidden_size) * ACTIVATION_BYTES;
        Dur::from_secs(
            self.node.interconnect.step_latency
                + bytes as f64 / self.node.interconnect.effective_bw(),
        )
    }

    /// Per-stage compute time for a chunk of `tokens` prompt tokens at
    /// context offset `past` (1/S of the layers).
    fn stage_chunk_time(&self, config: &PipelineConfig, tokens: u64, past: u64) -> Dur {
        let cost = self.model.chunk_cost(tokens, past, 0);
        let s = config.stages as f64;
        let flops = (cost.linear_flops + cost.attn_flops) / s;
        let bytes = (self.model.streamed_weight_bytes(tokens) as f64 / s) as u64
            + (cost.total_kv_bytes() as f64 / s) as u64;
        self.roofline.kernel(flops, bytes)
    }

    /// TTFT of a lone `prompt`-token request: chunked microbatches flow
    /// through the pipeline; the last chunk exits after all chunks have
    /// entered plus the pipeline depth.
    pub fn prefill_time(&self, config: &PipelineConfig, prompt: u64) -> Dur {
        let chunks = prompt.div_ceil(config.microbatch).max(1);
        let chunk_tokens = prompt.div_ceil(chunks);
        // Mean per-stage chunk time (context grows across chunks; use the
        // middle chunk as representative).
        let stage = self.stage_chunk_time(config, chunk_tokens, prompt / 2);
        let hops = self.hop(chunk_tokens) * (config.stages as f64 - 1.0);
        stage * (chunks + config.stages as u64 - 1) as f64 + hops
    }

    /// TPOT of a lone decode stream at context `context`: the token visits
    /// every stage sequentially.
    pub fn decode_tpot(&self, config: &PipelineConfig, context: u64) -> Dur {
        let cost = self.model.decode_cost(context);
        let s = config.stages as f64;
        let per_stage_bytes = (self.model.streamed_weight_bytes(1) as f64 / s) as u64
            + (cost.total_kv_bytes() as f64 / s) as u64;
        let per_stage =
            self.roofline.kernel((cost.linear_flops + cost.attn_flops) / s, per_stage_bytes);
        per_stage * s + self.hop(1) * (s - 1.0)
    }

    /// Peak combined throughput with saturated microbatches: all stages
    /// busy, so the node processes one `microbatch` per stage-time.
    pub fn peak_throughput(&self, config: &PipelineConfig, context: u64) -> f64 {
        let stage = self.stage_chunk_time(config, config.microbatch, context);
        config.microbatch as f64 / stage.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchWork, ParallelConfig};
    use crate::exec::ExecutionModel;
    use sp_model::presets;

    fn pp() -> PipelineModel {
        PipelineModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b())
    }

    #[test]
    fn pp_tpot_is_dp_grade_not_tp_grade() {
        // The taxonomy claim: PP decode latency ≈ single GPU (weights
        // streamed w/S per stage, S stages in series), far above TP.
        let pp = pp();
        let tpot_pp = pp.decode_tpot(&PipelineConfig::new(8, 2048), 4096).as_secs();
        let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b());
        let tp = exec
            .iteration(&ParallelConfig::tensor(8), &BatchWork::uniform_decode(1, 4096))
            .total()
            .as_secs();
        let dp = exec
            .iteration(&ParallelConfig::single(), &BatchWork::uniform_decode(1, 4096))
            .total()
            .as_secs();
        assert!(tpot_pp > 1.3 * tp, "PP TPOT {tpot_pp:.4}s vs TP {tp:.4}s");
        // Within a factor of DP (same total weight streaming, minor hops).
        assert!((0.5..1.6).contains(&(tpot_pp / dp)), "PP/DP ratio {}", tpot_pp / dp);
    }

    #[test]
    fn pp_prefill_is_far_slower_than_tp() {
        // The taxonomy claim: even with microbatching, the pipeline-fill
        // bubble keeps PP's TTFT several times TP's.
        let pp = pp();
        let pp_ttft = pp.prefill_time(&PipelineConfig::new(8, 2048), 8192).as_secs();
        let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b());
        let tp_ttft = exec
            .iteration(&ParallelConfig::tensor(8), &BatchWork::single_prefill(8192))
            .total()
            .as_secs();
        assert!(pp_ttft > 1.5 * tp_ttft, "PP {pp_ttft:.3}s vs TP {tp_ttft:.3}s");
        // …and far above SP, the paper's prefill-optimal choice.
        let sp_ttft = exec
            .iteration(&ParallelConfig::sequence(8), &BatchWork::single_prefill(8192))
            .total()
            .as_secs();
        assert!(pp_ttft > 2.0 * sp_ttft, "PP {pp_ttft:.3}s vs SP {sp_ttft:.3}s");
    }

    #[test]
    fn pp_without_microbatching_has_no_prefill_speedup() {
        // One un-chunked prefill crosses the stages sequentially: total
        // compute equals a single GPU's, regardless of stage count.
        let pp = pp();
        let whole = pp.prefill_time(&PipelineConfig::new(8, 8192), 8192).as_secs();
        let chunked = pp.prefill_time(&PipelineConfig::new(8, 1024), 8192).as_secs();
        assert!(
            whole > 1.8 * chunked,
            "microbatching must be what rescues PP: whole {whole:.3}s vs chunked {chunked:.3}s"
        );
    }

    #[test]
    fn pp_throughput_is_competitive() {
        let pp = pp();
        let tput = pp.peak_throughput(&PipelineConfig::new(8, 2048), 2048);
        // Same ballpark as the DP node (~43k tok/s), not TP's 33k.
        assert!(tput > 35_000.0, "PP throughput {tput:.0}");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        let _ = PipelineConfig::new(0, 2048);
    }
}
