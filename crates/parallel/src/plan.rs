//! Compiled cost-model pricing: per-config plans evaluated from one
//! shared batch summary.
//!
//! [`ExecutionModel::try_iteration`] re-derives everything on every call:
//! it re-plans the KV shard layout, re-folds per-chunk [`StepCost`]s, and
//! rebuilds the per-layer collective byte formulas from model constants.
//! Policies that price several candidate `(SP, TP)` configurations per
//! scheduling step repeat the chunk fold once *per config*, even though
//! the fold is config-independent.
//!
//! This module splits the evaluation:
//!
//! * [`ExecutionModel::summarize`] folds a [`BatchWork`] into a
//!   [`BatchSummary`] once — the only O(chunks) work, shared by every
//!   config;
//! * [`ExecPlan`] (built once per config by [`ExecutionModel::compile`])
//!   holds the validated [`KvShardLayout`] and every config- and
//!   model-derived constant of the Table 2 cost terms: padding divisors,
//!   the per-layer collective byte coefficients, the streamed-weight
//!   constants, and copies of the roofline/α–β calibration;
//! * [`ExecPlan::price`] evaluates one summary in O(1).
//!
//! The cost terms are affine in the batch statistics for a fixed config,
//! but *folding* the α–β model into `a + b·n_pad` coefficients would
//! re-associate f64 sums and drift from the reference by rounding. The
//! plan instead precomputes only what is exact — integer byte
//! coefficients, divisors, the layout fraction — and replays the direct
//! path's remaining float operations in the same order, so every plan
//! evaluation is **bit-identical** to `try_iteration`. Debug builds
//! assert exactly that on every [`ExecutionModel::price_planned`] /
//! [`ExecutionModel::price_all`] call, and the
//! `compiled_pricing_matches_direct` property test pins it across
//! randomized models, configs, and batches.

use crate::complexity::ACTIVATION_BYTES;
use crate::config::{BatchWork, ChunkKind, ParallelConfig};
use crate::exec::{EngineOverhead, ExecutionModel, IterationBreakdown};
use sp_cluster::{CollectiveModel, Roofline};
use sp_kvcache::layout::LayoutError;
use sp_kvcache::KvShardLayout;
use sp_metrics::Dur;
use sp_model::{ModelConfig, StepCost};

/// Config-independent statistics of one batch: the single O(chunks) fold
/// shared by every plan evaluation.
///
/// Produced by [`ExecutionModel::summarize`]; the chunk costs are summed
/// in chunk order with the prefill-linear-scale already applied, exactly
/// as `try_iteration` folds them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSummary {
    /// Summed per-chunk costs (prefill linear FLOPs pre-scaled).
    pub cost: StepCost,
    /// Total new tokens across chunks (pre-padding).
    pub total_new_tokens: u64,
    /// Batched sequences (one chunk each).
    pub num_seqs: usize,
}

impl BatchSummary {
    /// Whether the summarized batch had no chunks.
    pub fn is_empty(&self) -> bool {
        self.num_seqs == 0
    }
}

/// How the per-iteration streamed weight bytes depend on the padded batch
/// size: a constant for dense models, the touched-expert formula for MoE.
#[derive(Debug, Clone, Copy)]
enum StreamedWeights {
    /// Dense: every iteration streams all weights.
    Dense(u64),
    /// MoE: non-routed params always stream; routed experts stream in
    /// proportion to how many the batch touches.
    Moe { non_routed: u64, routed_total: u64, active: u64, experts: u64, prec: u64 },
}

impl StreamedWeights {
    fn of(model: &ModelConfig) -> StreamedWeights {
        let prec = model.weight_precision.bytes();
        match model.moe {
            None => StreamedWeights::Dense(model.total_params() * prec),
            Some(moe) => {
                let routed_per_layer = u64::from(moe.num_experts)
                    * 3
                    * u64::from(model.hidden_size)
                    * u64::from(moe.expert_intermediate);
                let routed_total = u64::from(model.num_layers) * routed_per_layer;
                StreamedWeights::Moe {
                    non_routed: model.total_params() - routed_total,
                    routed_total,
                    active: u64::from(moe.active_experts),
                    experts: u64::from(moe.num_experts),
                    prec,
                }
            }
        }
    }

    /// Mirrors `ModelConfig::streamed_weight_bytes` with the model
    /// constants pre-folded.
    fn bytes(&self, batch_tokens: u64) -> u64 {
        match *self {
            StreamedWeights::Dense(bytes) => bytes,
            StreamedWeights::Moe { non_routed, routed_total, active, experts, prec } => {
                let touched = (batch_tokens * active).min(experts);
                (non_routed + routed_total * touched / experts) * prec
            }
        }
    }
}

/// One `(SP, TP)` configuration's precompiled pricing surface.
///
/// Holds everything `try_iteration` derives per call that does not depend
/// on the batch: the validated KV shard layout, the padding and divisor
/// constants, the per-layer collective byte coefficients, the
/// streamed-weight constants, and copies of the roofline, collective, and
/// overhead calibration. [`ExecPlan::price`] then evaluates a
/// [`BatchSummary`] in a handful of operations, bit-identical to the
/// direct path.
#[derive(Debug, Clone, Copy)]
pub struct ExecPlan {
    config: ParallelConfig,
    layout: KvShardLayout,
    /// SP degree (padding multiple).
    sp: u64,
    /// TP degree (weight-shard divisor).
    tp: u64,
    /// Group size `sp * tp`, the all-to-all #2 divisor.
    sp_tp: u64,
    /// `config.degree()` for overhead scaling.
    p: usize,
    /// SP group size for the all-to-all / all-gather collectives.
    sp_group: usize,
    /// TP group size for the all-reduce collective.
    tp_group: usize,
    /// `(sp * tp) as f64`, the GEMM FLOP divisor.
    gemm_div: f64,
    /// `degree as f64`, the attention FLOP divisor.
    attn_div: f64,
    /// Per-GPU share of KV traffic (`layout.shard_fraction()`).
    kv_frac: f64,
    /// Embedding row bytes `hidden_size × ACTIVATION_BYTES` (all-reduce
    /// and all-gather coefficient).
    embed_row_bytes: u64,
    /// QKV row bytes `(h + 2·h_kv·replication) × head_dim × act`
    /// (all-to-all #1 coefficient, before the `/tp` shard).
    qkv_row_bytes: u64,
    /// Attention-output row bytes `h × head_dim × act` (all-to-all #2
    /// coefficient, before the `/(sp·tp)` shard).
    out_row_bytes: u64,
    /// `num_layers as f64` for the per-layer collective sum.
    layers: f64,
    streamed: StreamedWeights,
    roofline: Roofline,
    collectives: CollectiveModel,
    overhead: EngineOverhead,
}

impl ExecPlan {
    /// The configuration this plan was compiled for.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// The validated KV shard layout reused by every evaluation.
    pub fn layout(&self) -> KvShardLayout {
        self.layout
    }

    /// Times one iteration of a summarized batch under this plan.
    ///
    /// Replays `try_iteration`'s float operations in the same order with
    /// the config/model constants pre-folded, so the result is
    /// bit-identical to the direct path on the same batch.
    pub fn price(&self, summary: &BatchSummary) -> IterationBreakdown {
        if summary.is_empty() {
            return IterationBreakdown::default();
        }
        let n = summary.total_new_tokens;
        let n_pad = n.div_ceil(self.sp) * self.sp;
        let pad_ratio = n_pad as f64 / n as f64;
        let cost = &summary.cost;

        // --- GEMM: linear + logit FLOPs vs weight streaming ---
        let linear_flops_pg = cost.linear_flops * pad_ratio / self.gemm_div;
        let logit_flops_pg = cost.logit_flops / self.gemm_div;
        let weight_bytes_pg = self.streamed.bytes(n_pad) / self.tp;
        let gemm = self.roofline.kernel(linear_flops_pg + logit_flops_pg, weight_bytes_pg);

        // --- Attention: head-parallel across the whole group ---
        let attn_flops_pg = cost.attn_flops / self.attn_div;
        let kv_bytes_pg = (cost.total_kv_bytes() as f64 * self.kv_frac) as u64;
        let attention = self.roofline.kernel(attn_flops_pg, kv_bytes_pg);

        // --- Communication: Algorithm 1 lines 4, 6, 8, 11, 13 ---
        let ar_time =
            self.collectives.all_reduce((n_pad / self.sp) * self.embed_row_bytes, self.tp_group);
        let a2a_time = self
            .collectives
            .all_to_all((n_pad / self.sp) * self.qkv_row_bytes / self.tp, self.sp_group)
            + self.collectives.all_to_all(n_pad * self.out_row_bytes / self.sp_tp, self.sp_group);
        let ag_time = self.collectives.all_gather(n_pad * self.embed_row_bytes, self.sp_group);
        let communication = Dur::from_secs(
            self.layers * (2.0 * ar_time.as_secs() + a2a_time.as_secs()) + ag_time.as_secs(),
        );

        let overhead = self.overhead.for_batch(summary.num_seqs, self.p);

        IterationBreakdown { gemm, attention, communication, overhead }
    }

    /// Partially evaluates [`ExecPlan::price`] for a run of pure-decode
    /// iterations that share every summary field except `attn_flops`
    /// and `kv_read_bytes`: the GEMM, communication, and overhead terms
    /// depend only on the shared fields and are priced here once;
    /// [`DecodeRunPricer::price`] then recomputes just the attention
    /// kernel per iteration, with the identical float operations in the
    /// identical order, so its totals are bit-equal to
    /// `self.price(summary_k).total()` for any summary on the run's
    /// line.
    pub fn decode_run_pricer(&self, summary: &BatchSummary) -> DecodeRunPricer {
        let priced = self.price(summary);
        DecodeRunPricer {
            gemm: priced.gemm,
            communication: priced.communication,
            overhead: priced.overhead,
            attn_div: self.attn_div,
            kv_frac: self.kv_frac,
            kv_write_bytes: summary.cost.kv_write_bytes,
            roofline: self.roofline,
        }
    }
}

/// The per-iteration residue of a partially evaluated decode-run plan
/// (see [`ExecPlan::decode_run_pricer`]): the batch-constant breakdown
/// terms plus exactly the constants the attention kernel needs.
#[derive(Debug, Clone, Copy)]
pub struct DecodeRunPricer {
    gemm: Dur,
    communication: Dur,
    overhead: Dur,
    /// `degree as f64`, the attention FLOP divisor.
    attn_div: f64,
    /// Per-GPU share of KV traffic.
    kv_frac: f64,
    /// The run-constant KV write traffic (one token per sequence).
    kv_write_bytes: u64,
    roofline: Roofline,
}

impl DecodeRunPricer {
    /// Total iteration latency at the given attention load — the only
    /// two summary fields that vary along a pure-decode run. Float-op
    /// order matches `price(...).total()`: the same attention kernel
    /// evaluation, then the same left-to-right component sum.
    pub fn price(&self, attn_flops: f64, kv_read_bytes: u64) -> Dur {
        let attn_flops_pg = attn_flops / self.attn_div;
        let kv_bytes_pg = ((kv_read_bytes + self.kv_write_bytes) as f64 * self.kv_frac) as u64;
        let attention = self.roofline.kernel(attn_flops_pg, kv_bytes_pg);
        self.gemm + attention + self.communication + self.overhead
    }
}

impl ExecutionModel {
    /// Compiles the pricing plan for one configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] exactly when
    /// [`ExecutionModel::try_iteration`] would for the same config.
    pub fn compile(&self, config: &ParallelConfig) -> Result<ExecPlan, LayoutError> {
        let p = config.degree();
        let layout = KvShardLayout::for_model(&self.model, p)?;
        let sp = config.sp() as u64;
        let tp = config.tp() as u64;
        let head_dim = u64::from(self.model.head_dim);
        let qkv_width = u64::from(self.model.q_heads)
            + 2 * u64::from(self.model.kv_heads) * u64::from(layout.replication());
        Ok(ExecPlan {
            config: *config,
            layout,
            sp,
            tp,
            sp_tp: sp * tp,
            p,
            sp_group: config.sp(),
            tp_group: config.tp(),
            gemm_div: (sp * tp) as f64,
            attn_div: p as f64,
            kv_frac: layout.shard_fraction(),
            embed_row_bytes: u64::from(self.model.hidden_size) * ACTIVATION_BYTES,
            qkv_row_bytes: qkv_width * head_dim * ACTIVATION_BYTES,
            out_row_bytes: u64::from(self.model.q_heads) * head_dim * ACTIVATION_BYTES,
            layers: u64::from(self.model.num_layers) as f64,
            streamed: StreamedWeights::of(&self.model),
            roofline: self.roofline,
            collectives: self.collectives,
            overhead: self.overhead,
        })
    }

    /// Compiles a plan per configuration (e.g. a policy's candidate set).
    ///
    /// # Errors
    ///
    /// Returns the first [`LayoutError`] among the configs.
    pub fn compile_configs(
        &self,
        configs: &[ParallelConfig],
    ) -> Result<Vec<ExecPlan>, LayoutError> {
        configs.iter().map(|c| self.compile(c)).collect()
    }

    /// Folds a batch into the config-independent statistics every plan
    /// evaluation consumes — the chunk-cost sum (with the
    /// prefill-linear-scale applied per chunk, in chunk order, matching
    /// `try_iteration`), total new tokens, and sequence count.
    pub fn summarize(&self, batch: &BatchWork) -> BatchSummary {
        let cost: StepCost = batch
            .chunks()
            .iter()
            .map(|c| {
                let mut cc = self.model.chunk_cost(c.new_tokens, c.past, u64::from(c.emits_logit));
                if c.kind == ChunkKind::Prefill {
                    cc.linear_flops *= self.prefill_linear_scale;
                }
                cc
            })
            .sum();
        BatchSummary {
            cost,
            total_new_tokens: batch.total_new_tokens(),
            num_seqs: batch.num_seqs(),
        }
    }

    /// Times one iteration through a compiled plan.
    ///
    /// Debug builds assert the result is bit-identical to
    /// [`ExecutionModel::try_iteration`] on every call; `try_iteration`
    /// stays the executable reference.
    pub fn price_planned(&self, plan: &ExecPlan, batch: &BatchWork) -> IterationBreakdown {
        let summary = self.summarize(batch);
        let out = plan.price(&summary);
        debug_assert_eq!(
            out,
            self.try_iteration(&plan.config(), batch)
                .expect("compiled plan implies a valid layout"),
            "compiled pricing diverged from try_iteration for {}",
            plan.config()
        );
        out
    }

    /// Prices one batch under every plan from a single shared summary —
    /// the multi-config fast path for policy pricing: the O(chunks) fold
    /// runs once, then each plan evaluates in O(1).
    ///
    /// Debug builds assert each evaluation against the direct path.
    pub fn price_all(&self, plans: &[ExecPlan], batch: &BatchWork) -> Vec<IterationBreakdown> {
        let summary = self.summarize(batch);
        plans
            .iter()
            .map(|plan| {
                let out = plan.price(&summary);
                debug_assert_eq!(
                    out,
                    self.try_iteration(&plan.config(), batch)
                        .expect("compiled plan implies a valid layout"),
                    "compiled pricing diverged from try_iteration for {}",
                    plan.config()
                );
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChunkWork;
    use proptest::prelude::*;
    use sp_cluster::NodeSpec;
    use sp_model::presets;

    fn exec(model: ModelConfig) -> ExecutionModel {
        ExecutionModel::new(NodeSpec::p5en_48xlarge(), model)
    }

    #[test]
    fn compile_rejects_what_try_iteration_rejects() {
        // Qwen-30B-A3B has 4 KV heads: degree 3 is unshardable.
        let e = exec(presets::qwen_30b_a3b());
        let bad = ParallelConfig::sequence(3);
        assert_eq!(
            e.compile(&bad).unwrap_err(),
            e.try_iteration(&bad, &BatchWork::uniform_decode(1, 16)).unwrap_err()
        );
        assert!(e.compile_configs(&[ParallelConfig::tensor(4), bad]).is_err());
    }

    #[test]
    fn empty_batch_prices_to_zero() {
        let e = exec(presets::llama_70b());
        let plan = e.compile(&ParallelConfig::tensor(8)).unwrap();
        let it = plan.price(&e.summarize(&BatchWork::default()));
        assert_eq!(it.total(), Dur::ZERO);
    }

    #[test]
    fn price_all_matches_per_config_iterations() {
        // A shift policy's candidate set: base (SP=4, TP=2) plus the
        // full-TP shift config, priced from one summary.
        let e = exec(presets::llama_70b());
        let configs = [ParallelConfig::new(4, 2), ParallelConfig::tensor(8)];
        let plans = e.compile_configs(&configs).unwrap();
        let batch = BatchWork::new(vec![
            ChunkWork::prefill(2048, 0, false),
            ChunkWork::decode(700),
            ChunkWork::decode(9001),
        ]);
        let priced = e.price_all(&plans, &batch);
        for (cfg, got) in configs.iter().zip(&priced) {
            assert_eq!(*got, e.iteration(cfg, &batch));
        }
    }

    #[test]
    fn moe_plan_streams_touched_experts() {
        // The MoE streamed-weight formula must survive constant folding:
        // a one-token decode touches few experts, a large prefill all.
        let e = exec(presets::qwen_30b_a3b());
        let plan = e.compile(&ParallelConfig::tensor(4)).unwrap();
        let small = plan.price(&e.summarize(&BatchWork::uniform_decode(1, 128)));
        let big = plan.price(&e.summarize(&BatchWork::single_prefill(10_000)));
        assert_eq!(
            small,
            e.iteration(&ParallelConfig::tensor(4), &BatchWork::uniform_decode(1, 128))
        );
        assert!(big.gemm > small.gemm);
    }

    #[test]
    fn prefill_scale_flows_through_summary() {
        let mut e = exec(presets::llama_70b());
        e.set_prefill_flops_scale(0.5);
        let plan = e.compile(&ParallelConfig::sequence(8)).unwrap();
        let batch = BatchWork::new(vec![ChunkWork::prefill(4999, 17, true), ChunkWork::decode(64)]);
        assert_eq!(
            plan.price(&e.summarize(&batch)),
            e.iteration(&ParallelConfig::sequence(8), &batch)
        );
    }

    /// Random batches spanning the edge cases the plan must preserve:
    /// empty batches, SP padding (`n_pad > n` whenever the token total
    /// is not a multiple of SP), logit-emitting and silent chunks.
    fn arb_batch() -> impl Strategy<Value = BatchWork> {
        prop::collection::vec(
            (any::<bool>(), 1u64..3000, 0u64..60_000, any::<bool>()).prop_map(
                |(is_prefill, new_tokens, past, emits)| {
                    if is_prefill {
                        ChunkWork::prefill(new_tokens, past, emits)
                    } else {
                        ChunkWork::decode(past)
                    }
                },
            ),
            0..6,
        )
        .prop_map(BatchWork::new)
    }

    proptest! {
        #[test]
        fn compiled_pricing_matches_direct(
            preset in 0usize..4,
            sp_pow in 0u32..4,
            tp_pow in 0u32..4,
            scale_prefill in any::<bool>(),
            batch in arb_batch(),
        ) {
            // qwen_30b_a3b (4 KV heads) exercises KV-head replication at
            // degree 8; llama_17b_16e covers a second MoE shape.
            let model = match preset {
                0 => presets::llama_70b(),
                1 => presets::qwen_32b(),
                2 => presets::qwen_30b_a3b(),
                _ => presets::llama_17b_16e(),
            };
            let mut e = exec(model);
            if scale_prefill {
                e.set_prefill_flops_scale(0.6);
            }
            let config = ParallelConfig::new(1 << sp_pow, 1 << tp_pow);
            match (e.compile(&config), e.try_iteration(&config, &batch)) {
                (Err(ce), Err(de)) => prop_assert_eq!(ce, de),
                (Ok(plan), Ok(direct)) => {
                    // Bit-identical, not approximately equal: the plan
                    // replays the direct path's float ops in order.
                    let summary = e.summarize(&batch);
                    prop_assert_eq!(plan.price(&summary), direct);
                    // And the asserting wrappers agree with themselves.
                    prop_assert_eq!(e.price_planned(&plan, &batch), direct);
                    prop_assert_eq!(e.price_all(&[plan], &batch), vec![direct]);
                }
                (c, d) => prop_assert!(
                    false,
                    "compile ({:?}) and try_iteration ({:?}) disagree on validity",
                    c.map(|p| p.config()),
                    d
                ),
            }
        }
    }
}
