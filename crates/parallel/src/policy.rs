//! The per-iteration parallelism decision.
//!
//! The engine consults a [`ParallelismPolicy`] before every iteration,
//! passing the batch statistics (the paper's switching signal is the
//! number of batched tokens, Algorithm 2). Static deployments always
//! return the same configuration; Shift Parallelism (in `shift-core`)
//! switches between its base and shift configurations.

use crate::config::{BatchWork, ParallelConfig};
use std::fmt;

/// What a policy sees about the upcoming iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Total new tokens batched this iteration.
    pub total_new_tokens: u64,
    /// Number of sequences contributing work.
    pub num_seqs: usize,
}

impl BatchStats {
    /// Extracts the statistics of `batch`.
    pub fn of(batch: &BatchWork) -> BatchStats {
        BatchStats { total_new_tokens: batch.total_new_tokens(), num_seqs: batch.num_seqs() }
    }
}

/// Chooses the parallel configuration for each iteration.
///
/// Implementations must be cheap: the decision happens on the critical
/// scheduling path (the paper replays pre-captured CUDA graphs per
/// configuration, so only registered configurations may be returned).
pub trait ParallelismPolicy: fmt::Debug + Send + Sync {
    /// The configuration to run the next iteration under.
    fn choose(&self, stats: &BatchStats) -> ParallelConfig;

    /// Every configuration this policy may ever return (for weight loading
    /// and graph capture at startup).
    fn configurations(&self) -> Vec<ParallelConfig>;

    /// Human-readable policy name for reports.
    fn name(&self) -> &str;
}

/// A fixed-configuration policy: plain TP, SP, or a static combination.
///
/// # Examples
///
/// ```
/// use sp_parallel::{BatchStats, ParallelConfig, ParallelismPolicy, StaticPolicy};
///
/// let tp = StaticPolicy::new("TP", ParallelConfig::tensor(8));
/// let stats = BatchStats { total_new_tokens: 1, num_seqs: 1 };
/// assert_eq!(tp.choose(&stats), ParallelConfig::tensor(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPolicy {
    name: String,
    config: ParallelConfig,
}

impl StaticPolicy {
    /// Creates a policy that always runs `config`.
    pub fn new(name: impl Into<String>, config: ParallelConfig) -> StaticPolicy {
        StaticPolicy { name: name.into(), config }
    }

    /// The fixed configuration.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }
}

impl ParallelismPolicy for StaticPolicy {
    fn choose(&self, _stats: &BatchStats) -> ParallelConfig {
        self.config
    }

    fn configurations(&self) -> Vec<ParallelConfig> {
        vec![self.config]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChunkWork;

    #[test]
    fn batch_stats_extraction() {
        let batch = BatchWork::new(vec![ChunkWork::prefill(100, 0, true), ChunkWork::decode(10)]);
        let stats = BatchStats::of(&batch);
        assert_eq!(stats.total_new_tokens, 101);
        assert_eq!(stats.num_seqs, 2);
    }

    #[test]
    fn static_policy_ignores_stats() {
        let p = StaticPolicy::new("SP", ParallelConfig::sequence(8));
        for tokens in [0u64, 1, 1_000_000] {
            let stats = BatchStats { total_new_tokens: tokens, num_seqs: 1 };
            assert_eq!(p.choose(&stats), ParallelConfig::sequence(8));
        }
        assert_eq!(p.configurations(), vec![ParallelConfig::sequence(8)]);
        assert_eq!(p.name(), "SP");
    }

    #[test]
    fn policy_is_object_safe() {
        let p: Box<dyn ParallelismPolicy> =
            Box::new(StaticPolicy::new("TP", ParallelConfig::tensor(4)));
        let stats = BatchStats { total_new_tokens: 5, num_seqs: 5 };
        assert_eq!(p.choose(&stats).degree(), 4);
    }
}
