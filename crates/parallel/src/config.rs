//! Parallelism configurations and per-iteration workload description.

use sp_model::{ModelConfig, StepCost};
use std::fmt;

/// One `(SP, TP)` configuration of an attention-parallel group.
///
/// The group spans `SP × TP` GPUs. Pure TP is `(1, P)`, pure SP is
/// `(P, 1)`, and Algorithm 1 handles any combination. Data parallelism is
/// expressed one level up (engine replicas), each replica typically
/// `(1, 1)`.
///
/// # Examples
///
/// ```
/// use sp_parallel::ParallelConfig;
///
/// let base = ParallelConfig::new(4, 2);
/// assert_eq!(base.degree(), 8);
/// assert_eq!(base.shift_config(), ParallelConfig::tensor(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParallelConfig {
    sp: usize,
    tp: usize,
}

impl ParallelConfig {
    /// Creates an `(SP, TP)` configuration.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(sp: usize, tp: usize) -> ParallelConfig {
        assert!(sp > 0 && tp > 0, "parallel degrees must be positive");
        ParallelConfig { sp, tp }
    }

    /// Pure tensor parallelism across `degree` GPUs.
    pub fn tensor(degree: usize) -> ParallelConfig {
        ParallelConfig::new(1, degree)
    }

    /// Pure sequence parallelism across `degree` GPUs.
    pub fn sequence(degree: usize) -> ParallelConfig {
        ParallelConfig::new(degree, 1)
    }

    /// A single-GPU configuration (one DP replica).
    pub fn single() -> ParallelConfig {
        ParallelConfig::new(1, 1)
    }

    /// The SP degree.
    pub fn sp(&self) -> usize {
        self.sp
    }

    /// The TP degree.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Total GPUs in the group: `SP × TP`.
    pub fn degree(&self) -> usize {
        self.sp * self.tp
    }

    /// The corresponding shift configuration: full TP over the same GPUs
    /// (`SP = 1, TP = SP × TP`), per §3.1.2.
    pub fn shift_config(&self) -> ParallelConfig {
        ParallelConfig::tensor(self.degree())
    }

    /// True if this is a pure-TP configuration.
    pub fn is_pure_tp(&self) -> bool {
        self.sp == 1
    }

    /// True if this is a pure-SP configuration.
    pub fn is_pure_sp(&self) -> bool {
        self.tp == 1
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(SP={}, TP={})", self.sp, self.tp)
    }
}

/// Whether a chunk is prompt processing or output generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Prompt tokens entering the KV cache.
    Prefill,
    /// Output generation (one token, or a speculative draft verification).
    Decode,
}

/// The work one request contributes to one iteration: a chunk of
/// `new_tokens` processed at KV offset `past`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkWork {
    /// Prefill or decode.
    pub kind: ChunkKind,
    /// Tokens processed this iteration (prompt chunk, 1 decode token, or a
    /// `draft + 1`-token speculative verification).
    pub new_tokens: u64,
    /// Tokens already in this request's KV cache.
    pub past: u64,
    /// Whether this chunk emits logits (final prefill chunk; every decode).
    pub emits_logit: bool,
}

impl ChunkWork {
    /// A prefill chunk.
    pub fn prefill(new_tokens: u64, past: u64, is_last_chunk: bool) -> ChunkWork {
        ChunkWork { kind: ChunkKind::Prefill, new_tokens, past, emits_logit: is_last_chunk }
    }

    /// A decode step at context length `past`.
    pub fn decode(past: u64) -> ChunkWork {
        ChunkWork { kind: ChunkKind::Decode, new_tokens: 1, past, emits_logit: true }
    }

    /// A speculative-decoding verification step: the target model scores
    /// `draft_len + 1` tokens in one pass (§4.5).
    pub fn speculative_decode(past: u64, draft_len: u32) -> ChunkWork {
        ChunkWork {
            kind: ChunkKind::Decode,
            new_tokens: u64::from(draft_len) + 1,
            past,
            emits_logit: true,
        }
    }
}

/// Everything one iteration processes: the chunks of all batched requests.
///
/// # Examples
///
/// ```
/// use sp_parallel::{BatchWork, ChunkWork};
///
/// let batch = BatchWork::new(vec![
///     ChunkWork::prefill(2048, 0, false),
///     ChunkWork::decode(500),
///     ChunkWork::decode(900),
/// ]);
/// assert_eq!(batch.total_new_tokens(), 2050);
/// assert_eq!(batch.num_seqs(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchWork {
    chunks: Vec<ChunkWork>,
}

impl BatchWork {
    /// Creates a batch from per-request chunks.
    pub fn new(chunks: Vec<ChunkWork>) -> BatchWork {
        BatchWork { chunks }
    }

    /// Convenience: a single un-chunked prefill of `prompt` tokens.
    pub fn single_prefill(prompt: u64) -> BatchWork {
        BatchWork::new(vec![ChunkWork::prefill(prompt, 0, true)])
    }

    /// Convenience: `batch` decode steps, all at context `past`.
    pub fn uniform_decode(batch: usize, past: u64) -> BatchWork {
        BatchWork::new(vec![ChunkWork::decode(past); batch])
    }

    /// The chunks in this batch.
    pub fn chunks(&self) -> &[ChunkWork] {
        &self.chunks
    }

    /// Consumes the batch, returning the chunk buffer for reuse —
    /// schedulers that build a batch every iteration can recycle the
    /// allocation instead of paying for a fresh `Vec` each time.
    pub fn into_chunks(self) -> Vec<ChunkWork> {
        self.chunks
    }

    /// True if no work is scheduled.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total new tokens across all chunks (the paper's "batched tokens per
    /// iteration" — the shift threshold input).
    pub fn total_new_tokens(&self) -> u64 {
        self.chunks.iter().map(|c| c.new_tokens).sum()
    }

    /// Number of sequences contributing work.
    pub fn num_seqs(&self) -> usize {
        self.chunks.len()
    }

    /// Aggregate model-level resource cost of this batch.
    pub fn step_cost(&self, model: &ModelConfig) -> StepCost {
        self.chunks
            .iter()
            .map(|c| model.chunk_cost(c.new_tokens, c.past, u64::from(c.emits_logit)))
            .sum()
    }

    /// `(sequence count, Σ past-context tokens)` when every chunk is a
    /// plain single-token decode — the steady-state shape that repeats
    /// for thousands of consecutive iterations and that the engine's
    /// pricing memo quantizes. `None` for empty batches, batches with
    /// prefill chunks, or speculative (multi-token) decode chunks.
    pub fn decode_only_shape(&self) -> Option<(usize, u64)> {
        if self.chunks.is_empty() {
            return None;
        }
        let mut past = 0u64;
        for c in &self.chunks {
            if c.kind != ChunkKind::Decode || c.new_tokens != 1 {
                return None;
            }
            past += c.past;
        }
        Some((self.chunks.len(), past))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::presets;

    #[test]
    fn degree_is_product() {
        assert_eq!(ParallelConfig::new(4, 2).degree(), 8);
        assert_eq!(ParallelConfig::tensor(8).sp(), 1);
        assert_eq!(ParallelConfig::sequence(8).tp(), 1);
        assert_eq!(ParallelConfig::single().degree(), 1);
    }

    #[test]
    fn shift_config_spans_same_gpus() {
        let base = ParallelConfig::new(3, 2);
        let shift = base.shift_config();
        assert_eq!(shift.degree(), base.degree());
        assert!(shift.is_pure_tp());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_degree_rejected() {
        let _ = ParallelConfig::new(0, 4);
    }

    #[test]
    fn display_formats_both_degrees() {
        assert_eq!(ParallelConfig::new(4, 2).to_string(), "(SP=4, TP=2)");
    }

    #[test]
    fn batch_totals() {
        let b = BatchWork::new(vec![ChunkWork::prefill(100, 0, true), ChunkWork::decode(50)]);
        assert_eq!(b.total_new_tokens(), 101);
        assert_eq!(b.num_seqs(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn uniform_decode_builds_batch() {
        let b = BatchWork::uniform_decode(16, 1000);
        assert_eq!(b.total_new_tokens(), 16);
        assert!(b.chunks().iter().all(|c| c.past == 1000 && c.emits_logit));
    }

    #[test]
    fn step_cost_matches_manual_sum() {
        let m = presets::qwen_32b();
        let b = BatchWork::new(vec![ChunkWork::prefill(128, 0, false), ChunkWork::decode(256)]);
        let expected = m.chunk_cost(128, 0, 0) + m.chunk_cost(1, 256, 1);
        assert_eq!(b.step_cost(&m), expected);
    }
}
