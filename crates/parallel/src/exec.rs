//! The Algorithm 1 cost walk: timing one serving iteration.
//!
//! Given a batch of chunks and an `(SP, TP)` configuration, the execution
//! model walks the combined-parallel forward pass of Algorithm 1 and
//! charges each resource:
//!
//! * **GEMM time** — per-GPU linear FLOPs `f(n,w)/(SP·TP)` roofline-maxed
//!   against weight streaming `w/TP` (SP replicates weights across the SP
//!   group — the root cause of SP's poor decode TPOT, Table 1);
//! * **attention time** — per-GPU attention FLOPs roofline-maxed against
//!   the per-GPU KV-cache traffic (including replication overhead when the
//!   degree exceeds the KV head count);
//! * **communication** — per layer: two TP all-reduces of the `n/SP × d`
//!   embedding and two SP all-to-alls of the head-sharded QKV/attention
//!   buffers, plus one final SP all-gather (Algorithm 1 lines 4, 6, 8, 11,
//!   13);
//! * **engine overhead** — the vLLM CPU cost per iteration that §4.4
//!   identifies as significant for small models.
//!
//! SP **load-balance padding** (§3.2.1) pads the batched tokens up to a
//! multiple of SP before splitting the sequence, charging the redundant
//! tokens' linear FLOPs and communication.

use crate::complexity::ACTIVATION_BYTES;
use crate::config::{BatchWork, ParallelConfig};
use sp_cluster::{CollectiveModel, NodeSpec, Roofline};
use sp_kvcache::layout::LayoutError;
use sp_kvcache::KvShardLayout;
use sp_metrics::Dur;
use sp_model::ModelConfig;

/// Per-iteration CPU cost of the serving framework (scheduler, python
/// glue, sampling, worker coordination).
///
/// The per-sequence term scales with the parallel degree: every worker in
/// a TP/SP group handles each sequence's sampling metadata, which is the
/// "vLLM parallelization cost" §4.4 identifies as a large part of the
/// DP-vs-SP throughput gap (and why small MoE models lose so much
/// throughput when parallelized, Figure 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOverhead {
    /// Cost paid by every iteration.
    pub base: Dur,
    /// Additional cost per batched sequence per GPU in the group.
    pub per_seq: Dur,
}

impl EngineOverhead {
    /// Calibrated vLLM v0.9-like overhead: ~2.5 ms per iteration plus
    /// 5 µs per sequence per worker.
    pub fn vllm_like() -> EngineOverhead {
        EngineOverhead { base: Dur::from_millis(2.5), per_seq: Dur::from_micros(5.0) }
    }

    /// No overhead (for isolating the forward-pass costs, Figure 15's
    /// "remove the forward pass" methodology in reverse).
    pub fn none() -> EngineOverhead {
        EngineOverhead { base: Dur::ZERO, per_seq: Dur::ZERO }
    }

    /// Overhead for one iteration of `seqs` batched sequences on a
    /// `degree`-GPU group.
    pub fn for_batch(&self, seqs: usize, degree: usize) -> Dur {
        self.base + self.per_seq * (seqs * degree) as f64
    }
}

impl Default for EngineOverhead {
    fn default() -> EngineOverhead {
        EngineOverhead::vllm_like()
    }
}

/// Where one iteration's time went — the Figure 15 cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationBreakdown {
    /// Linear-layer time (GEMM compute vs weight streaming roofline).
    pub gemm: Dur,
    /// Attention time (score/value compute vs KV traffic roofline).
    pub attention: Dur,
    /// Collective-communication time.
    pub communication: Dur,
    /// Serving-framework CPU overhead.
    pub overhead: Dur,
}

impl IterationBreakdown {
    /// Total iteration latency (components execute sequentially).
    pub fn total(&self) -> Dur {
        self.gemm + self.attention + self.communication + self.overhead
    }
}

/// Times iterations of one model on one node under any `(SP, TP)` config.
///
/// # Examples
///
/// ```
/// use sp_cluster::NodeSpec;
/// use sp_model::presets;
/// use sp_parallel::{BatchWork, ExecutionModel, ParallelConfig};
///
/// let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b());
/// let decode = BatchWork::uniform_decode(1, 4096);
/// // Full TP minimizes decode latency (weights split 8 ways):
/// let tp = exec.iteration(&ParallelConfig::tensor(8), &decode).total();
/// let sp = exec.iteration(&ParallelConfig::sequence(8), &decode).total();
/// assert!(tp < sp);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionModel {
    pub(crate) node: NodeSpec,
    pub(crate) model: ModelConfig,
    pub(crate) overhead: EngineOverhead,
    pub(crate) roofline: Roofline,
    pub(crate) collectives: CollectiveModel,
    pub(crate) prefill_linear_scale: f64,
}

impl ExecutionModel {
    /// Creates a model with the default (vLLM-like) engine overhead.
    pub fn new(node: NodeSpec, model: ModelConfig) -> ExecutionModel {
        ExecutionModel::with_overhead(node, model, EngineOverhead::default())
    }

    /// Creates a model with explicit engine overhead.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails validation.
    pub fn with_overhead(
        node: NodeSpec,
        model: ModelConfig,
        overhead: EngineOverhead,
    ) -> ExecutionModel {
        model.validate().expect("invalid model config");
        ExecutionModel {
            roofline: Roofline::new(node.gpu),
            collectives: CollectiveModel::new(node.interconnect),
            node,
            model,
            overhead,
            prefill_linear_scale: 1.0,
        }
    }

    /// Scales the linear-layer FLOPs of *prefill* chunks — the hook used
    /// by SwiftKV-style prefill-compute reduction (§4.5).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn set_prefill_flops_scale(&mut self, scale: f64) {
        assert!(scale > 0.0 && scale <= 1.0, "prefill FLOPs scale must be in (0, 1]");
        self.prefill_linear_scale = scale;
    }

    /// The node this model runs on.
    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The configured engine overhead.
    pub fn overhead(&self) -> EngineOverhead {
        self.overhead
    }

    /// Times one iteration, panicking on invalid configurations.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's degree exceeds the node or the KV
    /// heads cannot be distributed (see [`ExecutionModel::try_iteration`]).
    pub fn iteration(&self, config: &ParallelConfig, batch: &BatchWork) -> IterationBreakdown {
        self.try_iteration(config, batch)
            .unwrap_or_else(|e| panic!("cannot run {} on {}: {e}", config, self.model.name))
    }

    /// Times one iteration of `batch` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the KV heads cannot be evenly distributed
    /// or replicated across `config.degree()` GPUs.
    pub fn try_iteration(
        &self,
        config: &ParallelConfig,
        batch: &BatchWork,
    ) -> Result<IterationBreakdown, LayoutError> {
        let p = config.degree();
        let layout = KvShardLayout::for_model(&self.model, p)?;
        if batch.is_empty() {
            return Ok(IterationBreakdown::default());
        }

        let sp = config.sp() as u64;
        let tp = config.tp() as u64;
        let n = batch.total_new_tokens();
        // §3.2.1 load-balance padding: round the batch up to a multiple of
        // the SP degree so the sequence splits evenly.
        let n_pad = n.div_ceil(sp) * sp;
        let pad_ratio = n_pad as f64 / n as f64;

        // Accumulate per-chunk costs, applying the SwiftKV-style scale to
        // prefill linear FLOPs only.
        let cost: sp_model::StepCost = batch
            .chunks()
            .iter()
            .map(|c| {
                let mut cc = self.model.chunk_cost(c.new_tokens, c.past, u64::from(c.emits_logit));
                if c.kind == crate::config::ChunkKind::Prefill {
                    cc.linear_flops *= self.prefill_linear_scale;
                }
                cc
            })
            .sum();

        // --- GEMM: linear + logit FLOPs vs weight streaming ---
        let linear_flops_pg = cost.linear_flops * pad_ratio / (sp * tp) as f64;
        let logit_flops_pg = cost.logit_flops / (sp * tp) as f64;
        let weight_bytes_pg = self.model.streamed_weight_bytes(n_pad) / tp;
        let gemm = self.roofline.kernel(linear_flops_pg + logit_flops_pg, weight_bytes_pg);

        // --- Attention: head-parallel across the whole group ---
        let attn_flops_pg = cost.attn_flops / p as f64;
        // Per-GPU share of KV traffic; replication means each GPU still
        // holds (and reads) at least one full head.
        let kv_frac = f64::from(layout.heads_per_gpu()) / f64::from(self.model.kv_heads);
        let kv_bytes_pg = (cost.total_kv_bytes() as f64 * kv_frac) as u64;
        let attention = self.roofline.kernel(attn_flops_pg, kv_bytes_pg);

        // --- Communication: Algorithm 1 lines 4, 6, 8, 11, 13 ---
        let layers = u64::from(self.model.num_layers);
        let d = u64::from(self.model.hidden_size);
        let head_dim = u64::from(self.model.head_dim);
        let act = ACTIVATION_BYTES;

        // TP all-reduces the n/SP × d embedding after attention-o and after
        // mlp-down (lines 8, 11).
        let ar_bytes = (n_pad / sp) * d * act;
        let ar_time = self.collectives.all_reduce(ar_bytes, tp as usize);

        // SP all-to-all #1 (line 4): each rank's local QKV buffer,
        // n/SP rows × (h + 2·h_kv·replication)/TP head-columns. KV-cache
        // replication widens the send buffer (§3.2.1).
        let qkv_width = u64::from(self.model.q_heads)
            + 2 * u64::from(self.model.kv_heads) * u64::from(layout.replication());
        let a2a1_bytes = (n_pad / sp) * qkv_width * head_dim * act / tp;
        // SP all-to-all #2 (line 6): attention output, n rows ×
        // h/(SP·TP) head-columns per rank.
        let a2a2_bytes = n_pad * u64::from(self.model.q_heads) * head_dim * act / (sp * tp);
        let a2a_time = self.collectives.all_to_all(a2a1_bytes, sp as usize)
            + self.collectives.all_to_all(a2a2_bytes, sp as usize);

        // Final all-gather of output embeddings (line 13), once per pass.
        let ag_time = self.collectives.all_gather(n_pad * d * act, sp as usize);

        let communication = Dur::from_secs(
            layers as f64 * (2.0 * ar_time.as_secs() + a2a_time.as_secs()) + ag_time.as_secs(),
        );

        let overhead = self.overhead.for_batch(batch.num_seqs(), p);

        Ok(IterationBreakdown { gemm, attention, communication, overhead })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChunkWork;
    use proptest::prelude::*;
    use sp_model::presets;

    fn exec(model: ModelConfig) -> ExecutionModel {
        ExecutionModel::new(NodeSpec::p5en_48xlarge(), model)
    }

    fn exec_no_overhead(model: ModelConfig) -> ExecutionModel {
        ExecutionModel::with_overhead(NodeSpec::p5en_48xlarge(), model, EngineOverhead::none())
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let e = exec(presets::llama_70b());
        let it = e.iteration(&ParallelConfig::tensor(8), &BatchWork::default());
        assert_eq!(it.total(), Dur::ZERO);
    }

    #[test]
    fn sp_prefill_beats_tp_prefill() {
        // Figure 12: SP's all-to-all communication is far cheaper than
        // TP's all-reduce for large token counts.
        let e = exec_no_overhead(presets::llama_70b());
        let prefill = BatchWork::single_prefill(4096);
        let tp = e.iteration(&ParallelConfig::tensor(8), &prefill);
        let sp = e.iteration(&ParallelConfig::sequence(8), &prefill);
        assert!(sp.communication < tp.communication);
        let ratio = tp.total().as_secs() / sp.total().as_secs();
        assert!(
            (1.2..2.2).contains(&ratio),
            "TP/SP prefill ratio {ratio:.2}, expected ~1.5x (paper: 1.56x)"
        );
    }

    #[test]
    fn dp_prefill_is_much_slower_than_sp() {
        // Figure 13: up to 6.97x faster response than DP.
        let e = exec_no_overhead(presets::llama_70b());
        let prefill = BatchWork::single_prefill(4096);
        let dp = e.iteration(&ParallelConfig::single(), &prefill);
        let sp = e.iteration(&ParallelConfig::sequence(8), &prefill);
        let ratio = dp.total().as_secs() / sp.total().as_secs();
        assert!((4.0..9.0).contains(&ratio), "DP/SP prefill ratio {ratio:.2}");
    }

    #[test]
    fn tp_decode_beats_sp_decode_at_batch_one() {
        // Table 1: SP has the worst TPOT — weights are replicated across
        // the SP group so decode streams the full model per GPU.
        let e = exec(presets::llama_70b());
        let decode = BatchWork::uniform_decode(1, 4096);
        let tp = e.iteration(&ParallelConfig::tensor(8), &decode);
        let sp = e.iteration(&ParallelConfig::sequence(8), &decode);
        assert!(sp.gemm.as_secs() > 5.0 * tp.gemm.as_secs());
        assert!(tp.total() < sp.total());
    }

    #[test]
    fn tp_decode_tpot_matches_paper_magnitude() {
        // Figure 12: best TPOT ~9.3 ms for Llama-70B.
        let e = exec(presets::llama_70b());
        let decode = BatchWork::uniform_decode(1, 4096);
        let tpot = e.iteration(&ParallelConfig::tensor(8), &decode).total().as_millis();
        assert!((5.0..16.0).contains(&tpot), "TP decode TPOT {tpot:.1} ms");
    }

    #[test]
    fn sp_saturated_throughput_beats_tp() {
        // Figure 12: Shift/SP keeps ~1.5x the saturated throughput of TP.
        let e = exec(presets::llama_70b());
        let batch = BatchWork::new(vec![ChunkWork::prefill(2048, 0, false); 4]);
        let tokens = batch.total_new_tokens() as f64;
        let tp_tput = tokens / e.iteration(&ParallelConfig::tensor(8), &batch).total().as_secs();
        let sp_tput = tokens / e.iteration(&ParallelConfig::sequence(8), &batch).total().as_secs();
        let ratio = sp_tput / tp_tput;
        assert!((1.25..1.9).contains(&ratio), "SP/TP throughput ratio {ratio:.2}");
    }

    #[test]
    fn padding_penalizes_tiny_sp_batches() {
        // §3.2.1: batch 9 on SP=8 pads to 16 — measurable extra GEMM work
        // relative to the unpadded (1, 8) run of the same batch.
        let e = exec_no_overhead(presets::llama_70b());
        let batch = BatchWork::uniform_decode(9, 128);
        let sp = e.iteration(&ParallelConfig::sequence(8), &batch);
        let tp = e.iteration(&ParallelConfig::tensor(8), &batch);
        // Same linear FLOPs before padding; SP pays 16/9 of them (though
        // its GEMM may still be weight-bound). Check the compute side via
        // communication-free comparison of totals at least not absurd:
        assert!(sp.total() > tp.total());
    }

    #[test]
    fn moe_replication_enables_eight_gpus() {
        // Qwen-30B-A3B has 4 KV heads: degree 8 requires replication and
        // must succeed (§4.6), degree 3 must fail.
        let e = exec(presets::qwen_30b_a3b());
        let batch = BatchWork::uniform_decode(8, 1024);
        assert!(e.try_iteration(&ParallelConfig::sequence(8), &batch).is_ok());
        assert!(e.try_iteration(&ParallelConfig::sequence(3), &batch).is_err());
    }

    #[test]
    fn replication_keeps_per_gpu_kv_reads() {
        // With 4 KV heads on 8 GPUs each GPU still holds (and reads) one
        // full head, so decode attention does not get faster going from
        // degree 4 to degree 8 — the cost of replication (§3.2.1).
        let e = exec_no_overhead(presets::qwen_30b_a3b());
        let decode = BatchWork::uniform_decode(64, 32_768);
        let deg4 = e.iteration(&ParallelConfig::sequence(4), &decode).attention;
        let deg8 = e.iteration(&ParallelConfig::sequence(8), &decode).attention;
        assert_eq!(deg4, deg8, "replicated KV reads must not shrink");
        // Going from degree 2 to 4 (no replication yet) *does* halve reads.
        let deg2 = e.iteration(&ParallelConfig::sequence(2), &decode).attention;
        assert!(deg4 < deg2);
    }

    #[test]
    fn combined_config_interpolates_communication() {
        // (SP=4, TP=2) should communicate less than TP=8 but more than SP=8
        // for a prefill-heavy batch.
        let e = exec_no_overhead(presets::llama_70b());
        let batch = BatchWork::single_prefill(8192);
        let tp = e.iteration(&ParallelConfig::tensor(8), &batch).communication;
        let mixed = e.iteration(&ParallelConfig::new(4, 2), &batch).communication;
        let sp = e.iteration(&ParallelConfig::sequence(8), &batch).communication;
        assert!(sp < mixed && mixed < tp, "sp={sp} mixed={mixed} tp={tp}");
    }

    #[test]
    fn attention_dominates_long_contexts() {
        // Figure 13/15: throughput collapses at 128k context because
        // attention time dwarfs everything else.
        let e = exec(presets::llama_70b());
        let long = BatchWork::new(vec![ChunkWork::prefill(4096, 124_000, false); 4]);
        let it = e.iteration(&ParallelConfig::sequence(8), &long);
        assert!(it.attention > it.gemm);
        assert!(it.attention > it.communication);
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let e = exec(presets::qwen_32b());
        let it = e.iteration(&ParallelConfig::single(), &BatchWork::single_prefill(1024));
        assert_eq!(it.communication, Dur::ZERO);
    }

    proptest! {
        #[test]
        fn iteration_time_monotone_in_batch(
            small in 1u64..2000, extra in 1u64..2000,
        ) {
            let e = exec(presets::qwen_32b());
            for config in [
                ParallelConfig::tensor(8),
                ParallelConfig::sequence(8),
                ParallelConfig::new(4, 2),
            ] {
                let a = e.iteration(&config, &BatchWork::single_prefill(small)).total();
                let b = e
                    .iteration(&config, &BatchWork::single_prefill(small + extra))
                    .total();
                prop_assert!(b >= a);
            }
        }

        #[test]
        fn all_components_finite_and_nonnegative(
            tokens in 1u64..50_000, past in 0u64..100_000,
            sp_pow in 0u32..4, tp_pow in 0u32..4,
        ) {
            let e = exec(presets::llama_70b());
            let config = ParallelConfig::new(1 << sp_pow, 1 << tp_pow);
            let batch = BatchWork::new(vec![ChunkWork::prefill(tokens, past, true)]);
            if let Ok(it) = e.try_iteration(&config, &batch) {
                for c in [it.gemm, it.attention, it.communication, it.overhead] {
                    prop_assert!(c.as_secs().is_finite() && c.as_secs() >= 0.0);
                }
                prop_assert!(it.total() > Dur::ZERO);
            }
        }
    }
}
