//! Execution plans and cost models for LLM-inference parallelisms.
//!
//! This crate models how one transformer forward pass executes on a
//! multi-GPU node under each parallelism the paper studies:
//!
//! * **TP** — tensor parallelism: weights split `TP` ways, two all-reduces
//!   per layer (Figure 3a).
//! * **SP** — Ulysses sequence parallelism: sequence split `SP` ways, two
//!   all-to-alls per layer plus one final all-gather (Figure 3b,
//!   Algorithm 1).
//! * **Combined (SP, TP)** — Algorithm 1 with both degrees; needed when the
//!   model does not fit a single GPU (§3.2.2).
//! * **DP** — data parallelism: modelled as independent single-GPU replicas
//!   at the engine layer; each replica here is `(SP=1, TP=1)`.
//!
//! Modules:
//!
//! * [`config`] — [`ParallelConfig`] and the batch-of-chunks workload type.
//! * [`mapping`] — the §3.3.1 process-to-data mapping: TP/SP/SP_TP groups
//!   and the head-order permutation whose consistency is the KV-cache
//!   invariance property.
//! * [`complexity`] — the symbolic per-GPU complexity of Table 2.
//! * [`exec`] — [`exec::ExecutionModel`]: times one iteration (Algorithm 1
//!   walk) and reports the Figure 15 cost breakdown.
//! * [`plan`] — compiled pricing: per-config [`plan::ExecPlan`]s evaluated
//!   in O(1) from one shared [`plan::BatchSummary`] fold, bit-identical to
//!   the direct `try_iteration` walk.
//! * [`memory`] — weight/KV memory planning per configuration.
//! * [`policy`] — the [`policy::ParallelismPolicy`] trait the engine
//!   consults each iteration; static policies live here, the dynamic shift
//!   policy in `shift-core`.
//!
//! # Examples
//!
//! ```
//! use sp_cluster::NodeSpec;
//! use sp_model::presets;
//! use sp_parallel::{BatchWork, ExecutionModel, ParallelConfig};
//!
//! let exec = ExecutionModel::new(NodeSpec::p5en_48xlarge(), presets::llama_70b());
//! let prefill = BatchWork::single_prefill(4096);
//! let tp = exec.iteration(&ParallelConfig::tensor(8), &prefill).total();
//! let sp = exec.iteration(&ParallelConfig::sequence(8), &prefill).total();
//! assert!(sp < tp); // SP prefills faster: all-to-all beats all-reduce
//! ```

pub mod complexity;
pub mod config;
pub mod exec;
pub mod expert;
pub mod mapping;
pub mod memory;
pub mod pipeline;
pub mod plan;
pub mod policy;

pub use config::{BatchWork, ChunkKind, ChunkWork, ParallelConfig};
pub use exec::{EngineOverhead, ExecutionModel, IterationBreakdown};
pub use mapping::ProcessMapping;
pub use memory::MemoryPlan;
pub use plan::{BatchSummary, DecodeRunPricer, ExecPlan};
pub use policy::{BatchStats, ParallelismPolicy, StaticPolicy};
