//! Token-length distributions.

use rand::Rng;

/// A distribution over request token lengths.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use sp_workload::sizes::LengthDist;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let d = LengthDist::LogNormal { median: 2000.0, sigma: 0.8 };
/// let v = d.sample(&mut rng);
/// assert!(v >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LengthDist {
    /// Always the same length.
    Fixed(u32),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Log-normal with the given median and log-space standard deviation —
    /// the classic shape of LLM prompt/response length distributions.
    LogNormal {
        /// Median length (`exp(μ)`).
        median: f64,
        /// Log-space standard deviation σ.
        sigma: f64,
    },
    /// Samples uniformly from an empirical set of observed lengths.
    Empirical(Vec<u32>),
}

impl LengthDist {
    /// Draws one length, clamped to at least 1 token.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is structurally invalid (`lo > hi`,
    /// non-positive median/sigma, or an empty empirical set).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            LengthDist::Fixed(v) => (*v).max(1),
            LengthDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted");
                rng.gen_range(*lo..=*hi).max(1)
            }
            LengthDist::LogNormal { median, sigma } => {
                assert!(*median > 0.0 && *sigma > 0.0, "lognormal params must be positive");
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let v = (median.ln() + sigma * z).exp();
                v.round().clamp(1.0, u32::MAX as f64) as u32
            }
            LengthDist::Empirical(values) => {
                assert!(!values.is_empty(), "empirical distribution needs samples");
                values[rng.gen_range(0..values.len())].max(1)
            }
        }
    }

    /// Draws `n` lengths.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_returns_value() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = LengthDist::Fixed(500);
        assert!(d.sample_n(&mut rng, 10).iter().all(|&v| v == 500));
    }

    #[test]
    fn fixed_zero_clamps_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(LengthDist::Fixed(0).sample(&mut rng), 1);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LengthDist::Uniform { lo: 10, hi: 20 };
        for v in d.sample_n(&mut rng, 1000) {
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LengthDist::LogNormal { median: 2000.0, sigma: 1.0 };
        let mut samples = d.sample_n(&mut rng, 20_001);
        samples.sort_unstable();
        let median = samples[10_000] as f64;
        assert!((1700.0..2300.0).contains(&median), "median {median}");
    }

    #[test]
    fn empirical_draws_from_set() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LengthDist::Empirical(vec![7, 11, 13]);
        for v in d.sample_n(&mut rng, 100) {
            assert!([7, 11, 13].contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empirical")]
    fn empty_empirical_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = LengthDist::Empirical(vec![]).sample(&mut rng);
    }

    proptest! {
        #[test]
        fn samples_are_at_least_one(
            seed in any::<u64>(),
            median in 1.0f64..100_000.0,
            sigma in 0.1f64..3.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = LengthDist::LogNormal { median, sigma };
            for v in d.sample_n(&mut rng, 50) {
                prop_assert!(v >= 1);
            }
        }
    }
}
