//! Multi-turn conversation / agent sessions with prefix reuse.
//!
//! The coding-agent pattern of §2.1 ("a small number of repeated requests
//! in a closed loop to iteratively refine its generated code"): each turn
//! resubmits the whole accumulated context plus fresh tokens. With prefix
//! caching, only the fresh tail needs prefilling — this generator marks
//! the reusable prefix on every turn so engines with
//! `prefix_caching = true` can exploit it.

use crate::request::{Request, RequestClass, Trace};
use crate::sizes::LengthDist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_metrics::{Dur, SimTime};

/// Parameters of a population of multi-turn sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTurnConfig {
    /// Number of concurrent sessions (users/agents).
    pub sessions: usize,
    /// Turns per session.
    pub turns: usize,
    /// Initial context tokens of each session.
    pub initial_context: LengthDist,
    /// Fresh tokens added per turn (user message / tool output).
    pub turn_tokens: LengthDist,
    /// Output tokens generated per turn.
    pub output: LengthDist,
    /// Think time between receiving an answer and the next turn.
    pub think_time: Dur,
    /// Estimated server-side completion time per turn, used to space the
    /// turn arrivals (the generator is open-loop; the engine's actual
    /// latency may differ).
    pub expected_turn_latency: Dur,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiTurnConfig {
    fn default() -> MultiTurnConfig {
        MultiTurnConfig {
            sessions: 8,
            turns: 10,
            initial_context: LengthDist::LogNormal { median: 4000.0, sigma: 0.5 },
            turn_tokens: LengthDist::LogNormal { median: 800.0, sigma: 0.6 },
            output: LengthDist::LogNormal { median: 300.0, sigma: 0.4 },
            think_time: Dur::from_secs(2.0),
            expected_turn_latency: Dur::from_secs(4.0),
            seed: 0x77,
        }
    }
}

impl MultiTurnConfig {
    /// Generates the interleaved trace of all sessions. Every turn's
    /// `cached_prefix` covers the previous turn's full context + output —
    /// the tokens a prefix cache would retain — and `prefix_group` is the
    /// session id, so prefix-caching engines share the KV memory too.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut requests = Vec::new();
        for s in 0..self.sessions {
            // Stagger session starts.
            let mut at =
                SimTime::from_secs(s as f64 * self.think_time.as_secs() / self.sessions as f64);
            let mut context = u64::from(self.initial_context.sample(&mut rng));
            let mut cached: u64 = 0;
            for _ in 0..self.turns {
                let fresh = u64::from(self.turn_tokens.sample(&mut rng));
                let output = self.output.sample(&mut rng);
                let input = (context + fresh).min(u64::from(u32::MAX)) as u32;
                requests.push(Request {
                    id: 0,
                    arrival: at,
                    input_tokens: input,
                    output_tokens: output,
                    class: RequestClass::Interactive,
                    cached_prefix: cached.min(u64::from(input)) as u32,
                    prefix_group: Some(s as u64),
                });
                // Next turn: context accumulates this turn's input+output,
                // all of which the server has cached.
                cached = u64::from(input) + u64::from(output);
                context = cached;
                at += self.expected_turn_latency + self.think_time;
            }
        }
        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_grow_and_prefixes_cover_history() {
        let trace = MultiTurnConfig { sessions: 1, ..MultiTurnConfig::default() }.generate();
        assert_eq!(trace.len(), 10);
        let reqs = trace.requests();
        assert_eq!(reqs[0].cached_prefix, 0, "first turn has nothing cached");
        for w in reqs.windows(2) {
            assert!(w[1].input_tokens > w[0].input_tokens, "context accumulates");
            assert_eq!(
                u64::from(w[1].cached_prefix),
                w[0].total_tokens(),
                "turn caches the whole previous exchange"
            );
        }
    }

    #[test]
    fn sessions_interleave() {
        let trace = MultiTurnConfig::default().generate();
        assert_eq!(trace.len(), 80);
        // First few arrivals come from different sessions (staggered).
        let first_inputs: Vec<u32> =
            trace.requests().iter().take(8).map(|r| r.cached_prefix).collect();
        assert!(first_inputs.iter().all(|&c| c == 0), "all sessions start cold");
    }

    #[test]
    fn cached_prefix_never_exceeds_input() {
        let trace = MultiTurnConfig::default().generate();
        for r in trace.requests() {
            assert!(r.cached_prefix <= r.input_tokens);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(MultiTurnConfig::default().generate(), MultiTurnConfig::default().generate());
    }
}
