//! The bursty synthetic workload of Figures 2 and 7.
//!
//! "A steady stream of requests at low frequency with occasional bursts of
//! high-frequency requests" — a random mix of two real-life datasets
//! (§4.1.4): one-shot HumanEval-style completions (short prompts) and
//! agentic SWE-bench-style requests (long prompts, repeated refinement).

use crate::arrival;
use crate::request::{Request, RequestClass, Trace};
use crate::sizes::LengthDist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_metrics::{Dur, SimTime};

/// Parameters of the bursty synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyConfig {
    /// Total trace duration.
    pub duration: Dur,
    /// Steady interactive request rate, req/s.
    pub base_rate: f64,
    /// Number of high-traffic bursts, evenly spread over the duration.
    pub bursts: usize,
    /// Requests submitted per burst.
    pub burst_size: usize,
    /// Window over which each burst's requests arrive.
    pub burst_window: Dur,
    /// Prompt lengths of steady (HumanEval-like) requests.
    pub base_input: LengthDist,
    /// Output lengths of steady requests.
    pub base_output: LengthDist,
    /// Prompt lengths of burst (agentic, SWE-bench-like) requests.
    pub burst_input: LengthDist,
    /// Output lengths of burst requests.
    pub burst_output: LengthDist,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BurstyConfig {
    /// The Figure 7 setup: four bursts over a ~10 minute run on top of a
    /// low-frequency interactive stream.
    fn default() -> BurstyConfig {
        BurstyConfig {
            duration: Dur::from_secs(600.0),
            base_rate: 1.5,
            bursts: 4,
            burst_size: 160,
            burst_window: Dur::from_secs(10.0),
            base_input: LengthDist::LogNormal { median: 450.0, sigma: 0.6 },
            base_output: LengthDist::LogNormal { median: 250.0, sigma: 0.5 },
            burst_input: LengthDist::LogNormal { median: 4000.0, sigma: 0.8 },
            burst_output: LengthDist::LogNormal { median: 350.0, sigma: 0.5 },
            seed: 0xB5_257,
        }
    }
}

impl BurstyConfig {
    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero or `base_rate` is not positive.
    pub fn generate(&self) -> Trace {
        assert!(!self.duration.is_zero(), "duration must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Steady interactive stream over the whole duration.
        let steady_count = (self.base_rate * self.duration.as_secs()).round() as usize;
        let mut requests: Vec<Request> =
            arrival::poisson(&mut rng, steady_count, self.base_rate, SimTime::ZERO)
                .into_iter()
                .filter(|t| t.as_secs() <= self.duration.as_secs())
                .map(|arrival| Request {
                    id: 0,
                    arrival,
                    input_tokens: self.base_input.sample(&mut rng),
                    output_tokens: self.base_output.sample(&mut rng),
                    class: RequestClass::Interactive,
                    cached_prefix: 0,
                    prefix_group: None,
                })
                .collect();

        // Bursts at evenly-spaced instants (avoiding the very start/end).
        for b in 0..self.bursts {
            let center = self.duration.as_secs() * (b as f64 + 1.0) / (self.bursts as f64 + 1.0);
            let start = SimTime::from_secs((center - self.burst_window.as_secs() / 2.0).max(0.0));
            let burst_rate = self.burst_size as f64 / self.burst_window.as_secs().max(1e-9);
            for arrival in arrival::poisson(&mut rng, self.burst_size, burst_rate, start) {
                requests.push(Request {
                    id: 0,
                    arrival,
                    input_tokens: self.burst_input.sample(&mut rng),
                    output_tokens: self.burst_output.sample(&mut rng),
                    class: RequestClass::Batch,
                    cached_prefix: 0,
                    prefix_group: None,
                });
            }
        }

        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_trace_has_bursts_and_steady_traffic() {
        let trace = BurstyConfig::default().generate();
        let interactive =
            trace.requests().iter().filter(|r| r.class == RequestClass::Interactive).count();
        let batch = trace.requests().iter().filter(|r| r.class == RequestClass::Batch).count();
        assert!(interactive > 500, "steady stream too small: {interactive}");
        assert_eq!(batch, 4 * BurstyConfig::default().burst_size);
    }

    #[test]
    fn burst_windows_have_elevated_rates() {
        let cfg = BurstyConfig::default();
        let trace = cfg.generate();
        let hist = trace.arrival_histogram(Dur::from_secs(10.0));
        let peak = hist.iter().map(|&(_, c)| c).max().unwrap();
        let median = {
            let mut counts: Vec<usize> = hist.iter().map(|&(_, c)| c).collect();
            counts.sort_unstable();
            counts[counts.len() / 2]
        };
        assert!(peak > 5 * median.max(1), "peak bin {peak} should dwarf median bin {median}");
    }

    #[test]
    fn burst_requests_have_longer_prompts() {
        let trace = BurstyConfig::default().generate();
        let mean = |class: RequestClass| {
            let xs: Vec<f64> = trace
                .requests()
                .iter()
                .filter(|r| r.class == class)
                .map(|r| f64::from(r.input_tokens))
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean(RequestClass::Batch) > 3.0 * mean(RequestClass::Interactive));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BurstyConfig::default().generate();
        let b = BurstyConfig::default().generate();
        assert_eq!(a, b);
        let c = BurstyConfig { seed: 1, ..BurstyConfig::default() }.generate();
        assert_ne!(a, c);
    }
}
